/**
 * @file
 * Trace-driven DTB simulation.
 *
 * The paper justifies its hit-ratio assumptions from the cache-study
 * literature of the era (Kaplan & Winder, Meade, Strecker), which was
 * built on address-trace simulation. This module recreates that
 * methodology for the DTB: capture the DIR-address reference trace of
 * one execution (MachineConfig::captureAddressTrace), then replay it
 * through any number of DTB configurations — capacity, associativity,
 * allocation unit, replacement policy — without re-executing semantics.
 * Sweeps that would take seconds of full simulation take milliseconds,
 * and the replay reproduces the full machine's hit/miss behavior
 * exactly (asserted in tests/core_test.cc).
 */

#ifndef UHM_CORE_TRACE_SIM_HH
#define UHM_CORE_TRACE_SIM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dtb.hh"

namespace uhm
{

/** Outcome of replaying one trace through one DTB configuration. */
struct TraceSimResult
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** Translations the buffer could not retain (overflow exhaustion). */
    uint64_t rejects = 0;

    double
    hitRatio() const
    {
        uint64_t total = hits + misses;
        return total == 0 ? 1.0 :
            static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Replay @p trace (executed DIR bit addresses, in order) through a DTB
 * with @p config. Insertion mirrors the machine: every miss translates
 * and attempts to install.
 *
 * @param translation_size returns the PSDER length (in short
 *        instructions) of the translation at a DIR address; drives the
 *        allocation-unit/overflow accounting
 */
TraceSimResult simulateDtbTrace(
    const std::vector<uint64_t> &trace, const DtbConfig &config,
    const std::function<unsigned(uint64_t)> &translation_size);

} // namespace uhm

#endif // UHM_CORE_TRACE_SIM_HH
