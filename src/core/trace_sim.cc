#include "core/trace_sim.hh"

namespace uhm
{

TraceSimResult
simulateDtbTrace(const std::vector<uint64_t> &trace,
                 const DtbConfig &config,
                 const std::function<unsigned(uint64_t)> &translation_size)
{
    Dtb dtb(config);
    TraceSimResult result;
    for (uint64_t addr : trace) {
        if (dtb.lookup(addr).hit) {
            ++result.hits;
            continue;
        }
        ++result.misses;
        // Mirror the machine: translate and attempt to install. Only
        // the translation's *size* matters for buffer accounting, so a
        // placeholder sequence of the right length suffices.
        unsigned len = translation_size(addr);
        std::vector<ShortInstr> placeholder(
            len, ShortInstr{SOp::INTERP, SMode::Imm, 0});
        if (!dtb.insert(addr, std::move(placeholder)).retained)
            ++result.rejects;
    }
    return result;
}

} // namespace uhm
