#include "core/dtb.hh"

#include "support/logging.hh"

namespace uhm
{

Dtb::Dtb(const DtbConfig &config) : config_(config), rng_(config.seed)
{
    uhm_assert(config.unitShortInstrs >= 1, "unit of allocation empty");
    // Round the unit size *up* to whole bytes: flooring would undersize
    // the unit whenever unitShortInstrs * shortInstrBits is not
    // byte-aligned, silently overcommitting the buffer array.
    uint64_t unit_bits =
        uint64_t{config.unitShortInstrs} * shortInstrBits;
    uint64_t unit_bytes = (unit_bits + 7) / 8;
    uhm_assert(unit_bytes * 8 >= unit_bits,
               "unit of allocation cannot hold its instructions");
    uint64_t total_units = config.capacityBytes / unit_bytes;
    uhm_assert(total_units >= 1, "DTB smaller than one unit");
    uhm_assert(total_units * unit_bytes <= config.capacityBytes,
               "allocation units exceed buffer-array capacity");

    overflowTotal_ = config.allowOverflow ?
        static_cast<uint64_t>(
            static_cast<double>(total_units) * config.overflowFraction) :
        0;
    numEntries_ = total_units - overflowTotal_;
    uhm_assert(numEntries_ >= 1, "no primary units left");
    overflowFree_ = overflowTotal_;

    assoc_ = config.assoc == 0 ? static_cast<unsigned>(numEntries_) :
        config.assoc;
    uhm_assert(assoc_ <= numEntries_,
               "associativity exceeds entry count");
    numSets_ = numEntries_ / assoc_;
    uhm_assert(numSets_ >= 1, "no sets");
    // Trim entries that do not fill a whole set.
    numEntries_ = numSets_ * assoc_;

    numPartitions_ = config.numPartitions <= 1 ? 1 :
        config.numPartitions;
    uhm_assert(numPartitions_ <= numSets_,
               "more DTB partitions than sets");
    setsPerPartition_ = numSets_ / numPartitions_;

    entries_.assign(numEntries_, Entry{});
    repl_.reserve(numSets_);
    for (uint64_t s = 0; s < numSets_; ++s)
        repl_.emplace_back(assoc_, config.policy, &rng_);
}

uint64_t
Dtb::setOf(uint64_t dir_addr) const
{
    // Multiplicative hash of the DIR bit address ("the DIR instruction
    // address is hashed to select a unique set"). In partitioned mode
    // the hash lands inside the current tenant's contiguous region
    // (the trailing numSets_ % numPartitions_ sets go unused — the
    // partitions stay equal-sized).
    uint64_t h = (dir_addr * 0x9e3779b97f4a7c15ull) >> 32;
    if (numPartitions_ == 1)
        return h % numSets_;
    return (asid_ % numPartitions_) * setsPerPartition_ +
        h % setsPerPartition_;
}

Dtb::LookupResult
Dtb::lookup(uint64_t dir_addr)
{
    uint64_t set = setOf(dir_addr);
    Entry *set_entries = &entries_[set * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &e = set_entries[way];
        if (e.meta.valid && e.meta.tag == dir_addr &&
            e.meta.asid == asid_) {
            repl_[set].touch(way);
            ++hits_;
            ++e.meta.useCount;
            return {true, &e.code, e.meta.units, &e.meta,
                    static_cast<uint32_t>(set * assoc_ + way)};
        }
    }
    ++misses_;
    return {};
}

Dtb::Entry *
Dtb::findEntry(uint64_t dir_addr)
{
    uint64_t set = setOf(dir_addr);
    Entry *set_entries = &entries_[set * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &e = set_entries[way];
        if (e.meta.valid && e.meta.tag == dir_addr &&
            e.meta.asid == asid_)
            return &e;
    }
    return nullptr;
}

bool
Dtb::markTraceAnchor(uint64_t dir_addr)
{
    Entry *e = findEntry(dir_addr);
    if (!e)
        return false;
    e->meta.anchorsTrace = true;
    return true;
}

void
Dtb::clearTraceAnchor(uint64_t dir_addr)
{
    if (Entry *e = findEntry(dir_addr))
        e->meta.anchorsTrace = false;
}

std::vector<uint32_t>
Dtb::setOccupancy() const
{
    std::vector<uint32_t> occupancy(numSets_, 0);
    for (uint64_t i = 0; i < numEntries_; ++i) {
        if (entries_[i].meta.valid)
            ++occupancy[i / assoc_];
    }
    return occupancy;
}

Dtb::InsertOutcome
Dtb::insert(uint64_t dir_addr, std::vector<ShortInstr> code,
            uint64_t now)
{
    unsigned units_needed = static_cast<unsigned>(
        (code.size() + config_.unitShortInstrs - 1) /
        config_.unitShortInstrs);
    if (units_needed == 0)
        units_needed = 1;
    unsigned overflow_needed = units_needed - 1;

    InsertOutcome out;
    out.unitsNeeded = units_needed;

    if (overflow_needed > 0 && !config_.allowOverflow) {
        ++rejects_;
        return out;
    }

    uint64_t set = setOf(dir_addr);
    Entry *set_entries = &entries_[set * assoc_];

    // Prefer an invalid way; otherwise the replacement array's victim.
    unsigned way = assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set_entries[w].meta.valid)
            ++out.setOccupancy;
        else if (way == assoc_)
            way = w;
    }
    Entry *victim = nullptr;
    if (way == assoc_) {
        way = repl_[set].victim();
        victim = &set_entries[way];
    }

    // Reserve overflow increments before evicting anything. The blocks
    // a valid victim would release count toward the supply, but if the
    // area still cannot cover the translation, the resident — possibly
    // hot — victim must survive. (Evicting first and rejecting after
    // destroyed a retained translation for nothing.)
    uint64_t victim_release =
        victim && victim->meta.valid && victim->meta.units > 1 ?
        victim->meta.units - 1 : 0;
    if (overflow_needed > overflowFree_ + victim_release) {
        ++rejects_;
        return out;
    }

    if (victim) {
        out.evicted = victim->meta.valid;
        out.victimTag = victim->meta.tag;
        out.victimAsid = victim->meta.asid;
        out.victimUses = victim->meta.useCount;
        if (now > victim->meta.insertCycle)
            out.victimResidency = now - victim->meta.insertCycle;
        evict(*victim);
        ++evictions_;
    }
    overflowFree_ -= overflow_needed;
    overflowBlocks_ += overflow_needed;

    Entry &e = set_entries[way];
    e.meta.reset();
    e.meta.tag = dir_addr;
    e.meta.asid = asid_;
    e.meta.valid = true;
    e.meta.units = units_needed;
    e.meta.insertCycle = now;
    e.code = std::move(code);
    repl_[set].fill(way);
    ++inserts_;
    out.retained = true;
    return out;
}

StatSet
Dtb::stats() const
{
    StatSet set;
    set.add("dtb_inserts", inserts_.value());
    set.add("dtb_evictions", evictions_.value());
    set.add("dtb_rejects", rejects_.value());
    set.add("dtb_overflow_blocks", overflowBlocks_.value());
    return set;
}

void
Dtb::registerCounters(obs::Registry &registry,
                      const std::string &prefix) const
{
    registry.add(obs::joinName(prefix, "hits"), hits_);
    registry.add(obs::joinName(prefix, "misses"), misses_);
    registry.add(obs::joinName(prefix, "inserts"), inserts_);
    registry.add(obs::joinName(prefix, "evictions"), evictions_);
    registry.add(obs::joinName(prefix, "rejects"), rejects_);
    registry.add(obs::joinName(prefix, "overflow_blocks"),
                 overflowBlocks_);
    registry.add(obs::joinName(prefix, "flushes"), flushes_);
    registry.add(obs::joinName(prefix, "flushed_entries"),
                 flushedEntries_);
}

std::vector<Dtb::FlushedEntry>
Dtb::flush(uint64_t now)
{
    std::vector<FlushedEntry> victims;
    for (Entry &e : entries_) {
        if (!e.meta.valid)
            continue;
        FlushedEntry v;
        v.tag = e.meta.tag;
        v.asid = e.meta.asid;
        if (now > e.meta.insertCycle)
            v.residency = now - e.meta.insertCycle;
        v.uses = e.meta.useCount;
        v.anchoredTrace = e.meta.anchorsTrace;
        victims.push_back(v);
        evict(e);
        ++flushedEntries_;
    }
    ++flushes_;
    return victims;
}

std::vector<uint64_t>
Dtb::residentResidencies(uint64_t now, int64_t asid_filter) const
{
    std::vector<uint64_t> residencies;
    for (const Entry &e : entries_) {
        if (!e.meta.valid)
            continue;
        if (asid_filter >= 0 &&
            e.meta.asid != static_cast<uint32_t>(asid_filter))
            continue;
        residencies.push_back(
            now > e.meta.insertCycle ? now - e.meta.insertCycle : 0);
    }
    return residencies;
}

void
Dtb::resetStats()
{
    hits_.reset();
    misses_.reset();
    inserts_.reset();
    evictions_.reset();
    rejects_.reset();
    overflowBlocks_.reset();
    flushes_.reset();
    flushedEntries_.reset();
    // Per-entry observability state restarts with the epoch: a
    // residency or use figure measured after the reset must not carry
    // lifetime from before it. Behavioral state (the translation, the
    // backedge counter, the anchor flag) is untouched.
    for (Entry &e : entries_) {
        if (e.meta.valid) {
            e.meta.useCount = 0;
            e.meta.insertCycle = 0;
        }
    }
}

void
Dtb::evict(Entry &entry)
{
    if (entry.meta.valid && entry.meta.units > 1)
        overflowFree_ += entry.meta.units - 1;
    entry.meta.reset();
    entry.code.clear();
}

void
Dtb::invalidateAll()
{
    for (Entry &e : entries_)
        evict(e);
}

} // namespace uhm
