#include "core/dtb.hh"

#include "support/logging.hh"

namespace uhm
{

Dtb::Dtb(const DtbConfig &config) : config_(config), rng_(config.seed)
{
    uhm_assert(config.unitShortInstrs >= 1, "unit of allocation empty");
    uint64_t unit_bytes =
        config.unitShortInstrs * shortInstrBits / 8;
    uint64_t total_units = config.capacityBytes / unit_bytes;
    uhm_assert(total_units >= 1, "DTB smaller than one unit");

    overflowTotal_ = config.allowOverflow ?
        static_cast<uint64_t>(
            static_cast<double>(total_units) * config.overflowFraction) :
        0;
    numEntries_ = total_units - overflowTotal_;
    uhm_assert(numEntries_ >= 1, "no primary units left");
    overflowFree_ = overflowTotal_;

    assoc_ = config.assoc == 0 ? static_cast<unsigned>(numEntries_) :
        config.assoc;
    uhm_assert(assoc_ <= numEntries_,
               "associativity exceeds entry count");
    numSets_ = numEntries_ / assoc_;
    uhm_assert(numSets_ >= 1, "no sets");
    // Trim entries that do not fill a whole set.
    numEntries_ = numSets_ * assoc_;

    entries_.assign(numEntries_, Entry{});
    repl_.reserve(numSets_);
    for (uint64_t s = 0; s < numSets_; ++s)
        repl_.emplace_back(assoc_, config.policy, &rng_);
}

uint64_t
Dtb::setOf(uint64_t dir_addr) const
{
    // Multiplicative hash of the DIR bit address ("the DIR instruction
    // address is hashed to select a unique set").
    uint64_t h = dir_addr * 0x9e3779b97f4a7c15ull;
    return (h >> 32) % numSets_;
}

Dtb::LookupResult
Dtb::lookup(uint64_t dir_addr)
{
    uint64_t set = setOf(dir_addr);
    Entry *set_entries = &entries_[set * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &e = set_entries[way];
        if (e.valid && e.tag == dir_addr) {
            repl_[set].touch(way);
            ++hits_;
            return {true, &e.code, e.units};
        }
    }
    ++misses_;
    return {};
}

bool
Dtb::insert(uint64_t dir_addr, std::vector<ShortInstr> code)
{
    unsigned units_needed = static_cast<unsigned>(
        (code.size() + config_.unitShortInstrs - 1) /
        config_.unitShortInstrs);
    if (units_needed == 0)
        units_needed = 1;
    unsigned overflow_needed = units_needed - 1;

    if (overflow_needed > 0 && !config_.allowOverflow) {
        stats_.add("dtb_rejects");
        return false;
    }

    uint64_t set = setOf(dir_addr);
    Entry *set_entries = &entries_[set * assoc_];

    // Prefer an invalid way; otherwise the replacement array's victim.
    unsigned way = assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!set_entries[w].valid) {
            way = w;
            break;
        }
    }
    if (way == assoc_) {
        way = repl_[set].victim();
        evict(set_entries[way]);
        stats_.add("dtb_evictions");
    }

    if (overflow_needed > overflowFree_) {
        // The secondary area cannot supply the increments; do not retain
        // the translation. (The primary way stays invalid/evicted.)
        stats_.add("dtb_rejects");
        return false;
    }
    overflowFree_ -= overflow_needed;
    stats_.add("dtb_overflow_blocks", overflow_needed);

    Entry &e = set_entries[way];
    e.tag = dir_addr;
    e.valid = true;
    e.code = std::move(code);
    e.units = units_needed;
    repl_[set].fill(way);
    stats_.add("dtb_inserts");
    return true;
}

void
Dtb::evict(Entry &entry)
{
    if (entry.valid && entry.units > 1)
        overflowFree_ += entry.units - 1;
    entry.valid = false;
    entry.code.clear();
    entry.units = 1;
}

void
Dtb::invalidateAll()
{
    for (Entry &e : entries_)
        evict(e);
}

} // namespace uhm
