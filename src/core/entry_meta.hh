/**
 * @file
 * Per-entry metadata shared by the translation-holding caches.
 *
 * The DTB (core/dtb.hh) and the tier-2 trace cache
 * (tier/trace_cache.hh) both maintain a set-associative array of
 * translations keyed by DIR bit address. The bookkeeping block of one
 * entry — the tag, validity, the allocation-unit footprint and the
 * hotness/promotion state the adaptive tier reads — is identical in
 * both, so it lives here once instead of as two hand-rolled copies.
 *
 * The recency ("LRU stamp") half of the replacement state stays in
 * mem/replacement.hh's per-set ReplacementSet, which both structures
 * also share; EntryMeta carries the per-entry half.
 */

#ifndef UHM_CORE_ENTRY_META_HH
#define UHM_CORE_ENTRY_META_HH

#include <cstdint>

namespace uhm
{

/** Bookkeeping block of one cached-translation entry. */
struct EntryMeta
{
    /** DIR bit address this entry translates. */
    uint64_t tag = 0;
    /**
     * Address-space ID of the tenant that owns the translation. A
     * lookup matches only entries of the cache's current ASID, so two
     * tenants sharing one buffer (tag-and-share mode) can hold
     * translations for the same DIR address side by side. Single-tenant
     * machines leave every ASID 0.
     */
    uint32_t asid = 0;
    /** The entry holds a live translation. */
    bool valid = false;
    /** Buffer units consumed: 1 primary + overflow increments. */
    unsigned units = 1;
    /**
     * Hotness: times a lookup found this entry (bumped on every hit).
     * Dies with the entry — an evicted translation restarts cold.
     */
    uint32_t useCount = 0;
    /**
     * Backward control transfers that landed on this entry while it was
     * resident (the tier's per-backedge promotion counter). Only the
     * Tiered organization bumps it.
     */
    uint32_t backedgeCount = 0;
    /**
     * A tier-2 trace is anchored at this entry's tag. Evicting the
     * entry must invalidate the trace (tier/engine.hh keeps the two in
     * sync); a trace is only ever dispatched through a resident entry
     * whose flag is set.
     */
    bool anchorsTrace = false;
    /**
     * Machine cycle count when the entry was installed. Observability
     * only: eviction subtracts it from the current count to charge a
     * residency-lifetime histogram. Paths that insert without a cycle
     * source leave it 0 (their residency is then not meaningful).
     */
    uint64_t insertCycle = 0;
    /**
     * Content generation: bumped every time the entry's contents change
     * (reset runs on every insert, evict, flush and invalidate path, so
     * one increment here covers them all). Hosts that cache derived
     * state keyed by entry index — the fast dispatch path's lowered run
     * images and inline caches (uhm/run_image.hh) — compare their
     * recorded generation against this one and relower on mismatch.
     * Never cleared: a fresh generation must differ from every stale
     * copy. Simulated behavior and cycle accounting never read it.
     */
    uint32_t gen = 0;

    /** Return to the empty state (eviction). */
    void
    reset()
    {
        tag = 0;
        asid = 0;
        valid = false;
        units = 1;
        useCount = 0;
        backedgeCount = 0;
        anchorsTrace = false;
        insertCycle = 0;
        ++gen;
    }
};

} // namespace uhm

#endif // UHM_CORE_ENTRY_META_HH
