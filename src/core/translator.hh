/**
 * @file
 * The dynamic translator (section 4, Figure 4).
 *
 * "The dynamic translator fetches the DIR instruction, decodes and
 * parses it, generates the PSDER translation which it then stores in the
 * DTB at the selected location. ... since the mapping from DIR to PSDER
 * is almost one-to-one, the added complexity is not significant and is
 * easily masked by the number of times that the task of decoding and
 * parsing is avoided."
 *
 * The translator's binding persists over many executions of an
 * instruction — between the compiler's (whole run) and the
 * interpreter's (one execution) on the paper's persistence spectrum.
 */

#ifndef UHM_CORE_TRANSLATOR_HH
#define UHM_CORE_TRANSLATOR_HH

#include <cstdint>
#include <vector>

#include "dir/encoding.hh"
#include "psder/staging.hh"

namespace uhm
{

/** One translated DIR instruction. */
struct Translation
{
    /** The PSDER short-format sequence. */
    std::vector<ShortInstr> code;
    /** Decode work performed (feeds the paper's d on the miss path). */
    DecodeCost decodeCost;
    /** Encoded length of the DIR instruction in bits (fetch charge). */
    uint64_t bits = 0;
    /**
     * Generation steps: one per emitted short instruction (construct),
     * mirrored by one buffer-array store each when the translation is
     * written to the DTB. Together these feed the paper's g.
     */
    uint64_t genSteps = 0;
};

/** Translates DIR instructions to PSDER on DTB misses. */
class DynamicTranslator
{
  public:
    /** @param image the static representation (must outlive this). */
    explicit DynamicTranslator(const EncodedDir &image) : image_(&image) {}

    /** Translate the DIR instruction at @p dir_bit_addr. */
    Translation
    translate(uint64_t dir_bit_addr) const
    {
        DecodeResult res = image_->decodeAt(dir_bit_addr);
        Staging st = stageInstruction(res.instr, *image_, res.index);
        Translation tr;
        tr.code = lowerStaging(st);
        tr.decodeCost = res.cost;
        tr.bits = res.nextBitAddr - dir_bit_addr;
        tr.genSteps = tr.code.size();
        return tr;
    }

    const EncodedDir &image() const { return *image_; }

  private:
    const EncodedDir *image_;
};

} // namespace uhm

#endif // UHM_CORE_TRANSLATOR_HH
