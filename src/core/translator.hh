/**
 * @file
 * The dynamic translator (section 4, Figure 4).
 *
 * "The dynamic translator fetches the DIR instruction, decodes and
 * parses it, generates the PSDER translation which it then stores in the
 * DTB at the selected location. ... since the mapping from DIR to PSDER
 * is almost one-to-one, the added complexity is not significant and is
 * easily masked by the number of times that the task of decoding and
 * parsing is avoided."
 *
 * The translator's binding persists over many executions of an
 * instruction — between the compiler's (whole run) and the
 * interpreter's (one execution) on the paper's persistence spectrum.
 */

#ifndef UHM_CORE_TRANSLATOR_HH
#define UHM_CORE_TRANSLATOR_HH

#include <cstdint>
#include <vector>

#include "dir/encoding.hh"
#include "psder/staging.hh"

namespace uhm
{

/** One translated DIR instruction. */
struct Translation
{
    /** The PSDER short-format sequence. */
    std::vector<ShortInstr> code;
    /** Decode work performed (feeds the paper's d on the miss path). */
    DecodeCost decodeCost;
    /** Encoded length of the DIR instruction in bits (fetch charge). */
    uint64_t bits = 0;
    /**
     * Generation steps: one per emitted short instruction (construct),
     * mirrored by one buffer-array store each when the translation is
     * written to the DTB. Together these feed the paper's g.
     */
    uint64_t genSteps = 0;
};

/**
 * Memoizes decodeAt() results for one immutable image.
 *
 * The simulated machine re-decodes a DIR instruction on every
 * conventional fetch and every DTB miss — that re-decoding *cost* is
 * the paper's whole subject and is charged unchanged from the cached
 * DecodeResult. The host, however, only pays the bitstream walk once
 * per distinct pc; a memo hit replays the stored result. Slots are
 * indexed by instruction index, so the memo needs no invalidation: the
 * image is immutable and owns the pc -> index mapping.
 */
class DecodeMemo
{
  public:
    /** @param image the static representation (must outlive this). */
    explicit DecodeMemo(const EncodedDir &image)
        : image_(&image), valid_(image.numInstrs(), 0),
          results_(image.numInstrs())
    {}

    /** Decode the instruction at @p bit_addr, cached. */
    const DecodeResult &
    decodeAt(uint64_t bit_addr)
    {
        size_t idx = image_->indexOfBitAddr(bit_addr);
        if (!valid_[idx]) {
            results_[idx] = image_->decodeAt(bit_addr);
            valid_[idx] = 1;
            ++misses_;
        } else {
            ++hits_;
        }
        return results_[idx];
    }

    const EncodedDir &image() const { return *image_; }

    /** Memo hits (host-side replays) so far. */
    uint64_t hits() const { return hits_; }

    /** Memo misses (actual bitstream decodes) so far. */
    uint64_t misses() const { return misses_; }

  private:
    const EncodedDir *image_;
    std::vector<uint8_t> valid_;
    std::vector<DecodeResult> results_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Translates DIR instructions to PSDER on DTB misses. */
class DynamicTranslator
{
  public:
    /** @param image the static representation (must outlive this). */
    explicit DynamicTranslator(const EncodedDir &image)
        : image_(&image), valid_(image.numInstrs(), 0),
          memo_(image.numInstrs())
    {}

    /**
     * Translate the DIR instruction at @p dir_bit_addr.
     *
     * Memoized: a repeated DTB miss on a previously-seen pc replays the
     * cached translation instead of re-walking the bitstream and
     * re-lowering the staging. The cached Translation carries the same
     * decodeCost/bits/genSteps the cold path produced, so simulated
     * cycle accounting is identical on both paths.
     */
    const Translation &
    translate(uint64_t dir_bit_addr)
    {
        size_t idx = image_->indexOfBitAddr(dir_bit_addr);
        if (!valid_[idx]) {
            memo_[idx] = translateCold(dir_bit_addr);
            valid_[idx] = 1;
        } else {
            ++memoHits_;
        }
        return memo_[idx];
    }

    /** The unmemoized translation path (benchmarks, tests). */
    Translation
    translateCold(uint64_t dir_bit_addr) const
    {
        DecodeResult res = image_->decodeAt(dir_bit_addr);
        Staging st = stageInstruction(res.instr, *image_, res.index);
        Translation tr;
        tr.code = lowerStaging(st);
        tr.decodeCost = res.cost;
        tr.bits = res.nextBitAddr - dir_bit_addr;
        tr.genSteps = tr.code.size();
        return tr;
    }

    /** Translations replayed from the memo so far. */
    uint64_t memoHits() const { return memoHits_; }

    const EncodedDir &image() const { return *image_; }

  private:
    const EncodedDir *image_;
    std::vector<uint8_t> valid_;
    std::vector<Translation> memo_;
    uint64_t memoHits_ = 0;
};

} // namespace uhm

#endif // UHM_CORE_TRANSLATOR_HH
