/**
 * @file
 * The Dynamic Translation Buffer (section 5).
 *
 * The DTB maintains, in a tightly bound (PSDER) representation, the
 * working set of a program whose static representation is a compact
 * encoded DIR. Organizationally it follows Figure 2: an associative tag
 * array (DIR instruction addresses), an address array (explicit pointers
 * into the buffer array — kept explicit, as section 5.2 argues, so the
 * unit of allocation can vary per configuration), a replacement array
 * (per-set recency ordering) and the buffer array itself, which holds
 * the PSDER short-format instructions and lives in the machine's
 * directly addressable memory.
 *
 * Allocation follows section 5.1: a fixed unit of allocation, optionally
 * extended by "a variable allocation with fixed size increments" — when
 * a translation exceeds the unit, additional blocks are taken from a
 * secondary overflow area and linked to the primary unit. If the
 * overflow area is exhausted, the translation simply is not retained
 * (the program still runs; the entry is re-translated on next touch).
 */

#ifndef UHM_CORE_DTB_HH
#define UHM_CORE_DTB_HH

#include <cstdint>
#include <vector>

#include "core/entry_meta.hh"
#include "mem/replacement.hh"
#include "obs/counter.hh"
#include "obs/registry.hh"
#include "psder/short_isa.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace uhm
{

/** DTB geometry and policy. */
struct DtbConfig
{
    /** Buffer-array capacity in bytes. */
    uint64_t capacityBytes = 4096;
    /** Unit of allocation, in short instructions. */
    unsigned unitShortInstrs = 4;
    /** Associativity of the address array; 0 = fully associative. */
    unsigned assoc = 4;
    ReplPolicy policy = ReplPolicy::LRU;
    /**
     * Allow overflow blocks (section 5.1's variable allocation with
     * fixed increments). When false a translation longer than the unit
     * of allocation cannot be retained.
     */
    bool allowOverflow = true;
    /** Fraction of buffer units reserved as the overflow area. */
    double overflowFraction = 0.25;
    /** Seed for the Random replacement policy. */
    uint64_t seed = 7;
    /**
     * Partitioned set allocation for multi-tenant sharing: when >= 2,
     * the set space is divided into this many contiguous regions and a
     * tenant's accesses hash only within region asid % numPartitions —
     * tenants cannot evict each other, at the price of a smaller
     * effective buffer each. 0 or 1 leaves the whole set space shared
     * (tag-and-share interference, measurable by bench_multitenant).
     */
    uint64_t numPartitions = 0;
};

/** The dynamic translation buffer. */
class Dtb
{
  public:
    explicit Dtb(const DtbConfig &config);

    /** Result of presenting a DIR address to the associative array. */
    struct LookupResult
    {
        bool hit = false;
        /** The resident translation (hit only); valid until the next
         *  lookup/insert. */
        const std::vector<ShortInstr> *code = nullptr;
        /** Buffer-array units the resident entry occupies (hit only). */
        unsigned units = 0;
        /**
         * The entry's metadata block (hit only; valid until the next
         * insert). Mutable so the tier's hotness profiler can bump the
         * backedge counter it keeps there.
         */
        EntryMeta *meta = nullptr;
        /**
         * Index of the hit entry in the address array (hit only):
         * set * assoc + way. The fast dispatch path stores it in a
         * per-site inline cache and revalidates with icCheck().
         */
        uint32_t entryIdx = 0;
    };

    /**
     * Present @p dir_addr (a DIR bit address) to the DTB: hash to a set,
     * search the tags, update recency. Counts a hit or a miss.
     */
    LookupResult lookup(uint64_t dir_addr);

    /** What Dtb::insert did, for callers that trace or account. */
    struct InsertOutcome
    {
        /** The translation is now resident. */
        bool retained = false;
        /** A resident entry was destroyed to make room. */
        bool evicted = false;
        /** DIR tag of the destroyed entry (when evicted). */
        uint64_t victimTag = 0;
        /** Owner ASID of the destroyed entry (when evicted). */
        uint32_t victimAsid = 0;
        /** Buffer units the new translation needs. */
        unsigned unitsNeeded = 1;
        /** Cycles the victim was resident: now - insertCycle
         *  (when evicted and both stamps are meaningful). */
        uint64_t victimResidency = 0;
        /** Hits the victim collected while resident (when evicted). */
        uint32_t victimUses = 0;
        /** Valid ways in the target set before this insert. */
        unsigned setOccupancy = 0;
    };

    /**
     * Install the translation of @p dir_addr, replacing the set's
     * least-recently-used entry. Mirrors Figure 4: the replacement logic
     * picks the location, the tag is stored, and the translation is
     * written into the buffer array. Overflow increments are reserved
     * *before* the victim is evicted: when the overflow area (counting
     * the blocks the victim would release) cannot supply the needed
     * increments, the translation is rejected and the resident —
     * possibly hot — victim survives untouched.
     *
     * @p now is the caller's cycle count, stamped into the new entry's
     * EntryMeta::insertCycle so evictions can report residency
     * lifetimes. Callers without a cycle source pass 0 (the default);
     * residency figures are then 0 rather than wrong.
     */
    InsertOutcome insert(uint64_t dir_addr, std::vector<ShortInstr> code,
                         uint64_t now = 0);

    /** Invalidate every entry (e.g. program image replaced). */
    void invalidateAll();

    /**
     * Select the address space subsequent lookups, inserts and anchor
     * operations run in. Entries of other ASIDs stay resident (and, in
     * shared-set mode, remain eviction candidates) but never match.
     */
    void setAsid(uint32_t asid) { asid_ = asid; }

    /** The current address-space ID. */
    uint32_t asid() const { return asid_; }

    /** One entry destroyed by flush(), for residency/anchor accounting. */
    struct FlushedEntry
    {
        /** DIR tag of the flushed entry. */
        uint64_t tag = 0;
        /** Owner of the flushed entry. */
        uint32_t asid = 0;
        /** Cycles the entry was resident (now - insertCycle). */
        uint64_t residency = 0;
        /** Hits the entry collected while resident. */
        uint32_t uses = 0;
        /** The entry anchored a tier-2 trace that must be invalidated. */
        bool anchoredTrace = false;
    };

    /**
     * Destroy every resident entry — all ASIDs — through the same
     * release path eviction uses, and report each victim so the caller
     * can drain residency histograms and invalidate anchored traces
     * (the flush-on-switch path; a bare invalidateAll() would leave
     * dangling trace anchors). @p now is the caller's cycle count, as
     * for insert(). Counts one flush plus one flushed entry per victim;
     * capacity evictions are not inflated.
     */
    std::vector<FlushedEntry> flush(uint64_t now);

    /**
     * Residency (now - insertCycle) of every entry still resident, in
     * entry order — what a halt-time drain feeds the residency
     * histogram so never-evicted translations are observed too.
     * @p asid_filter restricts to one ASID; -1 means all. Read-only.
     */
    std::vector<uint64_t> residentResidencies(uint64_t now,
                                              int64_t asid_filter = -1)
        const;

    /**
     * Flag the resident entry for @p dir_addr as anchoring a tier-2
     * trace (see EntryMeta::anchorsTrace). Pure bookkeeping: no hit or
     * recency accounting. @return false when @p dir_addr is not
     * resident (the flag is then not set anywhere).
     */
    bool markTraceAnchor(uint64_t dir_addr);

    /** Clear the trace-anchor flag of @p dir_addr, if resident. */
    void clearTraceAnchor(uint64_t dir_addr);

    /** The set index @p dir_addr hashes to. */
    uint64_t setOf(uint64_t dir_addr) const;

    // ---- inline-cache fast-hit interface ---------------------------------
    //
    // A dispatch-loop call site that resolved @p dir_addr through
    // lookup() once may cache the returned entryIdx and on later visits
    // skip the hash and way scan: icCheck() revalidates the cached
    // index with zero accounting side effects, and hitAt() then applies
    // exactly the accounting the hit branch of lookup() would have
    // (recency touch, hit count, use count). Any entry replacement
    // invalidates the cached index naturally — the tag or ASID no
    // longer matches — and EntryMeta::gen invalidates derived state.

    /**
     * Would a lookup of @p dir_addr hit entry @p idx right now? Pure
     * predicate: no hit/miss counting, no recency update.
     */
    bool
    icCheck(uint32_t idx, uint64_t dir_addr) const
    {
        const Entry &e = entries_[idx];
        return e.meta.valid && e.meta.tag == dir_addr &&
            e.meta.asid == asid_;
    }

    /**
     * Entry index a lookup() of @p dir_addr would hit right now, or
     * UINT32_MAX on a miss. Pure probe: no hit/miss counting, no
     * recency update — the caller commits a hit with hitAt(), or lets
     * the regular miss path count the miss.
     */
    uint32_t
    probeIdx(uint64_t dir_addr) const
    {
        uint64_t set = setOf(dir_addr);
        const Entry *set_entries = &entries_[set * assoc_];
        for (unsigned way = 0; way < assoc_; ++way) {
            const Entry &e = set_entries[way];
            if (e.meta.valid && e.meta.tag == dir_addr &&
                e.meta.asid == asid_)
                return static_cast<uint32_t>(set * assoc_ + way);
        }
        return UINT32_MAX;
    }

    /**
     * Apply the hit-path accounting of lookup() to entry @p idx (which
     * the caller just validated with icCheck): recency touch, one hit,
     * one use. Byte-identical counter and replacement state to a full
     * lookup() that hit.
     */
    void
    hitAt(uint32_t idx)
    {
        repl_[idx / assoc_].touch(idx % assoc_);
        ++hits_;
        ++entries_[idx].meta.useCount;
    }

    /** Metadata block of entry @p idx (IC-validated callers only). */
    EntryMeta &metaAt(uint32_t idx) { return entries_[idx].meta; }
    const EntryMeta &
    metaAt(uint32_t idx) const
    {
        return entries_[idx].meta;
    }

    /** Resident translation of entry @p idx (IC-validated callers). */
    const std::vector<ShortInstr> &
    codeAt(uint32_t idx) const
    {
        return entries_[idx].code;
    }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }

    /** Hit ratio so far (the paper's h_D); 1.0 before any access. */
    double
    hitRatio() const
    {
        uint64_t total = hits_.value() + misses_.value();
        return total == 0 ? 1.0 :
            static_cast<double>(hits_.value()) /
            static_cast<double>(total);
    }

    /** Number of primary entries (address-array size). */
    uint64_t numEntries() const { return numEntries_; }

    /** Number of sets. */
    uint64_t numSets() const { return numSets_; }

    /** Ways per set. */
    unsigned assoc() const { return assoc_; }

    /**
     * Valid entries per set, numSets() elements in set order. A fresh
     * snapshot per call — meant for the interval sampler and tests, not
     * for the dispatch path.
     */
    std::vector<uint32_t> setOccupancy() const;

    /** Overflow blocks currently free. */
    uint64_t overflowFree() const { return overflowFree_; }

    /** Total overflow blocks. */
    uint64_t overflowTotal() const { return overflowTotal_; }

    /**
     * Legacy counter view: dtb_evictions, dtb_overflow_blocks,
     * dtb_rejects, dtb_inserts. Kept for existing benches and tests;
     * new code reads the same counters through registerCounters().
     */
    StatSet stats() const;

    uint64_t flushes() const { return flushes_.value(); }
    uint64_t flushedEntries() const { return flushedEntries_.value(); }

    /**
     * Publish this DTB's counters into @p registry under
     * "<prefix>.hits", "<prefix>.misses", "<prefix>.inserts",
     * "<prefix>.evictions", "<prefix>.rejects",
     * "<prefix>.overflow_blocks", "<prefix>.flushes",
     * "<prefix>.flushed_entries".
     */
    void registerCounters(obs::Registry &registry,
                          const std::string &prefix) const;

    const DtbConfig &config() const { return config_; }

    /**
     * Reset all counters AND the per-entry observability state (use
     * counts and insert-cycle stamps) so residency/use figures measured
     * after the reset carry nothing from the previous epoch. Resident
     * translations — and the behavioral state the tier reads
     * (backedge counters, anchor flags) — are retained.
     */
    void resetStats();

  private:
    struct Entry
    {
        /** Shared bookkeeping block (core/entry_meta.hh). */
        EntryMeta meta;
        /** The PSDER translation (primary unit + linked increments). */
        std::vector<ShortInstr> code;
    };

    /** Release @p entry's overflow increments and invalidate it. */
    void evict(Entry &entry);

    /** The resident entry tagged @p dir_addr, or null. No accounting. */
    Entry *findEntry(uint64_t dir_addr);

    DtbConfig config_;
    uint64_t numEntries_;
    uint64_t numSets_;
    unsigned assoc_;
    uint64_t overflowTotal_;
    uint64_t overflowFree_;
    /** Active partitions (0 or 1 = shared set space). */
    uint64_t numPartitions_;
    /** Sets per partition (numSets_ when unpartitioned). */
    uint64_t setsPerPartition_;
    /** Current address-space ID (0 for single-tenant machines). */
    uint32_t asid_ = 0;
    Rng rng_;
    /** entries_[set * assoc_ + way]. */
    std::vector<Entry> entries_;
    std::vector<ReplacementSet> repl_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter inserts_;
    obs::Counter evictions_;
    obs::Counter rejects_;
    /** Overflow increments handed out over the DTB's lifetime. */
    obs::Counter overflowBlocks_;
    /** Whole-buffer flushes (tenant switches in flush mode). */
    obs::Counter flushes_;
    /** Entries destroyed by flushes (distinct from evictions_). */
    obs::Counter flushedEntries_;
};

} // namespace uhm

#endif // UHM_CORE_DTB_HH
