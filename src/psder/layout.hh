/**
 * @file
 * The memory layout shared by the semantic routines and the machine.
 *
 * Word addresses. The level-1 region holds the display array and the
 * operand stack (and notionally the interpreter, the semantic routines
 * and the DTB buffer array, whose occupancy is accounted separately);
 * the level-2 region holds the program's data: globals, then the frame
 * stack.
 */

#ifndef UHM_PSDER_LAYOUT_HH
#define UHM_PSDER_LAYOUT_HH

#include <cstdint>

namespace uhm
{

/** Memory-map parameters of a machine instance. */
struct MachineLayout
{
    /** Base of the display array D[0..maxDepth] (level 1). */
    uint64_t dispBase = 16;
    /** Deepest supported contour depth. */
    uint64_t maxDepth = 24;
    /** Base of the operand stack (level 1). */
    uint64_t stackBase = 48;
    /** Operand stack capacity in words. */
    uint64_t stackWords = 2048;
    /** Size of the level-1 memory in words; level 2 starts here. */
    uint64_t level1Words = 4096;
    /** Return-address stack capacity (hardware stack in IU2). */
    uint64_t rasDepth = 1 << 16;

    /** Base of the globals region (start of level 2). */
    uint64_t globalsBase() const { return level1Words; }
};

} // namespace uhm

#endif // UHM_PSDER_LAYOUT_HH
