/**
 * @file
 * The short-format instruction set (IU2).
 *
 * Section 6.2: "the instruction set recognized by IU2 includes CALL,
 * PUSH and POP instructions ... The most important short format
 * instruction is the INTERP instruction which exercises the DTB." Short
 * instructions are what the dynamic translator emits into the DTB buffer
 * array; they steer control to the semantic routines and pass
 * parameters. "The limited capacity of the DTB constrains the dynamic
 * version of a DIR instruction to be as short as possible. Accordingly,
 * the instruction set for IU2 must be of a short, vertical format."
 */

#ifndef UHM_PSDER_SHORT_ISA_HH
#define UHM_PSDER_SHORT_ISA_HH

#include <cstdint>
#include <string>

namespace uhm
{

/** Short-format opcodes (two bits in a real implementation). */
enum class SOp : uint8_t
{
    PUSH,   ///< push onto the operand stack
    POP,    ///< pop from the operand stack into memory
    CALL,   ///< call a semantic routine (long-format code) via IU1
    INTERP, ///< present a DIR address to the DTB and transfer control
};

/**
 * Operand addressing flavors. "The short format instructions come in
 * different flavors to permit the operand specification to be immediate,
 * direct or indirect." INTERP additionally has the Stack flavor: "the
 * result may be left on the operand stack for use by the INTERP
 * instruction."
 */
enum class SMode : uint8_t
{
    Imm,      ///< operand is the value itself
    Direct,   ///< operand is a memory address; use mem[addr]
    Indirect, ///< operand is a memory address; use mem[mem[addr]]
    Stack,    ///< operand is popped from the operand stack (INTERP)
};

/** One short-format instruction. */
struct ShortInstr
{
    SOp op = SOp::INTERP;
    SMode mode = SMode::Imm;
    int64_t operand = 0;

    bool operator==(const ShortInstr &other) const = default;

    /** Human-readable rendering, e.g. "PUSH #5". */
    std::string toString() const;
};

/**
 * Nominal size of one short instruction in the buffer array, in bits.
 * Used for capacity accounting (the paper's S1 = 3 S2 sizing argument).
 */
constexpr unsigned shortInstrBits = 16;

/** Mnemonic of @p op. */
const char *shortOpName(SOp op);

} // namespace uhm

#endif // UHM_PSDER_SHORT_ISA_HH
