#include "psder/micro_isa.hh"

#include <sstream>

namespace uhm
{

const char *
microOpName(MOp op)
{
    switch (op) {
      case MOp::MOVI:    return "MOVI";
      case MOp::MOV:     return "MOV";
      case MOp::ADD:     return "ADD";
      case MOp::ADDI:    return "ADDI";
      case MOp::SUB:     return "SUB";
      case MOp::MUL:     return "MUL";
      case MOp::DIV:     return "DIV";
      case MOp::MOD:     return "MOD";
      case MOp::NEG:     return "NEG";
      case MOp::AND:     return "AND";
      case MOp::OR:      return "OR";
      case MOp::XOR:     return "XOR";
      case MOp::NOT:     return "NOT";
      case MOp::SHL:     return "SHL";
      case MOp::SHR:     return "SHR";
      case MOp::CMPEQ:   return "CMPEQ";
      case MOp::CMPNE:   return "CMPNE";
      case MOp::CMPLT:   return "CMPLT";
      case MOp::CMPLE:   return "CMPLE";
      case MOp::CMPGT:   return "CMPGT";
      case MOp::CMPGE:   return "CMPGE";
      case MOp::EXTRACT: return "EXTRACT";
      case MOp::LOAD:    return "LOAD";
      case MOp::STORE:   return "STORE";
      case MOp::SPUSH:   return "SPUSH";
      case MOp::SPOP:    return "SPOP";
      case MOp::RASPUSH: return "RASPUSH";
      case MOp::RASPOP:  return "RASPOP";
      case MOp::BR:      return "BR";
      case MOp::BRZ:     return "BRZ";
      case MOp::BRNZ:    return "BRNZ";
      case MOp::BRNEG:   return "BRNEG";
      case MOp::OUTP:    return "OUTP";
      case MOp::INP:     return "INP";
      case MOp::DONE:    return "DONE";
    }
    return "?";
}

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << microOpName(op) << " d=r" << int(dst) << " a=r" << int(srcA)
       << " b=r" << int(srcB) << " imm=" << imm;
    return os.str();
}

} // namespace uhm
