/**
 * @file
 * A small assembler for long-format micro-routines.
 *
 * Provides a fluent builder with symbolic labels and relative-branch
 * fixups so the semantic routines in routines.cc read like assembly
 * listings rather than hand-computed offsets.
 */

#ifndef UHM_PSDER_MICRO_ASM_HH
#define UHM_PSDER_MICRO_ASM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "psder/micro_isa.hh"

namespace uhm
{

/** Builder for one MicroRoutine. */
class MicroAsm
{
  public:
    /** An opaque label handle. */
    struct Label
    {
        size_t id;
    };

    explicit MicroAsm(std::string name) : name_(std::move(name)) {}

    // Register/immediate operations.
    MicroAsm &movi(uint8_t dst, int64_t imm);
    MicroAsm &mov(uint8_t dst, uint8_t src);
    MicroAsm &alu(MOp op, uint8_t dst, uint8_t a, uint8_t b);
    MicroAsm &addi(uint8_t dst, uint8_t a, int64_t imm);
    MicroAsm &neg(uint8_t dst, uint8_t a);
    MicroAsm &bnot(uint8_t dst, uint8_t a);

    // Memory and stacks.
    MicroAsm &load(uint8_t dst, uint8_t base, int64_t offset);
    MicroAsm &store(uint8_t base, int64_t offset, uint8_t src);
    MicroAsm &spush(uint8_t src);
    MicroAsm &spop(uint8_t dst);
    MicroAsm &raspush(uint8_t src);
    MicroAsm &raspop(uint8_t dst);

    // Control.
    Label newLabel();
    MicroAsm &bind(Label label);
    MicroAsm &br(Label label);
    MicroAsm &brz(uint8_t src, Label label);
    MicroAsm &brnz(uint8_t src, Label label);
    MicroAsm &brneg(uint8_t src, Label label);

    // I/O and termination.
    MicroAsm &outp(uint8_t src);
    MicroAsm &inp(uint8_t dst);
    MicroAsm &done();

    /** Resolve labels and produce the routine. */
    MicroRoutine finish();

  private:
    MicroAsm &emit(MicroOp op);

    std::string name_;
    std::vector<MicroOp> ops_;
    /** Bound position of each label; SIZE_MAX if unbound. */
    std::vector<size_t> labelPos_;
    /** (instruction index, label id) fixups. */
    std::vector<std::pair<size_t, size_t>> fixups_;
};

} // namespace uhm

#endif // UHM_PSDER_MICRO_ASM_HH
