#include "psder/micro_asm.hh"

#include "support/logging.hh"

namespace uhm
{

MicroAsm &
MicroAsm::emit(MicroOp op)
{
    ops_.push_back(op);
    return *this;
}

MicroAsm &
MicroAsm::movi(uint8_t dst, int64_t imm)
{
    return emit({MOp::MOVI, dst, 0, 0, imm});
}

MicroAsm &
MicroAsm::mov(uint8_t dst, uint8_t src)
{
    return emit({MOp::MOV, dst, src, 0, 0});
}

MicroAsm &
MicroAsm::alu(MOp op, uint8_t dst, uint8_t a, uint8_t b)
{
    return emit({op, dst, a, b, 0});
}

MicroAsm &
MicroAsm::addi(uint8_t dst, uint8_t a, int64_t imm)
{
    return emit({MOp::ADDI, dst, a, 0, imm});
}

MicroAsm &
MicroAsm::neg(uint8_t dst, uint8_t a)
{
    return emit({MOp::NEG, dst, a, 0, 0});
}

MicroAsm &
MicroAsm::bnot(uint8_t dst, uint8_t a)
{
    return emit({MOp::NOT, dst, a, 0, 0});
}

MicroAsm &
MicroAsm::load(uint8_t dst, uint8_t base, int64_t offset)
{
    return emit({MOp::LOAD, dst, base, 0, offset});
}

MicroAsm &
MicroAsm::store(uint8_t base, int64_t offset, uint8_t src)
{
    return emit({MOp::STORE, 0, base, src, offset});
}

MicroAsm &
MicroAsm::spush(uint8_t src)
{
    return emit({MOp::SPUSH, 0, src, 0, 0});
}

MicroAsm &
MicroAsm::spop(uint8_t dst)
{
    return emit({MOp::SPOP, dst, 0, 0, 0});
}

MicroAsm &
MicroAsm::raspush(uint8_t src)
{
    return emit({MOp::RASPUSH, 0, src, 0, 0});
}

MicroAsm &
MicroAsm::raspop(uint8_t dst)
{
    return emit({MOp::RASPOP, dst, 0, 0, 0});
}

MicroAsm::Label
MicroAsm::newLabel()
{
    labelPos_.push_back(SIZE_MAX);
    return {labelPos_.size() - 1};
}

MicroAsm &
MicroAsm::bind(Label label)
{
    uhm_assert(labelPos_[label.id] == SIZE_MAX, "label bound twice");
    labelPos_[label.id] = ops_.size();
    return *this;
}

MicroAsm &
MicroAsm::br(Label label)
{
    fixups_.emplace_back(ops_.size(), label.id);
    return emit({MOp::BR, 0, 0, 0, 0});
}

MicroAsm &
MicroAsm::brz(uint8_t src, Label label)
{
    fixups_.emplace_back(ops_.size(), label.id);
    return emit({MOp::BRZ, 0, src, 0, 0});
}

MicroAsm &
MicroAsm::brnz(uint8_t src, Label label)
{
    fixups_.emplace_back(ops_.size(), label.id);
    return emit({MOp::BRNZ, 0, src, 0, 0});
}

MicroAsm &
MicroAsm::brneg(uint8_t src, Label label)
{
    fixups_.emplace_back(ops_.size(), label.id);
    return emit({MOp::BRNEG, 0, src, 0, 0});
}

MicroAsm &
MicroAsm::outp(uint8_t src)
{
    return emit({MOp::OUTP, 0, src, 0, 0});
}

MicroAsm &
MicroAsm::inp(uint8_t dst)
{
    return emit({MOp::INP, dst, 0, 0, 0});
}

MicroAsm &
MicroAsm::done()
{
    return emit({MOp::DONE, 0, 0, 0, 0});
}

MicroRoutine
MicroAsm::finish()
{
    for (auto [at, label] : fixups_) {
        size_t target = labelPos_[label];
        uhm_assert(target != SIZE_MAX, "unbound label in routine '%s'",
                   name_.c_str());
        ops_[at].imm = static_cast<int64_t>(target) -
            (static_cast<int64_t>(at) + 1);
    }
    uhm_assert(!ops_.empty() && ops_.back().op == MOp::DONE,
               "routine '%s' must end with DONE", name_.c_str());
    MicroRoutine routine;
    routine.name = std::move(name_);
    routine.ops = std::move(ops_);
    return routine;
}

} // namespace uhm
