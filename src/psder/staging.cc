#include "psder/staging.hh"

#include "support/logging.hh"

namespace uhm
{

Staging
stageInstruction(const DirInstruction &instr, const EncodedDir &image,
                 size_t index)
{
    Staging st;
    st.routine = RoutineLibrary::routineId(instr.op);

    // Sequential successor (valid whenever the opcode falls through).
    auto fallthru = [&]() -> uint64_t {
        uhm_assert(index + 1 < image.numInstrs(),
                   "instruction %zu falls off the end", index);
        return image.bitAddrOf(index + 1);
    };
    auto target_addr = [&](int64_t target_index) -> uint64_t {
        return image.bitAddrOf(static_cast<size_t>(target_index));
    };

    switch (instr.op) {
      case Op::PUSHC:
        // The literal itself is staged; no semantic routine.
        st.pushes = {instr.operands[0]};
        st.routine = -1;
        st.nextImm = fallthru();
        return st;

      case Op::PUSHL:
      case Op::STOREL:
      case Op::ADDR:
        st.pushes = {instr.operands[0], instr.operands[1]};
        st.nextImm = fallthru();
        return st;

      case Op::ENTER:
      case Op::SETL:
      case Op::INCL:
        st.pushes = {instr.operands[0], instr.operands[1],
                     instr.operands[2]};
        st.nextImm = fallthru();
        return st;

      case Op::WRITEL:
        st.pushes = {instr.operands[0], instr.operands[1]};
        st.nextImm = fallthru();
        return st;

      case Op::PUSHL2:
        st.pushes = {instr.operands[0], instr.operands[1],
                     instr.operands[2], instr.operands[3]};
        st.nextImm = fallthru();
        return st;

      case Op::BRZL:
      case Op::BRNZL:
        st.pushes = {
            instr.operands[0], instr.operands[1],
            static_cast<int64_t>(target_addr(instr.operands[2])),
            static_cast<int64_t>(fallthru()),
        };
        st.next = NextKind::Stack;
        return st;

      case Op::SEMWORK:
        st.pushes = {instr.operands[0]};
        st.nextImm = fallthru();
        return st;

      case Op::JMP:
        st.routine = -1;
        st.nextImm = target_addr(instr.operands[0]);
        return st;

      case Op::JZ:
      case Op::JNZ:
        st.pushes = {
            static_cast<int64_t>(target_addr(instr.operands[0])),
            static_cast<int64_t>(fallthru()),
        };
        st.next = NextKind::Stack;
        return st;

      case Op::CALLP: {
        const Contour &callee =
            image.program().procContour(
                static_cast<size_t>(instr.operands[0]));
        st.pushes = {
            static_cast<int64_t>(image.bitAddrOf(callee.entry)),
            static_cast<int64_t>(fallthru()),
        };
        st.next = NextKind::Stack;
        return st;
      }

      case Op::RET:
        st.pushes = {instr.operands[0], instr.operands[1]};
        st.next = NextKind::Stack;
        return st;

      case Op::HALT:
        st.routine = -1;
        st.next = NextKind::Halt;
        return st;

      case Op::NOP:
        st.routine = -1;
        st.nextImm = fallthru();
        return st;

      default:
        // All remaining opcodes: pure semantic routine, sequential
        // successor, no staged values.
        st.nextImm = fallthru();
        return st;
    }
}

std::vector<ShortInstr>
lowerStaging(const Staging &staging)
{
    std::vector<ShortInstr> seq;
    seq.reserve(staging.pushes.size() + 2);
    for (int64_t v : staging.pushes)
        seq.push_back({SOp::PUSH, SMode::Imm, v});
    if (staging.routine >= 0)
        seq.push_back({SOp::CALL, SMode::Imm, staging.routine});
    switch (staging.next) {
      case NextKind::Imm:
        seq.push_back({SOp::INTERP, SMode::Imm,
                       static_cast<int64_t>(staging.nextImm)});
        break;
      case NextKind::Stack:
        seq.push_back({SOp::INTERP, SMode::Stack, 0});
        break;
      case NextKind::Halt:
        seq.push_back({SOp::INTERP, SMode::Imm,
                       static_cast<int64_t>(haltBitAddr)});
        break;
    }
    return seq;
}

} // namespace uhm
