/**
 * @file
 * Staging: the canonical lowering of one DIR instruction.
 *
 * Section 3.2 describes a DIR instruction as a surrogate for "a sequence
 * of procedure calls along with their arguments". Staging makes that
 * sequence explicit: for a decoded DIR instruction it yields
 *
 *   - the immediate values to push (the arguments of the calls — operand
 *     coordinates, literals, successor bit-addresses),
 *   - the semantic routine to CALL (if the opcode has one), and
 *   - how the successor DIR instruction is chosen (a known immediate
 *     address, an address left on the operand stack, or machine halt).
 *
 * The conventional interpreter performs the staging actions directly
 * after decoding each instruction; the dynamic translator lowers the
 * same staging into PSDER short-format instructions stored in the DTB.
 * Because both run the identical semantic routines over identical staged
 * values, the two execution paths are behaviorally indistinguishable —
 * the property the DTB design depends on.
 */

#ifndef UHM_PSDER_STAGING_HH
#define UHM_PSDER_STAGING_HH

#include <cstdint>
#include <vector>

#include "dir/encoding.hh"
#include "psder/routines.hh"
#include "psder/short_isa.hh"

namespace uhm
{

/** How control proceeds after one DIR instruction. */
enum class NextKind : uint8_t
{
    Imm,   ///< successor bit-address known statically
    Stack, ///< successor bit-address left on the operand stack
    Halt,  ///< program ends
};

/** The canonical lowering of one DIR instruction. */
struct Staging
{
    /** Values to push, in order. */
    std::vector<int64_t> pushes;
    /** Semantic routine id, or -1 when the opcode has none. */
    int64_t routine = -1;
    NextKind next = NextKind::Imm;
    /** Successor bit-address (next == Imm only). */
    uint64_t nextImm = 0;
};

/**
 * Compute the staging of instruction @p index of @p image, already
 * decoded as @p instr. Successor and branch-target operands are resolved
 * to bit addresses in the image.
 */
Staging stageInstruction(const DirInstruction &instr,
                         const EncodedDir &image, size_t index);

/**
 * Lower a staging to PSDER short-format instructions (what the dynamic
 * translator stores in the DTB). The sequence is
 * PUSH#* [CALL] INTERP — the paper's s1 short fetches per DIR
 * instruction. A Halt successor is encoded as INTERP #haltAddr with the
 * distinguished address below.
 */
std::vector<ShortInstr> lowerStaging(const Staging &staging);

/** Distinguished DIR address meaning "halt" in INTERP operands. */
constexpr uint64_t haltBitAddr = ~0ull;

} // namespace uhm

#endif // UHM_PSDER_STAGING_HH
