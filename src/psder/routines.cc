#include "psder/routines.hh"

#include "psder/micro_asm.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

/**
 * Binary and comparison opcodes: pop rhs, pop lhs, compute, push.
 */
MicroRoutine
binaryRoutine(const char *name, MOp mop)
{
    MicroAsm a(name);
    a.spop(2)                 // rhs
     .spop(1)                 // lhs
     .alu(mop, 3, 1, 2)
     .spush(3)
     .done();
    return a.finish();
}

} // anonymous namespace

RoutineLibrary::RoutineLibrary(const MachineLayout &layout)
{
    routines_.resize(numOps);
    const int64_t disp = static_cast<int64_t>(layout.dispBase);

    auto set = [&](Op op, MicroRoutine routine) {
        routines_[static_cast<size_t>(op)] = std::move(routine);
    };

    // PUSHC: the immediate is already staged on the stack; nothing to do.
    // NOP, JMP, HALT likewise have no semantic action (control is handled
    // by the INTERP path / dispatch loop).

    {
        // PUSHL: staged (depth, slot); push the variable's value.
        MicroAsm a("pushl");
        a.spop(2)             // slot
         .spop(1)             // depth
         .load(3, 1, disp)    // r3 = D[depth]          (display, level 1)
         .alu(MOp::ADD, 4, 3, 2)
         .load(5, 4, 0)       // r5 = mem[D[depth]+slot] (data, level 2)
         .spush(5)
         .done();
        set(Op::PUSHL, a.finish());
    }
    {
        // STOREL: staged (depth, slot) above the value to store.
        MicroAsm a("storel");
        a.spop(2)             // slot
         .spop(1)             // depth
         .spop(3)             // value
         .load(4, 1, disp)
         .alu(MOp::ADD, 5, 4, 2)
         .store(5, 0, 3)
         .done();
        set(Op::STOREL, a.finish());
    }
    {
        // ADDR: staged (depth, slot); push the variable's address.
        MicroAsm a("addr");
        a.spop(2)
         .spop(1)
         .load(3, 1, disp)
         .alu(MOp::ADD, 4, 3, 2)
         .spush(4)
         .done();
        set(Op::ADDR, a.finish());
    }
    {
        // LOADI: pop address, push mem[address].
        MicroAsm a("loadi");
        a.spop(1)
         .load(2, 1, 0)
         .spush(2)
         .done();
        set(Op::LOADI, a.finish());
    }
    {
        // STOREI: pop address, pop value, store.
        MicroAsm a("storei");
        a.spop(1)             // address
         .spop(2)             // value
         .store(1, 0, 2)
         .done();
        set(Op::STOREI, a.finish());
    }
    {
        MicroAsm a("dup");
        a.spop(1).spush(1).spush(1).done();
        set(Op::DUP, a.finish());
    }
    {
        MicroAsm a("drop");
        a.spop(1).done();
        set(Op::DROP, a.finish());
    }
    {
        MicroAsm a("swap");
        a.spop(1).spop(2).spush(1).spush(2).done();
        set(Op::SWAP, a.finish());
    }

    set(Op::ADD, binaryRoutine("add", MOp::ADD));
    set(Op::SUB, binaryRoutine("sub", MOp::SUB));
    set(Op::MUL, binaryRoutine("mul", MOp::MUL));
    set(Op::DIV, binaryRoutine("div", MOp::DIV));
    set(Op::MOD, binaryRoutine("mod", MOp::MOD));
    set(Op::AND, binaryRoutine("and", MOp::AND));
    set(Op::OR,  binaryRoutine("or", MOp::OR));
    set(Op::XOR, binaryRoutine("xor", MOp::XOR));
    set(Op::SHL, binaryRoutine("shl", MOp::SHL));
    set(Op::SHR, binaryRoutine("shr", MOp::SHR));
    set(Op::EQ,  binaryRoutine("eq", MOp::CMPEQ));
    set(Op::NE,  binaryRoutine("ne", MOp::CMPNE));
    set(Op::LT,  binaryRoutine("lt", MOp::CMPLT));
    set(Op::LE,  binaryRoutine("le", MOp::CMPLE));
    set(Op::GT,  binaryRoutine("gt", MOp::CMPGT));
    set(Op::GE,  binaryRoutine("ge", MOp::CMPGE));

    {
        MicroAsm a("neg");
        a.spop(1).neg(2, 1).spush(2).done();
        set(Op::NEG, a.finish());
    }
    {
        MicroAsm a("not");
        a.spop(1).bnot(2, 1).spush(2).done();
        set(Op::NOT, a.finish());
    }

    {
        // JZ: staged (target, fallthru) above the condition. Pushes the
        // chosen successor's DIR bit-address for INTERP-stack.
        MicroAsm a("jz");
        auto take = a.newLabel();
        auto end = a.newLabel();
        a.spop(2)             // fallthru
         .spop(1)             // target
         .spop(3)             // condition
         .brz(3, take)
         .spush(2)
         .br(end)
         .bind(take)
         .spush(1)
         .bind(end)
         .done();
        set(Op::JZ, a.finish());
    }
    {
        MicroAsm a("jnz");
        auto take = a.newLabel();
        auto end = a.newLabel();
        a.spop(2)
         .spop(1)
         .spop(3)
         .brnz(3, take)
         .spush(2)
         .br(end)
         .bind(take)
         .spush(1)
         .bind(end)
         .done();
        set(Op::JNZ, a.finish());
    }
    {
        // CALLP: staged (entry, return) above the arguments. Saves the
        // return address on the RAS and leaves the entry address on the
        // stack for INTERP-stack; the arguments stay put for ENTER.
        MicroAsm a("callp");
        a.spop(1)             // return bit-address
         .raspush(1)
         .done();
        set(Op::CALLP, a.finish());
    }
    {
        // ENTER: staged (depth, nlocals, nparams).
        //   frame save:  mem[FSP] = D[depth]; D[depth] = FSP + 1;
        //                FSP += nlocals + 1
        //   parameters:  pop nparams values into slots nparams-1 .. 0
        MicroAsm a("enter");
        auto loop = a.newLabel();
        auto end = a.newLabel();
        a.spop(3)                       // nparams
         .spop(2)                       // nlocals
         .spop(1)                       // depth
         .load(4, 1, disp)              // r4 = old D[depth]
         .store(regFsp, 0, 4)           // mem[FSP] = old D[depth]
         .addi(5, regFsp, 1)            // r5 = frame base
         .store(1, disp, 5)             // D[depth] = frame base
         .alu(MOp::ADD, regFsp, regFsp, 2)
         .addi(regFsp, regFsp, 1)       // FSP += nlocals + 1
         .bind(loop)
         .brz(3, end)
         .addi(3, 3, -1)                // next parameter slot
         .spop(6)
         .alu(MOp::ADD, 7, 5, 3)
         .store(7, 0, 6)                // frame[slot] = argument
         .br(loop)
         .bind(end)
         .done();
        set(Op::ENTER, a.finish());
    }
    {
        // RET: staged (depth, nlocals) above an optional return value.
        //   FSP -= nlocals + 1; D[depth] = mem[FSP];
        //   push RAS-popped return address for INTERP-stack
        MicroAsm a("ret");
        a.spop(2)                       // nlocals
         .spop(1)                       // depth
         .alu(MOp::SUB, regFsp, regFsp, 2)
         .addi(regFsp, regFsp, -1)
         .load(3, regFsp, 0)            // saved D[depth]
         .store(1, disp, 3)
         .raspop(4)
         .spush(4)
         .done();
        set(Op::RET, a.finish());
    }
    {
        MicroAsm a("read");
        a.inp(1).spush(1).done();
        set(Op::READ, a.finish());
    }
    {
        MicroAsm a("write");
        a.spop(1).outp(1).done();
        set(Op::WRITE, a.finish());
    }
    {
        // SETL: staged (depth, slot, imm): var := imm.
        MicroAsm a("setl");
        a.spop(3)             // imm
         .spop(2)             // slot
         .spop(1)             // depth
         .load(4, 1, disp)
         .alu(MOp::ADD, 5, 4, 2)
         .store(5, 0, 3)
         .done();
        set(Op::SETL, a.finish());
    }
    {
        // INCL: staged (depth, slot, imm): var := var + imm.
        MicroAsm a("incl");
        a.spop(3)
         .spop(2)
         .spop(1)
         .load(4, 1, disp)
         .alu(MOp::ADD, 5, 4, 2)
         .load(6, 5, 0)
         .alu(MOp::ADD, 6, 6, 3)
         .store(5, 0, 6)
         .done();
        set(Op::INCL, a.finish());
    }
    {
        // WRITEL: staged (depth, slot): write var.
        MicroAsm a("writel");
        a.spop(2)
         .spop(1)
         .load(3, 1, disp)
         .alu(MOp::ADD, 4, 3, 2)
         .load(5, 4, 0)
         .outp(5)
         .done();
        set(Op::WRITEL, a.finish());
    }
    {
        // PUSHL2: staged (d1, s1, d2, s2): push var1 then var2.
        MicroAsm a("pushl2");
        a.spop(4)             // s2
         .spop(3)             // d2
         .spop(2)             // s1
         .spop(1)             // d1
         .load(5, 1, disp)
         .alu(MOp::ADD, 6, 5, 2)
         .load(7, 6, 0)       // var1
         .load(5, 3, disp)
         .alu(MOp::ADD, 6, 5, 4)
         .load(8, 6, 0)       // var2
         .spush(7)
         .spush(8)
         .done();
        set(Op::PUSHL2, a.finish());
    }
    {
        // BRZL: staged (depth, slot, target, fallthru): branch on var.
        MicroAsm a("brzl");
        auto take = a.newLabel();
        auto end = a.newLabel();
        a.spop(4)             // fallthru
         .spop(3)             // target
         .spop(2)             // slot
         .spop(1)             // depth
         .load(5, 1, disp)
         .alu(MOp::ADD, 6, 5, 2)
         .load(7, 6, 0)       // var
         .brz(7, take)
         .spush(4)
         .br(end)
         .bind(take)
         .spush(3)
         .bind(end)
         .done();
        set(Op::BRZL, a.finish());
    }
    {
        MicroAsm a("brnzl");
        auto take = a.newLabel();
        auto end = a.newLabel();
        a.spop(4)
         .spop(3)
         .spop(2)
         .spop(1)
         .load(5, 1, disp)
         .alu(MOp::ADD, 6, 5, 2)
         .load(7, 6, 0)
         .brnz(7, take)
         .spush(4)
         .br(end)
         .bind(take)
         .spush(3)
         .bind(end)
         .done();
        set(Op::BRNZL, a.finish());
    }
    {
        // SEMWORK: staged (count); spin for 'count' iterations. This is
        // the tunable-x knob of the synthetic workloads.
        MicroAsm a("semwork");
        auto loop = a.newLabel();
        auto end = a.newLabel();
        a.spop(1)
         .bind(loop)
         .brz(1, end)
         .brneg(1, end)
         .addi(1, 1, -1)
         .br(loop)
         .bind(end)
         .done();
        set(Op::SEMWORK, a.finish());
    }
}

size_t
RoutineLibrary::totalSizeWords() const
{
    size_t words = 0;
    for (const MicroRoutine &routine : routines_)
        words += routine.sizeWords();
    return words;
}

} // namespace uhm
