/**
 * @file
 * The semantic-routine library.
 *
 * One long-format micro-routine per DIR opcode, expressing the opcode's
 * semantics over the machine state (operand stack, display, frame stack,
 * data memory). Both the conventional interpreter and the DTB machine's
 * PSDER translations call these same routines, so program outputs are
 * bit-identical across machine configurations by construction and x (the
 * time spent performing DIR semantics) is identical across them — the
 * paper lumps x into all three of T1, T2 and T3 for exactly this reason.
 *
 * Calling convention: an opcode's statically known fields (depth, slot,
 * immediate, target bit-addresses, ...) are pushed onto the operand stack
 * before the routine runs — by IU2 PUSH-immediate short instructions in
 * the DTB machine, or by the interpreter loop in the conventional one
 * (see staging.hh). The routine pops them in reverse order, below which
 * it finds its dynamic operands.
 */

#ifndef UHM_PSDER_ROUTINES_HH
#define UHM_PSDER_ROUTINES_HH

#include <vector>

#include "dir/isa.hh"
#include "psder/layout.hh"
#include "psder/micro_isa.hh"

namespace uhm
{

/** The library: routines indexed by DIR opcode. */
class RoutineLibrary
{
  public:
    /** Build all routines against @p layout. */
    explicit RoutineLibrary(const MachineLayout &layout);

    /** The routine for @p op (may be empty: no semantic action). */
    const MicroRoutine &
    routine(Op op) const
    {
        return routines_[static_cast<size_t>(op)];
    }

    /** Routine id used in CALL short instructions. */
    static int64_t
    routineId(Op op)
    {
        return static_cast<int64_t>(op);
    }

    /** The routine with id @p id. */
    const MicroRoutine &
    byId(int64_t id) const
    {
        return routines_.at(static_cast<size_t>(id));
    }

    /** True if @p op has a non-empty semantic routine. */
    bool
    hasRoutine(Op op) const
    {
        return !routine(op).empty();
    }

    /**
     * Total level-1 footprint of the library in words — part of the
     * "interpreter + semantic routines must fit into the faster level"
     * budget of section 3.3 / Figure 1.
     */
    size_t totalSizeWords() const;

  private:
    std::vector<MicroRoutine> routines_;
};

} // namespace uhm

#endif // UHM_PSDER_ROUTINES_HH
