#include "psder/short_isa.hh"

#include <sstream>

namespace uhm
{

const char *
shortOpName(SOp op)
{
    switch (op) {
      case SOp::PUSH:   return "PUSH";
      case SOp::POP:    return "POP";
      case SOp::CALL:   return "CALL";
      case SOp::INTERP: return "INTERP";
    }
    return "?";
}

std::string
ShortInstr::toString() const
{
    std::ostringstream os;
    os << shortOpName(op);
    switch (mode) {
      case SMode::Imm:      os << " #" << operand; break;
      case SMode::Direct:   os << " @" << operand; break;
      case SMode::Indirect: os << " @@" << operand; break;
      case SMode::Stack:    os << " (stack)"; break;
    }
    return os.str();
}

} // namespace uhm
