/**
 * @file
 * The long-format (micro) instruction set executed by IU1.
 *
 * Section 6.1 lists the properties a universal host needs: primitive
 * operations from which arbitrary functions may be synthesized, powerful
 * shift/mask/extract instructions, table look-up support, and memory
 * viewable at fine resolution. This micro-ISA provides exactly that; the
 * semantic routines of the DIR are written in it (see routines.cc), so
 * the paper's parameter x — time spent in the semantic routines — is a
 * measured quantity, not an assumption.
 *
 * Conventions:
 *  - 16 general registers r0..r15; r14 is the frame-stack pointer (FSP)
 *    preserved across routines, everything else is scratch.
 *  - one micro-instruction costs one level-1 cycle (the paper's "one
 *    machine instruction execution time" = tau1); LOAD/STORE additionally
 *    charge the level of the data address; SPUSH/SPOP charge the operand
 *    stack's level-1 home.
 *  - branches are relative: the imm field is the signed distance from
 *    the following instruction.
 */

#ifndef UHM_PSDER_MICRO_ISA_HH
#define UHM_PSDER_MICRO_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uhm
{

/** Register index of the frame-stack pointer. */
constexpr uint8_t regFsp = 14;

/** Number of general registers. */
constexpr unsigned numMicroRegs = 16;

/** Micro opcodes. */
enum class MOp : uint8_t
{
    MOVI,    ///< dst <- imm
    MOV,     ///< dst <- rA
    ADD,     ///< dst <- rA + rB
    ADDI,    ///< dst <- rA + imm
    SUB,     ///< dst <- rA - rB
    MUL,     ///< dst <- rA * rB
    DIV,     ///< dst <- rA / rB (rB == 0 is a run-time fatal)
    MOD,     ///< dst <- rA % rB (rB == 0 is a run-time fatal)
    NEG,     ///< dst <- -rA
    AND,     ///< dst <- rA & rB
    OR,      ///< dst <- rA | rB
    XOR,     ///< dst <- rA ^ rB
    NOT,     ///< dst <- ~rA
    SHL,     ///< dst <- rA << (rB & 63)
    SHR,     ///< dst <- rA >> (rB & 63), arithmetic
    CMPEQ,   ///< dst <- rA == rB
    CMPNE,   ///< dst <- rA != rB
    CMPLT,   ///< dst <- rA <  rB
    CMPLE,   ///< dst <- rA <= rB
    CMPGT,   ///< dst <- rA >  rB
    CMPGE,   ///< dst <- rA >= rB
    EXTRACT, ///< dst <- (rA >> (imm & 63)) & ((1 << (imm >> 6)) - 1)
    LOAD,    ///< dst <- mem[rA + imm]
    STORE,   ///< mem[rA + imm] <- rB
    SPUSH,   ///< operand-stack push rA
    SPOP,    ///< dst <- operand-stack pop
    RASPUSH, ///< return-address-stack push rA
    RASPOP,  ///< dst <- return-address-stack pop
    BR,      ///< pc += imm
    BRZ,     ///< if rA == 0: pc += imm
    BRNZ,    ///< if rA != 0: pc += imm
    BRNEG,   ///< if rA <  0: pc += imm
    OUTP,    ///< append rA to the output stream
    INP,     ///< dst <- next input value (0 when exhausted)
    DONE,    ///< end of routine; return to IU2 / dispatch loop
};

/** One long-format micro-instruction. */
struct MicroOp
{
    MOp op = MOp::DONE;
    uint8_t dst = 0;
    uint8_t srcA = 0;
    uint8_t srcB = 0;
    int64_t imm = 0;

    /** Human-readable rendering. */
    std::string toString() const;
};

/** Mnemonic of @p op. */
const char *microOpName(MOp op);

/** A named sequence of micro-instructions (a semantic routine). */
struct MicroRoutine
{
    std::string name;
    std::vector<MicroOp> ops;

    bool empty() const { return ops.empty(); }
    /** Level-1 footprint in words (one word per micro-instruction). */
    size_t sizeWords() const { return ops.size(); }
};

} // namespace uhm

#endif // UHM_PSDER_MICRO_ISA_HH
