#include "mem/replacement.hh"

#include <algorithm>
#include <numeric>

namespace uhm
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:    return "lru";
      case ReplPolicy::FIFO:   return "fifo";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

ReplacementSet::ReplacementSet(unsigned ways, ReplPolicy policy, Rng *rng)
    : ways_(ways), packed_(ways <= 8), policy_(policy), rng_(rng)
{
    uhm_assert(ways >= 1, "a set needs at least one way");
    uhm_assert(policy != ReplPolicy::Random || rng,
               "random policy needs an rng");
    if (packed_) {
        order64_ = ~0ull;
        for (unsigned w = 0; w < ways; ++w) {
            order64_ &= ~(0xffull << (8 * w));
            order64_ |= static_cast<uint64_t>(w) << (8 * w);
        }
    } else {
        order_.resize(ways);
        std::iota(order_.begin(), order_.end(), 0);
    }
}

unsigned
ReplacementSet::victim()
{
    if (policy_ == ReplPolicy::Random)
        return static_cast<unsigned>(rng_->below(ways_));
    if (packed_)
        return static_cast<unsigned>(order64_ & 0xff);
    return order_.front();
}

void
ReplacementSet::touchSlow(unsigned way)
{
    auto it = std::find(order_.begin(), order_.end(), way);
    uhm_assert(it != order_.end(), "unknown way %u", way);
    order_.erase(it);
    order_.push_back(way);
}

void
ReplacementSet::fill(unsigned way)
{
    if (policy_ == ReplPolicy::Random)
        return;
    if (packed_) {
        unsigned mru = 8 * (ways_ - 1);
        if (((order64_ >> mru) & 0xff) == way)
            return; // already most recently used
        order64_ = packedRemove(way);
        order64_ = (order64_ & ~(0xffull << mru)) |
            (static_cast<uint64_t>(way) << mru);
        return;
    }
    auto it = std::find(order_.begin(), order_.end(), way);
    uhm_assert(it != order_.end(), "unknown way %u", way);
    order_.erase(it);
    order_.push_back(way);
}

} // namespace uhm
