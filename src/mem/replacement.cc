#include "mem/replacement.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"

namespace uhm
{

const char *
replPolicyName(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::LRU:    return "lru";
      case ReplPolicy::FIFO:   return "fifo";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

ReplacementSet::ReplacementSet(unsigned ways, ReplPolicy policy, Rng *rng)
    : policy_(policy), rng_(rng)
{
    uhm_assert(ways >= 1, "a set needs at least one way");
    uhm_assert(policy != ReplPolicy::Random || rng,
               "random policy needs an rng");
    order_.resize(ways);
    std::iota(order_.begin(), order_.end(), 0);
}

unsigned
ReplacementSet::victim()
{
    if (policy_ == ReplPolicy::Random)
        return static_cast<unsigned>(rng_->below(order_.size()));
    return order_.front();
}

void
ReplacementSet::touch(unsigned way)
{
    if (policy_ != ReplPolicy::LRU)
        return; // FIFO and Random ignore hits.
    auto it = std::find(order_.begin(), order_.end(), way);
    uhm_assert(it != order_.end(), "unknown way %u", way);
    order_.erase(it);
    order_.push_back(way);
}

void
ReplacementSet::fill(unsigned way)
{
    if (policy_ == ReplPolicy::Random)
        return;
    auto it = std::find(order_.begin(), order_.end(), way);
    uhm_assert(it != order_.end(), "unknown way %u", way);
    order_.erase(it);
    order_.push_back(way);
}

} // namespace uhm
