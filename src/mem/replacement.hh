/**
 * @file
 * Replacement policies for set-associative structures.
 *
 * The paper's DTB keeps a "replacement array" that "keeps track of the
 * ordering of each set by recency of use" (section 5.2) — i.e. per-set
 * LRU. ReplacementSet implements that, plus FIFO and random policies for
 * the ablation benches.
 *
 * For the common narrow sets (<= 8 ways) the recency order lives in one
 * packed uint64 — byte 0 is the next victim, the highest used byte the
 * most recently used way — so the per-hit reorder on the fast dispatch
 * loops is a handful of register shifts instead of a vector shuffle.
 * Wider (e.g. fully associative) sets fall back to a vector. Both
 * representations produce the identical ordering sequence.
 */

#ifndef UHM_MEM_REPLACEMENT_HH
#define UHM_MEM_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"

namespace uhm
{

/** Replacement policy selector. */
enum class ReplPolicy : uint8_t
{
    LRU,
    FIFO,
    Random,
};

/** Printable policy name. */
const char *replPolicyName(ReplPolicy policy);

/** Recency/insertion bookkeeping for the ways of one set. */
class ReplacementSet
{
  public:
    /**
     * @param ways number of ways in the set
     * @param policy replacement policy
     * @param rng generator for the Random policy (may be null otherwise)
     */
    ReplacementSet(unsigned ways, ReplPolicy policy, Rng *rng);

    /** The way to evict next. */
    unsigned victim();

    /**
     * Record a use of @p way (hit). Inline: this sits on the per-step
     * hot path of the fast dispatch loops, where the
     * already-most-recently-used case dominates.
     */
    void
    touch(unsigned way)
    {
        if (policy_ != ReplPolicy::LRU)
            return; // FIFO and Random ignore hits.
        if (packed_) {
            unsigned mru = 8 * (ways_ - 1);
            if (((order64_ >> mru) & 0xff) == way)
                return; // already most recently used
            order64_ = packedRemove(way);
            order64_ = (order64_ & ~(0xffull << mru)) |
                (static_cast<uint64_t>(way) << mru);
            return;
        }
        if (order_.back() == way)
            return;
        touchSlow(way);
    }

    /** Record installation of fresh contents into @p way. */
    void fill(unsigned way);

  private:
    /** LRU reorder for a hit on a way that is not already MRU. */
    void touchSlow(unsigned way);

    /**
     * order64_ with @p way's byte removed and the bytes above it
     * shifted down one position; the vacated top is left for the
     * caller to fill. Unused high bytes hold 0xff (never a way id).
     */
    uint64_t
    packedRemove(unsigned way) const
    {
        // Locate way's byte with the zero-byte trick.
        uint64_t x = order64_ ^ (0x0101010101010101ull * way);
        uint64_t m = (x - 0x0101010101010101ull) & ~x &
            0x8080808080808080ull;
        uhm_assert(m != 0, "unknown way %u", way);
        unsigned p = static_cast<unsigned>(__builtin_ctzll(m)) >> 3;
        uint64_t low = order64_ & ((1ull << (8 * p)) - 1);
        uint64_t high = p == 7 ? 0 : order64_ >> (8 * (p + 1));
        return low | (high << (8 * p)) | (0xffull << 56);
    }

    /** order_[0] / byte 0 is the next victim; back/top is MRU. */
    std::vector<unsigned> order_;
    uint64_t order64_ = 0;
    unsigned ways_;
    bool packed_;
    ReplPolicy policy_;
    Rng *rng_;
};

} // namespace uhm

#endif // UHM_MEM_REPLACEMENT_HH
