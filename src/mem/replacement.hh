/**
 * @file
 * Replacement policies for set-associative structures.
 *
 * The paper's DTB keeps a "replacement array" that "keeps track of the
 * ordering of each set by recency of use" (section 5.2) — i.e. per-set
 * LRU. ReplacementSet implements that, plus FIFO and random policies for
 * the ablation benches.
 */

#ifndef UHM_MEM_REPLACEMENT_HH
#define UHM_MEM_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace uhm
{

/** Replacement policy selector. */
enum class ReplPolicy : uint8_t
{
    LRU,
    FIFO,
    Random,
};

/** Printable policy name. */
const char *replPolicyName(ReplPolicy policy);

/** Recency/insertion bookkeeping for the ways of one set. */
class ReplacementSet
{
  public:
    /**
     * @param ways number of ways in the set
     * @param policy replacement policy
     * @param rng generator for the Random policy (may be null otherwise)
     */
    ReplacementSet(unsigned ways, ReplPolicy policy, Rng *rng);

    /** The way to evict next. */
    unsigned victim();

    /** Record a use of @p way (hit). */
    void touch(unsigned way);

    /** Record installation of fresh contents into @p way. */
    void fill(unsigned way);

  private:
    /** order_[0] is the next victim; back is most recently used. */
    std::vector<unsigned> order_;
    ReplPolicy policy_;
    Rng *rng_;
};

} // namespace uhm

#endif // UHM_MEM_REPLACEMENT_HH
