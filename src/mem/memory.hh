/**
 * @file
 * The two-level directly addressable memory of the universal host.
 *
 * The address space is word-granular (one 64-bit word per address).
 * Addresses below the level-1 boundary belong to the small fast memory
 * (which holds the interpreter, the semantic routines, the operand stack
 * and — in the preferred organization of section 6.2 — the DTB buffer
 * array); everything above is level-2 (program image and data). Each
 * access is charged tau1 or tau2 and counted.
 */

#ifndef UHM_MEM_MEMORY_HH
#define UHM_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "mem/timing.hh"
#include "obs/counter.hh"
#include "obs/registry.hh"
#include "support/stats.hh"

namespace uhm
{

/** Word-addressed two-level memory with access accounting. */
class MainMemory
{
  public:
    /**
     * @param level1_words size of the fast level in words
     * @param timing access times
     */
    MainMemory(uint64_t level1_words, MemTiming timing)
        : level1Words_(level1_words), timing_(timing)
    {}

    /** Read the word at @p addr, charging the appropriate level. */
    int64_t
    read(uint64_t addr)
    {
        charge(addr);
        return addr < store_.size() ? store_[addr] : 0;
    }

    /** Write the word at @p addr, charging the appropriate level. */
    void
    write(uint64_t addr, int64_t value)
    {
        charge(addr);
        if (addr >= store_.size())
            store_.resize(addr + 1, 0);
        store_[addr] = value;
    }

    /** Read without charging cycles (loader / debugger use). */
    int64_t
    peek(uint64_t addr) const
    {
        return addr < store_.size() ? store_[addr] : 0;
    }

    /** Write without charging cycles (loader / debugger use). */
    void
    poke(uint64_t addr, int64_t value)
    {
        if (addr >= store_.size())
            store_.resize(addr + 1, 0);
        store_[addr] = value;
    }

    /** True if @p addr lies in the fast level. */
    bool isLevel1(uint64_t addr) const { return addr < level1Words_; }

    /** Grow the backing store to cover [0, @p words) without charging. */
    void
    ensure(uint64_t words)
    {
        if (store_.size() < words)
            store_.resize(words, 0);
    }

    /**
     * Raw view of the backing store for the fast dispatch loops. Only
     * valid for addresses below a prior ensure() watermark, and
     * invalidated by any poke/write that grows the store.
     */
    int64_t *raw() { return store_.data(); }

    /**
     * Charge a batch of accesses the fast dispatch path performed with
     * peek/poke and counted locally: @p level1 tau1 accesses and
     * @p level2 tau2 accesses. Cycle and access counters end up exactly
     * as if each access had gone through read/write individually.
     */
    void
    chargeBatch(uint64_t level1, uint64_t level2)
    {
        cycles_ += level1 * timing_.tau1 + level2 * timing_.tau2;
        level1Accesses_ += level1;
        level2Accesses_ += level2;
    }

    /** Accumulated access cycles. */
    uint64_t cycles() const { return cycles_; }

    /** Timing parameters in force. */
    const MemTiming &timing() const { return timing_; }

    /** Size of the fast level in words. */
    uint64_t level1Words() const { return level1Words_; }

    /**
     * Legacy counter view: mem_level1_accesses, mem_level2_accesses.
     * New code reads the same counters through registerCounters().
     */
    StatSet
    stats() const
    {
        StatSet set;
        set.add("mem_level1_accesses", level1Accesses_.value());
        set.add("mem_level2_accesses", level2Accesses_.value());
        return set;
    }

    /** Publish "<prefix>.level1_accesses" / "<prefix>.level2_accesses". */
    void
    registerCounters(obs::Registry &registry,
                     const std::string &prefix) const
    {
        registry.add(obs::joinName(prefix, "level1_accesses"),
                     level1Accesses_);
        registry.add(obs::joinName(prefix, "level2_accesses"),
                     level2Accesses_);
    }

    /** Reset cycle and access counters (not contents). */
    void
    resetStats()
    {
        cycles_ = 0;
        level1Accesses_.reset();
        level2Accesses_.reset();
    }

  private:
    void
    charge(uint64_t addr)
    {
        if (addr < level1Words_) {
            cycles_ += timing_.tau1;
            ++level1Accesses_;
        } else {
            cycles_ += timing_.tau2;
            ++level2Accesses_;
        }
    }

    std::vector<int64_t> store_;
    uint64_t level1Words_;
    MemTiming timing_;
    uint64_t cycles_ = 0;
    obs::Counter level1Accesses_;
    obs::Counter level2Accesses_;
};

} // namespace uhm

#endif // UHM_MEM_MEMORY_HH
