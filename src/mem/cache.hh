/**
 * @file
 * A generic set-associative cache model.
 *
 * Used as the instruction cache of the T3 baseline machine ("a UHM
 * equipped with a cache", section 7): a transparent buffer over the
 * level-2 memory holding recently fetched DIR image lines. Tag-only —
 * the model tracks hits and misses; the machine charges tauD on hits and
 * tau2 on misses exactly as the paper's T3 expression does.
 */

#ifndef UHM_MEM_CACHE_HH
#define UHM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/replacement.hh"
#include "obs/counter.hh"
#include "obs/registry.hh"
#include "support/rng.hh"

namespace uhm
{

/** Cache geometry and policy. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    uint64_t capacityBytes = 4096;
    /** Line size in bytes. */
    uint64_t lineBytes = 8;
    /** Ways per set; 0 means fully associative. */
    unsigned assoc = 4;
    ReplPolicy policy = ReplPolicy::LRU;
    /** Seed for the Random policy. */
    uint64_t seed = 1;
};

/** Tag-only set-associative cache with pluggable replacement. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Access the byte at @p byte_addr; install its line on a miss.
     * @return true on hit
     */
    bool access(uint64_t byte_addr);

    /** Invalidate everything. */
    void flush();

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }

    /** Hit ratio so far (1.0 when no accesses yet). */
    double
    hitRatio() const
    {
        uint64_t total = hits_.value() + misses_.value();
        return total == 0 ? 1.0 :
            static_cast<double>(hits_.value()) /
            static_cast<double>(total);
    }

    /** Publish "<prefix>.hits" / "<prefix>.misses" into @p registry. */
    void
    registerCounters(obs::Registry &registry,
                     const std::string &prefix) const
    {
        registry.add(obs::joinName(prefix, "hits"), hits_);
        registry.add(obs::joinName(prefix, "misses"), misses_);
    }

    /** Number of sets. */
    uint64_t numSets() const { return numSets_; }

    /** Ways per set. */
    unsigned assoc() const { return assoc_; }

    const CacheConfig &config() const { return config_; }

    /** Reset hit/miss counters (contents retained). */
    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
    };

    CacheConfig config_;
    uint64_t numSets_;
    unsigned assoc_;
    Rng rng_;
    /** lines_[set * assoc_ + way]. */
    std::vector<Line> lines_;
    std::vector<ReplacementSet> repl_;
    obs::Counter hits_;
    obs::Counter misses_;
};

} // namespace uhm

#endif // UHM_MEM_CACHE_HH
