#include "mem/cache.hh"

#include "support/logging.hh"

namespace uhm
{

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config), rng_(config.seed)
{
    uhm_assert(config.lineBytes >= 1, "line size must be positive");
    uhm_assert(config.capacityBytes >= config.lineBytes,
               "capacity smaller than one line");
    uint64_t num_lines = config.capacityBytes / config.lineBytes;
    uhm_assert(num_lines >= 1, "no lines");

    assoc_ = config.assoc == 0 ? static_cast<unsigned>(num_lines) :
        config.assoc;
    uhm_assert(assoc_ <= num_lines, "associativity exceeds line count");
    numSets_ = num_lines / assoc_;
    uhm_assert(numSets_ >= 1, "no sets");

    lines_.assign(numSets_ * assoc_, Line{});
    repl_.reserve(numSets_);
    for (uint64_t s = 0; s < numSets_; ++s)
        repl_.emplace_back(assoc_, config.policy, &rng_);
}

bool
SetAssocCache::access(uint64_t byte_addr)
{
    uint64_t line_addr = byte_addr / config_.lineBytes;
    uint64_t set = line_addr % numSets_;
    uint64_t tag = line_addr / numSets_;

    Line *set_lines = &lines_[set * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (set_lines[way].valid && set_lines[way].tag == tag) {
            repl_[set].touch(way);
            ++hits_;
            return true;
        }
    }

    // Miss: prefer an invalid way, else evict the policy's victim.
    unsigned victim = assoc_;
    for (unsigned way = 0; way < assoc_; ++way) {
        if (!set_lines[way].valid) {
            victim = way;
            break;
        }
    }
    if (victim == assoc_)
        victim = repl_[set].victim();

    set_lines[victim].tag = tag;
    set_lines[victim].valid = true;
    repl_[set].fill(victim);
    ++misses_;
    return false;
}

void
SetAssocCache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

} // namespace uhm
