/**
 * @file
 * Memory-hierarchy timing parameters.
 *
 * Section 7 of the paper normalizes everything to the level-1 access
 * time: tau1 = 1 (also one machine-instruction execution time), tauD = 2
 * (DTB or cache access) and tau2 = 10 (level-2 access). These defaults
 * reproduce the paper's operating point; benches sweep them.
 */

#ifndef UHM_MEM_TIMING_HH
#define UHM_MEM_TIMING_HH

#include <cstdint>

namespace uhm
{

/** Access times in machine cycles (level-1 cycle = 1). */
struct MemTiming
{
    /** Level-1 (fast, small) access time; the unit of time. */
    uint64_t tau1 = 1;
    /** Level-2 (large, slow) access time. */
    uint64_t tau2 = 10;
    /** DTB / cache array access time (nominally 2 * tau1). */
    uint64_t tauD = 2;
};

} // namespace uhm

#endif // UHM_MEM_TIMING_HH
