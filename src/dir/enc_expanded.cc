/**
 * @file
 * Expanded encoding: every field occupies a full 32-bit machine word.
 *
 * This models the size and (trivial) decode cost of an expanded
 * machine-language representation — the paper's reference point at the
 * origin of the encoding axis. Decoding needs one word fetch per field
 * and no masking.
 */

#include "dir/encoding.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

constexpr unsigned wordBits = 32;

class ExpandedDir : public EncodedDir
{
  public:
    explicit ExpandedDir(const DirProgram &program)
        : EncodedDir(EncodingScheme::Expanded, program)
    {
        BitWriter bw;
        for (const DirInstruction &ins : program.instrs) {
            bitAddrs_.push_back(bw.bitSize());
            bw.write(static_cast<uint64_t>(ins.op), wordBits);
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                uint64_t v = info.operands[k] == OperandKind::Imm ?
                    zigzagEncode(ins.operands[k]) :
                    static_cast<uint64_t>(ins.operands[k]);
                uhm_assert(v < (1ull << wordBits),
                           "operand does not fit a word");
                bw.write(v, wordBits);
            }
        }
        bitSize_ = bw.bitSize();
        bytes_ = bw.takeBytes();
    }

    DecodeResult
    decodeAt(uint64_t bit_addr) const override
    {
        BitReader br(bytes_.data(), bitSize_);
        br.seek(bit_addr);

        DecodeResult res;
        res.index = indexOfBitAddr(bit_addr);

        uint64_t opv = br.read(wordBits);
        uhm_assert(opv < numOps, "bad opcode %llu",
                   static_cast<unsigned long long>(opv));
        res.instr.op = static_cast<Op>(opv);
        res.cost.fieldExtracts += 1;

        const OperandKinds &ops = operandsOf(res.instr.op);
        for (size_t k = 0; k < ops.size(); ++k) {
            uint64_t v = br.read(wordBits);
            res.instr.operands[k] = ops[k] == OperandKind::Imm ?
                zigzagDecode(v) : static_cast<int64_t>(v);
            res.cost.fieldExtracts += 1;
        }
        res.nextBitAddr = br.pos();
        return res;
    }

    uint64_t metadataBits() const override { return 0; }
};

} // anonymous namespace

std::unique_ptr<EncodedDir>
makeExpandedDir(const DirProgram &program)
{
    return std::make_unique<ExpandedDir>(program);
}

} // namespace uhm
