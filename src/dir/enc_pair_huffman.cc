/**
 * @file
 * Pair-context Huffman encoding.
 *
 * "The idea of frequency based encoding may be generalized by considering
 * the frequency of occurrence of pairs, triples, etc., rather than single
 * operators and operands. ... An encoding based on the frequency of pairs
 * of fields would require a separate decode tree for each possible
 * predecessor field." (section 3.2)
 *
 * The opcode of instruction i is coded with a prefix code trained on the
 * conditional distribution P(op | op of instruction i-1); the first
 * instruction uses a distinguished start context. Operand tokens are
 * coded as in the plain Huffman scheme. The per-context trees enlarge the
 * resident metadata — the space/decode-cost trade the paper flags.
 */

#include <array>

#include "dir/enc_huffman_common.hh"
#include "dir/encoding.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

/** Context index of "no predecessor" (start of stream). */
constexpr size_t startContext = numOps;

class PairHuffmanDir : public EncodedDir
{
  public:
    explicit PairHuffmanDir(const DirProgram &program)
        : EncodedDir(EncodingScheme::PairHuffman, program),
          tokens_(buildTokenTables(program))
    {
        // Conditional opcode frequencies per predecessor context.
        std::vector<std::vector<uint64_t>> pair_freqs(
            numOps + 1, std::vector<uint64_t>(numOps, 0));
        prevContext_.resize(program.instrs.size());
        size_t ctx = startContext;
        for (size_t i = 0; i < program.instrs.size(); ++i) {
            prevContext_[i] = static_cast<uint32_t>(ctx);
            ++pair_freqs[ctx][static_cast<size_t>(program.instrs[i].op)];
            ctx = static_cast<size_t>(program.instrs[i].op);
        }

        // Each context codes only the opcodes that actually follow it;
        // the decode-tree leaves carry the dense-token -> opcode map.
        contexts_.resize(numOps + 1);
        for (size_t c = 0; c <= numOps; ++c) {
            ContextCode &cc = contexts_[c];
            std::vector<uint64_t> freqs;
            for (size_t op = 0; op < numOps; ++op) {
                if (pair_freqs[c][op] > 0) {
                    cc.opOfToken.push_back(static_cast<uint8_t>(op));
                    cc.tokenOfOp[op] =
                        static_cast<uint32_t>(freqs.size());
                    freqs.push_back(pair_freqs[c][op]);
                }
            }
            if (!freqs.empty())
                cc.code = HuffmanCode::build(freqs);
        }

        BitWriter bw;
        for (size_t i = 0; i < program.instrs.size(); ++i) {
            const DirInstruction &ins = program.instrs[i];
            bitAddrs_.push_back(bw.bitSize());
            const ContextCode &cc = contexts_[prevContext_[i]];
            cc.code.encode(
                bw, cc.tokenOfOp[static_cast<size_t>(ins.op)]);
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                const TokenTable &tt =
                    tokens_[static_cast<size_t>(info.operands[k])];
                tt.code.encode(bw, tt.tokenOf.at(ins.operands[k]));
            }
        }
        bitSize_ = bw.bitSize();
        bytes_ = bw.takeBytes();
    }

    DecodeResult
    decodeAt(uint64_t bit_addr) const override
    {
        BitReader br(bytes_.data(), bitSize_);
        br.seek(bit_addr);

        DecodeResult res;
        res.index = indexOfBitAddr(bit_addr);

        // Selecting the decode tree for this predecessor context is one
        // table lookup.
        const ContextCode &cc = contexts_[prevContext_[res.index]];
        res.cost.tableLookups += 1;
        const HuffmanDecodeKind kind = huffmanDecodeKind();

        uint64_t token = cc.code.decode(br, &res.cost.treeEdges, kind);
        uhm_assert(token < cc.opOfToken.size(), "bad opcode token %llu",
                   static_cast<unsigned long long>(token));
        res.instr.op = static_cast<Op>(cc.opOfToken[token]);

        const OperandKinds &ops = operandsOf(res.instr.op);
        for (size_t k = 0; k < ops.size(); ++k) {
            const TokenTable &tt =
                tokens_[static_cast<size_t>(ops[k])];
            uint64_t token =
                tt.code.decode(br, &res.cost.treeEdges, kind);
            // In range: the token came out of tt's own code.
            res.instr.operands[k] = tt.values[token];
            res.cost.tableLookups += 1;
        }
        res.nextBitAddr = br.pos();
        return res;
    }

    void
    decodeAll(std::vector<DecodeResult> &out) const override
    {
        out.resize(bitAddrs_.size());
        BitReader br(bytes_.data(), bitSize_);
        const HuffmanDecodeKind kind = huffmanDecodeKind();
        for (size_t i = 0; i < out.size(); ++i) {
            DecodeResult &res = out[i];
            res.index = i;
            res.cost = {};
            res.instr.operands = {};

            const ContextCode &cc = contexts_[prevContext_[i]];
            res.cost.tableLookups += 1;

            uint64_t token =
                cc.code.decode(br, &res.cost.treeEdges, kind);
            uhm_assert(token < cc.opOfToken.size(),
                       "bad opcode token %llu",
                       static_cast<unsigned long long>(token));
            res.instr.op = static_cast<Op>(cc.opOfToken[token]);

            const OperandKinds &ops = operandsOf(res.instr.op);
            for (size_t k = 0; k < ops.size(); ++k) {
                const TokenTable &tt =
                    tokens_[static_cast<size_t>(ops[k])];
                uint64_t t =
                    tt.code.decode(br, &res.cost.treeEdges, kind);
                res.instr.operands[k] = tt.values[t];
                res.cost.tableLookups += 1;
            }
            res.nextBitAddr = br.pos();
        }
    }

    uint64_t
    metadataBits() const override
    {
        uint64_t bits = 0;
        for (const ContextCode &cc : contexts_) {
            if (cc.code.valid())
                bits += cc.code.decodeTreeNodes() * 32 +
                        cc.opOfToken.size() * 8;
        }
        for (const TokenTable &tt : tokens_)
            bits += tt.metadataBits();
        return bits;
    }

  private:
    /** Prefix code + token maps of one predecessor context. */
    struct ContextCode
    {
        HuffmanCode code;
        /** dense token -> opcode. */
        std::vector<uint8_t> opOfToken;
        /** opcode -> dense token. */
        std::array<uint32_t, numOps> tokenOfOp{};
    };

    std::vector<TokenTable> tokens_;
    /** One opcode code per predecessor context (last is start). */
    std::vector<ContextCode> contexts_;
    /** Predecessor context of each instruction. */
    std::vector<uint32_t> prevContext_;
};

} // anonymous namespace

std::unique_ptr<EncodedDir>
makePairHuffmanDir(const DirProgram &program)
{
    return std::make_unique<PairHuffmanDir>(program);
}

} // namespace uhm
