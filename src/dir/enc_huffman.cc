/**
 * @file
 * Huffman encoding: opcodes and operand tokens coded by static frequency.
 *
 * "A more sophisticated encoding of the Huffman type may be employed by
 * measuring the frequency of occurrence of each operator and operand in
 * the static representation of the program. Often occurring items are
 * represented by fields of shorter length..." (section 3.2). Decoding
 * "entails traversing a decoding tree guided by an examination of the
 * encoded field", which the decoder reports as treeEdges.
 */

#include <array>

#include "dir/enc_huffman_common.hh"
#include "dir/encoding.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

class HuffmanDir : public EncodedDir
{
  public:
    explicit HuffmanDir(const DirProgram &program)
        : EncodedDir(EncodingScheme::Huffman, program),
          tokens_(buildTokenTables(program))
    {
        // Dense opcode alphabet: only opcodes the program uses receive
        // codewords; decode-tree leaves carry the token -> opcode map.
        std::vector<uint64_t> all_freqs = opcodeFrequencies(program);
        std::vector<uint64_t> freqs;
        for (size_t op = 0; op < numOps; ++op) {
            if (all_freqs[op] > 0) {
                opOfToken_.push_back(static_cast<uint8_t>(op));
                tokenOfOp_[op] = static_cast<uint32_t>(freqs.size());
                freqs.push_back(all_freqs[op]);
            }
        }
        opCode_ = HuffmanCode::build(freqs);

        BitWriter bw;
        for (const DirInstruction &ins : program.instrs) {
            bitAddrs_.push_back(bw.bitSize());
            opCode_.encode(bw, tokenOfOp_[static_cast<size_t>(ins.op)]);
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                const TokenTable &tt =
                    tokens_[static_cast<size_t>(info.operands[k])];
                tt.code.encode(bw, tt.tokenOf.at(ins.operands[k]));
            }
        }
        bitSize_ = bw.bitSize();
        bytes_ = bw.takeBytes();
    }

    DecodeResult
    decodeAt(uint64_t bit_addr) const override
    {
        BitReader br(bytes_.data(), bitSize_);
        br.seek(bit_addr);

        DecodeResult res;
        res.index = indexOfBitAddr(bit_addr);
        const HuffmanDecodeKind kind = huffmanDecodeKind();

        uint64_t token = opCode_.decode(br, &res.cost.treeEdges, kind);
        uhm_assert(token < opOfToken_.size(), "bad opcode token %llu",
                   static_cast<unsigned long long>(token));
        res.instr.op = static_cast<Op>(opOfToken_[token]);

        const OperandKinds &ops = operandsOf(res.instr.op);
        for (size_t k = 0; k < ops.size(); ++k) {
            const TokenTable &tt =
                tokens_[static_cast<size_t>(ops[k])];
            uint64_t token =
                tt.code.decode(br, &res.cost.treeEdges, kind);
            // Mapping the token back to its value is one table lookup.
            // The token came out of tt's own code, so it is in range.
            res.instr.operands[k] = tt.values[token];
            res.cost.tableLookups += 1;
        }
        res.nextBitAddr = br.pos();
        return res;
    }

    void
    decodeAll(std::vector<DecodeResult> &out) const override
    {
        out.resize(bitAddrs_.size());
        BitReader br(bytes_.data(), bitSize_);
        const HuffmanDecodeKind kind = huffmanDecodeKind();
        for (size_t i = 0; i < out.size(); ++i) {
            DecodeResult &res = out[i];
            res.index = i;
            res.cost = {};
            res.instr.operands = {};

            uint64_t token = opCode_.decode(br, &res.cost.treeEdges,
                                            kind);
            uhm_assert(token < opOfToken_.size(),
                       "bad opcode token %llu",
                       static_cast<unsigned long long>(token));
            res.instr.op = static_cast<Op>(opOfToken_[token]);

            const OperandKinds &ops = operandsOf(res.instr.op);
            for (size_t k = 0; k < ops.size(); ++k) {
                const TokenTable &tt =
                    tokens_[static_cast<size_t>(ops[k])];
                uint64_t t =
                    tt.code.decode(br, &res.cost.treeEdges, kind);
                res.instr.operands[k] = tt.values[t];
                res.cost.tableLookups += 1;
            }
            res.nextBitAddr = br.pos();
        }
    }

    uint64_t
    metadataBits() const override
    {
        uint64_t bits = opCode_.decodeTreeNodes() * 32 +
                        opOfToken_.size() * 8;
        for (const TokenTable &tt : tokens_)
            bits += tt.metadataBits();
        return bits;
    }

  private:
    std::vector<TokenTable> tokens_;
    HuffmanCode opCode_;
    /** dense token -> opcode. */
    std::vector<uint8_t> opOfToken_;
    /** opcode -> dense token. */
    std::array<uint32_t, numOps> tokenOfOp_{};
};

} // anonymous namespace

std::unique_ptr<EncodedDir>
makeHuffmanDir(const DirProgram &program)
{
    return std::make_unique<HuffmanDir>(program);
}

} // namespace uhm
