/**
 * @file
 * Encoded DIR images: the "degree of encoding" axis of Figure 1.
 *
 * A DirProgram can be lowered into six binary encodings of increasing
 * sophistication (and decreasing size):
 *
 *  - Expanded:    every field in its own machine word — the size and
 *                 decode cost of an expanded machine-language (DER-like)
 *                 image; the baseline for compaction ratios.
 *  - Packed:      fixed-width bit fields packed across word boundaries.
 *  - Contextual:  like Packed, but operand field widths shrink per
 *                 contour using the scope rules (section 3.2).
 *  - Huffman:     opcodes and operand value tokens coded by static
 *                 frequency (Wilner/Hehner-style).
 *  - PairHuffman: Huffman with a separate opcode decode tree per
 *                 predecessor opcode ("frequency of pairs", section 3.2).
 *  - Quantized:   Huffman with codeword lengths restricted to a small
 *                 selected set, as in the Burroughs B1700 (section 3.2) —
 *                 slightly larger images, much simpler decoding.
 *
 * Instructions are addressed by bit offset — the DIR address space seen
 * by the DTB. Decoders return, along with the instruction, a DecodeCost
 * that counts the primitive work performed (field extractions, decode
 * tree edges, metadata table lookups); the host-machine simulator turns
 * these counts into the paper's parameter d.
 */

#ifndef UHM_DIR_ENCODING_HH
#define UHM_DIR_ENCODING_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dir/program.hh"
#include "support/bitstream.hh"
#include "support/logging.hh"

namespace uhm
{

/** The encoding schemes, ordered by increasing degree of encoding. */
enum class EncodingScheme : uint8_t
{
    Expanded,
    Packed,
    Contextual,
    Huffman,
    PairHuffman,
    Quantized,

    NUM_SCHEMES
};

/** Number of encoding schemes. */
constexpr size_t numEncodingSchemes =
    static_cast<size_t>(EncodingScheme::NUM_SCHEMES);

/** Human-readable scheme name. */
const char *encodingName(EncodingScheme scheme);

/** All schemes, for parameterized tests and sweeps. */
const std::vector<EncodingScheme> &allEncodingSchemes();

/** Primitive-operation counts incurred while decoding. */
struct DecodeCost
{
    /** Shift-and-mask field extractions. */
    uint64_t fieldExtracts = 0;
    /** Decode-tree edges traversed (Huffman variants). */
    uint64_t treeEdges = 0;
    /** Metadata table lookups (contour widths, token values, ...). */
    uint64_t tableLookups = 0;

    DecodeCost &
    operator+=(const DecodeCost &o)
    {
        fieldExtracts += o.fieldExtracts;
        treeEdges += o.treeEdges;
        tableLookups += o.tableLookups;
        return *this;
    }

    /** Total primitive operations. */
    uint64_t total() const
    {
        return fieldExtracts + treeEdges + tableLookups;
    }
};

/** Result of decoding one instruction at a bit address. */
struct DecodeResult
{
    DirInstruction instr;
    /** Bit address of the sequentially next instruction. */
    uint64_t nextBitAddr = 0;
    /** Index of the decoded instruction. */
    size_t index = 0;
    DecodeCost cost;
};

/**
 * An encoded DIR image: the static representation resident in level-2
 * memory at run time.
 */
class EncodedDir
{
  public:
    virtual ~EncodedDir() = default;

    /** Decode the instruction starting at @p bit_addr. */
    virtual DecodeResult decodeAt(uint64_t bit_addr) const = 0;

    /**
     * Decode the whole image front to back into @p out (resized to
     * numInstrs()). Semantically identical to calling decodeAt() on
     * every instruction boundary, but encoders that can stream — one
     * BitReader carried across instructions, indices assigned
     * sequentially — override it to skip the per-call setup. This is
     * the bulk-decode path bench_decode times.
     */
    virtual void decodeAll(std::vector<DecodeResult> &out) const;

    /**
     * Size in bits of the decoding metadata the interpreter must keep
     * resident (field-width tables, decode trees, token tables). This is
     * the "size of the interpreter ... increases" axis of Figure 1.
     */
    virtual uint64_t metadataBits() const = 0;

    /** Scheme of this image. */
    EncodingScheme scheme() const { return scheme_; }

    /** Total image size in bits. */
    uint64_t bitSize() const { return bitSize_; }

    /** Bit address of instruction @p index. */
    uint64_t
    bitAddrOf(size_t index) const
    {
        uhm_assert(index < bitAddrs_.size(),
                   "instruction index %zu out of range", index);
        return bitAddrs_[index];
    }

    /** Index of the instruction at @p bit_addr (must be exact). */
    size_t
    indexOfBitAddr(uint64_t bit_addr) const
    {
        // Acquire pairs with the release in buildAddrIndex(); after the
        // first lookup this is one predictable branch on a hot flag.
        if (!addrIndexReady_.load(std::memory_order_acquire))
            buildAddrIndex();
        if (!addrIndex_.empty()) {
            uint32_t idx = bit_addr < addrIndex_.size() ?
                addrIndex_[bit_addr] : UINT32_MAX;
            uhm_assert(idx != UINT32_MAX,
                       "bit address %llu is not an instruction boundary",
                       static_cast<unsigned long long>(bit_addr));
            return idx;
        }
        return indexOfBitAddrSlow(bit_addr);
    }

    /** Number of instructions in the image. */
    size_t numInstrs() const { return bitAddrs_.size(); }

    /** Bit address of the program entry point. */
    uint64_t entryBitAddr() const { return bitAddrOf(program_->entry); }

    /** The symbolic program this image encodes. */
    const DirProgram &program() const { return *program_; }

    /** Average encoded instruction length in bits. */
    double
    meanInstrBits() const
    {
        return bitAddrs_.empty() ? 0.0 :
            static_cast<double>(bitSize_) /
            static_cast<double>(bitAddrs_.size());
    }

  protected:
    EncodedDir(EncodingScheme scheme, const DirProgram &program)
        : scheme_(scheme), program_(&program)
    {
        for (size_t op = 0; op < numOps; ++op)
            operandsOf_[op] = opInfo(static_cast<Op>(op)).operands;
    }

    /**
     * opInfo(op).operands, cached per image so decode inner loops index
     * a flat array instead of making the out-of-line opInfo() call.
     */
    const OperandKinds &
    operandsOf(Op op) const
    {
        return operandsOf_[static_cast<size_t>(op)];
    }

    EncodingScheme scheme_;
    const DirProgram *program_;
    /** Packed image. */
    std::vector<uint8_t> bytes_;
    /** Image length in bits. */
    uint64_t bitSize_ = 0;
    /** Bit address of each instruction, ascending. */
    std::vector<uint64_t> bitAddrs_;
    /** Flat opcode -> operand-kind list (see operandsOf()). */
    std::array<OperandKinds, numOps> operandsOf_{};

  private:
    /**
     * Direct bit-addr -> instruction-index map, built once on first
     * lookup (the encoder subclass constructors fill bitAddrs_ last, so
     * construction cannot build it). Stays empty for images too large
     * for a flat table, which fall back to binary search over
     * bitAddrs_. Thread-safe: a mutex serializes builders and
     * addrIndexReady_ publishes the result.
     */
    void buildAddrIndex() const;

    /** Binary-search fallback for images beyond the flat-table cap. */
    size_t indexOfBitAddrSlow(uint64_t bit_addr) const;

    mutable std::vector<uint32_t> addrIndex_;
    mutable std::atomic<bool> addrIndexReady_{false};
    mutable std::mutex addrIndexMutex_;
};

/**
 * Encode @p program with @p scheme. The program must outlive the image.
 */
std::unique_ptr<EncodedDir> encodeDir(const DirProgram &program,
                                      EncodingScheme scheme);

} // namespace uhm

#endif // UHM_DIR_ENCODING_HH
