#include "dir/encoding.hh"

#include <algorithm>

#include "support/logging.hh"

namespace uhm
{

// Factories implemented by the per-scheme translation units.
std::unique_ptr<EncodedDir> makeExpandedDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makePackedDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makeContextualDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makeHuffmanDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makePairHuffmanDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makeQuantizedDir(const DirProgram &program);

const char *
encodingName(EncodingScheme scheme)
{
    switch (scheme) {
      case EncodingScheme::Expanded:    return "expanded";
      case EncodingScheme::Packed:      return "packed";
      case EncodingScheme::Contextual:  return "contextual";
      case EncodingScheme::Huffman:     return "huffman";
      case EncodingScheme::PairHuffman: return "pair-huffman";
      case EncodingScheme::Quantized:   return "quantized";
      default: panic("bad encoding scheme");
    }
}

const std::vector<EncodingScheme> &
allEncodingSchemes()
{
    static const std::vector<EncodingScheme> all = {
        EncodingScheme::Expanded,
        EncodingScheme::Packed,
        EncodingScheme::Contextual,
        EncodingScheme::Huffman,
        EncodingScheme::PairHuffman,
        EncodingScheme::Quantized,
    };
    return all;
}

void
EncodedDir::buildAddrIndex() const
{
    std::lock_guard<std::mutex> lock(addrIndexMutex_);
    if (addrIndexReady_.load(std::memory_order_relaxed))
        return;
    // A flat table costs four bytes per image *bit*; cap it at 16 MiB
    // of host memory (every sample image is a few kilobits). Larger
    // images keep the binary-search path.
    constexpr uint64_t maxDirectBits = uint64_t{1} << 22;
    if (bitSize_ < maxDirectBits && bitAddrs_.size() < UINT32_MAX) {
        addrIndex_.assign(static_cast<size_t>(bitSize_) + 1, UINT32_MAX);
        for (size_t i = 0; i < bitAddrs_.size(); ++i)
            addrIndex_[bitAddrs_[i]] = static_cast<uint32_t>(i);
    }
    addrIndexReady_.store(true, std::memory_order_release);
}

void
EncodedDir::decodeAll(std::vector<DecodeResult> &out) const
{
    out.resize(bitAddrs_.size());
    if (out.empty())
        return;
    uint64_t addr = bitAddrs_.front();
    for (size_t i = 0; i < out.size(); ++i) {
        out[i] = decodeAt(addr);
        addr = out[i].nextBitAddr;
    }
}

size_t
EncodedDir::indexOfBitAddrSlow(uint64_t bit_addr) const
{
    auto it = std::lower_bound(bitAddrs_.begin(), bitAddrs_.end(),
                               bit_addr);
    uhm_assert(it != bitAddrs_.end() && *it == bit_addr,
               "bit address %llu is not an instruction boundary",
               static_cast<unsigned long long>(bit_addr));
    return static_cast<size_t>(it - bitAddrs_.begin());
}

std::unique_ptr<EncodedDir>
encodeDir(const DirProgram &program, EncodingScheme scheme)
{
    program.validate();
    switch (scheme) {
      case EncodingScheme::Expanded:    return makeExpandedDir(program);
      case EncodingScheme::Packed:      return makePackedDir(program);
      case EncodingScheme::Contextual:  return makeContextualDir(program);
      case EncodingScheme::Huffman:     return makeHuffmanDir(program);
      case EncodingScheme::PairHuffman: return makePairHuffmanDir(program);
      case EncodingScheme::Quantized:   return makeQuantizedDir(program);
      default: panic("bad encoding scheme");
    }
}

} // namespace uhm
