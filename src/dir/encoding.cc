#include "dir/encoding.hh"

#include <algorithm>

#include "support/logging.hh"

namespace uhm
{

// Factories implemented by the per-scheme translation units.
std::unique_ptr<EncodedDir> makeExpandedDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makePackedDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makeContextualDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makeHuffmanDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makePairHuffmanDir(const DirProgram &program);
std::unique_ptr<EncodedDir> makeQuantizedDir(const DirProgram &program);

const char *
encodingName(EncodingScheme scheme)
{
    switch (scheme) {
      case EncodingScheme::Expanded:    return "expanded";
      case EncodingScheme::Packed:      return "packed";
      case EncodingScheme::Contextual:  return "contextual";
      case EncodingScheme::Huffman:     return "huffman";
      case EncodingScheme::PairHuffman: return "pair-huffman";
      case EncodingScheme::Quantized:   return "quantized";
      default: panic("bad encoding scheme");
    }
}

const std::vector<EncodingScheme> &
allEncodingSchemes()
{
    static const std::vector<EncodingScheme> all = {
        EncodingScheme::Expanded,
        EncodingScheme::Packed,
        EncodingScheme::Contextual,
        EncodingScheme::Huffman,
        EncodingScheme::PairHuffman,
        EncodingScheme::Quantized,
    };
    return all;
}

size_t
EncodedDir::indexOfBitAddr(uint64_t bit_addr) const
{
    auto it = std::lower_bound(bitAddrs_.begin(), bitAddrs_.end(),
                               bit_addr);
    uhm_assert(it != bitAddrs_.end() && *it == bit_addr,
               "bit address %llu is not an instruction boundary",
               static_cast<unsigned long long>(bit_addr));
    return static_cast<size_t>(it - bitAddrs_.begin());
}

std::unique_ptr<EncodedDir>
encodeDir(const DirProgram &program, EncodingScheme scheme)
{
    program.validate();
    switch (scheme) {
      case EncodingScheme::Expanded:    return makeExpandedDir(program);
      case EncodingScheme::Packed:      return makePackedDir(program);
      case EncodingScheme::Contextual:  return makeContextualDir(program);
      case EncodingScheme::Huffman:     return makeHuffmanDir(program);
      case EncodingScheme::PairHuffman: return makePairHuffmanDir(program);
      case EncodingScheme::Quantized:   return makeQuantizedDir(program);
      default: panic("bad encoding scheme");
    }
}

} // namespace uhm
