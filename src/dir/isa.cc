#include "dir/isa.hh"

#include <sstream>

#include "support/logging.hh"

namespace uhm
{

namespace
{

using K = OperandKind;

/** Build the opcode metadata table once. */
const std::array<OpInfo, numOps> &
opTable()
{
    static const std::array<OpInfo, numOps> table = [] {
        std::array<OpInfo, numOps> t{};
        auto set = [&](Op op, const char *name,
                       OperandKinds operands, int delta) {
            t[static_cast<size_t>(op)] = {name, operands, delta};
        };
        set(Op::PUSHC,  "PUSHC",  {K::Imm}, 1);
        set(Op::PUSHL,  "PUSHL",  {K::Depth, K::Slot}, 1);
        set(Op::STOREL, "STOREL", {K::Depth, K::Slot}, -1);
        set(Op::ADDR,   "ADDR",   {K::Depth, K::Slot}, 1);
        set(Op::LOADI,  "LOADI",  {}, 0);
        set(Op::STOREI, "STOREI", {}, -2);
        set(Op::DUP,    "DUP",    {}, 1);
        set(Op::DROP,   "DROP",   {}, -1);
        set(Op::SWAP,   "SWAP",   {}, 0);
        set(Op::ADD,    "ADD",    {}, -1);
        set(Op::SUB,    "SUB",    {}, -1);
        set(Op::MUL,    "MUL",    {}, -1);
        set(Op::DIV,    "DIV",    {}, -1);
        set(Op::MOD,    "MOD",    {}, -1);
        set(Op::NEG,    "NEG",    {}, 0);
        set(Op::AND,    "AND",    {}, -1);
        set(Op::OR,     "OR",     {}, -1);
        set(Op::XOR,    "XOR",    {}, -1);
        set(Op::NOT,    "NOT",    {}, 0);
        set(Op::SHL,    "SHL",    {}, -1);
        set(Op::SHR,    "SHR",    {}, -1);
        set(Op::EQ,     "EQ",     {}, -1);
        set(Op::NE,     "NE",     {}, -1);
        set(Op::LT,     "LT",     {}, -1);
        set(Op::LE,     "LE",     {}, -1);
        set(Op::GT,     "GT",     {}, -1);
        set(Op::GE,     "GE",     {}, -1);
        set(Op::JMP,    "JMP",    {K::Target}, 0);
        set(Op::JZ,     "JZ",     {K::Target}, -1);
        set(Op::JNZ,    "JNZ",    {K::Target}, -1);
        set(Op::CALLP,  "CALLP",  {K::Proc}, 0);
        set(Op::ENTER,  "ENTER",  {K::Depth, K::Count, K::Count}, 0);
        set(Op::RET,    "RET",    {K::Depth, K::Count}, 0);
        set(Op::READ,   "READ",   {}, 1);
        set(Op::WRITE,  "WRITE",  {}, -1);
        set(Op::SEMWORK,"SEMWORK",{K::Imm}, 0);
        set(Op::NOP,    "NOP",    {}, 0);
        set(Op::HALT,   "HALT",   {}, 0);
        set(Op::SETL,   "SETL",   {K::Depth, K::Slot, K::Imm}, 0);
        set(Op::INCL,   "INCL",   {K::Depth, K::Slot, K::Imm}, 0);
        set(Op::WRITEL, "WRITEL", {K::Depth, K::Slot}, 0);
        set(Op::PUSHL2, "PUSHL2",
            {K::Depth, K::Slot, K::Depth, K::Slot}, 2);
        set(Op::BRZL,   "BRZL",   {K::Depth, K::Slot, K::Target}, 0);
        set(Op::BRNZL,  "BRNZL",  {K::Depth, K::Slot, K::Target}, 0);
        return t;
    }();
    return table;
}

} // anonymous namespace

const OpInfo &
opInfo(Op op)
{
    size_t idx = static_cast<size_t>(op);
    uhm_assert(idx < numOps, "bad opcode %zu", idx);
    return opTable()[idx];
}

bool
isControlTransfer(Op op)
{
    switch (op) {
      case Op::JMP:
      case Op::JZ:
      case Op::JNZ:
      case Op::BRZL:
      case Op::BRNZL:
      case Op::CALLP:
      case Op::RET:
      case Op::HALT:
        return true;
      default:
        return false;
    }
}

std::string
DirInstruction::toString() const
{
    std::ostringstream os;
    os << opName(op);
    for (size_t i = 0; i < opArity(op); ++i)
        os << " " << operands[i];
    return os.str();
}

} // namespace uhm
