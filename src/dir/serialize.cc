#include "dir/serialize.hh"

#include <fstream>

#include "support/bitstream.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

/** File magic: "UHMDIR" + format version. */
constexpr uint64_t magic = 0x5548'4d44'4952'0001ull;

/** FNV-1a over a byte range. */
uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Byte-stream writer with varint support. */
class Writer
{
  public:
    void
    u64(uint64_t v)
    {
        // LEB128.
        while (v >= 0x80) {
            bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
            v >>= 7;
        }
        bytes_.push_back(static_cast<uint8_t>(v));
    }

    void i64(int64_t v) { u64(zigzagEncode(v)); }

    void
    raw64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }
    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

/** Byte-stream reader; underflow is a FatalError (corrupt input). */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size)
    {}

    uint64_t
    u64()
    {
        uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos_ >= size_)
                fatal("truncated DIR binary");
            uint8_t b = data_[pos_++];
            if (shift >= 64)
                fatal("malformed varint in DIR binary");
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
        }
    }

    int64_t i64() { return zigzagDecode(u64()); }

    uint64_t
    raw64()
    {
        if (pos_ + 8 > size_)
            fatal("truncated DIR binary");
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (pos_ + n > size_)
            fatal("truncated DIR binary");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<size_t>(n));
        pos_ += n;
        return s;
    }

    size_t pos() const { return pos_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // anonymous namespace

std::vector<uint8_t>
serializeDirProgram(const DirProgram &program)
{
    program.validate();

    Writer w;
    w.raw64(magic);
    w.str(program.name);
    w.u64(program.numGlobals);
    w.u64(program.entry);

    w.u64(program.contours.size());
    for (const Contour &c : program.contours) {
        w.str(c.name);
        w.u64(c.depth);
        w.u64(c.nlocals);
        w.u64(c.nparams);
        w.u64(c.entry);
        w.u64(c.isFunc ? 1 : 0);
        w.u64(c.slotsAtDepth.size());
        for (uint32_t s : c.slotsAtDepth)
            w.u64(s);
    }

    w.u64(program.instrs.size());
    for (size_t i = 0; i < program.instrs.size(); ++i) {
        const DirInstruction &ins = program.instrs[i];
        w.u64(static_cast<uint64_t>(ins.op));
        for (size_t k = 0; k < opArity(ins.op); ++k)
            w.i64(ins.operands[k]);
        w.u64(program.contourOf[i]);
    }

    uint64_t checksum = fnv1a(w.bytes().data(), w.bytes().size());
    w.raw64(checksum);
    return w.take();
}

DirProgram
deserializeDirProgram(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 16)
        fatal("DIR binary too short");

    // Verify the checksum trailer over everything before it.
    size_t body = bytes.size() - 8;
    uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<uint64_t>(bytes[body + i]) << (8 * i);
    if (fnv1a(bytes.data(), body) != stored)
        fatal("DIR binary checksum mismatch (corrupt file?)");

    Reader r(bytes.data(), body);
    if (r.raw64() != magic)
        fatal("not a DIR binary (bad magic or unsupported version)");

    DirProgram prog;
    prog.name = r.str();
    prog.numGlobals = static_cast<uint32_t>(r.u64());
    prog.entry = static_cast<size_t>(r.u64());

    uint64_t num_contours = r.u64();
    if (num_contours > 1'000'000)
        fatal("implausible contour count in DIR binary");
    prog.contours.reserve(num_contours);
    for (uint64_t c = 0; c < num_contours; ++c) {
        Contour ctr;
        ctr.name = r.str();
        ctr.depth = static_cast<unsigned>(r.u64());
        ctr.nlocals = static_cast<uint32_t>(r.u64());
        ctr.nparams = static_cast<uint32_t>(r.u64());
        ctr.entry = static_cast<size_t>(r.u64());
        ctr.isFunc = r.u64() != 0;
        uint64_t chain = r.u64();
        if (chain > 1'000'000)
            fatal("implausible contour chain in DIR binary");
        for (uint64_t i = 0; i < chain; ++i)
            ctr.slotsAtDepth.push_back(static_cast<uint32_t>(r.u64()));
        prog.contours.push_back(std::move(ctr));
    }

    uint64_t num_instrs = r.u64();
    if (num_instrs > 100'000'000)
        fatal("implausible instruction count in DIR binary");
    prog.instrs.reserve(num_instrs);
    prog.contourOf.reserve(num_instrs);
    for (uint64_t i = 0; i < num_instrs; ++i) {
        uint64_t opv = r.u64();
        if (opv >= numOps)
            fatal("bad opcode %llu in DIR binary",
                  static_cast<unsigned long long>(opv));
        DirInstruction ins(static_cast<Op>(opv));
        for (size_t k = 0; k < opArity(ins.op); ++k)
            ins.operands[k] = r.i64();
        prog.instrs.push_back(ins);
        prog.contourOf.push_back(static_cast<uint32_t>(r.u64()));
    }

    prog.validate();
    return prog;
}

void
saveDirProgram(const DirProgram &program, const std::string &path)
{
    std::vector<uint8_t> bytes = serializeDirProgram(program);
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

DirProgram
loadDirProgram(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return deserializeDirProgram(bytes);
}

} // namespace uhm
