/**
 * @file
 * The DIR instruction set.
 *
 * The DIR (directly interpretable representation, section 2.3 of the
 * paper) is the static intermediate level a HLR compiles into: a
 * stack-oriented, context-insensitive instruction stream that needs no
 * associative memory and no preliminary scan to interpret. Names have
 * been bound to (contour depth, slot) coordinates, expressions have been
 * unravelled to postfix order and symbolic names replaced by numeric
 * tokens — exactly the compilation outcome section 3.3 calls for.
 */

#ifndef UHM_DIR_ISA_HH
#define UHM_DIR_ISA_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace uhm
{

/** DIR opcodes. */
enum class Op : uint8_t
{
    // Constants and variable access (contour-model addressing).
    PUSHC,   ///< push a signed constant (imm)
    PUSHL,   ///< push variable at (depth, slot)
    STOREL,  ///< pop into variable at (depth, slot)
    ADDR,    ///< push the address of (depth, slot); base of array access
    LOADI,   ///< pop address, push memory word at it
    STOREI,  ///< pop address, pop value, store value at address

    // Operand-stack manipulation.
    DUP,     ///< duplicate top of stack
    DROP,    ///< discard top of stack
    SWAP,    ///< exchange the top two entries

    // Arithmetic.
    ADD, SUB, MUL, DIV, MOD, NEG,

    // Bitwise / logical.
    AND, OR, XOR, NOT, SHL, SHR,

    // Comparisons (push 1 or 0).
    EQ, NE, LT, LE, GT, GE,

    // Control transfer. Targets are DIR instruction indices.
    JMP,     ///< unconditional jump (target)
    JZ,      ///< pop; jump if zero (target)
    JNZ,     ///< pop; jump if nonzero (target)
    CALLP,   ///< call procedure (proc index); args already pushed
    ENTER,   ///< procedure prologue: (depth, nlocals, nparams)
    RET,     ///< procedure epilogue + return: (depth, nlocals)

    // Input / output.
    READ,    ///< push the next input value
    WRITE,   ///< pop and append to the output stream

    // Miscellaneous.
    SEMWORK, ///< synthetic semantic work: spin (imm) micro-cycles
    NOP,
    HALT,

    // Fused (raised-semantic-level) opcodes, produced by the section
    // 3.2 "increase the complexity and variety of the opcodes" pass
    // (dir/fusion.hh). Each replaces a common multi-instruction idiom.
    SETL,    ///< (depth, slot, imm): var := imm
    INCL,    ///< (depth, slot, imm): var := var + imm
    WRITEL,  ///< (depth, slot): write var
    PUSHL2,  ///< (d1, s1, d2, s2): push two variables
    BRZL,    ///< (depth, slot, target): branch if var == 0
    BRNZL,   ///< (depth, slot, target): branch if var != 0

    NUM_OPS
};

/** Number of distinct DIR opcodes. */
constexpr size_t numOps = static_cast<size_t>(Op::NUM_OPS);

/** Kinds of operand fields a DIR instruction can carry. */
enum class OperandKind : uint8_t
{
    Imm,     ///< signed immediate constant
    Depth,   ///< contour depth coordinate
    Slot,    ///< variable slot within a contour
    Target,  ///< branch target (DIR instruction index)
    Proc,    ///< procedure index
    Count,   ///< small unsigned count (locals, params)

    NUM_KINDS
};

/** Number of distinct operand kinds. */
constexpr size_t numOperandKinds =
    static_cast<size_t>(OperandKind::NUM_KINDS);

/**
 * Inline fixed-capacity list of operand kinds. DIR instructions carry
 * at most four operand fields; keeping the kinds inside OpInfo rather
 * than behind a heap vector keeps the per-decode operand walk inside
 * one cache line of the static opcode table.
 */
class OperandKinds
{
  public:
    OperandKinds() = default;
    OperandKinds(std::initializer_list<OperandKind> kinds)
    {
        for (OperandKind k : kinds)
            kinds_[size_++] = k;
    }

    size_t size() const { return size_; }
    OperandKind operator[](size_t i) const { return kinds_[i]; }
    const OperandKind *begin() const { return kinds_; }
    const OperandKind *end() const { return kinds_ + size_; }

  private:
    OperandKind kinds_[4]{};
    uint8_t size_ = 0;
};

/** Static description of one opcode. */
struct OpInfo
{
    /** Mnemonic. */
    const char *name;
    /** Operand field kinds, in encoding order. */
    OperandKinds operands;
    /** Net change in operand-stack depth (calls/returns excluded). */
    int stackDelta;
};

/** Metadata for @p op. */
const OpInfo &opInfo(Op op);

/** Mnemonic for @p op. */
inline const char *opName(Op op) { return opInfo(op).name; }

/** Number of operand fields @p op carries. */
inline size_t opArity(Op op) { return opInfo(op).operands.size(); }

/** True if @p op transfers control (its successor is not index+1). */
bool isControlTransfer(Op op);

/** One decoded DIR instruction. */
struct DirInstruction
{
    Op op = Op::NOP;
    /** Operand values; operands[i] has kind opInfo(op).operands[i]. */
    std::array<int64_t, 4> operands = {0, 0, 0, 0};

    DirInstruction() = default;
    DirInstruction(Op o) : op(o) {}
    DirInstruction(Op o, int64_t a) : op(o), operands{a, 0, 0, 0} {}
    DirInstruction(Op o, int64_t a, int64_t b)
        : op(o), operands{a, b, 0, 0}
    {}
    DirInstruction(Op o, int64_t a, int64_t b, int64_t c)
        : op(o), operands{a, b, c, 0}
    {}
    DirInstruction(Op o, int64_t a, int64_t b, int64_t c, int64_t d)
        : op(o), operands{a, b, c, d}
    {}

    bool operator==(const DirInstruction &other) const = default;

    /** Human-readable rendering, e.g. "PUSHL 1 3". */
    std::string toString() const;
};

} // namespace uhm

#endif // UHM_DIR_ISA_HH
