#include "dir/asm.hh"

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "support/logging.hh"

namespace uhm
{

namespace
{

/** Mnemonic -> opcode map. */
const std::map<std::string, Op> &
opByName()
{
    static const std::map<std::string, Op> table = [] {
        std::map<std::string, Op> t;
        for (size_t i = 0; i < numOps; ++i)
            t[opName(static_cast<Op>(i))] = static_cast<Op>(i);
        return t;
    }();
    return table;
}

/** Split a line into whitespace-separated words, stripping comments. */
std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> words;
    std::string word;
    for (char c : line) {
        if (c == ';' || c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!word.empty()) {
                words.push_back(word);
                word.clear();
            }
        } else {
            word.push_back(c);
        }
    }
    if (!word.empty())
        words.push_back(word);
    return words;
}

/** Parse "key=value"; fatal with @p line context otherwise. */
std::pair<std::string, std::string>
splitAttr(const std::string &word, int line)
{
    size_t eq = word.find('=');
    if (eq == std::string::npos)
        fatal("line %d: expected key=value, found '%s'", line,
              word.c_str());
    return {word.substr(0, eq), word.substr(eq + 1)};
}

int64_t
parseInt(const std::string &word, int line)
{
    try {
        size_t used = 0;
        int64_t v = std::stoll(word, &used);
        if (used != word.size())
            throw std::invalid_argument(word);
        return v;
    } catch (const std::exception &) {
        fatal("line %d: expected an integer, found '%s'", line,
              word.c_str());
    }
}

class AsmParser
{
  public:
    DirProgram
    parse(const std::string &text)
    {
        // Implicit main contour.
        Contour main_ctr;
        main_ctr.name = "<main>";
        main_ctr.depth = 1;
        prog_.contours.push_back(main_ctr);
        contourIdOf_["<main>"] = 0;

        std::istringstream is(text);
        std::string line;
        int lineno = 0;
        while (std::getline(is, line)) {
            ++lineno;
            parseLine(splitWords(line), lineno);
        }
        finish();
        return std::move(prog_);
    }

  private:
    void
    parseLine(const std::vector<std::string> &words, int line)
    {
        if (words.empty())
            return;
        const std::string &head = words[0];

        if (head == ".program") {
            need(words, 2, line);
            prog_.name = words[1];
            return;
        }
        if (head == ".globals") {
            need(words, 2, line);
            prog_.numGlobals =
                static_cast<uint32_t>(parseInt(words[1], line));
            return;
        }
        if (head == ".proc") {
            parseProc(words, line);
            return;
        }
        if (head == ".in") {
            need(words, 2, line);
            currentContour_ = contourId(words[1], line);
            return;
        }
        if (head == ".entry") {
            need(words, 2, line);
            entryLabel_ = words[1];
            entryLine_ = line;
            return;
        }
        if (head[0] == '.')
            fatal("line %d: unknown directive '%s'", line, head.c_str());

        size_t word_index = 0;
        if (head.back() == ':') {
            std::string label = head.substr(0, head.size() - 1);
            if (!labels_.emplace(label, prog_.instrs.size()).second)
                fatal("line %d: duplicate label '%s'", line,
                      label.c_str());
            ++word_index;
        }
        if (word_index >= words.size())
            return; // label-only line
        parseInstruction(words, word_index, line);
    }

    void
    need(const std::vector<std::string> &words, size_t n, int line)
    {
        if (words.size() != n)
            fatal("line %d: '%s' expects %zu operand(s)", line,
                  words[0].c_str(), n - 1);
    }

    void
    parseProc(const std::vector<std::string> &words, int line)
    {
        if (words.size() != 5)
            fatal("line %d: .proc expects NAME parent= locals= params=",
                  line);
        Contour ctr;
        ctr.name = words[1];
        if (contourIdOf_.count(ctr.name))
            fatal("line %d: duplicate contour '%s'", line,
                  ctr.name.c_str());

        std::string parent_name;
        for (size_t i = 2; i < words.size(); ++i) {
            auto [key, value] = splitAttr(words[i], line);
            if (key == "parent") {
                parent_name = value;
            } else if (key == "locals") {
                ctr.nlocals =
                    static_cast<uint32_t>(parseInt(value, line));
            } else if (key == "params") {
                ctr.nparams =
                    static_cast<uint32_t>(parseInt(value, line));
            } else {
                fatal("line %d: unknown .proc attribute '%s'", line,
                      key.c_str());
            }
        }
        uint32_t parent = contourId(parent_name, line);
        const Contour &pctr = prog_.contours[parent];
        ctr.depth = pctr.depth + 1;
        // The chain is completed in finish() (globals may not be
        // declared yet); remember the parent.
        parents_.push_back(parent);
        contourIdOf_[ctr.name] =
            static_cast<uint32_t>(prog_.contours.size());
        prog_.contours.push_back(std::move(ctr));
    }

    uint32_t
    contourId(const std::string &name, int line)
    {
        auto it = contourIdOf_.find(name);
        if (it == contourIdOf_.end())
            fatal("line %d: unknown contour '%s'", line, name.c_str());
        return it->second;
    }

    void
    parseInstruction(const std::vector<std::string> &words, size_t at,
                     int line)
    {
        auto it = opByName().find(words[at]);
        if (it == opByName().end())
            fatal("line %d: unknown opcode '%s'", line,
                  words[at].c_str());
        DirInstruction ins(it->second);
        const OpInfo &info = opInfo(ins.op);
        if (words.size() - at - 1 != info.operands.size())
            fatal("line %d: %s expects %zu operand(s)", line, info.name,
                  info.operands.size());

        for (size_t k = 0; k < info.operands.size(); ++k) {
            const std::string &word = words[at + 1 + k];
            switch (info.operands[k]) {
              case OperandKind::Target:
                if (!word.empty() &&
                    (std::isdigit(static_cast<unsigned char>(word[0])) ||
                     word[0] == '-')) {
                    ins.operands[k] = parseInt(word, line);
                } else {
                    targetFixups_.push_back(
                        {prog_.instrs.size(), k, word, line});
                }
                break;
              case OperandKind::Proc:
                if (!word.empty() &&
                    std::isdigit(static_cast<unsigned char>(word[0]))) {
                    ins.operands[k] = parseInt(word, line);
                } else {
                    // Procedure by name; index = contour id - 1.
                    ins.operands[k] =
                        static_cast<int64_t>(contourId(word, line)) - 1;
                }
                break;
              default:
                ins.operands[k] = parseInt(word, line);
                break;
            }
        }

        // The first instruction of a contour is its entry.
        if (!contourSeen_.count(currentContour_)) {
            contourSeen_.insert(currentContour_);
            prog_.contours[currentContour_].entry = prog_.instrs.size();
        }
        prog_.instrs.push_back(ins);
        prog_.contourOf.push_back(currentContour_);
    }

    void
    finish()
    {
        if (prog_.instrs.empty())
            fatal("assembly contains no instructions");

        // Complete the slotsAtDepth chains now that globals are known.
        prog_.contours[0].slotsAtDepth = {prog_.numGlobals, 0};
        for (size_t c = 1; c < prog_.contours.size(); ++c) {
            Contour &ctr = prog_.contours[c];
            const Contour &parent = prog_.contours[parents_[c - 1]];
            ctr.slotsAtDepth = parent.slotsAtDepth;
            ctr.slotsAtDepth.push_back(ctr.nlocals);
        }

        for (const auto &fixup : targetFixups_) {
            auto it = labels_.find(fixup.label);
            if (it == labels_.end())
                fatal("line %d: unknown label '%s'", fixup.line,
                      fixup.label.c_str());
            prog_.instrs[fixup.instr].operands[fixup.operand] =
                static_cast<int64_t>(it->second);
        }

        if (!entryLabel_.empty()) {
            auto it = labels_.find(entryLabel_);
            if (it == labels_.end())
                fatal("line %d: unknown entry label '%s'", entryLine_,
                      entryLabel_.c_str());
            prog_.entry = it->second;
        }

        for (size_t c = 1; c < prog_.contours.size(); ++c) {
            if (!contourSeen_.count(static_cast<uint32_t>(c)))
                fatal("contour '%s' has no instructions",
                      prog_.contours[c].name.c_str());
        }

        prog_.validate();
    }

    struct TargetFixup
    {
        size_t instr;
        size_t operand;
        std::string label;
        int line;
    };

    DirProgram prog_;
    std::map<std::string, uint32_t> contourIdOf_;
    /** Parent contour of contours 1..n. */
    std::vector<uint32_t> parents_;
    std::map<std::string, size_t> labels_;
    std::vector<TargetFixup> targetFixups_;
    std::set<uint32_t> contourSeen_;
    uint32_t currentContour_ = 0;
    std::string entryLabel_;
    int entryLine_ = 0;
};

} // anonymous namespace

DirProgram
parseDirAssembly(const std::string &text)
{
    AsmParser parser;
    return parser.parse(text);
}

std::string
toDirAssembly(const DirProgram &program)
{
    std::ostringstream os;
    os << ".program " << program.name << "\n";
    os << ".globals " << program.numGlobals << "\n";

    // Assembly contour names must be unique; disambiguate duplicates
    // (same proc name in different scopes) with a $index suffix.
    std::vector<std::string> asm_name(program.contours.size());
    {
        std::set<std::string> used = {"<main>"};
        asm_name[0] = "<main>";
        for (size_t c = 1; c < program.contours.size(); ++c) {
            std::string name = program.contours[c].name;
            if (!used.insert(name).second) {
                name += "$" + std::to_string(c);
                used.insert(name);
            }
            asm_name[c] = name;
        }
    }

    // Contours (skipping implicit <main>): find each parent — a prior
    // contour one level up whose chain is a prefix of this one's.
    for (size_t c = 1; c < program.contours.size(); ++c) {
        const Contour &ctr = program.contours[c];
        std::string parent = "<main>";
        for (size_t p = 0; p < c; ++p) {
            const Contour &cand = program.contours[p];
            if (cand.depth + 1 != ctr.depth)
                continue;
            bool prefix = cand.slotsAtDepth.size() + 1 ==
                          ctr.slotsAtDepth.size();
            for (size_t i = 0; prefix && i < cand.slotsAtDepth.size();
                 ++i) {
                prefix = cand.slotsAtDepth[i] == ctr.slotsAtDepth[i];
            }
            if (prefix) {
                parent = asm_name[p];
                break;
            }
        }
        os << ".proc " << asm_name[c] << " parent=" << parent
           << " locals=" << ctr.nlocals << " params=" << ctr.nparams
           << "\n";
    }

    // Labels: branch targets, contour entries, the program entry.
    std::map<size_t, std::string> label_of;
    auto ensure_label = [&](size_t index) {
        if (!label_of.count(index))
            label_of[index] = "L" + std::to_string(index);
    };
    for (const DirInstruction &ins : program.instrs) {
        const OpInfo &info = opInfo(ins.op);
        for (size_t k = 0; k < info.operands.size(); ++k) {
            if (info.operands[k] == OperandKind::Target)
                ensure_label(static_cast<size_t>(ins.operands[k]));
        }
    }
    ensure_label(program.entry);
    os << ".entry " << label_of[program.entry] << "\n\n";

    uint32_t current = 0;
    for (size_t i = 0; i < program.instrs.size(); ++i) {
        if (program.contourOf[i] != current || i == 0) {
            current = program.contourOf[i];
            os << ".in " << asm_name[current] << "\n";
        }
        if (label_of.count(i))
            os << label_of[i] << ":\n";
        const DirInstruction &ins = program.instrs[i];
        const OpInfo &info = opInfo(ins.op);
        os << "    " << info.name;
        for (size_t k = 0; k < info.operands.size(); ++k) {
            if (info.operands[k] == OperandKind::Target) {
                os << " "
                   << label_of[static_cast<size_t>(ins.operands[k])];
            } else if (info.operands[k] == OperandKind::Proc) {
                os << " " << asm_name[ins.operands[k] + 1];
            } else {
                os << " " << ins.operands[k];
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace uhm
