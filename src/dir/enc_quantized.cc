/**
 * @file
 * Quantized (restricted-length) Huffman encoding.
 *
 * "It is possible to restrict the permitted field lengths to a small
 * number of selected lengths. This simplifies the decoding problem
 * without sacrificing much by way of memory efficiency." (section 3.2,
 * citing the Burroughs B1700's variable-length opcode field, which used
 * exactly this compromise.)
 *
 * Structure matches the Huffman scheme — dense opcode alphabet plus
 * per-kind operand token tables — but every prefix code is built with
 * HuffmanCode::buildQuantized over the allowed length set {2,4,6,8,12},
 * so a hardware decoder needs only a handful of fixed-width probes
 * instead of a bit-serial tree walk. The cost model reflects that:
 * decoding charges one field extraction per *probe* (a length-class
 * test) rather than one tree edge per bit.
 */

#include <array>

#include "dir/enc_huffman_common.hh"
#include "dir/encoding.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

/**
 * The allowed codeword lengths: the B1700-style base set {2,4,6,8,12},
 * extended in steps of 4 bits when the alphabet needs longer codes.
 */
std::vector<unsigned>
allowedLengthsFor(size_t alphabet)
{
    std::vector<unsigned> lengths = {2, 4, 6, 8, 12};
    while ((1ull << lengths.back()) < alphabet)
        lengths.push_back(lengths.back() + 4);
    return lengths;
}

/** A quantized prefix code plus its length classes. */
struct QuantCode
{
    HuffmanCode code;
    std::vector<unsigned> lengths;
    /** Probe count per codeword length (index = length in bits). */
    std::vector<uint8_t> probesByLen;

    /** Fixed-width probes needed to decode a codeword of @p len. */
    uint64_t
    probesFor(unsigned len) const
    {
        for (size_t i = 0; i < lengths.size(); ++i) {
            if (lengths[i] >= len)
                return i + 1;
        }
        panic("length %u outside the allowed set", len);
    }
};

/** Quantized code over a dense alphabet with frequencies @p freqs. */
QuantCode
buildCode(const std::vector<uint64_t> &freqs)
{
    QuantCode qc;
    qc.lengths = allowedLengthsFor(freqs.size());
    qc.code = HuffmanCode::buildQuantized(freqs, qc.lengths);
    qc.probesByLen.assign(qc.code.maxCodeLength() + 1, 0);
    for (unsigned len = 1; len <= qc.code.maxCodeLength(); ++len)
        qc.probesByLen[len] = static_cast<uint8_t>(qc.probesFor(len));
    return qc;
}

class QuantizedDir : public EncodedDir
{
  public:
    explicit QuantizedDir(const DirProgram &program)
        : EncodedDir(EncodingScheme::Quantized, program)
    {
        // Operand token tables as in the Huffman scheme, but with
        // quantized codes.
        tokens_ = buildTokenTables(program);
        tokenCodes_.resize(tokens_.size());
        for (size_t ki = 0; ki < tokens_.size(); ++ki) {
            TokenTable &tt = tokens_[ki];
            if (!tt.used)
                continue;
            std::vector<uint64_t> freqs(tt.values.size(), 0);
            for (const DirInstruction &ins : program.instrs) {
                const OpInfo &info = opInfo(ins.op);
                for (size_t k = 0; k < info.operands.size(); ++k) {
                    if (static_cast<size_t>(info.operands[k]) == ki)
                        ++freqs[tt.tokenOf.at(ins.operands[k])];
                }
            }
            tokenCodes_[ki] = buildCode(freqs);
            tt.code = tokenCodes_[ki].code;
        }

        // Dense opcode alphabet.
        std::vector<uint64_t> all_freqs = opcodeFrequencies(program);
        std::vector<uint64_t> freqs;
        for (size_t op = 0; op < numOps; ++op) {
            if (all_freqs[op] > 0) {
                opOfToken_.push_back(static_cast<uint8_t>(op));
                tokenOfOp_[op] = static_cast<uint32_t>(freqs.size());
                freqs.push_back(all_freqs[op]);
            }
        }
        opCode_ = buildCode(freqs);

        BitWriter bw;
        for (const DirInstruction &ins : program.instrs) {
            bitAddrs_.push_back(bw.bitSize());
            opCode_.code.encode(
                bw, tokenOfOp_[static_cast<size_t>(ins.op)]);
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                size_t ki = static_cast<size_t>(info.operands[k]);
                tokenCodes_[ki].code.encode(
                    bw, tokens_[ki].tokenOf.at(ins.operands[k]));
            }
        }
        bitSize_ = bw.bitSize();
        bytes_ = bw.takeBytes();
    }

    DecodeResult
    decodeAt(uint64_t bit_addr) const override
    {
        BitReader br(bytes_.data(), bitSize_);
        br.seek(bit_addr);

        DecodeResult res;
        res.index = indexOfBitAddr(bit_addr);
        const HuffmanDecodeKind kind = huffmanDecodeKind();

        uint64_t token = decodeField(br, opCode_, res.cost, kind);
        uhm_assert(token < opOfToken_.size(), "bad opcode token %llu",
                   static_cast<unsigned long long>(token));
        res.instr.op = static_cast<Op>(opOfToken_[token]);

        const OperandKinds &ops = operandsOf(res.instr.op);
        for (size_t k = 0; k < ops.size(); ++k) {
            size_t ki = static_cast<size_t>(ops[k]);
            uint64_t t = decodeField(br, tokenCodes_[ki], res.cost, kind);
            // In range: the token came out of this kind's own code.
            res.instr.operands[k] = tokens_[ki].values[t];
            res.cost.tableLookups += 1;
        }
        res.nextBitAddr = br.pos();
        return res;
    }

    void
    decodeAll(std::vector<DecodeResult> &out) const override
    {
        out.resize(bitAddrs_.size());
        BitReader br(bytes_.data(), bitSize_);
        const HuffmanDecodeKind kind = huffmanDecodeKind();
        for (size_t i = 0; i < out.size(); ++i) {
            DecodeResult &res = out[i];
            res.index = i;
            res.cost = {};
            res.instr.operands = {};

            uint64_t token = decodeField(br, opCode_, res.cost, kind);
            uhm_assert(token < opOfToken_.size(),
                       "bad opcode token %llu",
                       static_cast<unsigned long long>(token));
            res.instr.op = static_cast<Op>(opOfToken_[token]);

            const OperandKinds &ops = operandsOf(res.instr.op);
            for (size_t k = 0; k < ops.size(); ++k) {
                size_t ki = static_cast<size_t>(ops[k]);
                uint64_t t =
                    decodeField(br, tokenCodes_[ki], res.cost, kind);
                res.instr.operands[k] = tokens_[ki].values[t];
                res.cost.tableLookups += 1;
            }
            res.nextBitAddr = br.pos();
        }
    }

    uint64_t
    metadataBits() const override
    {
        uint64_t bits = opCode_.code.decodeTreeNodes() * 32 +
                        opOfToken_.size() * 8;
        for (const TokenTable &tt : tokens_)
            bits += tt.metadataBits();
        return bits;
    }

  private:
    /**
     * Decode one quantized field, charging one extraction per
     * length-class probe instead of one tree edge per bit.
     */
    uint64_t
    decodeField(BitReader &br, const QuantCode &qc, DecodeCost &cost,
                HuffmanDecodeKind kind) const
    {
        size_t before = br.pos();
        uint64_t symbol = qc.code.decode(br, nullptr, kind);
        // The cursor advanced by exactly the codeword length, so the
        // probe charge is one precomputed lookup away.
        cost.fieldExtracts += qc.probesByLen[br.pos() - before];
        return symbol;
    }

    std::vector<TokenTable> tokens_;
    std::vector<QuantCode> tokenCodes_;
    QuantCode opCode_;
    std::vector<uint8_t> opOfToken_;
    std::array<uint32_t, numOps> tokenOfOp_{};
};

} // anonymous namespace

std::unique_ptr<EncodedDir>
makeQuantizedDir(const DirProgram &program)
{
    return std::make_unique<QuantizedDir>(program);
}

} // namespace uhm
