/**
 * @file
 * Contextual encoding: per-contour operand field sizes.
 *
 * "Some economy can be achieved by using contextual information when
 * selecting field sizes; for instance, the scope rules of the HLR limit
 * the number of variables that may be referenced from within a given
 * contour. The operand specification field needs only as many bits as
 * are needed to select from amongst these variables. The field length is
 * variable but fixed within any single contour." (section 3.2)
 *
 * Depth fields use bitsFor(contour depth); slot fields use
 * bitsFor(slots visible at the already-decoded depth). The decoder must
 * consult the contour table before extracting such fields, which it pays
 * for in tableLookups — the paper's "the interpreter must keep track of
 * the various field sizes as the contour changes and refer to the current
 * field size before extracting the field."
 */

#include <algorithm>

#include "dir/encoding.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

class ContextualDir : public EncodedDir
{
  public:
    explicit ContextualDir(const DirProgram &program)
        : EncodedDir(EncodingScheme::Contextual, program)
    {
        opWidth_ = bitsFor(numOps - 1);
        // Non-contour fields are sized exactly as in the packed
        // encoding so the contextual saving is attributable to the
        // scope rules alone.
        std::vector<uint64_t> maxima = program.operandMaxima();
        auto width_of = [&](OperandKind kind) -> unsigned {
            switch (kind) {
              case OperandKind::Target:
                return bitsFor(program.instrs.size() - 1);
              case OperandKind::Proc:
                return bitsFor(std::max<size_t>(program.contours.size(),
                                                2) - 2);
              default:
                return bitsFor(maxima[static_cast<size_t>(kind)]);
            }
        };
        for (size_t k = 0; k < numOperandKinds; ++k)
            kindWidth_[k] = width_of(static_cast<OperandKind>(k));

        BitWriter bw;
        for (size_t i = 0; i < program.instrs.size(); ++i) {
            const DirInstruction &ins = program.instrs[i];
            const Contour &ctr = program.contours[program.contourOf[i]];
            bitAddrs_.push_back(bw.bitSize());
            bw.write(static_cast<uint64_t>(ins.op), opWidth_);
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                OperandKind kind = info.operands[k];
                uint64_t v = kind == OperandKind::Imm ?
                    zigzagEncode(ins.operands[k]) :
                    static_cast<uint64_t>(ins.operands[k]);
                bw.write(v, fieldWidth(ctr, kind, ins, k));
            }
        }
        bitSize_ = bw.bitSize();
        bytes_ = bw.takeBytes();
    }

    DecodeResult
    decodeAt(uint64_t bit_addr) const override
    {
        BitReader br(bytes_.data(), bitSize_);
        br.seek(bit_addr);

        DecodeResult res;
        res.index = indexOfBitAddr(bit_addr);
        const Contour &ctr =
            program_->contours[program_->contourOf[res.index]];
        // Fetching the current contour descriptor is one table lookup.
        res.cost.tableLookups += 1;

        uint64_t opv = br.read(opWidth_);
        uhm_assert(opv < numOps, "bad opcode %llu",
                   static_cast<unsigned long long>(opv));
        res.instr.op = static_cast<Op>(opv);
        res.cost.fieldExtracts += 1;

        const OperandKinds &ops = operandsOf(res.instr.op);
        for (size_t k = 0; k < ops.size(); ++k) {
            OperandKind kind = ops[k];
            unsigned width = fieldWidth(ctr, kind, res.instr, k);
            if (kind == OperandKind::Depth || kind == OperandKind::Slot) {
                // The width itself had to be looked up first.
                res.cost.tableLookups += 1;
            }
            uint64_t v = br.read(width);
            res.instr.operands[k] = kind == OperandKind::Imm ?
                zigzagDecode(v) : static_cast<int64_t>(v);
            res.cost.fieldExtracts += 1;
        }
        res.nextBitAddr = br.pos();
        return res;
    }

    uint64_t
    metadataBits() const override
    {
        // The contour table: one byte-sized slot count per depth per
        // contour, plus depth and entry words.
        uint64_t bits = 0;
        for (const Contour &c : program_->contours)
            bits += (c.slotsAtDepth.size() + 2) * 8;
        return bits;
    }

  private:
    /**
     * Width of operand @p k of @p ins inside contour @p ctr. Slot
     * widths depend on the preceding (already coded/decoded) depth
     * operand.
     */
    unsigned
    fieldWidth(const Contour &ctr, OperandKind kind,
               const DirInstruction &ins, size_t k) const
    {
        switch (kind) {
          case OperandKind::Depth:
            return bitsFor(ctr.depth);
          case OperandKind::Slot: {
            int64_t depth = ins.operands[k - 1];
            uint32_t slots = ctr.slotsAtDepth[depth];
            uhm_assert(slots >= 1, "slot field into empty depth");
            return bitsFor(slots - 1);
          }
          default:
            return kindWidth_[static_cast<size_t>(kind)];
        }
    }

    unsigned opWidth_ = 0;
    unsigned kindWidth_[numOperandKinds] = {};
};

} // anonymous namespace

std::unique_ptr<EncodedDir>
makeContextualDir(const DirProgram &program)
{
    return std::make_unique<ContextualDir>(program);
}

} // namespace uhm
