/**
 * @file
 * Raising the semantic level of a DIR (the vertical axis of Figure 1).
 *
 * "The level of a PSDER can be raised by increasing the complexity and
 * variety of the procedures ... In the case of a DIR one can,
 * analogously, increase the complexity and variety of the opcodes,
 * addressing modes and branch instructions." (section 3.2)
 *
 * raiseSemanticLevel() peephole-fuses the most common multi-instruction
 * idioms the compiler emits into single higher-level opcodes:
 *
 *   PUSHC c ; STOREL d s                      -> SETL  d s c
 *   PUSHL d s ; PUSHC c ; ADD|SUB ; STOREL d s -> INCL d s +-c
 *   PUSHL d s ; WRITE                          -> WRITEL d s
 *   PUSHL d s ; JZ t / JNZ t                   -> BRZL / BRNZL d s t
 *   PUSHL a b ; PUSHL c d                      -> PUSHL2 a b c d
 *
 * A group is fused only when no branch target, contour entry or the
 * program entry lands in its interior and all members share a contour.
 * The result is a semantically identical program with fewer, larger
 * instructions — less per-instruction interpretation overhead at the
 * cost of a bigger opcode vocabulary (more semantic routines resident),
 * exactly Figure 1's level-axis trade.
 */

#ifndef UHM_DIR_FUSION_HH
#define UHM_DIR_FUSION_HH

#include <cstdint>
#include <map>
#include <utility>

#include "dir/program.hh"

namespace uhm
{

/** What the fusion pass did. */
struct FusionStats
{
    /** Fused instructions produced, by opcode. */
    std::map<Op, uint64_t> fused;
    /** Instructions before / after. */
    size_t instrsBefore = 0;
    size_t instrsAfter = 0;

    uint64_t
    totalFused() const
    {
        uint64_t n = 0;
        for (const auto &kv : fused)
            n += kv.second;
        return n;
    }
};

/**
 * Produce the raised-level equivalent of @p program.
 * @param stats if non-null, receives what was fused
 */
DirProgram raiseSemanticLevel(const DirProgram &program,
                              FusionStats *stats = nullptr);

/**
 * Match one fusion pairing starting at instruction index @p i of
 * @p program, considering groups of up to @p max_len instructions that
 * share a contour (the pattern table in the file comment). Returns the
 * fused instruction and the group length, or length 0 when nothing
 * matches.
 *
 * Callers impose their own reachability constraints on top:
 * raiseSemanticLevel() additionally requires that no branch target or
 * entry lands in the group's interior; the tier-2 trace compiler
 * (tier/engine.cc) imposes none, because a trace is only ever entered
 * at its head — a side entry into the group's interior takes the
 * ordinary DTB path instead.
 */
std::pair<DirInstruction, size_t> matchFusePattern(
    const DirProgram &program, size_t i, size_t max_len = 4);

} // namespace uhm

#endif // UHM_DIR_FUSION_HH
