/**
 * @file
 * Binary serialization of DIR programs.
 *
 * The static representation is meant to live in storage between runs;
 * this module gives it a durable binary form: a magic/version header,
 * varint-packed program structure, and an FNV-1a checksum trailer.
 * Encoded images are not serialized directly — every encoder is a
 * deterministic function of the program, so program + scheme reproduces
 * any image bit-for-bit on load.
 */

#ifndef UHM_DIR_SERIALIZE_HH
#define UHM_DIR_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dir/program.hh"

namespace uhm
{

/** Serialize @p program to its binary form. */
std::vector<uint8_t> serializeDirProgram(const DirProgram &program);

/**
 * Reconstruct a program from @p bytes. Truncated, corrupted or
 * version-mismatched data raises FatalError; the result is validated.
 */
DirProgram deserializeDirProgram(const std::vector<uint8_t> &bytes);

/** Serialize @p program to @p path (fatal on I/O failure). */
void saveDirProgram(const DirProgram &program, const std::string &path);

/** Load a program from @p path (fatal on I/O or format failure). */
DirProgram loadDirProgram(const std::string &path);

} // namespace uhm

#endif // UHM_DIR_SERIALIZE_HH
