#include "dir/fusion.hh"

#include <set>

#include "support/logging.hh"

namespace uhm
{

namespace
{

/** Context for pattern matching at one program point. */
class Fuser
{
  public:
    explicit Fuser(const DirProgram &program) : prog_(program)
    {
        // Indices that must remain instruction starts.
        referenced_.insert(program.entry);
        for (const Contour &c : program.contours)
            referenced_.insert(c.entry);
        for (const DirInstruction &ins : program.instrs) {
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                if (info.operands[k] == OperandKind::Target) {
                    referenced_.insert(
                        static_cast<size_t>(ins.operands[k]));
                }
            }
        }
    }

    /**
     * Try to fuse the group starting at @p i.
     * @return the fused instruction and the group length, or length 0.
     */
    std::pair<DirInstruction, size_t>
    match(size_t i) const
    {
        // Longest pattern first; a pattern rejected only because a
        // branch target lands in its interior falls back to shorter
        // windows. The structural matching itself is shared with the
        // tier-2 trace compiler through matchFusePattern().
        for (size_t max_len : {size_t{4}, size_t{2}}) {
            auto [fused, len] = matchFusePattern(prog_, i, max_len);
            if (len > 0 && interiorFree(i, len))
                return {fused, len};
        }
        return {{}, 0};
    }

  private:
    /** True if no interior index of [i, i+len) is a target / entry. */
    bool
    interiorFree(size_t i, size_t len) const
    {
        for (size_t k = 1; k < len; ++k) {
            if (referenced_.count(i + k))
                return false;
        }
        return true;
    }

    const DirProgram &prog_;
    std::set<size_t> referenced_;
};

} // anonymous namespace

std::pair<DirInstruction, size_t>
matchFusePattern(const DirProgram &program, size_t i, size_t max_len)
{
    auto at = [&](size_t k) -> const DirInstruction & {
        return program.instrs[k];
    };
    auto is = [&](size_t k, Op op) { return at(k).op == op; };
    auto same_var = [&](size_t a, size_t b) {
        return at(a).operands[0] == at(b).operands[0] &&
               at(a).operands[1] == at(b).operands[1];
    };
    // Instructions [i, i+len) exist and share a contour.
    auto group_ok = [&](size_t len) {
        if (len > max_len || i + len > program.instrs.size())
            return false;
        for (size_t k = 1; k < len; ++k) {
            if (program.contourOf[i + k] != program.contourOf[i])
                return false;
        }
        return true;
    };

    // Longest pattern first: PUSHL d s; PUSHC c; ADD|SUB; STOREL d s.
    if (group_ok(4) && is(i, Op::PUSHL) && is(i + 1, Op::PUSHC) &&
        (is(i + 2, Op::ADD) || is(i + 2, Op::SUB)) &&
        is(i + 3, Op::STOREL) && same_var(i, i + 3)) {
        int64_t delta = at(i + 1).operands[0];
        if (is(i + 2, Op::SUB))
            delta = -delta;
        return {{Op::INCL, at(i).operands[0], at(i).operands[1], delta},
                4};
    }
    if (group_ok(2)) {
        if (is(i, Op::PUSHC) && is(i + 1, Op::STOREL)) {
            return {{Op::SETL, at(i + 1).operands[0],
                     at(i + 1).operands[1], at(i).operands[0]},
                    2};
        }
        if (is(i, Op::PUSHL) && is(i + 1, Op::WRITE)) {
            return {{Op::WRITEL, at(i).operands[0], at(i).operands[1]},
                    2};
        }
        if (is(i, Op::PUSHL) && is(i + 1, Op::JZ)) {
            return {{Op::BRZL, at(i).operands[0], at(i).operands[1],
                     at(i + 1).operands[0]},
                    2};
        }
        if (is(i, Op::PUSHL) && is(i + 1, Op::JNZ)) {
            return {{Op::BRNZL, at(i).operands[0], at(i).operands[1],
                     at(i + 1).operands[0]},
                    2};
        }
        if (is(i, Op::PUSHL) && is(i + 1, Op::PUSHL)) {
            return {{Op::PUSHL2, at(i).operands[0], at(i).operands[1],
                     at(i + 1).operands[0], at(i + 1).operands[1]},
                    2};
        }
    }
    return {{}, 0};
}

DirProgram
raiseSemanticLevel(const DirProgram &program, FusionStats *stats)
{
    program.validate();
    Fuser fuser(program);

    DirProgram out;
    out.name = program.name;
    out.numGlobals = program.numGlobals;
    out.contours = program.contours;

    // First pass: emit, recording old-start -> new index.
    std::vector<size_t> new_index(program.instrs.size(), SIZE_MAX);
    FusionStats local;
    local.instrsBefore = program.size();

    size_t i = 0;
    while (i < program.instrs.size()) {
        auto [fused, len] = fuser.match(i);
        new_index[i] = out.instrs.size();
        if (len > 0) {
            out.instrs.push_back(fused);
            out.contourOf.push_back(program.contourOf[i]);
            ++local.fused[fused.op];
            i += len;
        } else {
            out.instrs.push_back(program.instrs[i]);
            out.contourOf.push_back(program.contourOf[i]);
            ++i;
        }
    }

    // Second pass: retarget branches, entries, contour entries. Every
    // referenced index is a group start, so new_index is defined there.
    auto remap = [&](size_t old) {
        uhm_assert(old < new_index.size() &&
                   new_index[old] != SIZE_MAX,
                   "fusion broke a referenced index %zu", old);
        return new_index[old];
    };
    for (DirInstruction &ins : out.instrs) {
        const OpInfo &info = opInfo(ins.op);
        for (size_t k = 0; k < info.operands.size(); ++k) {
            if (info.operands[k] == OperandKind::Target) {
                ins.operands[k] = static_cast<int64_t>(
                    remap(static_cast<size_t>(ins.operands[k])));
            }
        }
    }
    out.entry = remap(program.entry);
    for (Contour &c : out.contours)
        c.entry = remap(c.entry);

    local.instrsAfter = out.size();
    if (stats)
        *stats = local;

    out.validate();
    return out;
}

} // namespace uhm
