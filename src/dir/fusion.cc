#include "dir/fusion.hh"

#include <set>

#include "support/logging.hh"

namespace uhm
{

namespace
{

/** Context for pattern matching at one program point. */
class Fuser
{
  public:
    explicit Fuser(const DirProgram &program) : prog_(program)
    {
        // Indices that must remain instruction starts.
        referenced_.insert(program.entry);
        for (const Contour &c : program.contours)
            referenced_.insert(c.entry);
        for (const DirInstruction &ins : program.instrs) {
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                if (info.operands[k] == OperandKind::Target) {
                    referenced_.insert(
                        static_cast<size_t>(ins.operands[k]));
                }
            }
        }
    }

    /**
     * Try to fuse the group starting at @p i.
     * @return the fused instruction and the group length, or length 0.
     */
    std::pair<DirInstruction, size_t>
    match(size_t i) const
    {
        // Longest pattern first: PUSHL d s; PUSHC c; ADD|SUB; STOREL d s.
        if (groupOk(i, 4) && is(i, Op::PUSHL) && is(i + 1, Op::PUSHC) &&
            (is(i + 2, Op::ADD) || is(i + 2, Op::SUB)) &&
            is(i + 3, Op::STOREL) && sameVar(i, i + 3)) {
            int64_t delta = at(i + 1).operands[0];
            if (is(i + 2, Op::SUB))
                delta = -delta;
            return {{Op::INCL, at(i).operands[0], at(i).operands[1],
                     delta},
                    4};
        }
        if (groupOk(i, 2)) {
            if (is(i, Op::PUSHC) && is(i + 1, Op::STOREL)) {
                return {{Op::SETL, at(i + 1).operands[0],
                         at(i + 1).operands[1], at(i).operands[0]},
                        2};
            }
            if (is(i, Op::PUSHL) && is(i + 1, Op::WRITE)) {
                return {{Op::WRITEL, at(i).operands[0],
                         at(i).operands[1]},
                        2};
            }
            if (is(i, Op::PUSHL) && is(i + 1, Op::JZ)) {
                return {{Op::BRZL, at(i).operands[0], at(i).operands[1],
                         at(i + 1).operands[0]},
                        2};
            }
            if (is(i, Op::PUSHL) && is(i + 1, Op::JNZ)) {
                return {{Op::BRNZL, at(i).operands[0], at(i).operands[1],
                         at(i + 1).operands[0]},
                        2};
            }
            if (is(i, Op::PUSHL) && is(i + 1, Op::PUSHL)) {
                return {{Op::PUSHL2, at(i).operands[0],
                         at(i).operands[1], at(i + 1).operands[0],
                         at(i + 1).operands[1]},
                        2};
            }
        }
        return {{}, 0};
    }

  private:
    const DirInstruction &at(size_t i) const { return prog_.instrs[i]; }

    bool is(size_t i, Op op) const { return at(i).op == op; }

    bool
    sameVar(size_t a, size_t b) const
    {
        return at(a).operands[0] == at(b).operands[0] &&
               at(a).operands[1] == at(b).operands[1];
    }

    /**
     * True if instructions [i, i+len) exist, share a contour, and no
     * interior index is a branch target / entry.
     */
    bool
    groupOk(size_t i, size_t len) const
    {
        if (i + len > prog_.instrs.size())
            return false;
        for (size_t k = 1; k < len; ++k) {
            if (prog_.contourOf[i + k] != prog_.contourOf[i])
                return false;
            if (referenced_.count(i + k))
                return false;
        }
        return true;
    }

    const DirProgram &prog_;
    std::set<size_t> referenced_;
};

} // anonymous namespace

DirProgram
raiseSemanticLevel(const DirProgram &program, FusionStats *stats)
{
    program.validate();
    Fuser fuser(program);

    DirProgram out;
    out.name = program.name;
    out.numGlobals = program.numGlobals;
    out.contours = program.contours;

    // First pass: emit, recording old-start -> new index.
    std::vector<size_t> new_index(program.instrs.size(), SIZE_MAX);
    FusionStats local;
    local.instrsBefore = program.size();

    size_t i = 0;
    while (i < program.instrs.size()) {
        auto [fused, len] = fuser.match(i);
        new_index[i] = out.instrs.size();
        if (len > 0) {
            out.instrs.push_back(fused);
            out.contourOf.push_back(program.contourOf[i]);
            ++local.fused[fused.op];
            i += len;
        } else {
            out.instrs.push_back(program.instrs[i]);
            out.contourOf.push_back(program.contourOf[i]);
            ++i;
        }
    }

    // Second pass: retarget branches, entries, contour entries. Every
    // referenced index is a group start, so new_index is defined there.
    auto remap = [&](size_t old) {
        uhm_assert(old < new_index.size() &&
                   new_index[old] != SIZE_MAX,
                   "fusion broke a referenced index %zu", old);
        return new_index[old];
    };
    for (DirInstruction &ins : out.instrs) {
        const OpInfo &info = opInfo(ins.op);
        for (size_t k = 0; k < info.operands.size(); ++k) {
            if (info.operands[k] == OperandKind::Target) {
                ins.operands[k] = static_cast<int64_t>(
                    remap(static_cast<size_t>(ins.operands[k])));
            }
        }
    }
    out.entry = remap(program.entry);
    for (Contour &c : out.contours)
        c.entry = remap(c.entry);

    local.instrsAfter = out.size();
    if (stats)
        *stats = local;

    out.validate();
    return out;
}

} // namespace uhm
