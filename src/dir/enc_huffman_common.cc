#include "dir/enc_huffman_common.hh"

namespace uhm
{

std::vector<TokenTable>
buildTokenTables(const DirProgram &program)
{
    std::vector<TokenTable> tables(numOperandKinds);

    // First pass: collect distinct values per kind.
    for (const DirInstruction &ins : program.instrs) {
        const OpInfo &info = opInfo(ins.op);
        for (size_t k = 0; k < info.operands.size(); ++k) {
            TokenTable &tt = tables[static_cast<size_t>(info.operands[k])];
            tt.used = true;
            int64_t v = ins.operands[k];
            if (tt.tokenOf.emplace(
                    v, static_cast<uint32_t>(tt.values.size())).second) {
                tt.values.push_back(v);
            }
        }
    }

    // Second pass: token frequencies, then codes.
    std::vector<std::vector<uint64_t>> freqs(numOperandKinds);
    for (size_t k = 0; k < numOperandKinds; ++k)
        freqs[k].assign(tables[k].values.size(), 0);
    for (const DirInstruction &ins : program.instrs) {
        const OpInfo &info = opInfo(ins.op);
        for (size_t k = 0; k < info.operands.size(); ++k) {
            size_t ki = static_cast<size_t>(info.operands[k]);
            ++freqs[ki][tables[ki].tokenOf.at(ins.operands[k])];
        }
    }
    for (size_t k = 0; k < numOperandKinds; ++k) {
        if (tables[k].used)
            tables[k].code = HuffmanCode::build(freqs[k]);
    }
    return tables;
}

std::vector<uint64_t>
opcodeFrequencies(const DirProgram &program)
{
    std::vector<uint64_t> freqs(numOps, 0);
    for (const DirInstruction &ins : program.instrs)
        ++freqs[static_cast<size_t>(ins.op)];
    return freqs;
}

} // namespace uhm
