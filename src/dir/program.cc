#include "dir/program.hh"

#include <algorithm>
#include <sstream>

#include "support/bitstream.hh"
#include "support/logging.hh"

namespace uhm
{

unsigned
DirProgram::maxDepth() const
{
    unsigned d = 1;
    for (const Contour &c : contours)
        d = std::max(d, c.depth);
    return d;
}

uint32_t
DirProgram::maxVisibleSlots() const
{
    uint32_t slots = 1;
    for (const Contour &c : contours)
        for (uint32_t s : c.slotsAtDepth)
            slots = std::max(slots, s);
    return slots;
}

void
DirProgram::validate() const
{
    uhm_assert(!instrs.empty(), "empty program");
    uhm_assert(contourOf.size() == instrs.size(),
               "contourOf size mismatch (%zu vs %zu)",
               contourOf.size(), instrs.size());
    uhm_assert(!contours.empty(), "no contours");
    uhm_assert(contours[0].depth == 1, "main contour must be depth 1");
    uhm_assert(entry < instrs.size(), "entry out of bounds");

    for (const Contour &c : contours) {
        uhm_assert(c.slotsAtDepth.size() == c.depth + 1,
                   "contour '%s': slotsAtDepth has %zu entries, want %u",
                   c.name.c_str(), c.slotsAtDepth.size(), c.depth + 1);
        uhm_assert(c.slotsAtDepth[0] == numGlobals,
                   "contour '%s': global slot count mismatch",
                   c.name.c_str());
        uhm_assert(c.slotsAtDepth[c.depth] == c.nlocals,
                   "contour '%s': own slot count mismatch",
                   c.name.c_str());
        uhm_assert(c.nparams <= c.nlocals,
                   "contour '%s': more params than locals",
                   c.name.c_str());
        uhm_assert(c.entry < instrs.size(),
                   "contour '%s': entry out of bounds", c.name.c_str());
    }

    for (size_t i = 0; i < instrs.size(); ++i) {
        const DirInstruction &ins = instrs[i];
        const OpInfo &info = opInfo(ins.op);
        uint32_t cid = contourOf[i];
        uhm_assert(cid < contours.size(),
                   "instr %zu: bad contour id %u", i, cid);
        const Contour &ctr = contours[cid];

        for (size_t k = 0; k < info.operands.size(); ++k) {
            int64_t v = ins.operands[k];
            switch (info.operands[k]) {
              case OperandKind::Imm:
                break;
              case OperandKind::Depth:
                uhm_assert(v >= 0 && v <= ctr.depth,
                           "instr %zu (%s): depth %lld out of contour",
                           i, info.name, static_cast<long long>(v));
                break;
              case OperandKind::Slot: {
                // Slot operands always follow a Depth operand.
                uhm_assert(k > 0 &&
                           info.operands[k - 1] == OperandKind::Depth,
                           "instr %zu: slot without depth", i);
                int64_t depth = ins.operands[k - 1];
                uhm_assert(v >= 0 &&
                           static_cast<uint64_t>(v) <
                               ctr.slotsAtDepth[depth],
                           "instr %zu (%s): slot %lld out of range at "
                           "depth %lld", i, info.name,
                           static_cast<long long>(v),
                           static_cast<long long>(depth));
                break;
              }
              case OperandKind::Target:
                uhm_assert(v >= 0 &&
                           static_cast<size_t>(v) < instrs.size(),
                           "instr %zu (%s): target %lld out of bounds",
                           i, info.name, static_cast<long long>(v));
                break;
              case OperandKind::Proc:
                uhm_assert(v >= 0 &&
                           static_cast<size_t>(v) + 1 < contours.size(),
                           "instr %zu (%s): proc %lld out of bounds",
                           i, info.name, static_cast<long long>(v));
                break;
              case OperandKind::Count:
                uhm_assert(v >= 0, "instr %zu (%s): negative count",
                           i, info.name);
                break;
              default:
                panic("instr %zu: bad operand kind", i);
            }
        }
    }
}

std::vector<uint64_t>
DirProgram::operandMaxima() const
{
    std::vector<uint64_t> maxima(numOperandKinds, 0);
    for (const DirInstruction &ins : instrs) {
        const OpInfo &info = opInfo(ins.op);
        for (size_t k = 0; k < info.operands.size(); ++k) {
            OperandKind kind = info.operands[k];
            uint64_t v = kind == OperandKind::Imm ?
                zigzagEncode(ins.operands[k]) :
                static_cast<uint64_t>(ins.operands[k]);
            size_t ki = static_cast<size_t>(kind);
            maxima[ki] = std::max(maxima[ki], v);
        }
    }
    return maxima;
}

std::string
DirProgram::disassemble() const
{
    std::ostringstream os;
    os << "; program " << name << ", " << instrs.size()
       << " instrs, " << numGlobals << " globals\n";
    for (size_t i = 0; i < instrs.size(); ++i) {
        for (const Contour &c : contours) {
            if (c.entry == i)
                os << c.name << ":\n";
        }
        os << "  " << i << ":\t" << instrs[i].toString() << "\n";
    }
    return os.str();
}

} // namespace uhm
