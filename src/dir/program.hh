/**
 * @file
 * DIR program container.
 *
 * A DirProgram is the unencoded (symbolic) form of a compiled program:
 * the instruction list plus the contour table that records, for every
 * block/procedure, how many variable slots are visible at each enclosing
 * depth. The contour table serves two masters: the contextual encoder
 * (section 3.2: "the scope rules of the HLR limit the number of variables
 * that may be referenced from within a given contour", so operand fields
 * can shrink per contour) and the machine's display-based addressing.
 */

#ifndef UHM_DIR_PROGRAM_HH
#define UHM_DIR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dir/isa.hh"

namespace uhm
{

/**
 * One contour (lexical scope): the main program or one procedure.
 * Contour 0 is always the main program at depth 1; contour p+1 is
 * procedure index p.
 */
struct Contour
{
    /** Source-level name (diagnostics only). */
    std::string name;
    /** Lexical depth; globals live at depth 0, main at depth 1. */
    unsigned depth = 1;
    /** Local slots, parameters included. */
    unsigned nlocals = 0;
    /** Parameter count (parameters occupy slots 0..nparams-1). */
    unsigned nparams = 0;
    /** DIR index of the contour's ENTER instruction. */
    size_t entry = 0;
    /** True if the procedure leaves a result on the operand stack. */
    bool isFunc = false;
    /**
     * Number of slots visible at each depth 0..depth along the static
     * chain; slotsAtDepth[0] is the global count.
     */
    std::vector<uint32_t> slotsAtDepth;
};

/** A complete DIR program in symbolic (unencoded) form. */
class DirProgram
{
  public:
    /** Program name (diagnostics only). */
    std::string name;
    /** The instruction stream. */
    std::vector<DirInstruction> instrs;
    /** Contour id of each instruction (parallel to instrs). */
    std::vector<uint32_t> contourOf;
    /** Contour table; entry 0 is the main program. */
    std::vector<Contour> contours;
    /** Number of global (depth 0) variable slots. */
    uint32_t numGlobals = 0;
    /** Index of the first instruction to execute. */
    size_t entry = 0;

    /** Number of instructions. */
    size_t size() const { return instrs.size(); }

    /** Contour of procedure index @p proc (CALLP operand). */
    const Contour &
    procContour(size_t proc) const
    {
        return contours.at(proc + 1);
    }

    /** Deepest contour depth in the program. */
    unsigned maxDepth() const;

    /**
     * Largest number of slots visible at any single depth from any
     * contour; sizes the packed encoder's slot field ("large enough to
     * specify all possible alternatives").
     */
    uint32_t maxVisibleSlots() const;

    /**
     * Check structural invariants: operand ranges, in-bounds branch
     * targets and procedure indices, contour table consistency.
     * Panics on violation (these are compiler/generator bugs).
     */
    void validate() const;

    /**
     * Largest operand value per operand kind, after zig-zag mapping of
     * immediates; drives the packed encoder's field widths.
     */
    std::vector<uint64_t> operandMaxima() const;

    /** Multi-line disassembly listing. */
    std::string disassemble() const;
};

} // namespace uhm

#endif // UHM_DIR_PROGRAM_HH
