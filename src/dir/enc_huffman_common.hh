/**
 * @file
 * Shared machinery for the frequency-based (Huffman) DIR encodings:
 * per-operand-kind token dictionaries with Huffman-coded token numbers.
 *
 * Operand values (constants, slots, targets, ...) are replaced by
 * dictionary tokens — the paper's "symbolic names ... replaced by
 * numerical tokens" taken to its coding-theoretic end: the token numbers
 * themselves are Huffman coded by static frequency.
 */

#ifndef UHM_DIR_ENC_HUFFMAN_COMMON_HH
#define UHM_DIR_ENC_HUFFMAN_COMMON_HH

#include <cstdint>
#include <map>
#include <vector>

#include "dir/program.hh"
#include "support/huffman.hh"

namespace uhm
{

/** Token dictionary + prefix code for one operand kind. */
struct TokenTable
{
    /** token -> operand value. */
    std::vector<int64_t> values;
    /** operand value -> token. */
    std::map<int64_t, uint32_t> tokenOf;
    /** Prefix code over tokens. */
    HuffmanCode code;
    /** True if this kind occurs in the program. */
    bool used = false;

    /** Bits of resident metadata (value table + decode tree). */
    uint64_t
    metadataBits() const
    {
        if (!used)
            return 0;
        // 32-bit value per token plus two 16-bit links per tree node.
        return values.size() * 32 + code.decodeTreeNodes() * 32;
    }
};

/** Build the token tables (dictionary + code) for every operand kind. */
std::vector<TokenTable> buildTokenTables(const DirProgram &program);

/** Static opcode frequencies of @p program. */
std::vector<uint64_t> opcodeFrequencies(const DirProgram &program);

} // namespace uhm

#endif // UHM_DIR_ENC_HUFFMAN_COMMON_HH
