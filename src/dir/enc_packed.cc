/**
 * @file
 * Packed encoding: fixed-width bit fields spanning word boundaries.
 *
 * "The simplest form of encoding involves the use of fields which are
 * packed together and allowed to span the boundaries of the units of
 * memory access. Typically the size of each field is fixed and large
 * enough to specify all possible alternatives." (section 3.2)
 *
 * One field width per operand kind, computed from the program's operand
 * maxima; the opcode field is just wide enough for the opcode alphabet.
 */

#include <algorithm>

#include "dir/encoding.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

class PackedDir : public EncodedDir
{
  public:
    explicit PackedDir(const DirProgram &program)
        : EncodedDir(EncodingScheme::Packed, program)
    {
        opWidth_ = bitsFor(numOps - 1);
        // Fields are "large enough to specify all possible
        // alternatives": any contour depth, any visible slot, any
        // instruction index, any procedure. Immediates and counts are
        // sized from the program's literal pool.
        std::vector<uint64_t> maxima = program.operandMaxima();
        auto width_of = [&](OperandKind kind) -> unsigned {
            switch (kind) {
              case OperandKind::Depth:
                return bitsFor(program.maxDepth());
              case OperandKind::Slot:
                return bitsFor(program.maxVisibleSlots() - 1);
              case OperandKind::Target:
                return bitsFor(program.instrs.size() - 1);
              case OperandKind::Proc:
                return bitsFor(std::max<size_t>(program.contours.size(),
                                                2) - 2);
              default:
                return bitsFor(maxima[static_cast<size_t>(kind)]);
            }
        };
        for (size_t k = 0; k < numOperandKinds; ++k)
            kindWidth_[k] = width_of(static_cast<OperandKind>(k));

        BitWriter bw;
        for (const DirInstruction &ins : program.instrs) {
            bitAddrs_.push_back(bw.bitSize());
            bw.write(static_cast<uint64_t>(ins.op), opWidth_);
            const OpInfo &info = opInfo(ins.op);
            for (size_t k = 0; k < info.operands.size(); ++k) {
                uint64_t v = info.operands[k] == OperandKind::Imm ?
                    zigzagEncode(ins.operands[k]) :
                    static_cast<uint64_t>(ins.operands[k]);
                bw.write(v, widthOf(info.operands[k]));
            }
        }
        bitSize_ = bw.bitSize();
        bytes_ = bw.takeBytes();
    }

    DecodeResult
    decodeAt(uint64_t bit_addr) const override
    {
        BitReader br(bytes_.data(), bitSize_);
        br.seek(bit_addr);

        DecodeResult res;
        res.index = indexOfBitAddr(bit_addr);

        uint64_t opv = br.read(opWidth_);
        uhm_assert(opv < numOps, "bad opcode %llu",
                   static_cast<unsigned long long>(opv));
        res.instr.op = static_cast<Op>(opv);
        res.cost.fieldExtracts += 1;

        const OperandKinds &ops = operandsOf(res.instr.op);
        for (size_t k = 0; k < ops.size(); ++k) {
            uint64_t v = br.read(widthOf(ops[k]));
            res.instr.operands[k] = ops[k] == OperandKind::Imm ?
                zigzagDecode(v) : static_cast<int64_t>(v);
            res.cost.fieldExtracts += 1;
        }
        res.nextBitAddr = br.pos();
        return res;
    }

    uint64_t
    metadataBits() const override
    {
        // One byte-sized width entry per operand kind.
        return numOperandKinds * 8;
    }

  private:
    unsigned
    widthOf(OperandKind kind) const
    {
        return kindWidth_[static_cast<size_t>(kind)];
    }

    unsigned opWidth_ = 0;
    unsigned kindWidth_[numOperandKinds] = {};
};

} // anonymous namespace

std::unique_ptr<EncodedDir>
makePackedDir(const DirProgram &program)
{
    return std::make_unique<PackedDir>(program);
}

} // namespace uhm
