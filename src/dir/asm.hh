/**
 * @file
 * Textual DIR assembly.
 *
 * The DIR is a genuine level of representation, so it deserves both
 * directions: DirProgram::disassemble() gives a human listing, and this
 * module gives a *round-trippable* assembly syntax — write DIR programs
 * directly (tests, tools, hand-tuned kernels) or dump and re-read
 * compiled ones.
 *
 * Syntax:
 * @verbatim
 *   ; comment (also '#')
 *   .program NAME
 *   .globals N
 *   .proc NAME parent=NAME locals=N params=N   ; contours, in order;
 *                                              ; parent '<main>' or a
 *                                              ; previously declared proc
 *   .in NAME             ; following instructions belong to contour NAME
 *                        ; (default <main>); the first instruction seen
 *                        ; for a contour becomes its entry
 *   .entry LABEL         ; program entry (default: first instruction)
 *   label:               ; labels name instruction addresses
 *   OPCODE operand...    ; operands: integers, 'label' for targets,
 *                        ; 'proc-name' for CALLP
 * @endverbatim
 */

#ifndef UHM_DIR_ASM_HH
#define UHM_DIR_ASM_HH

#include <string>

#include "dir/program.hh"

namespace uhm
{

/**
 * Parse DIR assembly text into a validated program.
 * Syntax or semantic errors raise FatalError with a line number.
 */
DirProgram parseDirAssembly(const std::string &text);

/**
 * Render @p program as round-trippable assembly:
 * parseDirAssembly(toDirAssembly(p)) reproduces p exactly (instructions,
 * contours, entry, globals).
 */
std::string toDirAssembly(const DirProgram &program);

} // namespace uhm

#endif // UHM_DIR_ASM_HH
