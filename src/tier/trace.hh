/**
 * @file
 * Tier-2 trace representation and tiering policy knobs.
 *
 * Rau's DTB translates one DIR instruction at a time — the binding
 * persists, but each interpreted instruction still pays one INTERP
 * lookup and one control transfer. The adaptive tier layered on top
 * (tier/engine.hh) re-translates the *hottest* regions at a coarser
 * grain: when a backedge counter in the DTB entry metadata crosses a
 * threshold, the executed DIR instruction sequence is recorded until
 * the trace closes (loop back to its head, or length cap), compiled
 * into one fused PSDER body, and stored in a trace cache above the DTB.
 * Steady-state loop iterations then pay one trace dispatch instead of
 * one DTB lookup per instruction — the two-level JIT discipline of
 * modern descendants, asked in Rau's cost vocabulary.
 */

#ifndef UHM_TIER_TRACE_HH
#define UHM_TIER_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "psder/short_isa.hh"

namespace uhm::tier
{

/** Hotness-profiling and trace-formation policy. */
struct TierConfig
{
    /**
     * Backedges into a resident DTB entry before its address is hot
     * enough to anchor a trace recording.
     */
    uint32_t hotThreshold = 8;
    /** Maximum DIR instructions recorded into one trace. */
    size_t traceCap = 64;
    /**
     * Tier-2 generation cycles per emitted short instruction
     * (constructing the fused body; the buffer store adds tauD each,
     * mirroring the tier-1 translator's g).
     */
    uint64_t gen2CyclesPerInstr = 2;
    /** Dispatch cycles per trace entry and per loop-back. */
    uint64_t dispatchCycles = 2;
    /**
     * Recording attempts per head before the head is blacklisted
     * (aborted or uninstallable traces stop being retried).
     */
    uint32_t maxRecordAttempts = 4;
};

/**
 * One step of a compiled trace: the fused PSDER body of one DIR
 * instruction — or one fusion group of several — with the trailing
 * INTERP elided. Control inside the trace is implicit (the next step
 * follows); steps whose DIR successor is computed at run time carry a
 * guard instead: the successor the semantic routine left on the operand
 * stack is popped and compared against the recorded one, and a mismatch
 * side-exits the trace to the popped address.
 */
struct TraceStep
{
    /** PUSH/CALL short instructions; never INTERP. */
    std::vector<ShortInstr> body;
    /** Pop the stack successor and compare against #expect. */
    bool guarded = false;
    /** Expected successor DIR bit address (guarded steps). */
    uint64_t expect = 0;
    /** Static successor (unguarded steps; informational). */
    uint64_t staticNext = 0;
    /**
     * DIR bit addresses this step retires, in execution order — one for
     * a plain step, several for a fused group. Preserves per-DIR
     * instruction counting and the reference trace.
     */
    std::vector<uint64_t> dirAddrs;
};

/** One compiled trace. */
struct Trace
{
    /** Anchoring DIR bit address (the loop head). */
    uint64_t head = 0;
    std::vector<TraceStep> steps;
    /** The last step's successor is the head (a looping trace). */
    bool loops = false;
    /** Successor after the last step (non-looping traces). */
    uint64_t exitAddr = 0;
    /** DIR instructions retired per full pass over the steps. */
    uint64_t dirCount = 0;
    /** Short instructions in all bodies (capacity and g2 accounting). */
    uint64_t shortCount = 0;
    /** Fusion groups the tier-2 compiler formed. */
    uint64_t fusedGroups = 0;
};

} // namespace uhm::tier

#endif // UHM_TIER_TRACE_HH
