#include "tier/engine.hh"

#include <algorithm>

#include "dir/fusion.hh"
#include "psder/staging.hh"
#include "support/logging.hh"

namespace uhm::tier
{

namespace
{

/** Lower @p staging to the trace-body form: pushes + CALL, no INTERP. */
std::vector<ShortInstr>
lowerBody(const Staging &staging)
{
    std::vector<ShortInstr> seq = lowerStaging(staging);
    uhm_assert(!seq.empty() && seq.back().op == SOp::INTERP,
               "lowered staging did not end with INTERP");
    seq.pop_back();
    return seq;
}

} // anonymous namespace

TierEngine::TierEngine(const EncodedDir &image, Dtb &dtb,
                       const TierConfig &config,
                       const TraceCacheConfig &cache_config)
    : image_(&image), dtb_(&dtb), config_(config), cache_(cache_config)
{
    uhm_assert(config_.traceCap >= 2, "trace cap below two steps");
}

uint32_t
TierEngine::attemptsOf(uint64_t head) const
{
    auto it = attempts_.find(head);
    return it == attempts_.end() ? 0 : it->second;
}

bool
TierEngine::wantsRecording(const EntryMeta &meta, uint64_t head) const
{
    return !recording_ && !meta.anchorsTrace &&
        meta.backedgeCount >= config_.hotThreshold &&
        attemptsOf(head) < config_.maxRecordAttempts;
}

void
TierEngine::beginRecording(uint64_t head)
{
    uhm_assert(!recording_, "recording already active");
    recording_ = true;
    head_ = head;
    pcs_.assign(1, head);
    succs_.assign(1, 0);
}

TierEngine::RecordOutcome
TierEngine::recordStep(uint64_t pc)
{
    uhm_assert(recording_, "recordStep without an active recording");
    // pc is the successor the previous step actually took.
    succs_.back() = pc;
    if (pc == head_)
        return closeRecording(true, pc);
    if (pcs_.size() >= config_.traceCap)
        return closeRecording(false, pc);
    // Revisiting a trace-interior address means an inner loop; tracing
    // through it would unroll it into the body. Abort and blacklist.
    if (std::find(pcs_.begin(), pcs_.end(), pc) != pcs_.end())
        return abortRecording();
    size_t idx = image_->indexOfBitAddr(pc);
    if (image_->program().instrs[idx].op == Op::HALT)
        return abortRecording();
    pcs_.push_back(pc);
    succs_.push_back(0);
    return {RecordStatus::Recording, {}};
}

TierEngine::RecordOutcome
TierEngine::abortRecording()
{
    ++aborted_;
    ++attempts_[head_];
    recording_ = false;
    pcs_.clear();
    succs_.clear();
    return {RecordStatus::Aborted, {}};
}

TierEngine::RecordOutcome
TierEngine::closeRecording(bool loops, uint64_t exit_addr)
{
    CompileResult cr = compileAndInstall(loops, exit_addr);
    recording_ = false;
    pcs_.clear();
    succs_.clear();
    if (cr.installed)
        attempts_.erase(cr.head);
    else
        ++attempts_[cr.head];
    return {RecordStatus::Closed, cr};
}

TierEngine::CompileResult
TierEngine::compileAndInstall(bool loops, uint64_t exit_addr)
{
    ++recorded_;
    const DirProgram &prog = image_->program();
    size_t n = pcs_.size();

    Trace trace;
    trace.head = head_;
    trace.loops = loops;
    trace.exitAddr = exit_addr;

    // Program index of each recorded step.
    std::vector<size_t> idx(n);
    for (size_t k = 0; k < n; ++k)
        idx[k] = image_->indexOfBitAddr(pcs_[k]);

    size_t t = 0;
    while (t < n) {
        size_t i = idx[t];
        // Length of the run of program-consecutive recorded steps
        // starting here — the window fusion may cover. (A recorded
        // successor is always the next recorded pc, so consecutive
        // indices imply taken fall-through.)
        size_t run = 1;
        while (t + run < n && idx[t + run] == i + run && run < 4)
            ++run;

        DirInstruction fused{};
        size_t flen = 0;
        if (run >= 2)
            std::tie(fused, flen) = matchFusePattern(prog, i, run);

        TraceStep step;
        Staging st;
        size_t covered;
        if (flen >= 2) {
            st = stageInstruction(fused, *image_, i);
            if (fused.op == Op::BRZL || fused.op == Op::BRNZL) {
                // stageInstruction computed the fall-through of index i;
                // the fused group occupies [i, i + flen), so the branch
                // must push the address after the whole group.
                uhm_assert(i + flen < image_->numInstrs(),
                           "fused branch group at the image end");
                st.pushes[3] = static_cast<int64_t>(
                    image_->bitAddrOf(i + flen));
            }
            covered = flen;
            ++trace.fusedGroups;
            ++fusedGroups_;
        } else {
            st = stageInstruction(prog.instrs[i], *image_, i);
            covered = 1;
        }
        uhm_assert(st.next != NextKind::Halt,
                   "HALT slipped into a recording");

        step.body = lowerBody(st);
        step.guarded = st.next == NextKind::Stack;
        uint64_t succ = succs_[t + covered - 1];
        if (step.guarded) {
            step.expect = succ;
        } else {
            step.staticNext = succ;
            uhm_assert(covered > 1 || st.nextImm == succ,
                       "static successor disagrees with the recording");
        }
        for (size_t k = 0; k < covered; ++k)
            step.dirAddrs.push_back(pcs_[t + k]);

        trace.shortCount += step.body.size();
        trace.dirCount += step.dirAddrs.size();
        trace.steps.push_back(std::move(step));
        t += covered;
    }

    CompileResult cr;
    cr.head = head_;
    cr.compiledShorts = trace.shortCount;
    cr.fusedGroups = trace.fusedGroups;
    cr.steps = trace.dirCount;
    compiledShorts_ += trace.shortCount;

    // Anchor first: a head whose DTB entry was evicted mid-recording
    // cannot hold a trace (nothing would invalidate it on replacement).
    if (!dtb_->markTraceAnchor(head_))
        return cr;
    TraceCache::InsertOutcome ins = cache_.insert(std::move(trace));
    if (ins.evicted && ins.victimHead != head_) {
        dtb_->clearTraceAnchor(ins.victimHead);
        cr.evictedTrace = true;
        cr.evictedHead = ins.victimHead;
    }
    if (!ins.retained) {
        dtb_->clearTraceAnchor(head_);
        return cr;
    }
    cr.installed = true;
    ++installed_;
    return cr;
}

TierEngine::InstallResult
TierEngine::installTranslation(uint64_t dir_addr,
                               std::vector<ShortInstr> code,
                               uint64_t now)
{
    InstallResult r;
    r.dtb = dtb_->insert(dir_addr, std::move(code), now);
    // Only a victim of our own address space can anchor a trace in
    // *this* engine's cache. A cross-tenant victim (shared-DTB mode)
    // may carry the same tag as one of our live, still-anchored traces
    // — invalidating by tag alone would destroy it.
    if (r.dtb.evicted && r.dtb.victimAsid == dtb_->asid())
        r.invalidatedTrace = cache_.invalidate(r.dtb.victimTag);
    return r;
}

bool
TierEngine::invalidateTrace(uint64_t head)
{
    return cache_.invalidate(head);
}

const Trace *
TierEngine::lookupTrace(uint64_t head)
{
    const Trace *trace = cache_.lookup(head);
    if (!trace)
        dtb_->clearTraceAnchor(head);
    return trace;
}

void
TierEngine::registerCounters(obs::Registry &registry,
                             const std::string &prefix) const
{
    registry.add(obs::joinName(prefix, "traces_recorded"), recorded_);
    registry.add(obs::joinName(prefix, "traces_installed"), installed_);
    registry.add(obs::joinName(prefix, "traces_aborted"), aborted_);
    registry.add(obs::joinName(prefix, "compiled_short_instrs"),
                 compiledShorts_);
    registry.add(obs::joinName(prefix, "fused_groups"), fusedGroups_);
    cache_.registerCounters(registry, obs::joinName(prefix, "cache"));
}

void
TierEngine::reset()
{
    cache_.invalidateAll();
    recording_ = false;
    head_ = 0;
    pcs_.clear();
    succs_.clear();
    attempts_.clear();
    resetStats();
}

void
TierEngine::resetStats()
{
    cache_.resetStats();
    recorded_.reset();
    installed_.reset();
    aborted_.reset();
    compiledShorts_.reset();
    fusedGroups_.reset();
}

} // namespace uhm::tier
