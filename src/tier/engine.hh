/**
 * @file
 * The tier engine: hotness profiling, trace recording, and the tier-2
 * translator that compiles recorded traces into fused PSDER bodies.
 *
 * Pipeline (MachineKind::Tiered):
 *
 *   profile   — every backward control transfer into a resident DTB
 *               entry bumps EntryMeta::backedgeCount; crossing
 *               TierConfig::hotThreshold starts a recording at that
 *               head.
 *   record    — the machine reports each interpreted DIR address;
 *               the recording closes when control loops back to the
 *               head or the length cap is reached, and aborts on HALT
 *               or on revisiting a trace-interior address (an inner
 *               loop — tracing through it would unroll it).
 *   compile   — each recorded instruction is re-staged and lowered
 *               with the trailing INTERP elided; consecutive
 *               fall-through instructions are fused through the same
 *               pattern table raiseSemanticLevel uses
 *               (dir/fusion.hh's matchFusePattern — a trace is only
 *               entered at its head, so no interior-reference
 *               constraint applies). Run-time-computed successors
 *               become guards that side-exit on mismatch.
 *   install   — the trace goes into the trace cache and its head's DTB
 *               entry is flagged as the anchor.
 *
 * Invalidation is correct by construction: every Tiered-mode DTB
 * insert goes through installTranslation(), which invalidates any
 * trace anchored at the evicted victim; evicting a trace from the
 * trace cache clears its anchor flag; and a head whose DTB entry
 * disappeared mid-recording simply fails to install. A trace is
 * therefore executable only while its anchoring DTB entry is resident
 * and flagged.
 */

#ifndef UHM_TIER_ENGINE_HH
#define UHM_TIER_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/dtb.hh"
#include "dir/encoding.hh"
#include "obs/counter.hh"
#include "obs/registry.hh"
#include "tier/trace.hh"
#include "tier/trace_cache.hh"

namespace uhm::tier
{

/** Profiler + recorder + tier-2 translator + trace cache. */
class TierEngine
{
  public:
    /**
     * @param image the encoded static representation (must outlive the
     *              engine)
     * @param dtb the machine's DTB (anchor flags live in its entries)
     */
    TierEngine(const EncodedDir &image, Dtb &dtb,
               const TierConfig &config,
               const TraceCacheConfig &cache_config);

    /** What one recordStep() call did to the recording. */
    enum class RecordStatus : uint8_t
    {
        Recording, ///< step appended; recording continues
        Closed,    ///< trace closed and compiled (see CompileResult)
        Aborted,   ///< recording abandoned (HALT / inner loop)
    };

    /** What the tier-2 translator produced from a closed recording. */
    struct CompileResult
    {
        /** The trace is resident and anchored. */
        bool installed = false;
        /** Head DIR bit address of the compiled trace. */
        uint64_t head = 0;
        /** Short instructions in the compiled body (feeds g2). */
        uint64_t compiledShorts = 0;
        /** Fusion groups formed. */
        uint64_t fusedGroups = 0;
        /** DIR instructions covered per pass. */
        uint64_t steps = 0;
        /** Installing evicted another trace. */
        bool evictedTrace = false;
        /** Head of the evicted trace (when evictedTrace). */
        uint64_t evictedHead = 0;
    };

    /** Outcome of one recordStep() call. */
    struct RecordOutcome
    {
        RecordStatus status = RecordStatus::Recording;
        /** Valid when status == Closed. */
        CompileResult compile;
    };

    /** A recording is active. */
    bool recording() const { return recording_; }

    /** Head of the active recording (recording() only). */
    uint64_t recordingHead() const { return head_; }

    /**
     * Should a recording start at @p head, whose resident DTB entry's
     * metadata is @p meta? True when the backedge counter is at or
     * above the threshold, no trace is anchored there yet, no other
     * recording is active, and the head is not blacklisted.
     */
    bool wantsRecording(const EntryMeta &meta, uint64_t head) const;

    /** Start recording at @p head (its execution becomes step 0). */
    void beginRecording(uint64_t head);

    /**
     * Report that the machine is about to interpret the DIR
     * instruction at @p pc while recording. Closes the trace when
     * @p pc is the head (looping) or the cap is reached (non-looping,
     * exiting to @p pc); aborts on HALT or an interior revisit.
     */
    RecordOutcome recordStep(uint64_t pc);

    /** What installTranslation did beyond the DTB insert itself. */
    struct InstallResult
    {
        Dtb::InsertOutcome dtb;
        /** The eviction invalidated the trace anchored at the victim. */
        bool invalidatedTrace = false;
    };

    /**
     * The only DTB-insert path in Tiered mode: insert @p code for
     * @p dir_addr and, when the insert evicts a trace-anchoring entry,
     * invalidate that trace — the correct-by-construction coupling of
     * the two caches. @p now (the machine's cycle count) is stamped
     * onto the new DTB entry for residency accounting; 0 when the
     * caller has no cycle source.
     */
    InstallResult installTranslation(uint64_t dir_addr,
                                     std::vector<ShortInstr> code,
                                     uint64_t now = 0);

    /**
     * The resident trace anchored at @p head, counting a trace-cache
     * hit or miss. A miss clears the (stale) anchor flag so the head
     * falls back to ordinary execution until re-recorded.
     */
    const Trace *lookupTrace(uint64_t head);

    /**
     * Invalidate the trace anchored at @p head without touching the
     * DTB — the flush path: the anchoring DTB entry is already gone,
     * so only the orphaned trace needs destroying. @return true when a
     * trace was removed.
     */
    bool invalidateTrace(uint64_t head);

    TraceCache &cache() { return cache_; }
    const TraceCache &cache() const { return cache_; }
    const TierConfig &config() const { return config_; }

    uint64_t tracesRecorded() const { return recorded_.value(); }
    uint64_t tracesInstalled() const { return installed_.value(); }
    uint64_t tracesAborted() const { return aborted_.value(); }
    /** Total short instructions the tier-2 translator emitted. */
    uint64_t compiledShortInstrs() const { return compiledShorts_.value(); }

    /**
     * Publish counters under "<prefix>.traces_recorded",
     * "<prefix>.traces_installed", "<prefix>.traces_aborted",
     * "<prefix>.compiled_short_instrs", "<prefix>.fused_groups" and
     * the trace cache's under "<prefix>.cache.*".
     */
    void registerCounters(obs::Registry &registry,
                          const std::string &prefix) const;

    /** Drop all traces, recording state, blacklist and counters. */
    void reset();

    /**
     * Reset the engine's and the trace cache's counters only. Resident
     * traces, the blacklist and any active recording survive — the
     * counterpart of Dtb::resetStats for a mid-run stats epoch.
     */
    void resetStats();

  private:
    RecordOutcome closeRecording(bool loops, uint64_t exit_addr);
    RecordOutcome abortRecording();
    /** Compile the recorded steps and install the trace. */
    CompileResult compileAndInstall(bool loops, uint64_t exit_addr);
    uint32_t attemptsOf(uint64_t head) const;

    const EncodedDir *image_;
    Dtb *dtb_;
    TierConfig config_;
    TraceCache cache_;

    bool recording_ = false;
    uint64_t head_ = 0;
    /** Recorded DIR bit addresses, head first. */
    std::vector<uint64_t> pcs_;
    /** Actual successor of each recorded step (filled one step late). */
    std::vector<uint64_t> succs_;
    /** Failed recording attempts per head (blacklist). */
    std::map<uint64_t, uint32_t> attempts_;

    obs::Counter recorded_;
    obs::Counter installed_;
    obs::Counter aborted_;
    obs::Counter compiledShorts_;
    obs::Counter fusedGroups_;
};

} // namespace uhm::tier

#endif // UHM_TIER_ENGINE_HH
