#include "tier/trace_cache.hh"

#include "support/logging.hh"

namespace uhm::tier
{

TraceCache::TraceCache(const TraceCacheConfig &config)
    : config_(config), rng_(config.seed)
{
    uhm_assert(config.unitShortInstrs >= 1, "unit of allocation empty");
    // Round the unit size up to whole bytes (same argument as the DTB:
    // flooring would undersize the unit and overcommit the buffer).
    uint64_t unit_bits =
        uint64_t{config.unitShortInstrs} * shortInstrBits;
    uint64_t unit_bytes = (unit_bits + 7) / 8;
    unitsTotal_ = config.capacityBytes / unit_bytes;
    uhm_assert(unitsTotal_ >= 1, "trace cache smaller than one unit");

    // One tag entry per unit: the tag array can never run out before
    // the unit budget does.
    numEntries_ = unitsTotal_;
    // 0 = fully associative; a tiny cache clamps the requested ways to
    // the entry count instead of refusing to exist.
    assoc_ = config.assoc == 0 ||
             config.assoc > numEntries_ ?
        static_cast<unsigned>(numEntries_) : config.assoc;
    numSets_ = numEntries_ / assoc_;
    uhm_assert(numSets_ >= 1, "no sets");
    numEntries_ = numSets_ * assoc_;

    entries_.assign(numEntries_, Entry{});
    repl_.reserve(numSets_);
    for (uint64_t s = 0; s < numSets_; ++s)
        repl_.emplace_back(assoc_, config.policy, &rng_);
}

uint64_t
TraceCache::setOf(uint64_t head) const
{
    uint64_t h = head * 0x9e3779b97f4a7c15ull;
    return (h >> 32) % numSets_;
}

TraceCache::Entry *
TraceCache::findEntry(uint64_t head)
{
    uint64_t set = setOf(head);
    Entry *set_entries = &entries_[set * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &e = set_entries[way];
        if (e.meta.valid && e.meta.tag == head && e.meta.asid == asid_)
            return &e;
    }
    return nullptr;
}

const Trace *
TraceCache::lookup(uint64_t head)
{
    uint64_t set = setOf(head);
    Entry *set_entries = &entries_[set * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &e = set_entries[way];
        if (e.meta.valid && e.meta.tag == head &&
            e.meta.asid == asid_) {
            repl_[set].touch(way);
            ++hits_;
            ++e.meta.useCount;
            return &e.trace;
        }
    }
    ++misses_;
    return nullptr;
}

const Trace *
TraceCache::find(uint64_t head) const
{
    Entry *e = const_cast<TraceCache *>(this)->findEntry(head);
    return e ? &e->trace : nullptr;
}

bool
TraceCache::refOf(uint64_t head, uint32_t &idx_out,
                  uint32_t &gen_out) const
{
    const Entry *e = const_cast<TraceCache *>(this)->findEntry(head);
    if (!e)
        return false;
    idx_out = static_cast<uint32_t>(e - entries_.data());
    gen_out = e->meta.gen;
    return true;
}

std::vector<uint32_t>
TraceCache::setOccupancy() const
{
    std::vector<uint32_t> occupancy(numSets_, 0);
    for (uint64_t i = 0; i < numEntries_; ++i) {
        if (entries_[i].meta.valid)
            ++occupancy[i / assoc_];
    }
    return occupancy;
}

TraceCache::InsertOutcome
TraceCache::insert(Trace trace)
{
    unsigned units_needed = static_cast<unsigned>(
        (trace.shortCount + config_.unitShortInstrs - 1) /
        config_.unitShortInstrs);
    if (units_needed == 0)
        units_needed = 1;

    InsertOutcome out;
    out.unitsNeeded = units_needed;

    uint64_t set = setOf(trace.head);
    Entry *set_entries = &entries_[set * assoc_];

    // A resident trace with the same head is always its own victim
    // (re-installation replaces it); otherwise prefer an invalid way,
    // then the replacement array's choice.
    unsigned way = assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set_entries[w].meta.valid &&
            set_entries[w].meta.tag == trace.head &&
            set_entries[w].meta.asid == asid_) {
            way = w;
            break;
        }
    }
    if (way == assoc_) {
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!set_entries[w].meta.valid) {
                way = w;
                break;
            }
        }
    }
    Entry *victim = nullptr;
    if (way == assoc_) {
        way = repl_[set].victim();
        victim = &set_entries[way];
    } else if (set_entries[way].meta.valid) {
        victim = &set_entries[way];
    }

    // Check the unit budget before destroying anything: the victim's
    // units count toward the supply, but if the budget still cannot
    // cover the trace, the resident victim survives.
    uint64_t victim_release =
        victim && victim->meta.valid ? victim->meta.units : 0;
    if (units_needed > unitsTotal_ - unitsUsed_ + victim_release) {
        ++rejects_;
        return out;
    }

    if (victim) {
        out.evicted = true;
        out.victimHead = victim->meta.tag;
        evict(*victim);
        ++evictions_;
    }

    Entry &e = set_entries[way];
    e.meta.reset();
    e.meta.tag = trace.head;
    e.meta.asid = asid_;
    e.meta.valid = true;
    e.meta.units = units_needed;
    e.trace = std::move(trace);
    unitsUsed_ += units_needed;
    repl_[set].fill(way);
    ++inserts_;
    out.retained = true;
    return out;
}

bool
TraceCache::invalidate(uint64_t head)
{
    Entry *e = findEntry(head);
    if (!e)
        return false;
    evict(*e);
    ++invalidations_;
    return true;
}

void
TraceCache::invalidateAll()
{
    for (Entry &e : entries_) {
        if (e.meta.valid)
            evict(e);
    }
}

void
TraceCache::evict(Entry &entry)
{
    uhm_assert(unitsUsed_ >= entry.meta.units,
               "trace-cache unit accounting underflow");
    unitsUsed_ -= entry.meta.units;
    entry.meta.reset();
    entry.trace = Trace{};
}

void
TraceCache::registerCounters(obs::Registry &registry,
                             const std::string &prefix) const
{
    registry.add(obs::joinName(prefix, "hits"), hits_);
    registry.add(obs::joinName(prefix, "misses"), misses_);
    registry.add(obs::joinName(prefix, "inserts"), inserts_);
    registry.add(obs::joinName(prefix, "evictions"), evictions_);
    registry.add(obs::joinName(prefix, "rejects"), rejects_);
    registry.add(obs::joinName(prefix, "invalidations"), invalidations_);
}

void
TraceCache::resetStats()
{
    hits_.reset();
    misses_.reset();
    inserts_.reset();
    evictions_.reset();
    rejects_.reset();
    invalidations_.reset();
    // Same epoch rule as Dtb::resetStats: per-entry observability state
    // restarts, resident traces (and their unit footprint) survive.
    for (Entry &e : entries_) {
        if (e.meta.valid) {
            e.meta.useCount = 0;
            e.meta.insertCycle = 0;
        }
    }
}

} // namespace uhm::tier
