/**
 * @file
 * The trace cache: a set-associative store of compiled tier-2 traces,
 * organized like the DTB one level up.
 *
 * Same shape as core/dtb.hh — an associative tag array over DIR bit
 * addresses (trace heads), per-set recency replacement, and a
 * buffer-array capacity accounted in fixed allocation units — but the
 * payload is a whole compiled trace rather than one instruction's
 * translation. The per-entry bookkeeping block is the shared EntryMeta
 * (core/entry_meta.hh) rather than a second hand-rolled copy.
 *
 * Capacity is a global unit budget: a trace needing more units than the
 * free pool plus what its victim would release is simply not retained
 * (the loop still runs through the ordinary DTB path), mirroring the
 * DTB's reject-preserves-the-resident-victim discipline.
 */

#ifndef UHM_TIER_TRACE_CACHE_HH
#define UHM_TIER_TRACE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/entry_meta.hh"
#include "mem/replacement.hh"
#include "obs/counter.hh"
#include "obs/registry.hh"
#include "support/rng.hh"
#include "tier/trace.hh"

namespace uhm::tier
{

/** Trace-cache geometry and policy. */
struct TraceCacheConfig
{
    /** Buffer capacity in bytes. */
    uint64_t capacityBytes = 8192;
    /** Unit of allocation, in short instructions. */
    unsigned unitShortInstrs = 32;
    /** Associativity of the tag array; 0 = fully associative. */
    unsigned assoc = 4;
    ReplPolicy policy = ReplPolicy::LRU;
    /** Seed for the Random replacement policy. */
    uint64_t seed = 19;
};

/** Set-associative cache of compiled traces, keyed by head address. */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheConfig &config);

    /**
     * Present @p head to the tag array: hash to a set, search, update
     * recency. Counts a hit or a miss. The returned trace is valid
     * until the next insert/invalidate.
     */
    const Trace *lookup(uint64_t head);

    /** The resident trace for @p head, or null. No accounting. */
    const Trace *find(uint64_t head) const;

    /**
     * Locate the resident trace for @p head and report its entry index
     * and content generation (EntryMeta::gen) so the fast dispatch path
     * can key a lowered run image to this residency. No accounting —
     * callers pair it with the lookup() that just hit. @return false
     * when @p head is not resident.
     */
    bool refOf(uint64_t head, uint32_t &idx_out,
               uint32_t &gen_out) const;

    /** What TraceCache::insert did. */
    struct InsertOutcome
    {
        /** The trace is now resident. */
        bool retained = false;
        /** A resident trace was destroyed to make room. */
        bool evicted = false;
        /** Head of the destroyed trace (when evicted). */
        uint64_t victimHead = 0;
        /** Allocation units the new trace needs. */
        unsigned unitsNeeded = 1;
    };

    /**
     * Install @p trace, keyed by its head. When the set is full the
     * replacement victim is evicted — unless the unit budget (counting
     * what the victim would release) still cannot cover the trace, in
     * which case the insert is rejected and the victim survives.
     */
    InsertOutcome insert(Trace trace);

    /**
     * Remove the trace anchored at @p head (its anchoring DTB entry was
     * evicted). @return true when a trace was actually removed.
     */
    bool invalidate(uint64_t head);

    /** Remove every trace (program image replaced / machine reset). */
    void invalidateAll();

    /**
     * Select the address space subsequent lookups, inserts and
     * invalidations run in (mirrors Dtb::setAsid; EntryMeta::asid is
     * the shared tag-extension). Single-tenant machines leave it 0.
     */
    void setAsid(uint32_t asid) { asid_ = asid; }

    /** The current address-space ID. */
    uint32_t asid() const { return asid_; }

    uint64_t hits() const { return hits_.value(); }
    uint64_t misses() const { return misses_.value(); }

    /** Hit ratio so far (the tier's h_T lookup term); 1.0 untouched. */
    double
    hitRatio() const
    {
        uint64_t total = hits_.value() + misses_.value();
        return total == 0 ? 1.0 :
            static_cast<double>(hits_.value()) /
            static_cast<double>(total);
    }

    uint64_t numEntries() const { return numEntries_; }
    uint64_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    uint64_t unitsTotal() const { return unitsTotal_; }
    uint64_t unitsUsed() const { return unitsUsed_; }

    /**
     * Valid traces per set, numSets() elements in set order. A fresh
     * snapshot per call — for the interval sampler and tests only.
     */
    std::vector<uint32_t> setOccupancy() const;

    /**
     * Publish counters into @p registry under "<prefix>.hits",
     * "<prefix>.misses", "<prefix>.inserts", "<prefix>.evictions",
     * "<prefix>.rejects", "<prefix>.invalidations".
     */
    void registerCounters(obs::Registry &registry,
                          const std::string &prefix) const;

    /** Reset all counters (contents retained). */
    void resetStats();

    const TraceCacheConfig &config() const { return config_; }

  private:
    struct Entry
    {
        /** Shared bookkeeping block (core/entry_meta.hh). */
        EntryMeta meta;
        Trace trace;
    };

    uint64_t setOf(uint64_t head) const;
    Entry *findEntry(uint64_t head);
    void evict(Entry &entry);

    TraceCacheConfig config_;
    uint64_t numEntries_;
    uint64_t numSets_;
    unsigned assoc_;
    uint64_t unitsTotal_;
    uint64_t unitsUsed_ = 0;
    /** Current address-space ID (0 for single-tenant machines). */
    uint32_t asid_ = 0;
    Rng rng_;
    /** entries_[set * assoc_ + way]. */
    std::vector<Entry> entries_;
    std::vector<ReplacementSet> repl_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter inserts_;
    obs::Counter evictions_;
    obs::Counter rejects_;
    obs::Counter invalidations_;
};

} // namespace uhm::tier

#endif // UHM_TIER_TRACE_CACHE_HH
