#include "workload/samples.hh"

#include "support/logging.hh"

namespace uhm::workload
{

namespace
{

std::vector<SampleProgram>
buildSamples()
{
    std::vector<SampleProgram> samples;

    samples.push_back({"sieve", R"(
program sieve;
var flags[1000], n, i, j, count;
begin
  n := 1000;
  i := 0;
  while i < n do flags[i] := 1; i := i + 1; od;
  flags[0] := 0;
  flags[1] := 0;
  i := 2;
  while i * i < n do
    if flags[i] = 1 then
      j := i * i;
      while j < n do flags[j] := 0; j := j + i; od;
    fi;
    i := i + 1;
  od;
  count := 0;
  i := 0;
  while i < n do count := count + flags[i]; i := i + 1; od;
  write count;
end.
)", {}, {168}});

    samples.push_back({"fib", R"(
program fib;
func fib(n);
begin
  if n < 2 then return n; fi;
  return fib(n - 1) + fib(n - 2);
end;
begin
  write fib(10);
  write fib(15);
end.
)", {}, {55, 610}});

    samples.push_back({"ack", R"(
program ack;
func ack(m, n);
begin
  if m = 0 then return n + 1; fi;
  if n = 0 then return ack(m - 1, 1); fi;
  return ack(m - 1, ack(m, n - 1));
end;
begin
  write ack(2, 3);
  write ack(3, 3);
end.
)", {}, {9, 61}});

    samples.push_back({"gcd", R"(
program gcd;
func gcd(a, b);
var t;
begin
  while b > 0 do
    t := a % b;
    a := b;
    b := t;
  od;
  return a;
end;
begin
  write gcd(1071, 462);
  write gcd(123456, 7890);
end.
)", {}, {21, 6}});

    samples.push_back({"collatz", R"(
program collatz;
var n, steps;
begin
  n := 27;
  steps := 0;
  while n <> 1 do
    if n % 2 = 0 then n := n / 2; else n := 3 * n + 1; fi;
    steps := steps + 1;
  od;
  write steps;
end.
)", {}, {111}});

    samples.push_back({"power", R"(
program power;
func modpow(b, e, m);
var r;
begin
  r := 1;
  b := b % m;
  while e > 0 do
    if e % 2 = 1 then r := r * b % m; fi;
    b := b * b % m;
    e := e / 2;
  od;
  return r;
end;
begin
  write modpow(7, 128, 1000);
end.
)", {}, {801}});

    samples.push_back({"matmul", R"(
program matmul;
var a[64], b[64], c[64], i, j, k, s, n;
begin
  n := 8;
  i := 0;
  while i < 64 do
    a[i] := i % 7 + 1;
    b[i] := i % 5 + 1;
    i := i + 1;
  od;
  i := 0;
  while i < n do
    j := 0;
    while j < n do
      s := 0;
      k := 0;
      while k < n do
        s := s + a[i * n + k] * b[k * n + j];
        k := k + 1;
      od;
      c[i * n + j] := s;
      j := j + 1;
    od;
    i := i + 1;
  od;
  s := 0;
  i := 0;
  while i < 64 do s := s + c[i]; i := i + 1; od;
  write s;
end.
)", {}, {}});

    samples.push_back({"qsort", R"(
program qsort;
var a[200], n, i, j;
proc swap(i, j);
var t;
begin
  t := a[i];
  a[i] := a[j];
  a[j] := t;
end;
proc sort(lo, hi);
var p, i, j;
begin
  if lo >= hi then return; fi;
  p := a[hi];
  i := lo;
  j := lo;
  while j < hi do
    if a[j] < p then call swap(i, j); i := i + 1; fi;
    j := j + 1;
  od;
  call swap(i, hi);
  call sort(lo, i - 1);
  call sort(i + 1, hi);
end;
begin
  n := 200;
  i := 0;
  while i < n do a[i] := (i * 37 + 11) % 97; i := i + 1; od;
  call sort(0, n - 1);
  i := 0;
  j := 1;
  while i < n - 1 do
    if a[i] > a[i + 1] then j := 0; fi;
    i := i + 1;
  od;
  write j;
  write a[0];
  write a[199];
end.
)", {}, {}});

    samples.push_back({"queens", R"(
program queens;
var n, count, cols[16], d1[32], d2[32];
proc place(r);
var c;
begin
  if r = n then count := count + 1; return; fi;
  c := 0;
  while c < n do
    if cols[c] = 0 and d1[r + c] = 0 and d2[r - c + n] = 0 then
      cols[c] := 1;
      d1[r + c] := 1;
      d2[r - c + n] := 1;
      call place(r + 1);
      cols[c] := 0;
      d1[r + c] := 0;
      d2[r - c + n] := 0;
    fi;
    c := c + 1;
  od;
end;
begin
  n := 6;
  count := 0;
  call place(0);
  write count;
end.
)", {}, {4}});

    samples.push_back({"nest", R"(
program nest;
var g, acc;
proc outer(k);
var u;
func inner(m);
var w;
begin
  w := m + u;
  return w + g;
end;
begin
  u := k * 3;
  acc := acc + inner(k + 1);
end;
begin
  g := 100;
  acc := 0;
  call outer(1);
  call outer(2);
  g := 200;
  call outer(3);
  write acc;
end.
)", {}, {427}});

    samples.push_back({"echo", R"(
program echo;
var n, i, v, sum;
begin
  read n;
  sum := 0;
  i := 0;
  while i < n do
    read v;
    sum := sum + v;
    write v * 2;
    i := i + 1;
  od;
  write sum;
end.
)", {3, 5, 7, 9}, {10, 14, 18, 21}});

    samples.push_back({"hanoi", R"(
program hanoi;
var moves;
proc move(n, src, dst, via);
begin
  if n > 0 then
    call move(n - 1, src, via, dst);
    moves := moves + 1;
    call move(n - 1, via, dst, src);
  fi;
end;
begin
  moves := 0;
  call move(10, 1, 3, 2);
  write moves;
end.
)", {}, {1023}});

    samples.push_back({"tak", R"(
program tak;
func tak(x, y, z);
begin
  if y < x then
    return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
  fi;
  return z;
end;
begin
  write tak(18, 12, 6);
end.
)", {}, {7}});

    samples.push_back({"bsearch", R"(
program bsearch;
var a[128], size, i, hits;
func find(key);
var lo, hi, mid;
begin
  lo := 0;
  hi := size - 1;
  while lo <= hi do
    mid := (lo + hi) / 2;
    if a[mid] = key then return mid; fi;
    if a[mid] < key then lo := mid + 1; else hi := mid - 1; fi;
  od;
  return -1;
end;
begin
  size := 128;
  # a[i] = 3 i + 1: sorted, with gaps of 3.
  i := 0;
  while i < size do a[i] := 3 * i + 1; i := i + 1; od;
  # Probe every value in [0, 3 size); exactly size are present.
  hits := 0;
  i := 0;
  while i < 3 * size do
    if find(i) >= 0 then hits := hits + 1; fi;
    i := i + 1;
  od;
  write hits;
end.
)", {}, {128}});

    samples.push_back({"adler", R"(
program adler;
const mult = 31, modp = 65521, rounds = 200;
var h, i;
func mix(acc, v);
begin
  return (acc * mult + v) % modp;
end;
begin
  h := 1;
  i := 0;
  repeat
    h := mix(h, i * i + 7);
    i := i + 1;
  until i >= rounds;
  for i := 1 to 5 do
    h := mix(h, i);
  od;
  write h;
end.
)", {}, {}});

    // qsort: a holds each residue of (37 i + 11) mod 97 for 200 i's; 37
    // is coprime to 97 so the minimum residue is 0 and the maximum 96.
    for (SampleProgram &s : samples) {
        if (s.name == "qsort")
            s.expected = {1, 0, 96};
    }

    return samples;
}

} // anonymous namespace

const std::vector<SampleProgram> &
samplePrograms()
{
    static const std::vector<SampleProgram> samples = buildSamples();
    return samples;
}

const SampleProgram &
sampleByName(const std::string &name)
{
    for (const SampleProgram &s : samplePrograms()) {
        if (s.name == name)
            return s;
    }
    fatal("unknown sample program '%s'", name.c_str());
}

} // namespace uhm::workload
