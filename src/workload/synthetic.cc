#include "workload/synthetic.hh"

#include "support/logging.hh"
#include "support/rng.hh"

namespace uhm::workload
{

namespace
{

/** Emits random straight-line, stack-balanced body instructions. */
class BodyGen
{
  public:
    BodyGen(DirProgram &prog, Rng &rng, const SyntheticConfig &cfg)
        : prog_(prog), rng_(rng), cfg_(cfg)
    {}

    /** Emit roughly @p count instructions, ending at stack depth 0. */
    void
    emitBody(uint32_t count)
    {
        for (uint32_t i = 0; i < count; ++i)
            emitOne();
        while (depth_ > 0) {
            if (rng_.chance(0.5))
                emit({Op::STOREL, 0, dataSlot()});
            else
                emit({Op::DROP});
            --depth_;
        }
    }

  private:
    int64_t
    dataSlot()
    {
        // Slots 0 and 1 are loop counters; the body uses the rest.
        return 2 + static_cast<int64_t>(rng_.below(cfg_.numGlobals - 2));
    }

    void
    emit(DirInstruction ins)
    {
        prog_.instrs.push_back(ins);
        prog_.contourOf.push_back(0);
    }

    void
    emitOne()
    {
        if (rng_.chance(cfg_.semworkDensity)) {
            emit({Op::SEMWORK,
                  static_cast<int64_t>(rng_.below(cfg_.semworkWeight + 1))});
            return;
        }
        // Pick an action valid at the current stack depth.
        for (;;) {
            switch (rng_.below(12)) {
              case 0:
                emit({Op::PUSHC, rng_.range(-100, 100)});
                ++depth_;
                return;
              case 1:
                emit({Op::PUSHL, 0, dataSlot()});
                ++depth_;
                return;
              case 2: {
                if (depth_ < 2)
                    break;
                static const Op binops[] = {
                    Op::ADD, Op::SUB, Op::MUL, Op::AND, Op::OR, Op::XOR,
                    Op::EQ, Op::NE, Op::LT, Op::LE, Op::GT, Op::GE,
                };
                emit({binops[rng_.below(std::size(binops))]});
                --depth_;
                return;
              }
              case 3:
                if (depth_ < 1)
                    break;
                emit({Op::STOREL, 0, dataSlot()});
                --depth_;
                return;
              case 4:
                if (depth_ < 1)
                    break;
                emit({rng_.chance(0.5) ? Op::NEG : Op::NOT});
                return;
              case 5:
                if (depth_ < 1 || depth_ > 6)
                    break;
                emit({Op::DUP});
                ++depth_;
                return;
              case 6:
                if (depth_ < 2)
                    break;
                emit({Op::SWAP});
                return;
              case 7:
                if (depth_ < 1)
                    break;
                // Division by a known-nonzero constant.
                emit({Op::PUSHC, rng_.range(1, 16)});
                emit({rng_.chance(0.5) ? Op::DIV : Op::MOD});
                return;
              case 8:
                // Indirect load of a global through ADDR.
                emit({Op::ADDR, 0, dataSlot()});
                emit({Op::LOADI});
                ++depth_;
                return;
              case 9:
                if (depth_ < 1)
                    break;
                // Indirect store of the top of stack.
                emit({Op::ADDR, 0, dataSlot()});
                emit({Op::STOREI});
                --depth_;
                return;
              case 10:
                if (depth_ < 1)
                    break;
                emit({Op::DROP});
                --depth_;
                return;
              case 11:
                // Shift by a small known amount.
                if (depth_ < 1)
                    break;
                emit({Op::PUSHC, rng_.range(0, 7)});
                emit({rng_.chance(0.5) ? Op::SHL : Op::SHR});
                return;
            }
        }
    }

    DirProgram &prog_;
    Rng &rng_;
    const SyntheticConfig &cfg_;
    int depth_ = 0;
};

} // anonymous namespace

DirProgram
generateSynthetic(const SyntheticConfig &cfg)
{
    uhm_assert(cfg.numGlobals >= 3, "need at least 3 globals");
    uhm_assert(cfg.numLoops >= 1, "need at least one loop");

    Rng rng(cfg.seed);
    DirProgram prog;
    prog.name = "synthetic";
    prog.numGlobals = cfg.numGlobals;

    Contour main_ctr;
    main_ctr.name = "<main>";
    main_ctr.depth = 1;
    main_ctr.slotsAtDepth = {cfg.numGlobals, 0};
    prog.contours.push_back(main_ctr);

    auto emit = [&](DirInstruction ins) {
        prog.instrs.push_back(ins);
        prog.contourOf.push_back(0);
        return prog.instrs.size() - 1;
    };
    auto patch = [&](size_t at) {
        prog.instrs[at].operands[0] =
            static_cast<int64_t>(prog.instrs.size());
    };

    prog.entry = emit({Op::ENTER, 1, 0, 0});
    prog.contours[0].entry = prog.entry;

    // Outer repeat loop: global slot 0 counts down.
    emit({Op::PUSHC, cfg.outerRepeats});
    emit({Op::STOREL, 0, 0});
    size_t outer_top = prog.instrs.size();
    emit({Op::PUSHL, 0, 0});
    size_t outer_jz = emit({Op::JZ, 0});

    BodyGen body(prog, rng, cfg);
    for (uint32_t l = 0; l < cfg.numLoops; ++l) {
        // Inner loop: global slot 1 counts down.
        emit({Op::PUSHC, cfg.iterations});
        emit({Op::STOREL, 0, 1});
        size_t top = prog.instrs.size();
        emit({Op::PUSHL, 0, 1});
        size_t jz = emit({Op::JZ, 0});
        body.emitBody(cfg.bodyInstrs);
        emit({Op::PUSHL, 0, 1});
        emit({Op::PUSHC, 1});
        emit({Op::SUB});
        emit({Op::STOREL, 0, 1});
        emit({Op::JMP, static_cast<int64_t>(top)});
        patch(jz);
    }

    emit({Op::PUSHL, 0, 0});
    emit({Op::PUSHC, 1});
    emit({Op::SUB});
    emit({Op::STOREL, 0, 0});
    emit({Op::JMP, static_cast<int64_t>(outer_top)});
    patch(outer_jz);

    // Checksum: write a few data globals.
    for (int64_t slot = 2; slot < 6 && slot < cfg.numGlobals; ++slot) {
        emit({Op::PUSHL, 0, slot});
        emit({Op::WRITE});
    }
    emit({Op::HALT});

    prog.validate();
    return prog;
}

} // namespace uhm::workload
