/**
 * @file
 * Synthetic DIR workload generator.
 *
 * Section 7's parameters are "very dependent upon the type of program";
 * the 1978 statistics are unavailable, so this generator produces DIR
 * programs with *controllable* behavior instead:
 *
 *  - the instruction working set (number of loops x body size) sets the
 *    DTB/cache hit ratios h_D and h_c,
 *  - SEMWORK density and weight set the semantic time x,
 *  - the encoding scheme chosen downstream sets the decode time d.
 *
 * Programs are plain structured loop nests over global scalars with
 * balanced stack discipline, validated by DirProgram::validate() and
 * executable on every machine configuration. Generation is fully
 * deterministic in the seed.
 */

#ifndef UHM_WORKLOAD_SYNTHETIC_HH
#define UHM_WORKLOAD_SYNTHETIC_HH

#include <cstdint>

#include "dir/program.hh"

namespace uhm::workload
{

/** Generator knobs. */
struct SyntheticConfig
{
    /** Distinct loop bodies executed in sequence (phases). */
    uint32_t numLoops = 4;
    /** Approximate DIR instructions per loop body. */
    uint32_t bodyInstrs = 32;
    /** Iterations of each loop. */
    uint32_t iterations = 100;
    /** Probability that a body slot is a SEMWORK instruction. */
    double semworkDensity = 0.2;
    /** SEMWORK spin count (each iteration costs ~4 micro-cycles). */
    uint32_t semworkWeight = 4;
    /** Global scalar pool the body reads and writes. */
    uint32_t numGlobals = 24;
    /** Times the whole loop sequence is repeated (outer phases). */
    uint32_t outerRepeats = 1;
    uint64_t seed = 42;
};

/** Generate a validated synthetic DIR program. */
DirProgram generateSynthetic(const SyntheticConfig &config);

} // namespace uhm::workload

#endif // UHM_WORKLOAD_SYNTHETIC_HH
