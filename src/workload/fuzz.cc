#include "workload/fuzz.hh"

#include <sstream>
#include <vector>

#include "support/rng.hh"

namespace uhm::workload
{

namespace
{

/** A variable visible to the generator. */
struct FuzzVar
{
    std::string name;
    /** 0 for scalars. */
    unsigned arraySize = 0;
};

/** A callable procedure. */
struct FuzzProc
{
    std::string name;
    unsigned nparams = 0;
    bool isFunc = false;
};

class Generator
{
  public:
    explicit Generator(const FuzzConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
    {}

    std::string
    run()
    {
        std::ostringstream os;
        os << "program fuzz" << cfg_.seed << ";\n";

        // Globals: scalars, arrays, and one dedicated loop counter per
        // possible simultaneous nesting level per block.
        for (unsigned i = 0; i < cfg_.numGlobals; ++i)
            globals_.push_back({"g" + std::to_string(i), 0});
        for (unsigned i = 0; i < cfg_.numArrays; ++i) {
            globals_.push_back(
                {"arr" + std::to_string(i),
                 static_cast<unsigned>(2 + rng_.below(6))});
        }
        // Procedures: each may call only earlier ones (acyclic).
        std::ostringstream procs_src;
        for (unsigned p = 0; p < cfg_.numProcs; ++p)
            emitProc(procs_src, p);

        // Main body (generated before its var list so the loop counters
        // it allocates can be declared).
        std::ostringstream body;
        unsigned first_counter = counterId_;
        std::vector<FuzzVar> scope = globals_;
        emitBlockBody(body, scope, 0, true);
        for (unsigned i = 0; i < 2 && i < cfg_.numGlobals; ++i)
            body << "  write g" << i << ";\n";

        os << "var ";
        for (size_t i = 0; i < globals_.size(); ++i) {
            os << (i ? ", " : "") << globals_[i].name;
            if (globals_[i].arraySize > 0)
                os << "[" << globals_[i].arraySize << "]";
        }
        for (unsigned c = first_counter; c < counterId_; ++c)
            os << ", lc" << c;
        os << ";\n";
        os << procs_src.str();
        os << "begin\n" << body.str() << "end.\n";
        return os.str();
    }

  private:
    void
    emitProc(std::ostringstream &os, unsigned index)
    {
        FuzzProc proc;
        proc.isFunc = rng_.chance(0.5);
        proc.name = (proc.isFunc ? "fn" : "pr") + std::to_string(index);
        proc.nparams = static_cast<unsigned>(rng_.below(3));

        os << (proc.isFunc ? "func " : "proc ") << proc.name << "(";
        std::vector<FuzzVar> scope = globals_;
        for (unsigned i = 0; i < proc.nparams; ++i) {
            os << (i ? ", " : "") << "p" << i;
            scope.push_back({"p" + std::to_string(i), 0});
        }
        os << ");\n";

        unsigned nlocals = 1 + static_cast<unsigned>(rng_.below(3));
        for (unsigned i = 0; i < nlocals; ++i)
            scope.push_back({"v" + std::to_string(i), 0});

        // Generate the body first so its loop counters can be declared
        // as locals.
        std::ostringstream body;
        unsigned first_counter = counterId_;
        // Initialize locals before anything reads them (the language
        // leaves uninitialized locals undefined).
        for (unsigned i = 0; i < nlocals; ++i)
            body << "  v" << i << " := " << rng_.range(-9, 9) << ";\n";
        emitBlockBody(body, scope, 0, false);
        if (proc.isFunc)
            body << "  return " << expr(scope, 0) << ";\n";

        os << "var ";
        for (unsigned i = 0; i < nlocals; ++i)
            os << (i ? ", " : "") << "v" << i;
        for (unsigned c = first_counter; c < counterId_; ++c)
            os << ", lc" << c;
        os << ";\n";
        os << "begin\n";
        // Locals (counters included) are uninitialized by language
        // rule; zero them before the body may read them.
        for (unsigned c = first_counter; c < counterId_; ++c)
            os << "  lc" << c << " := 0;\n";
        os << body.str() << "end;\n";

        procs_.push_back(proc);
    }

    void
    emitBlockBody(std::ostringstream &os, std::vector<FuzzVar> &scope,
                  unsigned depth, bool in_main)
    {
        unsigned n = 1 + static_cast<unsigned>(
            rng_.below(cfg_.stmtsPerBlock));
        for (unsigned i = 0; i < n; ++i)
            emitStmt(os, scope, depth, in_main);
    }

    /** A writable scalar that is not an active loop counter. */
    const FuzzVar *
    pickScalar(const std::vector<FuzzVar> &scope)
    {
        for (int attempt = 0; attempt < 16; ++attempt) {
            const FuzzVar &v = scope[rng_.below(scope.size())];
            if (v.arraySize > 0)
                continue;
            bool is_counter = false;
            for (const std::string &c : activeCounters_)
                is_counter |= c == v.name;
            if (!is_counter)
                return &v;
        }
        return nullptr;
    }

    const FuzzVar *
    pickArray(const std::vector<FuzzVar> &scope)
    {
        for (int attempt = 0; attempt < 16; ++attempt) {
            const FuzzVar &v = scope[rng_.below(scope.size())];
            if (v.arraySize > 0)
                return &v;
        }
        return nullptr;
    }

    /** An always-in-bounds index expression for @p array. */
    std::string
    safeIndex(const std::vector<FuzzVar> &scope, const FuzzVar &array,
              unsigned depth)
    {
        // ((e % n) + n) % n lies in [0, n).
        std::string e = expr(scope, depth + 1);
        std::string n = std::to_string(array.arraySize);
        return "((" + e + ") % " + n + " + " + n + ") % " + n;
    }

    void
    emitStmt(std::ostringstream &os, std::vector<FuzzVar> &scope,
             unsigned depth, bool in_main)
    {
        std::string indent(2 * (depth + 1), ' ');
        switch (rng_.below(depth >= cfg_.maxStmtDepth ? 5 : 8)) {
          case 0:
          case 1: { // scalar assignment (most common)
            const FuzzVar *v = pickScalar(scope);
            if (!v)
                return;
            os << indent << v->name << " := " << expr(scope, 0)
               << ";\n";
            return;
          }
          case 2: { // array element assignment
            const FuzzVar *a = pickArray(scope);
            if (!a)
                return;
            os << indent << a->name << "[" << safeIndex(scope, *a, 0)
               << "] := " << expr(scope, 0) << ";\n";
            return;
          }
          case 3: // write
            os << indent << "write " << expr(scope, 0) << ";\n";
            return;
          case 4: { // call a procedure (main only, keeps calls acyclic)
            if (!in_main || procs_.empty())
                return;
            const FuzzProc &p = procs_[rng_.below(procs_.size())];
            if (p.isFunc)
                return; // funcs appear inside expressions
            os << indent << "call " << p.name << "(";
            for (unsigned i = 0; i < p.nparams; ++i)
                os << (i ? ", " : "") << expr(scope, 0);
            os << ");\n";
            return;
          }
          case 5: { // if / else
            os << indent << "if " << expr(scope, 0) << " then\n";
            emitBlockBody(os, scope, depth + 1, in_main);
            if (rng_.chance(0.5)) {
                os << indent << "else\n";
                emitBlockBody(os, scope, depth + 1, in_main);
            }
            os << indent << "fi;\n";
            return;
          }
          case 6: { // counted loop (terminating by construction)
            std::string counter =
                "lc" + std::to_string(counterId_++);
            scope.push_back({counter, 0});
            activeCounters_.push_back(counter);
            switch (rng_.below(3)) {
              case 0: // while countdown
                os << indent << counter << " := "
                   << 1 + rng_.below(cfg_.maxLoopTrips) << ";\n";
                os << indent << "while " << counter << " > 0 do\n";
                emitBlockBody(os, scope, depth + 1, in_main);
                os << indent << "  " << counter << " := " << counter
                   << " - 1;\n";
                os << indent << "od;\n";
                break;
              case 1: // for with literal bounds
                os << indent << "for " << counter << " := 1 to "
                   << 1 + rng_.below(cfg_.maxLoopTrips) << " do\n";
                emitBlockBody(os, scope, depth + 1, in_main);
                os << indent << "od;\n";
                break;
              case 2: // repeat countup
                os << indent << counter << " := 0;\n";
                os << indent << "repeat\n";
                emitBlockBody(os, scope, depth + 1, in_main);
                os << indent << "  " << counter << " := " << counter
                   << " + 1;\n";
                os << indent << "until " << counter << " >= "
                   << 1 + rng_.below(cfg_.maxLoopTrips) << ";\n";
                break;
            }
            activeCounters_.pop_back();
            return;
          }
          case 7: { // read
            const FuzzVar *v = pickScalar(scope);
            if (!v)
                return;
            os << indent << "read " << v->name << ";\n";
            return;
          }
        }
    }

    std::string
    expr(const std::vector<FuzzVar> &scope, unsigned depth)
    {
        if (depth >= cfg_.maxExprDepth)
            return leaf(scope);

        switch (rng_.below(10)) {
          case 0:
          case 1:
          case 2:
            return leaf(scope);
          case 3: { // div/mod by a nonzero literal
            const char *op = rng_.chance(0.5) ? "/" : "%";
            return "(" + expr(scope, depth + 1) + " " + op + " " +
                   std::to_string(rng_.range(1, 9)) + ")";
          }
          case 4: { // comparison
            static const char *ops[] = {"=", "<>", "<", "<=", ">", ">="};
            return "(" + expr(scope, depth + 1) + " " +
                   ops[rng_.below(6)] + " " + expr(scope, depth + 1) +
                   ")";
          }
          case 5: { // boolean
            const char *op = rng_.chance(0.5) ? "and" : "or";
            return "(" + expr(scope, depth + 1) + " " + op + " " +
                   expr(scope, depth + 1) + ")";
          }
          case 6:
            return rng_.chance(0.5) ?
                "(-" + expr(scope, depth + 1) + ")" :
                "(not " + expr(scope, depth + 1) + ")";
          case 7: { // function call
            for (const FuzzProc &p : procs_) {
                if (!p.isFunc || !rng_.chance(0.4))
                    continue;
                std::string call = p.name + "(";
                for (unsigned i = 0; i < p.nparams; ++i) {
                    call += (i ? ", " : "") +
                            expr(scope, depth + 1);
                }
                return call + ")";
            }
            return leaf(scope);
          }
          default: { // arithmetic
            static const char *ops[] = {"+", "-", "*"};
            return "(" + expr(scope, depth + 1) + " " +
                   ops[rng_.below(3)] + " " + expr(scope, depth + 1) +
                   ")";
          }
        }
    }

    std::string
    leaf(const std::vector<FuzzVar> &scope)
    {
        if (rng_.chance(0.4))
            return std::to_string(rng_.range(-99, 99));
        const FuzzVar &v = scope[rng_.below(scope.size())];
        if (v.arraySize > 0) {
            // Constant index keeps leaves cheap but still exercises
            // LOADI.
            return v.name + "[" +
                   std::to_string(rng_.below(v.arraySize)) + "]";
        }
        return v.name;
    }

    FuzzConfig cfg_;
    Rng rng_;
    std::vector<FuzzVar> globals_;
    std::vector<FuzzProc> procs_;
    std::vector<std::string> activeCounters_;
    unsigned counterId_ = 0;
};

} // anonymous namespace

std::string
generateRandomContour(const FuzzConfig &config)
{
    Generator gen(config);
    return gen.run();
}

} // namespace uhm::workload
