/**
 * @file
 * Random Contour program generation for differential testing.
 *
 * Programs are generated terminating-by-construction: every while loop
 * counts a dedicated counter variable down from a small literal (the
 * body never assigns that counter), procedure calls form an acyclic
 * order, and division/modulo right-hand sides are nonzero literals.
 * Everything else — expression shapes, scoping, arrays, functions,
 * boolean operators, I/O — is drawn randomly, so the fuzz sweep
 * exercises the compiler, the encodings, the machines and the direct
 * HLR interpreter against each other on inputs no human wrote.
 */

#ifndef UHM_WORKLOAD_FUZZ_HH
#define UHM_WORKLOAD_FUZZ_HH

#include <cstdint>
#include <string>

namespace uhm::workload
{

/** Knobs for the random program generator. */
struct FuzzConfig
{
    uint64_t seed = 1;
    /** Global scalar variables. */
    unsigned numGlobals = 5;
    /** Global arrays (each of a small random size). */
    unsigned numArrays = 2;
    /** Procedures (a mix of proc and func). */
    unsigned numProcs = 3;
    /** Statements per block body. */
    unsigned stmtsPerBlock = 6;
    /** Maximum statement nesting depth. */
    unsigned maxStmtDepth = 3;
    /** Maximum expression tree depth. */
    unsigned maxExprDepth = 3;
    /** Maximum loop trip count. */
    unsigned maxLoopTrips = 8;
};

/** Generate a random, valid, terminating Contour program. */
std::string generateRandomContour(const FuzzConfig &config);

} // namespace uhm::workload

#endif // UHM_WORKLOAD_FUZZ_HH
