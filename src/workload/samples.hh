/**
 * @file
 * Sample Contour programs.
 *
 * The measurement workloads: classic kernels (sieve, sorting, matrix
 * multiply), recursion-heavy programs (fib, ackermann, queens) that
 * exercise the contour machinery, and scope/I-O demos. Each carries its
 * input vector and, where the result is a well-known constant, the
 * expected output for absolute (non-differential) anchoring.
 */

#ifndef UHM_WORKLOAD_SAMPLES_HH
#define UHM_WORKLOAD_SAMPLES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uhm::workload
{

/** One sample program. */
struct SampleProgram
{
    /** Short identifier, e.g. "sieve". */
    std::string name;
    /** Contour source text. */
    std::string source;
    /** Input consumed by 'read'. */
    std::vector<int64_t> input;
    /** Expected output when independently known; empty otherwise. */
    std::vector<int64_t> expected;
};

/** All sample programs. */
const std::vector<SampleProgram> &samplePrograms();

/** Look up a sample by name (fatal if absent). */
const SampleProgram &sampleByName(const std::string &name);

} // namespace uhm::workload

#endif // UHM_WORKLOAD_SAMPLES_HH
