#include "support/pool.hh"

#include <cstdlib>
#include <utility>

#include "support/logging.hh"

namespace uhm
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("UHM_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    shards_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    uhm_assert(task != nullptr, "null task submitted to pool");
    size_t shard;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        uhm_assert(!stop_, "submit on a stopping pool");
        shard = nextShard_;
        nextShard_ = nextShard_ + 1 == shards_.size() ? 0 : nextShard_ + 1;
    }
    {
        std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
        shards_[shard]->tasks.push_back(std::move(task));
    }
    // The task is visible in its shard before the counters say so, so a
    // worker that wins the queued_ claim always finds something to pop.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++queued_;
        ++pending_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return pending_ == 0; });
}

bool
ThreadPool::popFrom(size_t shard, std::function<void()> &task)
{
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    if (shards_[shard]->tasks.empty())
        return false;
    task = std::move(shards_[shard]->tasks.front());
    shards_[shard]->tasks.pop_front();
    return true;
}

void
ThreadPool::workerLoop(size_t self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] { return queued_ > 0 || stop_; });
            if (queued_ == 0 && stop_)
                return;
            --queued_; // claim one task; some shard must hold it
        }
        std::function<void()> task;
        // Own shard first, then steal round-robin. The claimed task is
        // already pushed (submit orders push before counter), but
        // another worker may drain a shard between our probes, so keep
        // scanning until the claim is honoured.
        while (true) {
            if (popFrom(self, task))
                break;
            bool found = false;
            for (size_t i = 1; i < shards_.size() && !found; ++i)
                found = popFrom((self + i) % shards_.size(), task);
            if (found)
                break;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
            if (pending_ == 0)
                idleCv_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace uhm
