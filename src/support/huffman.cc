#include "support/huffman.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <queue>

#include "support/logging.hh"

namespace uhm
{

namespace
{

/**
 * The process-wide decode implementation. Relaxed accesses: the flag is
 * set once at startup (or under a test's ScopedHuffmanDecodeKind) and
 * both implementations produce identical results, so a racy read could
 * at worst pick the other — equally correct — path.
 */
std::atomic<HuffmanDecodeKind> defaultDecodeKind{
    HuffmanDecodeKind::Table};

} // anonymous namespace

void
setHuffmanDecodeKind(HuffmanDecodeKind kind)
{
    defaultDecodeKind.store(kind, std::memory_order_relaxed);
}

HuffmanDecodeKind
huffmanDecodeKind()
{
    return defaultDecodeKind.load(std::memory_order_relaxed);
}

namespace
{

/**
 * Plain Huffman code lengths via the classic two-queue construction.
 * Frequencies of zero are bumped to one so every symbol is codeable.
 */
std::vector<unsigned>
huffmanLengths(const std::vector<uint64_t> &freqs)
{
    size_t n = freqs.size();
    if (n == 1)
        return {1};

    struct HeapItem
    {
        uint64_t weight;
        size_t node;
        bool operator>(const HeapItem &o) const
        {
            // Tie-break on node index for determinism.
            return weight != o.weight ? weight > o.weight : node > o.node;
        }
    };

    // Nodes 0..n-1 are leaves; parents are appended after.
    std::vector<int> parent(n, -1);
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>> heap;
    for (size_t i = 0; i < n; ++i)
        heap.push({std::max<uint64_t>(freqs[i], 1), i});

    while (heap.size() > 1) {
        HeapItem a = heap.top(); heap.pop();
        HeapItem b = heap.top(); heap.pop();
        size_t p = parent.size();
        parent.push_back(-1);
        parent[a.node] = static_cast<int>(p);
        parent[b.node] = static_cast<int>(p);
        heap.push({a.weight + b.weight, p});
    }

    std::vector<unsigned> lengths(n, 0);
    for (size_t i = 0; i < n; ++i) {
        unsigned len = 0;
        for (int v = parent[i]; v != -1; v = parent[v])
            ++len;
        lengths[i] = len;
    }
    return lengths;
}

/**
 * Length-limited code lengths via the package-merge algorithm
 * (Larmore & Hirschberg). Produces optimal lengths subject to
 * lengths[i] <= max_len.
 */
std::vector<unsigned>
packageMergeLengths(const std::vector<uint64_t> &freqs, unsigned max_len)
{
    size_t n = freqs.size();
    uhm_assert(n >= 1, "empty alphabet");
    uhm_assert((1ull << max_len) >= n,
               "max_len %u cannot code %zu symbols", max_len, n);
    if (n == 1)
        return {1};

    struct Item
    {
        uint64_t weight;
        /** Leaf symbols covered by this package (by index). */
        std::vector<uint32_t> leaves;
    };

    // Leaves sorted by weight, stable on symbol index.
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         uint64_t fa = std::max<uint64_t>(freqs[a], 1);
                         uint64_t fb = std::max<uint64_t>(freqs[b], 1);
                         return fa != fb ? fa < fb : a < b;
                     });

    std::vector<Item> prev;
    std::vector<unsigned> lengths(n, 0);

    for (unsigned level = 0; level < max_len; ++level) {
        // Package pairs from the previous level.
        std::vector<Item> packages;
        for (size_t i = 0; i + 1 < prev.size(); i += 2) {
            Item pkg;
            pkg.weight = prev[i].weight + prev[i + 1].weight;
            pkg.leaves = prev[i].leaves;
            pkg.leaves.insert(pkg.leaves.end(), prev[i + 1].leaves.begin(),
                              prev[i + 1].leaves.end());
            packages.push_back(std::move(pkg));
        }
        // Merge with the fresh leaf list.
        std::vector<Item> merged;
        size_t pi = 0, li = 0;
        while (pi < packages.size() || li < n) {
            uint64_t lw = li < n ?
                std::max<uint64_t>(freqs[order[li]], 1) : UINT64_MAX;
            if (pi < packages.size() && packages[pi].weight <= lw) {
                merged.push_back(std::move(packages[pi++]));
            } else {
                merged.push_back({lw, {order[li]}});
                ++li;
            }
        }
        prev = std::move(merged);
    }

    // Take the cheapest 2n-2 items; each appearance of a leaf adds one
    // bit to its codeword length.
    size_t take = 2 * n - 2;
    uhm_assert(prev.size() >= take, "package-merge underflow");
    for (size_t i = 0; i < take; ++i)
        for (uint32_t leaf : prev[i].leaves)
            ++lengths[leaf];
    return lengths;
}

/** Kraft sum scaled by 2^scale_len to stay in integers. */
uint64_t
kraftScaled(const std::vector<unsigned> &lengths, unsigned scale_len)
{
    uint64_t sum = 0;
    for (unsigned len : lengths) {
        uhm_assert(len >= 1 && len <= scale_len, "bad length %u", len);
        sum += 1ull << (scale_len - len);
    }
    return sum;
}

} // anonymous namespace

HuffmanCode
HuffmanCode::fromLengths(std::vector<unsigned> lengths)
{
    HuffmanCode hc;
    hc.lengths_ = std::move(lengths);
    size_t n = hc.lengths_.size();
    hc.codes_.assign(n, 0);

    // Canonical assignment: shorter codes first, symbol order within a
    // length.
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return hc.lengths_[a] != hc.lengths_[b] ?
                             hc.lengths_[a] < hc.lengths_[b] : a < b;
                     });

    uint64_t code = 0;
    unsigned prev_len = hc.lengths_[order[0]];
    for (size_t i = 0; i < n; ++i) {
        unsigned len = hc.lengths_[order[i]];
        code <<= (len - prev_len);
        hc.codes_[order[i]] = code;
        ++code;
        prev_len = len;
    }

    hc.buildTree();
    hc.buildDecodeTable();
    return hc;
}

void
HuffmanCode::buildDecodeTable()
{
    maxLen_ = *std::max_element(lengths_.begin(), lengths_.end());
    uhm_assert(maxLen_ >= 1 && maxLen_ <= 64, "bad max length %u",
               maxLen_);
    uhm_assert(lengths_.size() <= slotPayloadMax,
               "alphabet of %zu symbols overflows a packed slot",
               lengths_.size());
    rootBits_ = std::min(maxLen_, maxRootBits);

    root_.assign(size_t{1} << rootBits_, 0);
    overflow_.clear();

    // Terminal root slots: a codeword of length <= rootBits_ owns every
    // slot whose leading bits equal it.
    for (size_t sym = 0; sym < lengths_.size(); ++sym) {
        unsigned len = lengths_[sym];
        if (len > rootBits_)
            continue;
        uint64_t first = codes_[sym] << (rootBits_ - len);
        uint64_t count = uint64_t{1} << (rootBits_ - len);
        uint32_t slot =
            (static_cast<uint32_t>(sym) << slotPayloadShift) | len;
        for (uint64_t i = 0; i < count; ++i) {
            uhm_assert(root_[first + i] == 0,
                       "table slot clash at symbol %zu", sym);
            root_[first + i] = slot;
        }
    }

    // Long codewords overflow into a subtable per distinct root-width
    // prefix, indexed by the bits beyond the root window. Symbols are
    // visited in canonical (length-major) order, so all codewords of
    // one prefix are contiguous; a single pass sizing each subtable by
    // its longest member suffices.
    std::vector<uint32_t> order(lengths_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return lengths_[a] != lengths_[b] ?
                             lengths_[a] < lengths_[b] : a < b;
                     });

    // Pass 1: widest suffix per prefix.
    std::vector<std::pair<uint64_t, unsigned>> prefixWidth;
    for (uint32_t sym : order) {
        unsigned len = lengths_[sym];
        if (len <= rootBits_)
            continue;
        uint64_t prefix = codes_[sym] >> (len - rootBits_);
        unsigned suffix = len - rootBits_;
        if (!prefixWidth.empty() && prefixWidth.back().first == prefix) {
            prefixWidth.back().second =
                std::max(prefixWidth.back().second, suffix);
        } else {
            prefixWidth.emplace_back(prefix, suffix);
        }
    }

    // Pass 2: allocate the subtables and point the root at them.
    for (const auto &[prefix, width] : prefixWidth) {
        uhm_assert(root_[prefix] == 0, "prefix clash in overflow table");
        uhm_assert(overflow_.size() <= slotPayloadMax,
                   "overflow table exceeds a packed slot's base range");
        root_[prefix] = slotOverflow |
            (static_cast<uint32_t>(overflow_.size())
             << slotPayloadShift) | width;
        overflow_.resize(overflow_.size() + (size_t{1} << width));
    }

    // Pass 3: fill the subtable spans.
    for (uint32_t sym : order) {
        unsigned len = lengths_[sym];
        if (len <= rootBits_)
            continue;
        uint64_t prefix = codes_[sym] >> (len - rootBits_);
        unsigned suffix = len - rootBits_;
        uint32_t rootSlot = root_[prefix];
        unsigned width = rootSlot & slotLenMask;
        uint32_t base = rootSlot >> slotPayloadShift;
        uint64_t low = codes_[sym] & ((uint64_t{1} << suffix) - 1);
        uint64_t first = low << (width - suffix);
        uint64_t count = uint64_t{1} << (width - suffix);
        uint32_t slot =
            (static_cast<uint32_t>(sym) << slotPayloadShift) | len;
        for (uint64_t i = 0; i < count; ++i) {
            uhm_assert(overflow_[base + first + i] == 0,
                       "overflow slot clash at symbol %u", sym);
            overflow_[base + first + i] = slot;
        }
    }
}

void
HuffmanCode::buildTree()
{
    tree_.clear();
    tree_.push_back(Node{});
    for (size_t sym = 0; sym < lengths_.size(); ++sym) {
        unsigned len = lengths_[sym];
        uint64_t code = codes_[sym];
        int node = 0;
        for (unsigned i = len; i-- > 0;) {
            int bit = static_cast<int>((code >> i) & 1);
            if (tree_[node].child[bit] == -1) {
                tree_[node].child[bit] = static_cast<int>(tree_.size());
                tree_.push_back(Node{});
            }
            node = tree_[node].child[bit];
            uhm_assert(tree_[node].symbol == -1,
                       "prefix violation at symbol %zu", sym);
        }
        uhm_assert(tree_[node].child[0] == -1 && tree_[node].child[1] == -1,
                   "prefix violation at symbol %zu", sym);
        tree_[node].symbol = static_cast<int64_t>(sym);
    }
}

HuffmanCode
HuffmanCode::build(const std::vector<uint64_t> &freqs, unsigned max_len)
{
    uhm_assert(!freqs.empty(), "empty alphabet");
    std::vector<unsigned> lengths = max_len == 0 ?
        huffmanLengths(freqs) : packageMergeLengths(freqs, max_len);
    return fromLengths(std::move(lengths));
}

HuffmanCode
HuffmanCode::buildQuantized(const std::vector<uint64_t> &freqs,
                            const std::vector<unsigned> &allowed_lens)
{
    uhm_assert(!allowed_lens.empty(), "no allowed lengths");
    std::vector<unsigned> allowed = allowed_lens;
    std::sort(allowed.begin(), allowed.end());
    unsigned max_len = allowed.back();
    uhm_assert((1ull << max_len) >= freqs.size(),
               "allowed lengths cannot code %zu symbols", freqs.size());

    // Start from optimal length-limited lengths, then round each length
    // *up* to the nearest allowed value. Rounding up only shrinks the
    // Kraft sum, so the result stays prefix-feasible.
    std::vector<unsigned> lengths = packageMergeLengths(freqs, max_len);
    for (unsigned &len : lengths) {
        auto it = std::lower_bound(allowed.begin(), allowed.end(), len);
        uhm_assert(it != allowed.end(), "length %u unroundable", len);
        len = *it;
    }

    // Greedily shorten the most frequent symbols to the next smaller
    // allowed length while the Kraft inequality still holds.
    std::vector<uint32_t> by_freq(freqs.size());
    std::iota(by_freq.begin(), by_freq.end(), 0);
    std::stable_sort(by_freq.begin(), by_freq.end(),
                     [&](uint32_t a, uint32_t b) {
                         return freqs[a] != freqs[b] ?
                             freqs[a] > freqs[b] : a < b;
                     });
    uint64_t budget = 1ull << max_len;
    uint64_t kraft = kraftScaled(lengths, max_len);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t sym : by_freq) {
            auto it = std::lower_bound(allowed.begin(), allowed.end(),
                                       lengths[sym]);
            if (it == allowed.begin())
                continue;
            unsigned shorter = *std::prev(it);
            uint64_t delta = (1ull << (max_len - shorter)) -
                             (1ull << (max_len - lengths[sym]));
            if (kraft + delta <= budget) {
                kraft += delta;
                lengths[sym] = shorter;
                changed = true;
            }
        }
    }

    return fromLengths(std::move(lengths));
}

void
HuffmanCode::encode(BitWriter &bw, uint64_t symbol) const
{
    uhm_assert(symbol < lengths_.size(), "symbol %llu out of alphabet",
               static_cast<unsigned long long>(symbol));
    bw.write(codes_[symbol], lengths_[symbol]);
}

uint64_t
HuffmanCode::decodeTree(BitReader &br, uint64_t *tree_steps) const
{
    int node = 0;
    while (tree_[node].symbol == -1) {
        int bit = br.readBit() ? 1 : 0;
        node = tree_[node].child[bit];
        uhm_assert(node != -1, "decode fell off the tree");
        if (tree_steps)
            ++*tree_steps;
    }
    return static_cast<uint64_t>(tree_[node].symbol);
}

unsigned
HuffmanCode::lengthOf(uint64_t symbol) const
{
    uhm_assert(symbol < lengths_.size(), "symbol %llu out of alphabet",
               static_cast<unsigned long long>(symbol));
    return lengths_[symbol];
}

double
HuffmanCode::expectedLength(const std::vector<uint64_t> &freqs) const
{
    uhm_assert(freqs.size() == lengths_.size(), "alphabet mismatch");
    uint64_t total = 0, bits = 0;
    for (size_t i = 0; i < freqs.size(); ++i) {
        total += freqs[i];
        bits += freqs[i] * lengths_[i];
    }
    return total == 0 ? 0.0 :
        static_cast<double>(bits) / static_cast<double>(total);
}

size_t
HuffmanCode::decodeTreeNodes() const
{
    return tree_.size();
}

double
entropyBits(const std::vector<uint64_t> &freqs)
{
    uint64_t total = 0;
    for (uint64_t f : freqs)
        total += f;
    if (total == 0)
        return 0.0;
    double h = 0.0;
    for (uint64_t f : freqs) {
        if (f == 0)
            continue;
        double p = static_cast<double>(f) / static_cast<double>(total);
        h -= p * std::log2(p);
    }
    return h;
}

} // namespace uhm
