/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in this reproduction is seeded: the synthetic workload
 * generator, random replacement policies and randomized tests all draw
 * from this splitmix64 generator so every table regenerates
 * byte-identically.
 */

#ifndef UHM_SUPPORT_RNG_HH
#define UHM_SUPPORT_RNG_HH

#include <cstdint>

namespace uhm
{

/** splitmix64: tiny, fast, and statistically adequate for simulation. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state_;
};

} // namespace uhm

#endif // UHM_SUPPORT_RNG_HH
