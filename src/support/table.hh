/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * TextTable prints them in the same row/column layout the paper uses.
 */

#ifndef UHM_SUPPORT_TABLE_HH
#define UHM_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace uhm
{

/** A simple right-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the column headers. */
    void setHeader(std::vector<std::string> header)
    {
        header_ = std::move(header);
    }

    /** Append one row of cells. */
    void addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    /** Format a double with @p decimals places. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer. */
    static std::string num(uint64_t v);
    static std::string num(int64_t v);

    /** Render the table. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace uhm

#endif // UHM_SUPPORT_TABLE_HH
