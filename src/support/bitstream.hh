/**
 * @file
 * Bit-granular streams.
 *
 * The paper's encoded DIRs use "fields which are packed together and
 * allowed to span the boundaries of the units of memory access" (section
 * 3.2). BitWriter and BitReader provide that packing: values of 1..64 bits
 * are written MSB-first into a contiguous byte image, and instructions are
 * addressed by *bit offset* — the DIR address space used by the DTB.
 */

#ifndef UHM_SUPPORT_BITSTREAM_HH
#define UHM_SUPPORT_BITSTREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace uhm
{

/** Append-only MSB-first bit stream writer. */
class BitWriter
{
  public:
    BitWriter() = default;

    /**
     * Append the low @p width bits of @p value, most significant first.
     * @param value the bits to write (must fit in @p width bits)
     * @param width field width in bits, 0..64 (0 writes nothing)
     */
    void write(uint64_t value, unsigned width);

    /** Append a single bit. */
    void writeBit(bool bit) { write(bit ? 1 : 0, 1); }

    /** Current length of the stream in bits. */
    size_t bitSize() const { return bitSize_; }

    /** The packed image, final byte zero-padded. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Release the packed image. */
    std::vector<uint8_t> takeBytes() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
    size_t bitSize_ = 0;
};

/**
 * MSB-first bit stream reader with random access by bit offset.
 *
 * The reader counts how many primitive extraction steps it has performed;
 * DIR decoders use this counter to ground the paper's decode-cost
 * parameter `d` in measured shift/mask work rather than an assumption.
 *
 * Extraction is word-at-a-time: the reader keeps a left-aligned 64-bit
 * shift register of upcoming stream bits. peek() answers from the
 * register and only touches memory when fewer bits remain than asked
 * for (one unaligned load + byte swap per ~64 consumed bits on the
 * common path, a zero-padding tail gather near the end of the image).
 * consume() advances the cursor with a shift, without charging an
 * extraction step — the peek-then-consume pair is the substrate of the
 * table-driven Huffman decoder (support/huffman.hh), which needs to
 * examine more bits than the codeword it finally accepts.
 */
class BitReader
{
  public:
    /** Wrap an existing byte image; does not take ownership. */
    BitReader(const uint8_t *data, size_t bit_size)
        : data_(data), bitSize_(bit_size)
    {}

    explicit BitReader(const std::vector<uint8_t> &bytes, size_t bit_size)
        : BitReader(bytes.data(), bit_size)
    {}

    /**
     * Read @p width bits at the cursor and advance.
     * @param width 0..64; reading past the end is a panic.
     */
    uint64_t read(unsigned width);

    /** Read a single bit at the cursor and advance. */
    bool readBit() { return read(1) != 0; }

    /** Peek @p width bits without advancing (short reads zero-pad). */
    uint64_t
    peek(unsigned width) const
    {
        if (width == 0)
            return 0;
        if (avail_ < width) {
            window_ = refillWindow(pos_);
            avail_ = 64;
        }
        return width >= 64 ? window_ : window_ >> (64 - width);
    }

    /**
     * Advance the cursor by @p width bits without extracting anything
     * (and without charging an extraction step). Panics past the end.
     */
    void
    consume(unsigned width)
    {
        uhm_assert(pos_ + width <= bitSize_,
                   "consume past end (pos %zu width %u size %zu)",
                   pos_, width, bitSize_);
        advance(width);
    }

    /** Move the cursor to an absolute bit offset. */
    void seek(size_t bit_pos);

    /** Advance the cursor by @p bits. */
    void skip(size_t bits) { seek(pos_ + bits); }

    /** Current cursor position in bits. */
    size_t pos() const { return pos_; }

    /** Total stream length in bits. */
    size_t bitSize() const { return bitSize_; }

    /** True when the cursor is at or past the end. */
    bool atEnd() const { return pos_ >= bitSize_; }

    /**
     * Number of primitive field-extraction operations performed so far.
     * One extraction models one shift-and-mask on the host machine.
     */
    uint64_t extractSteps() const { return extractSteps_; }

    /** Reset the extraction-step counter. */
    void resetSteps() { extractSteps_ = 0; }

  private:
    /**
     * The 64 bits starting at @p bit_pos, MSB-first. Bits at or past
     * bitSize_ read as zero — the window never loads past the last
     * byte of the image, and trailing garbage in a wrapped image's
     * final byte is masked off.
     */
    uint64_t refillWindow(size_t bit_pos) const;

    /** Advance the cursor by @p width bits, keeping the register. */
    void
    advance(unsigned width)
    {
        pos_ += width;
        window_ = width >= 64 ? 0 : window_ << width;
        avail_ = width >= avail_ ? 0 : avail_ - width;
    }

    const uint8_t *data_;
    size_t bitSize_;
    size_t pos_ = 0;
    uint64_t extractSteps_ = 0;
    /** Shift register: the next avail_ stream bits, left-aligned. */
    mutable uint64_t window_ = 0;
    /** Valid leading bits in window_; 0 = empty. */
    mutable unsigned avail_ = 0;
};

/** Zig-zag map a signed value into an unsigned one (order-preserving). */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode(). */
inline int64_t
zigzagDecode(uint64_t u)
{
    return static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
}

/** Number of bits needed to represent @p v (at least 1). */
unsigned bitsFor(uint64_t v);

} // namespace uhm

#endif // UHM_SUPPORT_BITSTREAM_HH
