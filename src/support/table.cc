#include "support/table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace uhm
{

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::num(uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::num(int64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::render() const
{
    // Compute column widths across the header and every row.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << "  ";
            os << std::string(widths[i] - cell.size(), ' ') << cell;
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace uhm
