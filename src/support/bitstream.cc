#include "support/bitstream.hh"

#include "support/logging.hh"

namespace uhm
{

void
BitWriter::write(uint64_t value, unsigned width)
{
    uhm_assert(width <= 64, "field width %u out of range", width);
    if (width < 64)
        uhm_assert((value >> width) == 0,
                   "value does not fit in %u bits", width);

    for (unsigned i = width; i-- > 0;) {
        size_t byte = bitSize_ >> 3;
        unsigned bit = 7 - (bitSize_ & 7);
        if (byte >= bytes_.size())
            bytes_.push_back(0);
        if ((value >> i) & 1)
            bytes_[byte] |= static_cast<uint8_t>(1u << bit);
        ++bitSize_;
    }
}

uint64_t
BitReader::read(unsigned width)
{
    uhm_assert(width <= 64, "field width %u out of range", width);
    uhm_assert(pos_ + width <= bitSize_,
               "bit read past end (pos %zu width %u size %zu)",
               pos_, width, bitSize_);

    uint64_t v = 0;
    for (unsigned i = 0; i < width; ++i) {
        size_t byte = pos_ >> 3;
        unsigned bit = 7 - (pos_ & 7);
        v = (v << 1) | ((data_[byte] >> bit) & 1);
        ++pos_;
    }
    if (width > 0)
        ++extractSteps_;
    return v;
}

uint64_t
BitReader::peek(unsigned width) const
{
    uhm_assert(width <= 64, "field width %u out of range", width);
    uint64_t v = 0;
    size_t p = pos_;
    for (unsigned i = 0; i < width; ++i) {
        if (p < bitSize_) {
            size_t byte = p >> 3;
            unsigned bit = 7 - (p & 7);
            v = (v << 1) | ((data_[byte] >> bit) & 1);
        } else {
            v <<= 1;
        }
        ++p;
    }
    return v;
}

void
BitReader::seek(size_t bit_pos)
{
    uhm_assert(bit_pos <= bitSize_, "seek past end (%zu > %zu)",
               bit_pos, bitSize_);
    pos_ = bit_pos;
}

unsigned
bitsFor(uint64_t v)
{
    unsigned n = 1;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace uhm
