#include "support/bitstream.hh"

#include <cstring>

#include "support/logging.hh"

namespace uhm
{

namespace
{

/** Byte-swap to interpret 8 little-endian-loaded bytes MSB-first. */
inline uint64_t
bigEndian64(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap64(v);
#else
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i)
        r = (r << 8) | ((v >> (8 * i)) & 0xff);
    return r;
#endif
}

} // anonymous namespace

void
BitWriter::write(uint64_t value, unsigned width)
{
    uhm_assert(width <= 64, "field width %u out of range", width);
    if (width < 64)
        uhm_assert((value >> width) == 0,
                   "value does not fit in %u bits", width);

    for (unsigned i = width; i-- > 0;) {
        size_t byte = bitSize_ >> 3;
        unsigned bit = 7 - (bitSize_ & 7);
        if (byte >= bytes_.size())
            bytes_.push_back(0);
        if ((value >> i) & 1)
            bytes_[byte] |= static_cast<uint8_t>(1u << bit);
        ++bitSize_;
    }
}

uint64_t
BitReader::refillWindow(size_t bit_pos) const
{
    size_t byte = bit_pos >> 3;
    unsigned shift = bit_pos & 7;
    size_t nbytes = (bitSize_ + 7) >> 3;

    uint64_t hi;
    uint8_t next;
    if (byte + 9 <= nbytes) {
        // Fast path: the window lies fully inside the image.
        std::memcpy(&hi, data_ + byte, 8);
        hi = bigEndian64(hi);
        next = data_[byte + 8];
    } else {
        // Tail: gather the available bytes and zero-pad the rest
        // instead of loading past the last word of the image.
        hi = 0;
        for (unsigned i = 0; i < 8; ++i) {
            hi <<= 8;
            if (byte + i < nbytes)
                hi |= data_[byte + i];
        }
        next = byte + 8 < nbytes ? data_[byte + 8] : 0;
    }
    uint64_t w = shift == 0 ?
        hi : (hi << shift) | (static_cast<uint64_t>(next) >> (8 - shift));

    // Bits at or past bitSize_ must read as zero even when the final
    // byte of a wrapped image carries garbage below the stream's end.
    if (bit_pos + 64 > bitSize_) {
        unsigned valid = bit_pos < bitSize_ ?
            static_cast<unsigned>(bitSize_ - bit_pos) : 0;
        w = valid == 0 ? 0 : (w >> (64 - valid)) << (64 - valid);
    }
    return w;
}

uint64_t
BitReader::read(unsigned width)
{
    uhm_assert(width <= 64, "field width %u out of range", width);
    uhm_assert(pos_ + width <= bitSize_,
               "bit read past end (pos %zu width %u size %zu)",
               pos_, width, bitSize_);

    if (width == 0)
        return 0;
    uint64_t v = peek(width);
    advance(width);
    ++extractSteps_;
    return v;
}

void
BitReader::seek(size_t bit_pos)
{
    uhm_assert(bit_pos <= bitSize_, "seek past end (%zu > %zu)",
               bit_pos, bitSize_);
    pos_ = bit_pos;
    avail_ = 0;
}

unsigned
bitsFor(uint64_t v)
{
    unsigned n = 1;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace uhm
