/**
 * @file
 * Two's-complement wrapping arithmetic.
 *
 * DIR arithmetic is defined to wrap modulo 2^64 (and INT64_MIN / -1 is
 * defined to yield INT64_MIN). Every execution engine — the direct HLR
 * interpreter, the semantic routines of IU1 — uses these helpers, so all
 * levels of representation agree bit-for-bit and no signed-overflow UB
 * can creep into the host build.
 */

#ifndef UHM_SUPPORT_WRAP_HH
#define UHM_SUPPORT_WRAP_HH

#include <cstdint>

namespace uhm
{

inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapNeg(int64_t a)
{
    return static_cast<int64_t>(0 - static_cast<uint64_t>(a));
}

inline int64_t
wrapShl(int64_t a, int64_t sh)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a)
                                << (static_cast<uint64_t>(sh) & 63));
}

/** Arithmetic right shift (well-defined in C++20). */
inline int64_t
wrapShr(int64_t a, int64_t sh)
{
    return a >> (static_cast<uint64_t>(sh) & 63);
}

/** Division with the INT64_MIN / -1 case pinned (caller excludes 0). */
inline int64_t
wrapDiv(int64_t a, int64_t b)
{
    if (a == INT64_MIN && b == -1)
        return INT64_MIN;
    return a / b;
}

/** Remainder with the INT64_MIN % -1 case pinned (caller excludes 0). */
inline int64_t
wrapMod(int64_t a, int64_t b)
{
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

} // namespace uhm

#endif // UHM_SUPPORT_WRAP_HH
