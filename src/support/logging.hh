/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() flags an internal simulator bug and
 * aborts; fatal() flags a user error (bad configuration, malformed input)
 * and exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef UHM_SUPPORT_LOGGING_HH
#define UHM_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace uhm
{

/** Exception thrown by panic(); never caught in production code paths. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(); tools catch it at top level and exit(1). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/**
 * Report an internal invariant violation. Throws PanicError so tests can
 * assert that bad internal states are caught.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad input program, impossible
 * configuration). Throws FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define uhm_assert(cond, fmt, ...)                                         \
    do {                                                                   \
        if (!(cond))                                                       \
            ::uhm::panic("assertion '" #cond "' failed: " fmt              \
                         __VA_OPT__(,) __VA_ARGS__);                       \
    } while (0)

} // namespace uhm

#endif // UHM_SUPPORT_LOGGING_HH
