#include "support/logging.hh"

#include <cstdarg>
#include <vector>

namespace uhm
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(n > 0 ? static_cast<size_t>(n) + 1 : 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data());
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace uhm
