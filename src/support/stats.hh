/**
 * @file
 * Lightweight statistics: named counters and scalar samples.
 *
 * Simulator components expose their event counts (memory references per
 * level, decode steps, DTB hits/misses, micro-instructions retired)
 * through StatSet so benches and tests read one uniform interface.
 */

#ifndef UHM_SUPPORT_STATS_HH
#define UHM_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uhm
{

/** A running scalar sample: count, sum, min, max. */
class SampleStat
{
  public:
    void
    record(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A named bag of counters, mergeable and printable. */
class StatSet
{
  public:
    /** Add @p delta to the counter named @p name (creating it at 0). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Read a counter; absent counters read as 0. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Merge another set into this one (counter-wise sum). */
    void
    merge(const StatSet &other)
    {
        for (const auto &kv : other.counters_)
            counters_[kv.first] += kv.second;
    }

    /** Reset every counter to zero. */
    void clear() { counters_.clear(); }

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Render as "name = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace uhm

#endif // UHM_SUPPORT_STATS_HH
