/**
 * @file
 * A minimal JSON writer.
 *
 * Emits experiment results in machine-readable form (bench_export) so
 * downstream tooling can consume the reproduction's numbers without
 * scraping text tables. Writer-only by design — nothing in the system
 * consumes JSON.
 */

#ifndef UHM_SUPPORT_JSON_HH
#define UHM_SUPPORT_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace uhm
{

/**
 * Streaming JSON writer with explicit begin/end nesting.
 *
 * Usage:
 * @code
 *   JsonWriter jw;
 *   jw.beginObject();
 *   jw.key("name").value("sieve");
 *   jw.key("sizes").beginArray().value(1).value(2).endArray();
 *   jw.endObject();
 *   std::string doc = jw.str();
 * @endcode
 */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        separate();
        os_ << "{";
        stack_.push_back(State::FirstInObject);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        stack_.pop_back();
        os_ << "}";
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        separate();
        os_ << "[";
        stack_.push_back(State::FirstInArray);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        stack_.pop_back();
        os_ << "]";
        return *this;
    }

    /** Emit an object key; must be followed by a value. */
    JsonWriter &
    key(const std::string &name)
    {
        separate();
        emitString(name);
        os_ << ":";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        separate();
        emitString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(double v)
    {
        separate();
        std::ostringstream tmp;
        tmp.precision(12);
        tmp << v;
        os_ << tmp.str();
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        separate();
        os_ << v;
        return *this;
    }

    JsonWriter &
    value(int64_t v)
    {
        separate();
        os_ << v;
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        return value(static_cast<int64_t>(v));
    }

    JsonWriter &
    value(bool v)
    {
        separate();
        os_ << (v ? "true" : "false");
        return *this;
    }

    /** The finished document. */
    std::string str() const { return os_.str(); }

  private:
    enum class State : uint8_t { FirstInObject, InObject, FirstInArray,
                                 InArray };

    void
    separate()
    {
        if (pendingValue_) {
            pendingValue_ = false;
            return; // value directly after key: no comma
        }
        if (stack_.empty())
            return;
        State &s = stack_.back();
        if (s == State::InObject || s == State::InArray) {
            os_ << ",";
        } else {
            s = s == State::FirstInObject ? State::InObject :
                State::InArray;
        }
    }

    void
    emitString(const std::string &s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':  os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\n': os_ << "\\n"; break;
              case '\t': os_ << "\\t"; break;
              case '\r': os_ << "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostringstream os_;
    std::vector<State> stack_;
    bool pendingValue_ = false;
};

} // namespace uhm

#endif // UHM_SUPPORT_JSON_HH
