/**
 * @file
 * A fixed-size thread pool over a sharded work queue.
 *
 * The sweep harness's execution engine: N worker threads, one task
 * deque per worker (a shard). submit() distributes tasks round-robin
 * across the shards; an idle worker drains its own shard first and
 * steals from the others when it runs dry, so a skewed task mix (one
 * slow simulation point among many fast ones) cannot strand work
 * behind it. wait() blocks until every submitted task has finished,
 * after which the pool can be reused for the next wave.
 *
 * The pool makes no determinism promises about *scheduling* — tasks
 * run in whatever order the workers reach them. Determinism of results
 * is the caller's contract: sweep tasks write only to their own
 * index-addressed result slot (bench/bench_common.hh, SweepRunner), so
 * the assembled output is identical for any worker count.
 *
 * Tasks must not call wait() or submit-and-wait on the same pool from
 * inside a task (the worker would sleep on itself). Nested sweeps get
 * their own pool.
 */

#ifndef UHM_SUPPORT_POOL_HH
#define UHM_SUPPORT_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uhm
{

/**
 * Default worker count: UHM_JOBS from the environment if set and
 * positive, else the hardware concurrency, and at least 1.
 */
unsigned defaultJobs();

/** Fixed-size thread pool with per-worker work shards and stealing. */
class ThreadPool
{
  public:
    /** Start @p jobs workers (0 = defaultJobs()). */
    explicit ThreadPool(unsigned jobs = 0);

    /** Waits for outstanding tasks, then stops and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned jobs() const { return static_cast<unsigned>(shards_.size()); }

    /** Enqueue one task (round-robin over the shards). */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

  private:
    /** One worker's slice of the queue. */
    struct Shard
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    /** Pop a task from @p shard; false if it is empty. */
    bool popFrom(size_t shard, std::function<void()> &task);

    /** Worker @p self: own shard first, then steal, then sleep. */
    void workerLoop(size_t self);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;

    // Lifecycle/accounting state, all under mutex_.
    std::mutex mutex_;
    std::condition_variable workCv_; ///< signalled on submit and stop
    std::condition_variable idleCv_; ///< signalled when pending_ hits 0
    size_t queued_ = 0;  ///< tasks enqueued but not yet claimed
    size_t pending_ = 0; ///< tasks enqueued or running, not yet finished
    size_t nextShard_ = 0;
    bool stop_ = false;
};

/**
 * Run fn(i) for every i in [0, n) on @p pool's workers and block until
 * all n calls have returned. Indices are claimed in no particular
 * order; fn must confine its writes to index-owned state.
 */
void parallelFor(ThreadPool &pool, size_t n,
                 const std::function<void(size_t)> &fn);

} // namespace uhm

#endif // UHM_SUPPORT_POOL_HH
