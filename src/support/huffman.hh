/**
 * @file
 * Minimum-redundancy (Huffman) coding of DIR fields.
 *
 * Section 3.2 of the paper describes frequency-based encodings of
 * operators and operands (citing Huffman 1952, Wilner's B1700 and
 * Hehner), including the practical refinement of restricting codeword
 * lengths "to a small number of selected lengths" to simplify decoding.
 * This module provides:
 *
 *  - optimal unrestricted Huffman codes,
 *  - optimal length-limited codes (package-merge), and
 *  - quantized codes whose lengths are drawn from a small allowed set
 *    (the B1700-style compromise).
 *
 * Decoding walks an explicit binary tree and reports the number of edges
 * traversed, which the host-machine simulator charges as decode work.
 */

#ifndef UHM_SUPPORT_HUFFMAN_HH
#define UHM_SUPPORT_HUFFMAN_HH

#include <cstdint>
#include <vector>

#include "support/bitstream.hh"

namespace uhm
{

/**
 * A canonical prefix code over the symbol alphabet [0, n).
 *
 * Symbols with zero recorded frequency still receive a codeword (the
 * encoder must be total: a dynamic run may execute instructions that were
 * rare in the static image used to gather statistics).
 */
class HuffmanCode
{
  public:
    HuffmanCode() = default;

    /**
     * Build an optimal prefix code from frequencies.
     * @param freqs frequency of each symbol; size defines the alphabet
     * @param max_len 0 for unrestricted, otherwise the maximum codeword
     *                length (package-merge; must satisfy
     *                2^max_len >= alphabet size)
     */
    static HuffmanCode build(const std::vector<uint64_t> &freqs,
                             unsigned max_len = 0);

    /**
     * Build a code whose codeword lengths all belong to @p allowed_lens
     * (sorted ascending). Models the B1700's restricted field lengths.
     */
    static HuffmanCode buildQuantized(
        const std::vector<uint64_t> &freqs,
        const std::vector<unsigned> &allowed_lens);

    /** Append the codeword for @p symbol. */
    void encode(BitWriter &bw, uint64_t symbol) const;

    /**
     * Decode one symbol from the reader.
     * @param tree_steps if non-null, incremented once per tree edge
     *                   traversed (the decode-cost model)
     */
    uint64_t decode(BitReader &br, uint64_t *tree_steps = nullptr) const;

    /** Codeword length of @p symbol in bits. */
    unsigned lengthOf(uint64_t symbol) const;

    /** Alphabet size. */
    size_t alphabetSize() const { return lengths_.size(); }

    /** True once built with a non-empty alphabet. */
    bool valid() const { return !lengths_.empty(); }

    /**
     * Expected codeword length under @p freqs, in bits per symbol.
     * Used to compare against the entropy bound in tests.
     */
    double expectedLength(const std::vector<uint64_t> &freqs) const;

    /**
     * Number of internal nodes in the decode tree — a proxy for the
     * decode-table memory the interpreter must keep resident (the paper:
     * "this also increases the amount of memory occupied by the
     * interpreter").
     */
    size_t decodeTreeNodes() const;

    /** All codeword lengths (indexed by symbol). */
    const std::vector<unsigned> &lengths() const { return lengths_; }

  private:
    static HuffmanCode fromLengths(std::vector<unsigned> lengths);

    void buildTree();

    /** Canonical codeword per symbol. */
    std::vector<uint64_t> codes_;
    /** Codeword length per symbol. */
    std::vector<unsigned> lengths_;

    struct Node
    {
        /** Child node indices; -1 means absent. */
        int child[2] = {-1, -1};
        /** Decoded symbol for leaves, -1 for internal nodes. */
        int64_t symbol = -1;
    };
    /** Explicit decode tree, node 0 is the root. */
    std::vector<Node> tree_;
};

/** Shannon entropy of a frequency vector, in bits per symbol. */
double entropyBits(const std::vector<uint64_t> &freqs);

} // namespace uhm

#endif // UHM_SUPPORT_HUFFMAN_HH
