/**
 * @file
 * Minimum-redundancy (Huffman) coding of DIR fields.
 *
 * Section 3.2 of the paper describes frequency-based encodings of
 * operators and operands (citing Huffman 1952, Wilner's B1700 and
 * Hehner), including the practical refinement of restricting codeword
 * lengths "to a small number of selected lengths" to simplify decoding.
 * This module provides:
 *
 *  - optimal unrestricted Huffman codes,
 *  - optimal length-limited codes (package-merge), and
 *  - quantized codes whose lengths are drawn from a small allowed set
 *    (the B1700-style compromise).
 *
 * Decoding has two host-side implementations with identical results and
 * identical *simulated* cost accounting:
 *
 *  - the tree walk: one BitReader bit per decode-tree edge (the
 *    reference semantics, and the paper's cost model), and
 *  - a table-driven fast path: a canonical-Huffman root lookup table
 *    (up to 11 bits wide) with overflow subtables for longer
 *    codewords, fed by a multi-bit BitReader::peek/consume pair.
 *
 * Both report the number of decode-tree edges the *simulated* machine
 * would traverse (the codeword length), so every cycle count in the
 * system is independent of which host path ran; only wall-clock
 * differs. The process-wide default is the table path; see
 * setHuffmanDecodeKind() for the tree escape hatch.
 */

#ifndef UHM_SUPPORT_HUFFMAN_HH
#define UHM_SUPPORT_HUFFMAN_HH

#include <cstdint>
#include <vector>

#include "support/bitstream.hh"

namespace uhm
{

/** Which host-side Huffman decode implementation to run. */
enum class HuffmanDecodeKind : uint8_t
{
    Tree,  ///< bit-at-a-time decode-tree walk (reference semantics)
    Table, ///< canonical root table + overflow subtables (fast path)
};

/**
 * Set the process-wide default decode implementation (the
 * uhm_cli --decode=tree|table escape hatch). Thread-safe; intended to
 * be set once at startup, before simulation threads exist.
 */
void setHuffmanDecodeKind(HuffmanDecodeKind kind);

/** The current process-wide default decode implementation. */
HuffmanDecodeKind huffmanDecodeKind();

/**
 * RAII override of the process-wide decode kind (tests, benches).
 * Not safe while other threads are decoding.
 */
class ScopedHuffmanDecodeKind
{
  public:
    explicit ScopedHuffmanDecodeKind(HuffmanDecodeKind kind)
        : saved_(huffmanDecodeKind())
    {
        setHuffmanDecodeKind(kind);
    }
    ~ScopedHuffmanDecodeKind() { setHuffmanDecodeKind(saved_); }

    ScopedHuffmanDecodeKind(const ScopedHuffmanDecodeKind &) = delete;
    ScopedHuffmanDecodeKind &
    operator=(const ScopedHuffmanDecodeKind &) = delete;

  private:
    HuffmanDecodeKind saved_;
};

/**
 * A canonical prefix code over the symbol alphabet [0, n).
 *
 * Symbols with zero recorded frequency still receive a codeword (the
 * encoder must be total: a dynamic run may execute instructions that were
 * rare in the static image used to gather statistics).
 */
class HuffmanCode
{
  public:
    HuffmanCode() = default;

    /**
     * Build an optimal prefix code from frequencies.
     * @param freqs frequency of each symbol; size defines the alphabet
     * @param max_len 0 for unrestricted, otherwise the maximum codeword
     *                length (package-merge; must satisfy
     *                2^max_len >= alphabet size)
     */
    static HuffmanCode build(const std::vector<uint64_t> &freqs,
                             unsigned max_len = 0);

    /**
     * Build a code whose codeword lengths all belong to @p allowed_lens
     * (sorted ascending). Models the B1700's restricted field lengths.
     */
    static HuffmanCode buildQuantized(
        const std::vector<uint64_t> &freqs,
        const std::vector<unsigned> &allowed_lens);

    /** Append the codeword for @p symbol. */
    void encode(BitWriter &bw, uint64_t symbol) const;

    /**
     * Decode one symbol from the reader via the process-wide default
     * implementation (huffmanDecodeKind()).
     * @param tree_steps if non-null, incremented once per tree edge
     *                   the simulated machine traverses — always the
     *                   codeword length, whichever host path ran
     */
    uint64_t
    decode(BitReader &br, uint64_t *tree_steps = nullptr) const
    {
        return decode(br, tree_steps, huffmanDecodeKind());
    }

    /**
     * Decode one symbol via an explicit implementation choice. Decoders
     * that decode several symbols per instruction read the process-wide
     * kind once and pass it down, keeping the atomic load out of the
     * symbol loop.
     */
    uint64_t
    decode(BitReader &br, uint64_t *tree_steps,
           HuffmanDecodeKind kind) const
    {
        return kind == HuffmanDecodeKind::Table ?
            decodeTable(br, tree_steps) : decodeTree(br, tree_steps);
    }

    /** Decode one symbol by walking the explicit decode tree. */
    uint64_t decodeTree(BitReader &br,
                        uint64_t *tree_steps = nullptr) const;

    /**
     * Decode one symbol through the canonical lookup table: one peek
     * into the root table, at most one more into an overflow subtable,
     * one consume. Bit-exact with decodeTree(), including the
     * tree_steps count. Inline: this is the innermost operation of the
     * decode fast path.
     */
    uint64_t
    decodeTable(BitReader &br, uint64_t *tree_steps = nullptr) const
    {
        uint32_t slot = root_[br.peek(rootBits_)];
        if (slot & slotOverflow) {
            // Codeword longer than the root window: one more peek
            // selects the overflow subtable slot.
            unsigned width = slot & slotLenMask;
            uint64_t low = br.peek(rootBits_ + width) &
                           ((uint64_t{1} << width) - 1);
            slot = overflow_[(slot >> slotPayloadShift) + low];
            uhm_assert(!(slot & slotOverflow),
                       "decode fell off the table");
        }
        unsigned len = slot & slotLenMask;
        uhm_assert(len > 0, "decode fell off the table");
        br.consume(len);
        // The simulated machine still walks one decode-tree edge per
        // codeword bit; only the host-side work shrank.
        if (tree_steps)
            *tree_steps += len;
        return slot >> slotPayloadShift;
    }

    /** Codeword length of @p symbol in bits. */
    unsigned lengthOf(uint64_t symbol) const;

    /** Alphabet size. */
    size_t alphabetSize() const { return lengths_.size(); }

    /** True once built with a non-empty alphabet. */
    bool valid() const { return !lengths_.empty(); }

    /**
     * Expected codeword length under @p freqs, in bits per symbol.
     * Used to compare against the entropy bound in tests.
     */
    double expectedLength(const std::vector<uint64_t> &freqs) const;

    /**
     * Number of internal nodes in the decode tree — a proxy for the
     * decode-table memory the interpreter must keep resident (the paper:
     * "this also increases the amount of memory occupied by the
     * interpreter").
     */
    size_t decodeTreeNodes() const;

    /** All codeword lengths (indexed by symbol). */
    const std::vector<unsigned> &lengths() const { return lengths_; }

    /** Longest codeword length in bits (0 before build). */
    unsigned maxCodeLength() const { return maxLen_; }

    /** Root-table index width in bits (<= maxRootBits). */
    unsigned rootBits() const { return rootBits_; }

    /**
     * Total lookup-table entries (root + overflow) — the host-side
     * footprint of the fast path, reported by bench_decode.
     */
    size_t
    decodeTableEntries() const
    {
        return root_.size() + overflow_.size();
    }

  private:
    /** Widest root lookup the table decoder will build. */
    static constexpr unsigned maxRootBits = 11;

    static HuffmanCode fromLengths(std::vector<unsigned> lengths);

    void buildTree();
    void buildDecodeTable();

    /** Canonical codeword per symbol. */
    std::vector<uint64_t> codes_;
    /** Codeword length per symbol. */
    std::vector<unsigned> lengths_;

    struct Node
    {
        /** Child node indices; -1 means absent. */
        int child[2] = {-1, -1};
        /** Decoded symbol for leaves, -1 for internal nodes. */
        int64_t symbol = -1;
    };
    /** Explicit decode tree, node 0 is the root. */
    std::vector<Node> tree_;

    /**
     * One lookup-table slot, packed into 32 bits so a decode touches a
     * single word:
     *
     *   bits 0-6  codeword length (terminal) or subtable index width
     *             (overflow pointer); 0 marks an invalid slot — a
     *             window no codeword matches, reachable only from a
     *             corrupt stream
     *   bit  7    overflow-pointer flag (root table only)
     *   bits 8-31 decoded symbol (terminal) or subtable offset into
     *             overflow_ (overflow pointer)
     */
    static constexpr uint32_t slotLenMask = 0x7f;
    static constexpr uint32_t slotOverflow = 0x80;
    static constexpr unsigned slotPayloadShift = 8;
    /** Largest symbol / subtable offset a slot can carry. */
    static constexpr uint32_t slotPayloadMax = (1u << 24) - 1;

    /** Root lookup table, indexed by the next rootBits_ stream bits. */
    std::vector<uint32_t> root_;
    /** Overflow subtables, one span per long-codeword root prefix. */
    std::vector<uint32_t> overflow_;
    unsigned rootBits_ = 0;
    unsigned maxLen_ = 0;
};

/** Shannon entropy of a frequency vector, in bits per symbol. */
double entropyBits(const std::vector<uint64_t> &freqs);

} // namespace uhm

#endif // UHM_SUPPORT_HUFFMAN_HH
