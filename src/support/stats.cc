#include "support/stats.hh"

#include <sstream>

namespace uhm
{

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << " = " << kv.second << "\n";
    return os.str();
}

} // namespace uhm
