#include "uhm/run_image.hh"

#include "psder/staging.hh"
#include "support/logging.hh"

namespace uhm
{

namespace
{

bool
isBranch(MOp op)
{
    return op == MOp::BR || op == MOp::BRZ || op == MOp::BRNZ ||
        op == MOp::BRNEG;
}

/** True when ops[j..] starts with exactly @p pat. */
bool
matchOps(const std::vector<MicroOp> &ops, size_t j,
         std::initializer_list<MOp> pat)
{
    if (j + pat.size() > ops.size())
        return false;
    size_t k = j;
    for (MOp m : pat)
        if (ops[k++].op != m)
            return false;
    return true;
}

/** Fused opcode for a SPOP/SPOP/<op>/SPUSH/DONE body, 0 if none. */
uint32_t
binFusedOp(MOp op)
{
    using F = FlatRoutines;
    switch (op) {
      case MOp::ADD:   return F::F_BIN_ADD;
      case MOp::SUB:   return F::F_BIN_SUB;
      case MOp::MUL:   return F::F_BIN_MUL;
      case MOp::DIV:   return F::F_BIN_DIV;
      case MOp::MOD:   return F::F_BIN_MOD;
      case MOp::AND:   return F::F_BIN_AND;
      case MOp::OR:    return F::F_BIN_OR;
      case MOp::XOR:   return F::F_BIN_XOR;
      case MOp::SHL:   return F::F_BIN_SHL;
      case MOp::SHR:   return F::F_BIN_SHR;
      case MOp::CMPEQ: return F::F_BIN_CMPEQ;
      case MOp::CMPNE: return F::F_BIN_CMPNE;
      case MOp::CMPLT: return F::F_BIN_CMPLT;
      case MOp::CMPLE: return F::F_BIN_CMPLE;
      case MOp::CMPGT: return F::F_BIN_CMPGT;
      case MOp::CMPGE: return F::F_BIN_CMPGE;
      default:         return 0;
    }
}

/**
 * Try to install a fused superop for the constituents starting at
 * routine-local index @p j. Rewrites only the op byte of the first
 * constituent's emitted word; positions and branch targets are
 * untouched. @return the constituent count (0 = no fusion).
 */
size_t
fuseAt(const std::vector<MicroOp> &ops, size_t j,
       std::vector<uint32_t> &code, size_t base)
{
    using F = FlatRoutines;
    auto install = [&](uint32_t fop, size_t len) {
        code[base + j] = (code[base + j] & ~0xffu) | fop;
        return len;
    };

    // Longest shapes first; every shorter shape is also a prefix of a
    // longer one only where the longer check has already failed.
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPOP, MOp::SPOP,
                          MOp::LOAD, MOp::ADD, MOp::LOAD, MOp::LOAD,
                          MOp::ADD, MOp::LOAD, MOp::SPUSH, MOp::SPUSH,
                          MOp::DONE}))
        return install(F::F_PUSHL2, 13);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SUB, MOp::ADDI,
                          MOp::LOAD, MOp::STORE, MOp::RASPOP,
                          MOp::SPUSH, MOp::DONE}))
        return install(F::F_RET, 9);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPOP, MOp::LOAD,
                          MOp::ADD, MOp::LOAD, MOp::ADD, MOp::STORE,
                          MOp::DONE}))
        return install(F::F_INCL, 9);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPOP, MOp::LOAD,
                          MOp::STORE, MOp::ADDI, MOp::STORE, MOp::ADD,
                          MOp::ADDI}))
        return install(F::F_ENTER_PRE, 9);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::LOAD, MOp::ADD,
                          MOp::LOAD, MOp::SPUSH, MOp::DONE}))
        return install(F::F_PUSHL, 7);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPOP, MOp::LOAD,
                          MOp::ADD, MOp::STORE, MOp::DONE}))
        return install(F::F_STORE3, 7);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::LOAD, MOp::ADD,
                          MOp::LOAD, MOp::OUTP, MOp::DONE}))
        return install(F::F_WRITEL, 7);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPOP, MOp::SPOP,
                          MOp::LOAD, MOp::ADD, MOp::LOAD}))
        return install(F::F_LEA4, 7);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::LOAD, MOp::ADD,
                          MOp::SPUSH, MOp::DONE}))
        return install(F::F_ADDR, 6);
    if (matchOps(ops, j, {MOp::BRZ, MOp::ADDI, MOp::SPOP, MOp::ADD,
                          MOp::STORE, MOp::BR}))
        return install(F::F_ENTER_LOOP, 6);
    if (j + 5 <= ops.size() && ops[j].op == MOp::SPOP &&
        ops[j + 1].op == MOp::SPOP && ops[j + 3].op == MOp::SPUSH &&
        ops[j + 4].op == MOp::DONE) {
        if (uint32_t fop = binFusedOp(ops[j + 2].op))
            return install(fop, 5);
    }
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPUSH, MOp::SPUSH,
                          MOp::DONE}))
        return install(F::F_SWAP, 5);
    if (matchOps(ops, j, {MOp::BRZ, MOp::BRNEG, MOp::ADDI, MOp::BR})) {
        // The closed-form spin needs the exact counted-loop shape:
        // all four test/decrement the same register by one, and the
        // BR loops straight back to the BRZ.
        const MicroOp &bz = ops[j];
        const MicroOp &bn = ops[j + 1];
        const MicroOp &ai = ops[j + 2];
        const MicroOp &br = ops[j + 3];
        if (bz.srcA == bn.srcA && ai.dst == bz.srcA &&
            ai.srcA == bz.srcA && ai.imm == -1 &&
            static_cast<int64_t>(j + 3) + 1 + br.imm ==
                static_cast<int64_t>(j))
            return install(F::F_SEMWORK_LOOP, 4);
    }
    if (matchOps(ops, j, {MOp::SPOP, MOp::LOAD, MOp::SPUSH, MOp::DONE}))
        return install(F::F_LOADI, 4);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::STORE, MOp::DONE}))
        return install(F::F_STOREI, 4);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPUSH, MOp::SPUSH, MOp::DONE}))
        return install(F::F_DUP, 4);
    if (matchOps(ops, j, {MOp::SPOP, MOp::NEG, MOp::SPUSH, MOp::DONE}))
        return install(F::F_NEG1, 4);
    if (matchOps(ops, j, {MOp::SPOP, MOp::NOT, MOp::SPUSH, MOp::DONE}))
        return install(F::F_NOT1, 4);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP, MOp::SPOP}))
        return install(F::F_SPOP3, 3);
    if (matchOps(ops, j, {MOp::SPOP, MOp::RASPUSH, MOp::DONE}))
        return install(F::F_CALLP, 3);
    if (matchOps(ops, j, {MOp::INP, MOp::SPUSH, MOp::DONE}))
        return install(F::F_READ, 3);
    if (matchOps(ops, j, {MOp::SPOP, MOp::OUTP, MOp::DONE}))
        return install(F::F_WRITE, 3);
    if (matchOps(ops, j, {MOp::SPUSH, MOp::BR}))
        return install(F::F_PUSH_BR, 2);
    if (matchOps(ops, j, {MOp::SPUSH, MOp::DONE}))
        return install(F::F_PUSH_DONE, 2);
    if (matchOps(ops, j, {MOp::SPOP, MOp::DONE}))
        return install(F::F_POP_DONE, 2);
    if (matchOps(ops, j, {MOp::SPOP, MOp::SPOP}))
        return install(F::F_SPOP2, 2);
    return 0;
}

} // namespace

FlatRoutines
FlatRoutines::build(const RoutineLibrary &lib, size_t count)
{
    FlatRoutines flat;
    flat.entry.assign(count, -1);
    for (size_t id = 0; id < count; ++id) {
        const MicroRoutine &r = lib.byId(static_cast<int64_t>(id));
        if (r.ops.empty())
            continue;
        size_t base = flat.code.size();
        size_t n = r.ops.size();
        flat.entry[id] = static_cast<int32_t>(base);
        for (size_t j = 0; j < n; ++j) {
            const MicroOp &op = r.ops[j];
            flat.code.push_back(
                static_cast<uint32_t>(op.op) |
                static_cast<uint32_t>(op.dst) << 8 |
                static_cast<uint32_t>(op.srcA) << 16 |
                static_cast<uint32_t>(op.srcB) << 24);
            if (isBranch(op.op)) {
                // Relative distance from the following instruction →
                // absolute stream index. A target outside the routine
                // is redirected to the sentinel, which reproduces the
                // switch interpreter's "fell off" panic.
                int64_t target =
                    static_cast<int64_t>(j) + 1 + op.imm;
                if (target < 0 || target > static_cast<int64_t>(n))
                    target = static_cast<int64_t>(n);
                flat.imm.push_back(static_cast<int64_t>(base) + target);
            } else {
                flat.imm.push_back(op.imm);
            }
        }
        flat.code.push_back(sentinelOp);
        flat.imm.push_back(0);

        // Superop peephole: greedily fuse known constituent runs into
        // single-dispatch handlers. Positions are preserved, so this
        // pass never touches the imm stream.
        size_t j = 0;
        while (j < n) {
            size_t len = fuseAt(r.ops, j, flat.code, base);
            j += len ? len : 1;
        }
    }
    return flat;
}

bool
lowerFastSeq(const std::vector<ShortInstr> &code,
             const FlatRoutines &flat, uint64_t tau_d, uint64_t tau1,
             FastSeq &out)
{
    out.fastable = false;
    out.stackNext = false;
    out.routineEntry = -1;
    out.nextImm = 0;
    out.icTag = ~0ull;
    out.pushes.clear();

    // Canonical translation shape: PUSH#* [CALL] INTERP.
    size_t i = 0;
    while (i < code.size() && code[i].op == SOp::PUSH &&
           code[i].mode == SMode::Imm) {
        out.pushes.push_back(code[i].operand);
        ++i;
    }
    if (i < code.size() && code[i].op == SOp::CALL) {
        int64_t id = code[i].operand;
        if (id < 0 || static_cast<size_t>(id) >= flat.entry.size())
            return false;
        out.routineEntry = flat.entry[static_cast<size_t>(id)];
        ++i;
    }
    if (i + 1 != code.size() || code[i].op != SOp::INTERP)
        return false;
    if (code[i].mode == SMode::Stack)
        out.stackNext = true;
    else if (code[i].mode == SMode::Imm)
        out.nextImm = static_cast<uint64_t>(code[i].operand);
    else
        return false;

    out.shortCount = static_cast<uint32_t>(code.size());
    out.dispatchAdd = tau_d * out.shortCount +
        (out.stackNext ? tau1 : 0);
    out.stageAdd = static_cast<uint64_t>(out.pushes.size()) * tau1;
    out.level1Add = static_cast<uint32_t>(out.pushes.size()) +
        (out.stackNext ? 1u : 0u);
    out.fastable = true;
    return true;
}

bool
lowerFastTrace(const tier::Trace &trace, const FlatRoutines &flat,
               uint64_t tau_d, uint64_t tau1, FastTrace &out)
{
    out.fastable = false;
    out.steps.clear();
    out.loops = trace.loops;
    out.exitAddr = trace.exitAddr;
    out.lastAddr = 0;
    if (trace.steps.empty())
        return false;

    out.steps.reserve(trace.steps.size());
    for (const tier::TraceStep &step : trace.steps) {
        if (step.dirAddrs.empty())
            return false;
        FastTraceStep fs;
        fs.src = &step;
        fs.nDir = static_cast<uint32_t>(step.dirAddrs.size());
        fs.nBody = static_cast<uint32_t>(step.body.size());
        fs.guarded = step.guarded;
        fs.expect = step.expect;
        fs.lastAddr = step.dirAddrs.back();
        for (const ShortInstr &si : step.body) {
            if (si.op == SOp::PUSH && si.mode == SMode::Imm) {
                ++fs.nPushes;
                fs.items.push_back({-1, si.operand});
            } else if (si.op == SOp::CALL) {
                int64_t id = si.operand;
                if (id < 0 ||
                    static_cast<size_t>(id) >= flat.entry.size())
                    return false;
                int32_t entry = flat.entry[static_cast<size_t>(id)];
                // Empty routines still count as executed short
                // instructions (nBody covers them) but emit no item.
                if (entry >= 0)
                    fs.items.push_back({entry, 0});
            } else {
                // Trace bodies are PUSH/CALL only by construction;
                // anything else stays on the switch path.
                return false;
            }
        }
        fs.dispatchAdd =
            tau_d * fs.nBody + (fs.guarded ? tau1 : 0);
        fs.stageAdd = static_cast<uint64_t>(fs.nPushes) * tau1;
        fs.level1Add = fs.nPushes + (fs.guarded ? 1u : 0u);
        out.steps.push_back(std::move(fs));
    }
    out.lastAddr = out.steps.back().lastAddr;
    out.fastable = true;
    return true;
}

} // namespace uhm
