#include "uhm/machine.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/wrap.hh"

namespace uhm
{

const char *
machineKindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Conventional: return "conventional";
      case MachineKind::Cached:       return "cached";
      case MachineKind::Dtb:          return "dtb";
      case MachineKind::Dtb2:         return "dtb2";
      case MachineKind::Tiered:       return "tiered";
    }
    return "?";
}

Machine::Machine(const EncodedDir &image, const MachineConfig &config,
                 Dtb *shared_dtb)
    : image_(&image), config_(config), routines_(config.layout),
      mem_(config.layout.level1Words, config.timing), translator_(image),
      decodeMemo_(image), stagingValid_(image.numInstrs(), 0),
      stagingMemo_(image.numInstrs())
{
    if (shared_dtb && config_.kind != MachineKind::Dtb &&
        config_.kind != MachineKind::Tiered) {
        fatal("machine kind '%s' cannot dispatch through a shared DTB",
              machineKindName(config_.kind));
    }
    switch (config_.kind) {
      case MachineKind::Dtb2:
        dtbL1_ = std::make_unique<Dtb>(config_.dtbL1);
        [[fallthrough]];
      case MachineKind::Dtb:
        if (shared_dtb) {
            dtb_ = shared_dtb;
            sharedDtb_ = true;
        } else {
            ownedDtb_ = std::make_unique<Dtb>(config_.dtb);
            dtb_ = ownedDtb_.get();
        }
        break;
      case MachineKind::Tiered:
        if (shared_dtb) {
            dtb_ = shared_dtb;
            sharedDtb_ = true;
        } else {
            ownedDtb_ = std::make_unique<Dtb>(config_.dtb);
            dtb_ = ownedDtb_.get();
        }
        tier_ = std::make_unique<tier::TierEngine>(
            image, *dtb_, config_.tier, config_.traceCache);
        break;
      case MachineKind::Cached:
        icache_ = std::make_unique<SetAssocCache>(config_.icache);
        break;
      case MachineKind::Conventional:
        break;
    }
    const DirProgram &prog = image.program();
    if (prog.maxDepth() > config_.layout.maxDepth) {
        fatal("program nests %u contours deep; layout supports %llu",
              prog.maxDepth(),
              static_cast<unsigned long long>(config_.layout.maxDepth));
    }

    // Publish every component's counters under one hierarchical
    // namespace (naming scheme: docs/INTERNALS.md "Observability").
    registry_.add("machine.dir_instrs", dirInstrs_);
    registry_.add("machine.decoded_instrs", decodedInstrs_);
    registry_.add("machine.translated_instrs", translatedInstrs_);
    registry_.add("machine.micro_ops", microOps_);
    registry_.add("machine.short_instrs", shortInstrs_);
    registry_.add("machine.dir_fetch_refs", dirFetchRefs_);
    registry_.add("machine.traps", traps_);
    registry_.add("translate.short_emitted", translateShortEmitted_);
    mem_.registerCounters(registry_, "mem");
    if (dtb_) {
        // A shared DTB's counters are pooled across tenants — they are
        // not this machine's to publish. The histograms below are
        // per-machine members and always register.
        if (!sharedDtb_)
            dtb_->registerCounters(registry_, "dtb");
        registry_.addHistogram("translate.latency_cycles",
                               translateLatency_);
        registry_.addHistogram("dtb.residency_cycles", dtbResidency_);
        registry_.addHistogram("dtb.evict_set_occupancy",
                               dtbEvictOccupancy_);
    }
    if (dtbL1_)
        dtbL1_->registerCounters(registry_, "dtbl1");
    if (icache_)
        icache_->registerCounters(registry_, "icache");
    if (tier_) {
        tier_->registerCounters(registry_, "tier");
        registry_.addHistogram("tier.trace_len_dir", tierTraceLen_);
        registry_.add("tier.trace_dir_instrs", traceDirInstrs_);
        registry_.add("tier.trace_short_instrs", traceShortInstrs_);
        registry_.add("tier.trace_iterations", traceIterations_);
        registry_.add("tier.trace_enters", traceEnters_);
        registry_.add("tier.trace_exits", traceExits_);
    }
}

Machine::~Machine() = default;

// ---- operand stack --------------------------------------------------------

void
Machine::pushStack(int64_t value, uint64_t &bucket)
{
    if (sp_ >= config_.layout.stackWords)
        fatal("operand stack overflow (%llu words)",
              static_cast<unsigned long long>(config_.layout.stackWords));
    uint64_t before = mem_.cycles();
    mem_.write(config_.layout.stackBase + sp_, value);
    ++sp_;
    bucket += mem_.cycles() - before;
}

int64_t
Machine::popStack(uint64_t &bucket)
{
    if (sp_ == 0)
        fatal("operand stack underflow");
    --sp_;
    uint64_t before = mem_.cycles();
    int64_t v = mem_.read(config_.layout.stackBase + sp_);
    bucket += mem_.cycles() - before;
    return v;
}

// ---- IU1: micro-routine execution ------------------------------------------

void
Machine::runRoutine(const MicroRoutine &routine)
{
    const MemTiming &timing = config_.timing;
    size_t mpc = 0;
    for (;;) {
        uhm_assert(mpc < routine.ops.size(),
                   "fell off routine '%s'", routine.name.c_str());
        const MicroOp &op = routine.ops[mpc++];
        // One level-1 reference to fetch the micro-instruction.
        breakdown_.semantic += timing.tau1;
        ++microOps_;

        auto &r = regs_;
        switch (op.op) {
          case MOp::MOVI: r[op.dst] = op.imm; break;
          case MOp::MOV:  r[op.dst] = r[op.srcA]; break;
          case MOp::ADD:  r[op.dst] = wrapAdd(r[op.srcA], r[op.srcB]); break;
          case MOp::ADDI: r[op.dst] = wrapAdd(r[op.srcA], op.imm); break;
          case MOp::SUB:  r[op.dst] = wrapSub(r[op.srcA], r[op.srcB]); break;
          case MOp::MUL:  r[op.dst] = wrapMul(r[op.srcA], r[op.srcB]); break;
          case MOp::DIV:
            if (r[op.srcB] == 0)
                fatal("division by zero");
            r[op.dst] = wrapDiv(r[op.srcA], r[op.srcB]);
            break;
          case MOp::MOD:
            if (r[op.srcB] == 0)
                fatal("modulo by zero");
            r[op.dst] = wrapMod(r[op.srcA], r[op.srcB]);
            break;
          case MOp::NEG:  r[op.dst] = wrapNeg(r[op.srcA]); break;
          case MOp::AND:  r[op.dst] = r[op.srcA] & r[op.srcB]; break;
          case MOp::OR:   r[op.dst] = r[op.srcA] | r[op.srcB]; break;
          case MOp::XOR:  r[op.dst] = r[op.srcA] ^ r[op.srcB]; break;
          case MOp::NOT:  r[op.dst] = ~r[op.srcA]; break;
          case MOp::SHL:
            r[op.dst] = wrapShl(r[op.srcA], r[op.srcB]);
            break;
          case MOp::SHR:
            r[op.dst] = wrapShr(r[op.srcA], r[op.srcB]);
            break;
          case MOp::CMPEQ: r[op.dst] = r[op.srcA] == r[op.srcB]; break;
          case MOp::CMPNE: r[op.dst] = r[op.srcA] != r[op.srcB]; break;
          case MOp::CMPLT: r[op.dst] = r[op.srcA] <  r[op.srcB]; break;
          case MOp::CMPLE: r[op.dst] = r[op.srcA] <= r[op.srcB]; break;
          case MOp::CMPGT: r[op.dst] = r[op.srcA] >  r[op.srcB]; break;
          case MOp::CMPGE: r[op.dst] = r[op.srcA] >= r[op.srcB]; break;
          case MOp::EXTRACT: {
            unsigned shift = static_cast<unsigned>(op.imm & 63);
            unsigned width = static_cast<unsigned>((op.imm >> 6) & 63);
            uint64_t mask = width >= 64 ? ~0ull : (1ull << width) - 1;
            r[op.dst] = static_cast<int64_t>(
                (static_cast<uint64_t>(r[op.srcA]) >> shift) & mask);
            break;
          }
          case MOp::LOAD: {
            uint64_t before = mem_.cycles();
            r[op.dst] = mem_.read(
                static_cast<uint64_t>(r[op.srcA] + op.imm));
            breakdown_.semantic += mem_.cycles() - before;
            break;
          }
          case MOp::STORE: {
            uint64_t before = mem_.cycles();
            mem_.write(static_cast<uint64_t>(r[op.srcA] + op.imm),
                       r[op.srcB]);
            breakdown_.semantic += mem_.cycles() - before;
            break;
          }
          case MOp::SPUSH:
            pushStack(r[op.srcA], breakdown_.semantic);
            break;
          case MOp::SPOP:
            r[op.dst] = popStack(breakdown_.semantic);
            break;
          case MOp::RASPUSH:
            if (ras_.size() >= config_.layout.rasDepth)
                fatal("return-address stack overflow");
            ras_.push_back(static_cast<uint64_t>(r[op.srcA]));
            break;
          case MOp::RASPOP:
            if (ras_.empty())
                fatal("return-address stack underflow");
            r[op.dst] = static_cast<int64_t>(ras_.back());
            ras_.pop_back();
            break;
          case MOp::BR:
            mpc = static_cast<size_t>(
                static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::BRZ:
            if (r[op.srcA] == 0)
                mpc = static_cast<size_t>(
                    static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::BRNZ:
            if (r[op.srcA] != 0)
                mpc = static_cast<size_t>(
                    static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::BRNEG:
            if (r[op.srcA] < 0)
                mpc = static_cast<size_t>(
                    static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::OUTP:
            output_.push_back(r[op.srcA]);
            break;
          case MOp::INP:
            r[op.dst] = inputPos_ < input_->size() ?
                (*input_)[inputPos_++] : 0;
            break;
          case MOp::DONE:
            return;
        }
    }
}

// ---- fetch paths ----------------------------------------------------------

void
Machine::chargeFetchLevel2(uint64_t bits)
{
    uint64_t refs = std::max<uint64_t>(1, (bits + 63) / 64);
    breakdown_.fetch += refs * config_.timing.tau2;
    dirFetchRefs_ += refs;
    emitEvent(obs::EventKind::Fetch, pc_, refs);
}

void
Machine::chargeFetchCached(uint64_t bit_addr, uint64_t bits)
{
    uint64_t first = bit_addr / 64;
    uint64_t last = bits == 0 ? first : (bit_addr + bits - 1) / 64;
    for (uint64_t word = first; word <= last; ++word) {
        bool hit = icache_->access(word * 8);
        breakdown_.fetch += hit ? config_.timing.tauD :
            config_.timing.tau2;
        ++dirFetchRefs_;
    }
    emitEvent(obs::EventKind::Fetch, bit_addr, last - first + 1);
}

// ---- execution ------------------------------------------------------------

void
Machine::traceEvent(const std::string &event)
{
    if (config_.traceEvents)
        trace_.push_back(event);
}

void
Machine::executeStaged(const Staging &staging)
{
    for (int64_t v : staging.pushes)
        pushStack(v, breakdown_.stage);
    if (staging.routine >= 0) {
        const MicroRoutine &routine = routines_.byId(staging.routine);
        if (!routine.empty())
            runRoutine(routine);
    }
    switch (staging.next) {
      case NextKind::Imm:
        pc_ = staging.nextImm;
        break;
      case NextKind::Stack:
        pc_ = static_cast<uint64_t>(popStack(breakdown_.dispatch));
        break;
      case NextKind::Halt:
        halted_ = true;
        break;
    }
}

void
Machine::runConventionalOrCached()
{
    bool cached = config_.kind == MachineKind::Cached;
    while (!halted_ && breakdown_.total() < sliceLimit_) {
        maybeSample();
        if (dirInstrs_ >= config_.maxDirInstrs)
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        ++dirInstrs_;
        ++decodedInstrs_;
        if (config_.captureAddressTrace)
            addressTrace_.push_back(pc_);

        // The simulated machine decodes every executed instruction (and
        // is charged for it below); the host replays the memoized
        // result after the first visit to a pc.
        const DecodeResult &res = decodeMemo_.decodeAt(pc_);
        ++opcodeCounts_[static_cast<size_t>(res.instr.op)];
        uint64_t bits = res.nextBitAddr - pc_;
        if (cached)
            chargeFetchCached(pc_, bits);
        else
            chargeFetchLevel2(bits);
        uint64_t decode_cycles = config_.costs.decodeCycles(res.cost);
        breakdown_.decode += decode_cycles;
        emitEvent(obs::EventKind::Decode, pc_, decode_cycles);

        if (!stagingValid_[res.index]) {
            stagingMemo_[res.index] =
                stageInstruction(res.instr, *image_, res.index);
            stagingValid_[res.index] = 1;
        }
        executeStaged(stagingMemo_[res.index]);
    }
}

void
Machine::executeShort(const ShortInstr &si)
{
    switch (si.op) {
      case SOp::PUSH: {
        int64_t value = si.operand;
        if (si.mode == SMode::Direct || si.mode == SMode::Indirect) {
            uint64_t before = mem_.cycles();
            value = mem_.read(static_cast<uint64_t>(si.operand));
            if (si.mode == SMode::Indirect)
                value = mem_.read(static_cast<uint64_t>(value));
            breakdown_.stage += mem_.cycles() - before;
        }
        pushStack(value, breakdown_.stage);
        break;
      }
      case SOp::POP: {
        int64_t value = popStack(breakdown_.stage);
        uint64_t before = mem_.cycles();
        uint64_t addr = static_cast<uint64_t>(si.operand);
        if (si.mode == SMode::Indirect)
            addr = static_cast<uint64_t>(mem_.read(addr));
        mem_.write(addr, value);
        breakdown_.stage += mem_.cycles() - before;
        break;
      }
      case SOp::CALL: {
        const MicroRoutine &routine = routines_.byId(si.operand);
        if (!routine.empty())
            runRoutine(routine);
        break;
      }
      case SOp::INTERP:
        panic("INTERP outside the dispatch loop");
    }
}

uint64_t
Machine::executeShortSequence(const std::vector<ShortInstr> &code,
                              uint64_t fetch_cost)
{
    for (const ShortInstr &si : code) {
        // IU2 fetches each short instruction from the buffer array.
        breakdown_.dispatch += fetch_cost;
        ++shortInstrs_;
        if (si.op == SOp::INTERP) {
            if (si.mode == SMode::Stack)
                return static_cast<uint64_t>(
                    popStack(breakdown_.dispatch));
            return static_cast<uint64_t>(si.operand);
        }
        executeShort(si);
    }
    panic("PSDER sequence did not end with INTERP");
}

uint64_t
Machine::executeTrace(const tier::Trace &trace)
{
    const uint64_t fetch_cost = config_.timing.tauD;
    for (;;) {
        ++traceIterations_;
        for (const tier::TraceStep &step : trace.steps) {
            for (uint64_t addr : step.dirAddrs) {
                if (dirInstrs_ >= config_.maxDirInstrs)
                    fatal("DIR instruction budget exhausted (%llu)",
                          static_cast<unsigned long long>(
                              config_.maxDirInstrs));
                ++dirInstrs_;
                ++traceDirInstrs_;
                if (config_.captureAddressTrace)
                    addressTrace_.push_back(addr);
            }
            for (const ShortInstr &si : step.body) {
                // The fused body is fetched from the trace cache's
                // buffer array at DTB speed — but carries no INTERP, so
                // the per-instruction lookup and successor fetch are
                // gone.
                breakdown_.dispatch += fetch_cost;
                ++shortInstrs_;
                ++traceShortInstrs_;
                executeShort(si);
            }
            if (step.guarded) {
                // The semantic routine left the successor on the
                // operand stack (as it would for INTERP); the guard
                // pops and compares it against the recorded path.
                uint64_t next = static_cast<uint64_t>(
                    popStack(breakdown_.dispatch));
                if (next != step.expect) {
                    ++traceExits_;
                    prevPc_ = step.dirAddrs.back();
                    return next;
                }
            }
        }
        if (!trace.loops) {
            ++traceExits_;
            prevPc_ = trace.steps.back().dirAddrs.back();
            return trace.exitAddr;
        }
        // Loop back to the head: one trace dispatch per iteration.
        breakdown_.dispatch += config_.tier.dispatchCycles;
    }
}

void
Machine::runDtb()
{
    bool two_level = config_.kind == MachineKind::Dtb2;
    while (!halted_ && breakdown_.total() < sliceLimit_) {
        maybeSample();
        if (dirInstrs_ >= config_.maxDirInstrs)
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        ++dirInstrs_;
        if (config_.captureAddressTrace)
            addressTrace_.push_back(pc_);

        std::vector<ShortInstr> local;
        const std::vector<ShortInstr> *code = nullptr;
        uint64_t fetch_cost = config_.timing.tauD;

        // First-level translation buffer (Dtb2): a tau1-speed lookup.
        if (two_level) {
            breakdown_.dispatch += config_.timing.tau1;
            Dtb::LookupResult l1 = dtbL1_->lookup(pc_);
            if (l1.hit) {
                code = l1.code;
                fetch_cost = config_.timing.tau1;
            }
        }

        if (!code) {
        // INTERP presents the DIR address to the associative address
        // array (one DTB-array access).
        breakdown_.dispatch += config_.timing.tauD;
        Dtb::LookupResult lr = dtb_->lookup(pc_);

        if (lr.hit) {
            emitEvent(obs::EventKind::DtbHit, pc_);
            if (config_.traceEvents) {
                std::ostringstream os;
                os << "interp hit dir@" << pc_;
                traceEvent(os.str());
            }
            // Promote into the first-level buffer: one tau1 store per
            // short instruction copied.
            if (two_level) {
                breakdown_.dispatch +=
                    lr.code->size() * config_.timing.tau1;
                local = *lr.code;
                dtbL1_->insert(pc_, *lr.code);
                emitEvent(obs::EventKind::Promote, pc_,
                          local.size());
                code = &local;
            } else {
                code = lr.code;
            }
        } else {
            // Figure 4: trap through DTRPOINT to the dynamic translator.
            emitEvent(obs::EventKind::DtbMiss, pc_);
            uint64_t miss_start = breakdown_.total();
            breakdown_.dispatch += config_.trapCycles;
            ++traps_;
            emitEvent(obs::EventKind::Trap, pc_, config_.trapCycles);
            ++decodedInstrs_;
            ++translatedInstrs_;

            // Memoized: a repeat miss on this pc replays the cached
            // translation; the charged costs are identical either way.
            const Translation &tr = translator_.translate(pc_);
            chargeFetchLevel2(tr.bits);
            uint64_t decode_cycles =
                config_.costs.decodeCycles(tr.decodeCost);
            breakdown_.decode += decode_cycles;
            emitEvent(obs::EventKind::Decode, pc_, decode_cycles);
            // Generation: one cycle to construct each short instruction
            // plus one buffer-array store each.
            breakdown_.translate +=
                tr.genSteps * (1 + config_.timing.tauD);
            translateShortEmitted_ += tr.code.size();
            emitEvent(obs::EventKind::Translate, pc_, tr.code.size());

            Dtb::InsertOutcome ins =
                dtb_->insert(pc_, tr.code,
                             cycleBase_ + breakdown_.total());
            translateLatency_.record(breakdown_.total() - miss_start);
            if (ins.evicted) {
                dtbResidency_.record(ins.victimResidency);
                dtbEvictOccupancy_.record(ins.setOccupancy);
                emitEvent(obs::EventKind::DtbEvict, ins.victimTag,
                          ins.unitsNeeded);
            }
            if (!ins.retained)
                emitEvent(obs::EventKind::DtbReject, pc_,
                          ins.unitsNeeded);
            if (config_.traceEvents) {
                std::ostringstream os;
                os << "interp miss dir@" << pc_
                   << " -> translate (" << tr.code.size()
                   << " short instrs, "
                   << (ins.retained ? "stored" : "rejected") << ")";
                traceEvent(os.str());
            }
            if (two_level)
                dtbL1_->insert(pc_, tr.code);
            code = &tr.code;
        }
        }

        uint64_t next = executeShortSequence(*code, fetch_cost);
        if (next == haltBitAddr)
            halted_ = true;
        else
            pc_ = next;
    }
}

void
Machine::runTiered()
{
    while (!halted_ && breakdown_.total() < sliceLimit_) {
        maybeSample();
        if (dirInstrs_ >= config_.maxDirInstrs)
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));

        // Recorder hook: report the pc about to be interpreted.
        if (tier_->recording()) {
            tier::TierEngine::RecordOutcome ro = tier_->recordStep(pc_);
            if (ro.status == tier::TierEngine::RecordStatus::Closed) {
                // Tier-2 translation charge: construct each short
                // instruction of the fused body and store it into the
                // trace cache's buffer array.
                breakdown_.translate2 += ro.compile.compiledShorts *
                    (config_.tier.gen2CyclesPerInstr +
                     config_.timing.tauD);
                tierTraceLen_.record(ro.compile.steps);
                emitEvent(obs::EventKind::Translate2, ro.compile.head,
                          ro.compile.compiledShorts);
                if (ro.compile.evictedTrace)
                    emitEvent(obs::EventKind::TraceEvict,
                              ro.compile.evictedHead);
            } else if (ro.status ==
                       tier::TierEngine::RecordStatus::Aborted) {
                emitEvent(obs::EventKind::TraceAbort, pc_);
            }
        }

        // INTERP presents the DIR address to the associative address
        // array (one DTB-array access), as in the Dtb organization.
        breakdown_.dispatch += config_.timing.tauD;
        Dtb::LookupResult lr = dtb_->lookup(pc_);
        const std::vector<ShortInstr> *code = nullptr;

        if (lr.hit) {
            emitEvent(obs::EventKind::DtbHit, pc_);
            // Hotness profile: a backward transfer into a resident
            // entry is a backedge (loops close with one).
            bool backedge = pc_ <= prevPc_;
            if (backedge)
                ++lr.meta->backedgeCount;

            if (lr.meta->anchorsTrace && !tier_->recording()) {
                // Trace dispatch: one trace-cache access plus the
                // dispatch overhead — paid once per entry, not once
                // per instruction.
                breakdown_.dispatch += config_.timing.tauD +
                    config_.tier.dispatchCycles;
                if (const tier::Trace *trace = tier_->lookupTrace(pc_)) {
                    ++traceEnters_;
                    emitEvent(obs::EventKind::TraceEnter, pc_,
                              trace->dirCount);
                    uint64_t iters_before = traceIterations_.value();
                    uint64_t next = executeTrace(*trace);
                    emitEvent(obs::EventKind::TraceExit, next,
                              traceIterations_.value() - iters_before);
                    if (next == haltBitAddr)
                        halted_ = true;
                    else
                        pc_ = next;
                    continue;
                }
                // Stale anchor (cleared by lookupTrace): fall back to
                // the ordinary tier-1 path.
            }
            if (backedge && tier_->wantsRecording(*lr.meta, pc_)) {
                tier_->beginRecording(pc_);
                emitEvent(obs::EventKind::TraceRecord, pc_);
            }
            code = lr.code;
        } else {
            // Figure 4 miss flow, with the insert routed through the
            // tier engine so an eviction invalidates any trace the
            // victim anchored.
            emitEvent(obs::EventKind::DtbMiss, pc_);
            uint64_t miss_start = breakdown_.total();
            breakdown_.dispatch += config_.trapCycles;
            ++traps_;
            emitEvent(obs::EventKind::Trap, pc_, config_.trapCycles);
            ++decodedInstrs_;
            ++translatedInstrs_;

            const Translation &tr = translator_.translate(pc_);
            chargeFetchLevel2(tr.bits);
            uint64_t decode_cycles =
                config_.costs.decodeCycles(tr.decodeCost);
            breakdown_.decode += decode_cycles;
            emitEvent(obs::EventKind::Decode, pc_, decode_cycles);
            breakdown_.translate +=
                tr.genSteps * (1 + config_.timing.tauD);
            translateShortEmitted_ += tr.code.size();
            emitEvent(obs::EventKind::Translate, pc_, tr.code.size());

            tier::TierEngine::InstallResult ins =
                tier_->installTranslation(
                    pc_, tr.code, cycleBase_ + breakdown_.total());
            translateLatency_.record(breakdown_.total() - miss_start);
            if (ins.dtb.evicted) {
                dtbResidency_.record(ins.dtb.victimResidency);
                dtbEvictOccupancy_.record(ins.dtb.setOccupancy);
                emitEvent(obs::EventKind::DtbEvict, ins.dtb.victimTag,
                          ins.dtb.unitsNeeded);
            }
            if (ins.invalidatedTrace)
                emitEvent(obs::EventKind::TraceInvalidate,
                          ins.dtb.victimTag);
            if (!ins.dtb.retained)
                emitEvent(obs::EventKind::DtbReject, pc_,
                          ins.dtb.unitsNeeded);
            code = &tr.code;
        }

        ++dirInstrs_;
        if (config_.captureAddressTrace)
            addressTrace_.push_back(pc_);
        prevPc_ = pc_;
        uint64_t next =
            executeShortSequence(*code, config_.timing.tauD);
        if (next == haltBitAddr)
            halted_ = true;
        else
            pc_ = next;
    }
}

void
Machine::takeSample()
{
    uint64_t now = breakdown_.total();
    obs::OccupancySample s;
    s.cycle = now;
    s.dirInstrs = dirInstrs_.value();
    if (dtb_) {
        s.dtbHitsDelta = dtb_->hits() - lastDtbHits_;
        s.dtbMissesDelta = dtb_->misses() - lastDtbMisses_;
        lastDtbHits_ = dtb_->hits();
        lastDtbMisses_ = dtb_->misses();
        s.dtbSetOccupancy = dtb_->setOccupancy();
    }
    uint64_t resident = 0;
    for (uint32_t n : s.dtbSetOccupancy)
        resident += n;
    if (tier_) {
        const tier::TraceCache &cache = tier_->cache();
        s.traceHitsDelta = cache.hits() - lastTraceHits_;
        s.traceMissesDelta = cache.misses() - lastTraceMisses_;
        lastTraceHits_ = cache.hits();
        lastTraceMisses_ = cache.misses();
        s.traceSetOccupancy = cache.setOccupancy();
    }
    emitEvent(obs::EventKind::Sample, samples_.size(), resident);
    samples_.push_back(std::move(s));
    // Advance past the *current* total, not by one interval: a long
    // instruction that crosses several boundaries yields one sample,
    // not a burst of identical ones.
    nextSampleAt_ = (now / sampleEvery_ + 1) * sampleEvery_;
}

void
Machine::beginRun(std::vector<int64_t> input)
{
    const DirProgram &prog = image_->program();
    const MachineLayout &layout = config_.layout;

    // Reset machine state.
    regs_.fill(0);
    sp_ = 0;
    ras_.clear();
    output_.clear();
    inputStorage_ = std::move(input);
    input_ = &inputStorage_;
    inputPos_ = 0;
    halted_ = false;
    sliceLimit_ = UINT64_MAX;
    cycleBase_ = 0;
    breakdown_ = CycleBreakdown{};
    dirInstrs_.reset();
    decodedInstrs_.reset();
    translatedInstrs_.reset();
    microOps_.reset();
    shortInstrs_.reset();
    dirFetchRefs_.reset();
    traps_.reset();
    translateShortEmitted_.reset();
    traceDirInstrs_.reset();
    traceShortInstrs_.reset();
    traceIterations_.reset();
    traceEnters_.reset();
    traceExits_.reset();
    prevPc_ = 0;
    translateLatency_.reset();
    dtbResidency_.reset();
    dtbEvictOccupancy_.reset();
    tierTraceLen_.reset();
    sampleEvery_ = config_.sampleIntervalCycles;
    nextSampleAt_ = sampleEvery_;
    lastDtbHits_ = 0;
    lastDtbMisses_ = 0;
    lastTraceHits_ = 0;
    lastTraceMisses_ = 0;
    samples_.clear();
    if (config_.profileEvents)
        tracer_.enable(config_.profileEventCapacity);
    else
        tracer_.disable();
    trace_.clear();
    addressTrace_.clear();
    opcodeCounts_.assign(numOps, 0);
    mem_.resetStats();
    if (dtb_ && !sharedDtb_) {
        dtb_->invalidateAll();
        dtb_->resetStats();
    }
    if (dtbL1_) {
        dtbL1_->invalidateAll();
        dtbL1_->resetStats();
    }
    if (icache_) {
        icache_->flush();
        icache_->resetStats();
    }
    if (tier_)
        tier_->reset();

    // Loader: display D[0] points at the globals; FSP starts just above
    // them. Loader pokes are not charged.
    uint64_t globals_base = layout.globalsBase();
    for (uint64_t d = 0; d <= layout.maxDepth; ++d)
        mem_.poke(layout.dispBase + d, 0);
    mem_.poke(layout.dispBase, static_cast<int64_t>(globals_base));
    for (uint64_t g = 0; g < prog.numGlobals; ++g)
        mem_.poke(globals_base + g, 0);
    regs_[regFsp] = static_cast<int64_t>(globals_base + prog.numGlobals);

    pc_ = image_->entryBitAddr();
}

uint64_t
Machine::runSlice(uint64_t max_cycles)
{
    if (halted_)
        return 0;
    uint64_t start = breakdown_.total();
    sliceLimit_ = max_cycles > UINT64_MAX - start ? UINT64_MAX :
        start + max_cycles;

    if (config_.kind == MachineKind::Tiered) {
        runTiered();
    } else if (config_.kind == MachineKind::Dtb ||
               config_.kind == MachineKind::Dtb2) {
        runDtb();
    } else {
        runConventionalOrCached();
    }
    return breakdown_.total() - start;
}

void
Machine::flushDtb()
{
    if (!dtb_)
        return;
    uint64_t now = cycleBase_ + breakdown_.total();
    std::vector<Dtb::FlushedEntry> victims = dtb_->flush(now);
    for (const Dtb::FlushedEntry &v : victims) {
        // Cross-tenant victims (possible when flushing a shared buffer
        // in tag-and-share use) belong to other machines' histograms
        // and engines; only our own feed ours.
        if (v.asid != dtb_->asid())
            continue;
        dtbResidency_.record(v.residency);
        if (v.anchoredTrace && tier_)
            tier_->invalidateTrace(v.tag);
    }
    if (dtbL1_)
        dtbL1_->flush(now);
    emitEvent(obs::EventKind::DtbFlush, pc_, victims.size());
}

RunResult
Machine::finishRun()
{
    uhm_assert(halted_, "finishRun before HALT");
    // Drain residual residencies: entries still resident at halt never
    // reached the eviction path, and their lifetimes must show up in
    // the histogram too (they are the long ones).
    if (dtb_) {
        uint64_t now = cycleBase_ + breakdown_.total();
        for (uint64_t r : dtb_->residentResidencies(
                 now, sharedDtb_ ?
                     static_cast<int64_t>(dtb_->asid()) : -1))
            dtbResidency_.record(r);
    }

    RunResult result;
    result.output = std::move(output_);
    result.breakdown = breakdown_;
    result.cycles = breakdown_.total();
    result.dirInstrs = dirInstrs_;
    result.stats.add("micro_ops", microOps_.value());
    result.stats.add("short_instrs", shortInstrs_.value());
    result.stats.add("dir_fetch_refs", dirFetchRefs_.value());
    result.stats.merge(mem_.stats());
    result.trace = std::move(trace_);
    result.counters = registry_.snapshot();
    result.histograms = registry_.histogramSnapshot();
    result.samples = std::move(samples_);
    result.events = tracer_.events();
    result.eventsSeen = tracer_.seen();
    result.eventsDropped = tracer_.dropped();
    result.addressTrace = std::move(addressTrace_);
    if (config_.kind == MachineKind::Conventional ||
        config_.kind == MachineKind::Cached) {
        result.opcodeCounts = opcodeCounts_;
    }

    if (dtb_) {
        result.dtbHitRatio = dtb_->hitRatio();
        result.stats.add("dtb_hits", dtb_->hits());
        result.stats.add("dtb_misses", dtb_->misses());
        result.stats.merge(dtb_->stats());
    }
    if (dtbL1_) {
        result.dtbL1HitRatio = dtbL1_->hitRatio();
        result.stats.add("dtbl1_hits", dtbL1_->hits());
        result.stats.add("dtbl1_misses", dtbL1_->misses());
    }
    if (icache_) {
        result.cacheHitRatio = icache_->hitRatio();
        result.stats.add("icache_hits", icache_->hits());
        result.stats.add("icache_misses", icache_->misses());
    }
    if (tier_) {
        result.traceHitRatio = tier_->cache().hitRatio();
        result.traceCoverage = dirInstrs_ == 0 ? 0.0 :
            static_cast<double>(traceDirInstrs_.value()) /
            static_cast<double>(dirInstrs_.value());
        result.traceMeanIterLen = traceIterations_ == 0 ? 0.0 :
            static_cast<double>(traceDirInstrs_.value()) /
            static_cast<double>(traceIterations_.value());
        result.measuredG2 = tier_->compiledShortInstrs() == 0 ? 0.0 :
            static_cast<double>(breakdown_.translate2) /
            static_cast<double>(tier_->compiledShortInstrs());
        result.stats.add("trace_dir_instrs", traceDirInstrs_.value());
        result.stats.add("trace_short_instrs",
                         traceShortInstrs_.value());
        result.stats.add("trace_iterations", traceIterations_.value());
        result.stats.add("trace_enters", traceEnters_.value());
        result.stats.add("trace_exits", traceExits_.value());
    }

    result.measuredD = decodedInstrs_ == 0 ? 0.0 :
        static_cast<double>(breakdown_.decode) /
        static_cast<double>(decodedInstrs_);
    result.measuredX = dirInstrs_ == 0 ? 0.0 :
        static_cast<double>(breakdown_.semantic) /
        static_cast<double>(dirInstrs_);
    result.measuredG = translatedInstrs_ == 0 ? 0.0 :
        static_cast<double>(breakdown_.translate) /
        static_cast<double>(translatedInstrs_);
    return result;
}

RunResult
Machine::run(const std::vector<int64_t> &input)
{
    beginRun(input);
    runSlice(UINT64_MAX);
    return finishRun();
}

RunResult
runProgram(const DirProgram &program, EncodingScheme scheme,
           const MachineConfig &config, const std::vector<int64_t> &input)
{
    std::unique_ptr<EncodedDir> image = encodeDir(program, scheme);
    Machine machine(*image, config);
    return machine.run(input);
}

} // namespace uhm
