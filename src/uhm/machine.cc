#include "uhm/machine.hh"

#include <cstdlib>
#include <sstream>

#include "support/logging.hh"
#include "support/wrap.hh"

namespace uhm
{

const char *
machineKindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Conventional: return "conventional";
      case MachineKind::Cached:       return "cached";
      case MachineKind::Dtb:          return "dtb";
      case MachineKind::Dtb2:         return "dtb2";
      case MachineKind::Tiered:       return "tiered";
    }
    return "?";
}

const char *
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::Switch:   return "switch";
      case DispatchMode::Threaded: return "threaded";
    }
    return "?";
}

bool
parseDispatchMode(const std::string &name, DispatchMode &out)
{
    if (name == "switch") {
        out = DispatchMode::Switch;
        return true;
    }
    if (name == "threaded") {
        out = DispatchMode::Threaded;
        return true;
    }
    return false;
}

Machine::Machine(const EncodedDir &image, const MachineConfig &config,
                 Dtb *shared_dtb)
    : image_(&image), config_(config), routines_(config.layout),
      mem_(config.layout.level1Words, config.timing), translator_(image),
      decodeMemo_(image), stagingValid_(image.numInstrs(), 0),
      stagingMemo_(image.numInstrs())
{
    if (shared_dtb && config_.kind != MachineKind::Dtb &&
        config_.kind != MachineKind::Tiered) {
        fatal("machine kind '%s' cannot dispatch through a shared DTB",
              machineKindName(config_.kind));
    }
    switch (config_.kind) {
      case MachineKind::Dtb2:
        dtbL1_ = std::make_unique<Dtb>(config_.dtbL1);
        [[fallthrough]];
      case MachineKind::Dtb:
        if (shared_dtb) {
            dtb_ = shared_dtb;
            sharedDtb_ = true;
        } else {
            ownedDtb_ = std::make_unique<Dtb>(config_.dtb);
            dtb_ = ownedDtb_.get();
        }
        break;
      case MachineKind::Tiered:
        if (shared_dtb) {
            dtb_ = shared_dtb;
            sharedDtb_ = true;
        } else {
            ownedDtb_ = std::make_unique<Dtb>(config_.dtb);
            dtb_ = ownedDtb_.get();
        }
        tier_ = std::make_unique<tier::TierEngine>(
            image, *dtb_, config_.tier, config_.traceCache);
        break;
      case MachineKind::Cached:
        icache_ = std::make_unique<SetAssocCache>(config_.icache);
        break;
      case MachineKind::Conventional:
        break;
    }
    flat_ = FlatRoutines::build(routines_, numOps);
    // Both dispatch modes call semantic routines through this table —
    // one bounds-unchecked load instead of a byId lookup per CALL.
    routinePtrs_.resize(numOps);
    for (size_t id = 0; id < numOps; ++id)
        routinePtrs_[id] = &routines_.byId(static_cast<int64_t>(id));
    // The fast loops bank on the operand stack living wholly in level-1
    // memory (every push/pop then charges a static tau1); a layout that
    // spills the stack into level 2 keeps the switch loops. Event
    // tracing keeps them too: events are stamped mid-instruction, which
    // batched attribution does not reproduce.
    fastOk_ = config_.layout.stackBase + config_.layout.stackWords <=
            config_.layout.level1Words &&
        !config_.profileEvents && !config_.traceEvents;

    const DirProgram &prog = image.program();
    if (prog.maxDepth() > config_.layout.maxDepth) {
        fatal("program nests %u contours deep; layout supports %llu",
              prog.maxDepth(),
              static_cast<unsigned long long>(config_.layout.maxDepth));
    }

    // Publish every component's counters under one hierarchical
    // namespace (naming scheme: docs/INTERNALS.md "Observability").
    registry_.add("machine.dir_instrs", dirInstrs_);
    registry_.add("machine.decoded_instrs", decodedInstrs_);
    registry_.add("machine.translated_instrs", translatedInstrs_);
    registry_.add("machine.micro_ops", microOps_);
    registry_.add("machine.short_instrs", shortInstrs_);
    registry_.add("machine.dir_fetch_refs", dirFetchRefs_);
    registry_.add("machine.traps", traps_);
    registry_.add("translate.short_emitted", translateShortEmitted_);
    mem_.registerCounters(registry_, "mem");
    if (dtb_) {
        // A shared DTB's counters are pooled across tenants — they are
        // not this machine's to publish. The histograms below are
        // per-machine members and always register.
        if (!sharedDtb_)
            dtb_->registerCounters(registry_, "dtb");
        registry_.addHistogram("translate.latency_cycles",
                               translateLatency_);
        registry_.addHistogram("dtb.residency_cycles", dtbResidency_);
        registry_.addHistogram("dtb.evict_set_occupancy",
                               dtbEvictOccupancy_);
    }
    if (dtbL1_)
        dtbL1_->registerCounters(registry_, "dtbl1");
    if (icache_)
        icache_->registerCounters(registry_, "icache");
    if (tier_) {
        tier_->registerCounters(registry_, "tier");
        registry_.addHistogram("tier.trace_len_dir", tierTraceLen_);
        registry_.add("tier.trace_dir_instrs", traceDirInstrs_);
        registry_.add("tier.trace_short_instrs", traceShortInstrs_);
        registry_.add("tier.trace_iterations", traceIterations_);
        registry_.add("tier.trace_enters", traceEnters_);
        registry_.add("tier.trace_exits", traceExits_);
    }
}

Machine::~Machine() = default;

// ---- operand stack --------------------------------------------------------

void
Machine::pushStack(int64_t value, uint64_t &bucket)
{
    if (sp_ >= config_.layout.stackWords)
        fatal("operand stack overflow (%llu words)",
              static_cast<unsigned long long>(config_.layout.stackWords));
    uint64_t before = mem_.cycles();
    mem_.write(config_.layout.stackBase + sp_, value);
    ++sp_;
    bucket += mem_.cycles() - before;
}

int64_t
Machine::popStack(uint64_t &bucket)
{
    if (sp_ == 0)
        fatal("operand stack underflow");
    --sp_;
    uint64_t before = mem_.cycles();
    int64_t v = mem_.read(config_.layout.stackBase + sp_);
    bucket += mem_.cycles() - before;
    return v;
}

// ---- IU1: micro-routine execution ------------------------------------------

void
Machine::runRoutine(const MicroRoutine &routine)
{
    const MemTiming &timing = config_.timing;
    size_t mpc = 0;
    for (;;) {
        uhm_assert(mpc < routine.ops.size(),
                   "fell off routine '%s'", routine.name.c_str());
        const MicroOp &op = routine.ops[mpc++];
        // One level-1 reference to fetch the micro-instruction.
        breakdown_.semantic += timing.tau1;
        ++microOps_;

        auto &r = regs_;
        switch (op.op) {
          case MOp::MOVI: r[op.dst] = op.imm; break;
          case MOp::MOV:  r[op.dst] = r[op.srcA]; break;
          case MOp::ADD:  r[op.dst] = wrapAdd(r[op.srcA], r[op.srcB]); break;
          case MOp::ADDI: r[op.dst] = wrapAdd(r[op.srcA], op.imm); break;
          case MOp::SUB:  r[op.dst] = wrapSub(r[op.srcA], r[op.srcB]); break;
          case MOp::MUL:  r[op.dst] = wrapMul(r[op.srcA], r[op.srcB]); break;
          case MOp::DIV:
            if (r[op.srcB] == 0)
                fatal("division by zero");
            r[op.dst] = wrapDiv(r[op.srcA], r[op.srcB]);
            break;
          case MOp::MOD:
            if (r[op.srcB] == 0)
                fatal("modulo by zero");
            r[op.dst] = wrapMod(r[op.srcA], r[op.srcB]);
            break;
          case MOp::NEG:  r[op.dst] = wrapNeg(r[op.srcA]); break;
          case MOp::AND:  r[op.dst] = r[op.srcA] & r[op.srcB]; break;
          case MOp::OR:   r[op.dst] = r[op.srcA] | r[op.srcB]; break;
          case MOp::XOR:  r[op.dst] = r[op.srcA] ^ r[op.srcB]; break;
          case MOp::NOT:  r[op.dst] = ~r[op.srcA]; break;
          case MOp::SHL:
            r[op.dst] = wrapShl(r[op.srcA], r[op.srcB]);
            break;
          case MOp::SHR:
            r[op.dst] = wrapShr(r[op.srcA], r[op.srcB]);
            break;
          case MOp::CMPEQ: r[op.dst] = r[op.srcA] == r[op.srcB]; break;
          case MOp::CMPNE: r[op.dst] = r[op.srcA] != r[op.srcB]; break;
          case MOp::CMPLT: r[op.dst] = r[op.srcA] <  r[op.srcB]; break;
          case MOp::CMPLE: r[op.dst] = r[op.srcA] <= r[op.srcB]; break;
          case MOp::CMPGT: r[op.dst] = r[op.srcA] >  r[op.srcB]; break;
          case MOp::CMPGE: r[op.dst] = r[op.srcA] >= r[op.srcB]; break;
          case MOp::EXTRACT: {
            unsigned shift = static_cast<unsigned>(op.imm & 63);
            unsigned width = static_cast<unsigned>((op.imm >> 6) & 63);
            uint64_t mask = width >= 64 ? ~0ull : (1ull << width) - 1;
            r[op.dst] = static_cast<int64_t>(
                (static_cast<uint64_t>(r[op.srcA]) >> shift) & mask);
            break;
          }
          case MOp::LOAD: {
            uint64_t before = mem_.cycles();
            r[op.dst] = mem_.read(
                static_cast<uint64_t>(r[op.srcA] + op.imm));
            breakdown_.semantic += mem_.cycles() - before;
            break;
          }
          case MOp::STORE: {
            uint64_t before = mem_.cycles();
            mem_.write(static_cast<uint64_t>(r[op.srcA] + op.imm),
                       r[op.srcB]);
            breakdown_.semantic += mem_.cycles() - before;
            break;
          }
          case MOp::SPUSH:
            pushStack(r[op.srcA], breakdown_.semantic);
            break;
          case MOp::SPOP:
            r[op.dst] = popStack(breakdown_.semantic);
            break;
          case MOp::RASPUSH:
            if (ras_.size() >= config_.layout.rasDepth)
                fatal("return-address stack overflow");
            ras_.push_back(static_cast<uint64_t>(r[op.srcA]));
            break;
          case MOp::RASPOP:
            if (ras_.empty())
                fatal("return-address stack underflow");
            r[op.dst] = static_cast<int64_t>(ras_.back());
            ras_.pop_back();
            break;
          case MOp::BR:
            mpc = static_cast<size_t>(
                static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::BRZ:
            if (r[op.srcA] == 0)
                mpc = static_cast<size_t>(
                    static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::BRNZ:
            if (r[op.srcA] != 0)
                mpc = static_cast<size_t>(
                    static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::BRNEG:
            if (r[op.srcA] < 0)
                mpc = static_cast<size_t>(
                    static_cast<int64_t>(mpc) + op.imm);
            break;
          case MOp::OUTP:
            output_.push_back(r[op.srcA]);
            break;
          case MOp::INP:
            r[op.dst] = inputPos_ < input_->size() ?
                (*input_)[inputPos_++] : 0;
            break;
          case MOp::DONE:
            return;
        }
    }
}

// ---- fetch paths ----------------------------------------------------------

void
Machine::chargeFetchLevel2(uint64_t bits)
{
    uint64_t refs = std::max<uint64_t>(1, (bits + 63) / 64);
    breakdown_.fetch += refs * config_.timing.tau2;
    dirFetchRefs_ += refs;
    emitEvent(obs::EventKind::Fetch, pc_, refs);
}

void
Machine::chargeFetchCached(uint64_t bit_addr, uint64_t bits)
{
    uint64_t first = bit_addr / 64;
    uint64_t last = bits == 0 ? first : (bit_addr + bits - 1) / 64;
    for (uint64_t word = first; word <= last; ++word) {
        bool hit = icache_->access(word * 8);
        breakdown_.fetch += hit ? config_.timing.tauD :
            config_.timing.tau2;
        ++dirFetchRefs_;
    }
    emitEvent(obs::EventKind::Fetch, bit_addr, last - first + 1);
}

// ---- execution ------------------------------------------------------------

void
Machine::traceEvent(const std::string &event)
{
    if (config_.traceEvents)
        trace_.push_back(event);
}

void
Machine::executeStaged(const Staging &staging)
{
    for (int64_t v : staging.pushes)
        pushStack(v, breakdown_.stage);
    if (staging.routine >= 0) {
        const MicroRoutine &routine =
            *routinePtrs_[static_cast<size_t>(staging.routine)];
        if (!routine.empty())
            runRoutine(routine);
    }
    switch (staging.next) {
      case NextKind::Imm:
        pc_ = staging.nextImm;
        break;
      case NextKind::Stack:
        pc_ = static_cast<uint64_t>(popStack(breakdown_.dispatch));
        break;
      case NextKind::Halt:
        halted_ = true;
        break;
    }
}

void
Machine::runConventionalOrCached()
{
    bool cached = config_.kind == MachineKind::Cached;
    while (!halted_ && breakdown_.total() < sliceLimit_) {
        maybeSample();
        if (dirInstrs_ >= config_.maxDirInstrs)
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        ++dirInstrs_;
        ++decodedInstrs_;
        if (config_.captureAddressTrace)
            addressTrace_.push_back(pc_);

        // The simulated machine decodes every executed instruction (and
        // is charged for it below); the host replays the memoized
        // result after the first visit to a pc.
        const DecodeResult &res = decodeMemo_.decodeAt(pc_);
        ++opcodeCounts_[static_cast<size_t>(res.instr.op)];
        uint64_t bits = res.nextBitAddr - pc_;
        if (cached)
            chargeFetchCached(pc_, bits);
        else
            chargeFetchLevel2(bits);
        uint64_t decode_cycles = config_.costs.decodeCycles(res.cost);
        breakdown_.decode += decode_cycles;
        emitEvent(obs::EventKind::Decode, pc_, decode_cycles);

        if (!stagingValid_[res.index]) {
            stagingMemo_[res.index] =
                stageInstruction(res.instr, *image_, res.index);
            stagingValid_[res.index] = 1;
        }
        executeStaged(stagingMemo_[res.index]);
    }
}

void
Machine::executeShort(const ShortInstr &si)
{
    switch (si.op) {
      case SOp::PUSH: {
        int64_t value = si.operand;
        if (si.mode == SMode::Direct || si.mode == SMode::Indirect) {
            uint64_t before = mem_.cycles();
            value = mem_.read(static_cast<uint64_t>(si.operand));
            if (si.mode == SMode::Indirect)
                value = mem_.read(static_cast<uint64_t>(value));
            breakdown_.stage += mem_.cycles() - before;
        }
        pushStack(value, breakdown_.stage);
        break;
      }
      case SOp::POP: {
        int64_t value = popStack(breakdown_.stage);
        uint64_t before = mem_.cycles();
        uint64_t addr = static_cast<uint64_t>(si.operand);
        if (si.mode == SMode::Indirect)
            addr = static_cast<uint64_t>(mem_.read(addr));
        mem_.write(addr, value);
        breakdown_.stage += mem_.cycles() - before;
        break;
      }
      case SOp::CALL: {
        uhm_assert(si.operand >= 0 &&
                   static_cast<size_t>(si.operand) < routinePtrs_.size(),
                   "CALL to unknown routine id");
        const MicroRoutine &routine =
            *routinePtrs_[static_cast<size_t>(si.operand)];
        if (!routine.empty())
            runRoutine(routine);
        break;
      }
      case SOp::INTERP:
        panic("INTERP outside the dispatch loop");
    }
}

uint64_t
Machine::executeShortSequence(const std::vector<ShortInstr> &code,
                              uint64_t fetch_cost)
{
    for (const ShortInstr &si : code) {
        // IU2 fetches each short instruction from the buffer array.
        breakdown_.dispatch += fetch_cost;
        ++shortInstrs_;
        if (si.op == SOp::INTERP) {
            if (si.mode == SMode::Stack)
                return static_cast<uint64_t>(
                    popStack(breakdown_.dispatch));
            return static_cast<uint64_t>(si.operand);
        }
        executeShort(si);
    }
    panic("PSDER sequence did not end with INTERP");
}

uint64_t
Machine::executeTrace(const tier::Trace &trace)
{
    const uint64_t fetch_cost = config_.timing.tauD;
    for (;;) {
        ++traceIterations_;
        for (const tier::TraceStep &step : trace.steps) {
            for (uint64_t addr : step.dirAddrs) {
                if (dirInstrs_ >= config_.maxDirInstrs)
                    fatal("DIR instruction budget exhausted (%llu)",
                          static_cast<unsigned long long>(
                              config_.maxDirInstrs));
                ++dirInstrs_;
                ++traceDirInstrs_;
                if (config_.captureAddressTrace)
                    addressTrace_.push_back(addr);
            }
            for (const ShortInstr &si : step.body) {
                // The fused body is fetched from the trace cache's
                // buffer array at DTB speed — but carries no INTERP, so
                // the per-instruction lookup and successor fetch are
                // gone.
                breakdown_.dispatch += fetch_cost;
                ++shortInstrs_;
                ++traceShortInstrs_;
                executeShort(si);
            }
            if (step.guarded) {
                // The semantic routine left the successor on the
                // operand stack (as it would for INTERP); the guard
                // pops and compares it against the recorded path.
                uint64_t next = static_cast<uint64_t>(
                    popStack(breakdown_.dispatch));
                if (next != step.expect) {
                    ++traceExits_;
                    prevPc_ = step.dirAddrs.back();
                    return next;
                }
            }
        }
        if (!trace.loops) {
            ++traceExits_;
            prevPc_ = trace.steps.back().dirAddrs.back();
            return trace.exitAddr;
        }
        // Loop back to the head: one trace dispatch per iteration.
        breakdown_.dispatch += config_.tier.dispatchCycles;
    }
}

void
Machine::runDtb()
{
    bool two_level = config_.kind == MachineKind::Dtb2;
    while (!halted_ && breakdown_.total() < sliceLimit_)
        dtbStep(two_level);
}

uint32_t
Machine::dtbStep(bool two_level)
{
    uint32_t hit_idx = UINT32_MAX;
    {
        maybeSample();
        if (dirInstrs_ >= config_.maxDirInstrs)
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        ++dirInstrs_;
        if (config_.captureAddressTrace)
            addressTrace_.push_back(pc_);

        std::vector<ShortInstr> local;
        const std::vector<ShortInstr> *code = nullptr;
        uint64_t fetch_cost = config_.timing.tauD;

        // First-level translation buffer (Dtb2): a tau1-speed lookup.
        if (two_level) {
            breakdown_.dispatch += config_.timing.tau1;
            Dtb::LookupResult l1 = dtbL1_->lookup(pc_);
            if (l1.hit) {
                code = l1.code;
                fetch_cost = config_.timing.tau1;
            }
        }

        if (!code) {
        // INTERP presents the DIR address to the associative address
        // array (one DTB-array access).
        breakdown_.dispatch += config_.timing.tauD;
        Dtb::LookupResult lr = dtb_->lookup(pc_);

        if (lr.hit) {
            hit_idx = lr.entryIdx;
            emitEvent(obs::EventKind::DtbHit, pc_);
            if (config_.traceEvents) {
                std::ostringstream os;
                os << "interp hit dir@" << pc_;
                traceEvent(os.str());
            }
            // Promote into the first-level buffer: one tau1 store per
            // short instruction copied.
            if (two_level) {
                breakdown_.dispatch +=
                    lr.code->size() * config_.timing.tau1;
                local = *lr.code;
                dtbL1_->insert(pc_, *lr.code);
                emitEvent(obs::EventKind::Promote, pc_,
                          local.size());
                code = &local;
            } else {
                code = lr.code;
            }
        } else {
            // Figure 4: trap through DTRPOINT to the dynamic translator.
            emitEvent(obs::EventKind::DtbMiss, pc_);
            uint64_t miss_start = breakdown_.total();
            breakdown_.dispatch += config_.trapCycles;
            ++traps_;
            emitEvent(obs::EventKind::Trap, pc_, config_.trapCycles);
            ++decodedInstrs_;
            ++translatedInstrs_;

            // Memoized: a repeat miss on this pc replays the cached
            // translation; the charged costs are identical either way.
            const Translation &tr = translator_.translate(pc_);
            chargeFetchLevel2(tr.bits);
            uint64_t decode_cycles =
                config_.costs.decodeCycles(tr.decodeCost);
            breakdown_.decode += decode_cycles;
            emitEvent(obs::EventKind::Decode, pc_, decode_cycles);
            // Generation: one cycle to construct each short instruction
            // plus one buffer-array store each.
            breakdown_.translate +=
                tr.genSteps * (1 + config_.timing.tauD);
            translateShortEmitted_ += tr.code.size();
            emitEvent(obs::EventKind::Translate, pc_, tr.code.size());

            Dtb::InsertOutcome ins =
                dtb_->insert(pc_, tr.code,
                             cycleBase_ + breakdown_.total());
            translateLatency_.record(breakdown_.total() - miss_start);
            if (ins.evicted) {
                dtbResidency_.record(ins.victimResidency);
                dtbEvictOccupancy_.record(ins.setOccupancy);
                emitEvent(obs::EventKind::DtbEvict, ins.victimTag,
                          ins.unitsNeeded);
            }
            if (!ins.retained)
                emitEvent(obs::EventKind::DtbReject, pc_,
                          ins.unitsNeeded);
            if (config_.traceEvents) {
                std::ostringstream os;
                os << "interp miss dir@" << pc_
                   << " -> translate (" << tr.code.size()
                   << " short instrs, "
                   << (ins.retained ? "stored" : "rejected") << ")";
                traceEvent(os.str());
            }
            if (two_level)
                dtbL1_->insert(pc_, tr.code);
            code = &tr.code;
        }
        }

        uint64_t next = executeShortSequence(*code, fetch_cost);
        if (next == haltBitAddr)
            halted_ = true;
        else
            pc_ = next;
    }
    return hit_idx;
}

void
Machine::runTiered()
{
    while (!halted_ && breakdown_.total() < sliceLimit_)
        tieredStep();
}

uint32_t
Machine::tieredStep()
{
    uint32_t hit_idx = UINT32_MAX;
    {
        maybeSample();
        if (dirInstrs_ >= config_.maxDirInstrs)
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));

        // Recorder hook: report the pc about to be interpreted.
        if (tier_->recording()) {
            tier::TierEngine::RecordOutcome ro = tier_->recordStep(pc_);
            if (ro.status == tier::TierEngine::RecordStatus::Closed) {
                // Tier-2 translation charge: construct each short
                // instruction of the fused body and store it into the
                // trace cache's buffer array.
                breakdown_.translate2 += ro.compile.compiledShorts *
                    (config_.tier.gen2CyclesPerInstr +
                     config_.timing.tauD);
                tierTraceLen_.record(ro.compile.steps);
                emitEvent(obs::EventKind::Translate2, ro.compile.head,
                          ro.compile.compiledShorts);
                if (ro.compile.evictedTrace)
                    emitEvent(obs::EventKind::TraceEvict,
                              ro.compile.evictedHead);
            } else if (ro.status ==
                       tier::TierEngine::RecordStatus::Aborted) {
                emitEvent(obs::EventKind::TraceAbort, pc_);
            }
        }

        // INTERP presents the DIR address to the associative address
        // array (one DTB-array access), as in the Dtb organization.
        breakdown_.dispatch += config_.timing.tauD;
        Dtb::LookupResult lr = dtb_->lookup(pc_);
        const std::vector<ShortInstr> *code = nullptr;

        if (lr.hit) {
            hit_idx = lr.entryIdx;
            emitEvent(obs::EventKind::DtbHit, pc_);
            // Hotness profile: a backward transfer into a resident
            // entry is a backedge (loops close with one).
            bool backedge = pc_ <= prevPc_;
            if (backedge)
                ++lr.meta->backedgeCount;

            if (lr.meta->anchorsTrace && !tier_->recording()) {
                // Trace dispatch: one trace-cache access plus the
                // dispatch overhead — paid once per entry, not once
                // per instruction.
                breakdown_.dispatch += config_.timing.tauD +
                    config_.tier.dispatchCycles;
                if (const tier::Trace *trace = tier_->lookupTrace(pc_)) {
                    ++traceEnters_;
                    emitEvent(obs::EventKind::TraceEnter, pc_,
                              trace->dirCount);
                    uint64_t iters_before = traceIterations_.value();
                    uint64_t next = executeTrace(*trace);
                    emitEvent(obs::EventKind::TraceExit, next,
                              traceIterations_.value() - iters_before);
                    if (next == haltBitAddr)
                        halted_ = true;
                    else
                        pc_ = next;
                    return hit_idx;
                }
                // Stale anchor (cleared by lookupTrace): fall back to
                // the ordinary tier-1 path.
            }
            if (backedge && tier_->wantsRecording(*lr.meta, pc_)) {
                tier_->beginRecording(pc_);
                emitEvent(obs::EventKind::TraceRecord, pc_);
            }
            code = lr.code;
        } else {
            // Figure 4 miss flow, with the insert routed through the
            // tier engine so an eviction invalidates any trace the
            // victim anchored.
            emitEvent(obs::EventKind::DtbMiss, pc_);
            uint64_t miss_start = breakdown_.total();
            breakdown_.dispatch += config_.trapCycles;
            ++traps_;
            emitEvent(obs::EventKind::Trap, pc_, config_.trapCycles);
            ++decodedInstrs_;
            ++translatedInstrs_;

            const Translation &tr = translator_.translate(pc_);
            chargeFetchLevel2(tr.bits);
            uint64_t decode_cycles =
                config_.costs.decodeCycles(tr.decodeCost);
            breakdown_.decode += decode_cycles;
            emitEvent(obs::EventKind::Decode, pc_, decode_cycles);
            breakdown_.translate +=
                tr.genSteps * (1 + config_.timing.tauD);
            translateShortEmitted_ += tr.code.size();
            emitEvent(obs::EventKind::Translate, pc_, tr.code.size());

            tier::TierEngine::InstallResult ins =
                tier_->installTranslation(
                    pc_, tr.code, cycleBase_ + breakdown_.total());
            translateLatency_.record(breakdown_.total() - miss_start);
            if (ins.dtb.evicted) {
                dtbResidency_.record(ins.dtb.victimResidency);
                dtbEvictOccupancy_.record(ins.dtb.setOccupancy);
                emitEvent(obs::EventKind::DtbEvict, ins.dtb.victimTag,
                          ins.dtb.unitsNeeded);
            }
            if (ins.invalidatedTrace)
                emitEvent(obs::EventKind::TraceInvalidate,
                          ins.dtb.victimTag);
            if (!ins.dtb.retained)
                emitEvent(obs::EventKind::DtbReject, pc_,
                          ins.dtb.unitsNeeded);
            code = &tr.code;
        }

        ++dirInstrs_;
        if (config_.captureAddressTrace)
            addressTrace_.push_back(pc_);
        prevPc_ = pc_;
        uint64_t next =
            executeShortSequence(*code, config_.timing.tauD);
        if (next == haltBitAddr)
            halted_ = true;
        else
            pc_ = next;
    }
    return hit_idx;
}

// ---- fast-run dispatch (DispatchMode::Threaded) ----------------------------
//
// The loops below are host-side optimizations only: every charge they
// batch into a Pending is the exact per-step sum the switch loops above
// would have applied, and anything they cannot run from a lowered image
// — misses, cold sites, active trace recording, unfastable shapes —
// falls back to exactly one switch-path step (dtbStep/tieredStep), so
// cold-path accounting has a single implementation.
// Byte-identity across modes is enforced by tests/dispatch_test.cc.

void
Machine::drainPending(Pending &p)
{
    breakdown_.fetch += p.fetch;
    breakdown_.decode += p.decode;
    breakdown_.stage += p.stage;
    breakdown_.dispatch += p.dispatch;
    breakdown_.semantic += p.semantic;
    dirInstrs_ += p.dirInstrs;
    decodedInstrs_ += p.decodedInstrs;
    shortInstrs_ += p.shortInstrs;
    microOps_ += p.microOps;
    dirFetchRefs_ += p.dirFetchRefs;
    traceDirInstrs_ += p.traceDirInstrs;
    traceShortInstrs_ += p.traceShortInstrs;
    traceIterations_ += p.traceIterations;
    traceExits_ += p.traceExits;
    mem_.chargeBatch(p.level1, p.level2);
    p = Pending{};
}

FastSeq *
Machine::ensureSeqLowered(uint32_t idx)
{
    FastSeq &fs = fastSlots_[idx];
    uint32_t gen = dtb_->metaAt(idx).gen;
    if (fs.gen != gen) {
        // The entry's contents changed since this slot was lowered
        // (insert, evict or flush all bump the generation): relower,
        // which also clears the slot's inline cache.
        lowerFastSeq(dtb_->codeAt(idx), flat_, config_.timing.tauD,
                     config_.timing.tau1, fs);
        fs.gen = gen;
    }
    return &fs;
}

void
Machine::runDtbFast()
{
    const uint32_t *vm_code = flat_.code.data();
    const int64_t *vm_imm = flat_.imm.data();
    const uint64_t tau1 = config_.timing.tau1;
    const uint64_t tau2 = config_.timing.tau2;
    const uint64_t tau_d = config_.timing.tauD;
    const uint64_t level1_words = mem_.level1Words();
    const uint64_t stack_base = config_.layout.stackBase;
    const uint64_t stack_words = config_.layout.stackWords;
    const bool capture = config_.captureAddressTrace;
    Dtb *const dtb = dtb_;
    auto &r = regs_;

    // Pending step-level charges plus register-resident micro-op
    // charges (n, sem_mem, l1, l2). "Now" on the switch path is
    // breakdown_.total(); here it is drained + cyc + n*tau1 + sem_mem,
    // where cyc mirrors p.cycles() so the loop head never has to sum
    // the Pending buckets.
    Pending p;
    uint64_t drained = breakdown_.total();
    uint64_t cyc = 0;
    uint64_t n = 0, sem_mem = 0, l1 = 0, l2 = 0;
    // Step-level buckets mirrored in never-address-taken locals so the
    // per-step bumps stay in registers (p's address escapes into
    // drainPending, so p fields would be memory RMWs).
    uint64_t d_dir = 0, d_disp = 0, d_stage = 0, d_short = 0;
    uint64_t sp = sp_;
    uint64_t pc = pc_;
    int64_t *stk = mem_.raw() + stack_base;
    uint64_t budget_left = config_.maxDirInstrs - dirInstrs_.value();
    uint64_t sample_at = sampleEvery_ ? nextSampleAt_ : UINT64_MAX;
    size_t vm_i = 0, vm_ii = 0;
    uint32_t vm_w = 0;
    // The sequence executed last step: its inline cache predicts the
    // DTB slot of the pc about to be looked up.
    FastSeq *site = nullptr;
    FastSeq *fs = nullptr;
    uint32_t idx = 0;
    uint64_t next = 0;

#define VM_FLUSH()                                                     \
    do {                                                               \
        uint64_t vm_sem = n * tau1 + sem_mem;                          \
        p.microOps += n;                                               \
        p.semantic += vm_sem;                                          \
        p.level1 += l1;                                                \
        p.level2 += l2;                                                \
        p.dirInstrs += d_dir;                                          \
        p.dispatch += d_disp;                                          \
        p.stage += d_stage;                                            \
        p.shortInstrs += d_short;                                      \
        cyc += vm_sem;                                                 \
        n = sem_mem = l1 = l2 = 0;                                     \
        d_dir = d_disp = d_stage = d_short = 0;                        \
        sp_ = sp;                                                      \
        pc_ = pc;                                                      \
    } while (0)
#define VM_BAIL()                                                      \
    do {                                                               \
        VM_FLUSH();                                                    \
        drainPending(p);                                               \
    } while (0)

    while (!halted_) {
        {
            uint64_t now = drained + cyc + n * tau1 + sem_mem;
            if (now >= sliceLimit_)
                break;
            if (now >= sample_at) {
                VM_BAIL();
                drained = breakdown_.total();
                cyc = 0;
                budget_left =
                    config_.maxDirInstrs - dirInstrs_.value();
                takeSample();
                sample_at = nextSampleAt_;
            }
        }
        if (d_dir >= budget_left) {
            VM_BAIL();
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        }

        // Inline-cache probe, then a full — still side-effect-free —
        // DTB probe. Nothing is charged or counted unless the fast
        // step commits below.
        if (site && site->icTag == pc &&
            dtb->icCheck(site->icIdx, pc)) {
            idx = site->icIdx;
        } else {
            idx = dtb->probeIdx(pc);
            if (idx != UINT32_MAX && site) {
                site->icTag = pc;
                site->icIdx = idx;
            }
        }
        fs = nullptr;
        if (idx != UINT32_MAX) {
            fs = ensureSeqLowered(idx);
            if (!fs->fastable || sp + fs->pushes.size() > stack_words)
                fs = nullptr;
        }
        if (!fs) {
            // True DTB miss (translation) or an unfastable shape: one
            // full switch-path step (the lookup counts its hit or miss
            // exactly as always), then re-prime the inline cache from
            // its outcome so the chain re-forms.
            VM_BAIL();
            {
                uint64_t lookup_pc = pc;
                uint32_t hit = dtbStep(false);
                if (hit != UINT32_MAX) {
                    if (site) {
                        site->icTag = lookup_pc;
                        site->icIdx = hit;
                    }
                    site = ensureSeqLowered(hit);
                } else {
                    site = nullptr;
                }
            }
            drained = breakdown_.total();
            cyc = 0;
            budget_left = config_.maxDirInstrs - dirInstrs_.value();
            sample_at = sampleEvery_ ? nextSampleAt_ : UINT64_MAX;
            sp = sp_;
            pc = pc_;
            stk = mem_.raw() + stack_base;
            continue;
        }

        // Committed fast hit — same accounting as lookup()'s hit branch
        // plus the sequence's statically known charges.
        dtb->hitAt(idx);
        ++d_dir;
        if (capture)
            addressTrace_.push_back(pc);
        {
            uint64_t add = tau_d + fs->dispatchAdd; // tau_d: the lookup
            d_disp += add;
            d_stage += fs->stageAdd;
            cyc += add + fs->stageAdd;
        }
        l1 += fs->level1Add;
        d_short += fs->shortCount;

        {
            const int64_t *pv = fs->pushes.data();
            size_t np = fs->pushes.size();
            for (size_t k = 0; k < np; ++k)
                stk[sp + k] = pv[k];
            sp += np;
        }

        if (fs->routineEntry >= 0) {
            vm_i = static_cast<size_t>(fs->routineEntry);
            goto vm_enter;
        }
    seq_done:
        if (fs->stackNext) {
            if (sp == 0) {
                // The switch path fatals before charging the pop.
                d_disp -= tau1;
                cyc -= tau1;
                --l1;
                VM_BAIL();
                fatal("operand stack underflow");
            }
            next = static_cast<uint64_t>(stk[--sp]);
        } else {
            next = fs->nextImm;
        }
        site = fs;
        if (next == haltBitAddr)
            halted_ = true;
        else
            pc = next;
    }
    VM_BAIL();
    return;

#define VM_DONE_GOTO goto seq_done
#include "uhm/vm_ops.inc"
#undef VM_DONE_GOTO
#undef VM_BAIL
#undef VM_FLUSH
}

uint64_t
Machine::executeTraceFast(const FastTrace &ft, Pending &p)
{
    const uint32_t *vm_code = flat_.code.data();
    const int64_t *vm_imm = flat_.imm.data();
    const uint64_t tau1 = config_.timing.tau1;
    const uint64_t tau2 = config_.timing.tau2;
    const uint64_t level1_words = mem_.level1Words();
    const uint64_t stack_base = config_.layout.stackBase;
    const uint64_t stack_words = config_.layout.stackWords;
    const uint64_t max_dir = config_.maxDirInstrs;
    const bool capture = config_.captureAddressTrace;
    const uint64_t loop_cycles = config_.tier.dispatchCycles;
    auto &r = regs_;

    uint64_t n = 0, sem_mem = 0, l1 = 0, l2 = 0;
    uint64_t d_dir = 0, d_tdir = 0, d_disp = 0, d_stage = 0;
    uint64_t d_short = 0, d_tshort = 0, d_iter = 0;
    uint64_t sp = sp_;
    int64_t *stk = mem_.raw() + stack_base;
    const FastTraceStep *steps = ft.steps.data();
    const size_t nsteps = ft.steps.size();
    const FastTraceStep *stp = nullptr;
    const FastTraceItem *itp = nullptr;
    size_t si = 0, ki = 0, nitems = 0;
    uint64_t next = 0;
    size_t vm_i = 0, vm_ii = 0;
    uint32_t vm_w = 0;
    uint64_t dir_base = dirInstrs_.value() + p.dirInstrs;
    uint64_t budget_left = max_dir > dir_base ? max_dir - dir_base : 0;

#define VM_FLUSH()                                                     \
    do {                                                               \
        p.microOps += n;                                               \
        p.semantic += n * tau1 + sem_mem;                              \
        p.level1 += l1;                                                \
        p.level2 += l2;                                                \
        p.dirInstrs += d_dir;                                          \
        p.traceDirInstrs += d_tdir;                                    \
        p.dispatch += d_disp;                                          \
        p.stage += d_stage;                                            \
        p.shortInstrs += d_short;                                      \
        p.traceShortInstrs += d_tshort;                                \
        p.traceIterations += d_iter;                                   \
        n = sem_mem = l1 = l2 = 0;                                     \
        d_dir = d_tdir = d_disp = d_stage = 0;                         \
        d_short = d_tshort = d_iter = 0;                               \
        sp_ = sp;                                                      \
    } while (0)
#define VM_BAIL()                                                      \
    do {                                                               \
        VM_FLUSH();                                                    \
        drainPending(p);                                               \
    } while (0)

    for (;;) {
        ++d_iter;
        for (si = 0; si < nsteps; ++si) {
            stp = steps + si;
            if (!capture && d_dir + stp->nDir <= budget_left) {
                d_dir += stp->nDir;
                d_tdir += stp->nDir;
            } else {
                // Rare: address capture, or within nDir of the budget.
                p.dirInstrs += d_dir;
                p.traceDirInstrs += d_tdir;
                d_dir = d_tdir = 0;
                for (uint64_t addr : stp->src->dirAddrs) {
                    if (dirInstrs_.value() + p.dirInstrs >= max_dir) {
                        VM_BAIL();
                        fatal("DIR instruction budget exhausted "
                              "(%llu)",
                              static_cast<unsigned long long>(
                                  max_dir));
                    }
                    ++p.dirInstrs;
                    ++p.traceDirInstrs;
                    if (capture)
                        addressTrace_.push_back(addr);
                }
                dir_base = dirInstrs_.value() + p.dirInstrs;
                budget_left = max_dir > dir_base ? max_dir - dir_base
                    : 0;
            }
            d_disp += stp->dispatchAdd;
            d_stage += stp->stageAdd;
            l1 += stp->level1Add;
            d_short += stp->nBody;
            d_tshort += stp->nBody;
            itp = stp->items.data();
            nitems = stp->items.size();
            for (ki = 0; ki < nitems; ++ki) {
                if (itp[ki].routineEntry >= 0) {
                    vm_i = static_cast<size_t>(itp[ki].routineEntry);
                    goto vm_enter;
                } else {
                    if (sp >= stack_words) {
                        VM_BAIL();
                        fatal("operand stack overflow (%llu words)",
                              static_cast<unsigned long long>(
                                  stack_words));
                    }
                    stk[sp++] = itp[ki].pushValue;
                }
            item_done:;
            }
            if (stp->guarded) {
                if (sp == 0) {
                    VM_BAIL();
                    fatal("operand stack underflow");
                }
                next = static_cast<uint64_t>(stk[--sp]);
                if (next != stp->expect) {
                    ++p.traceExits;
                    prevPc_ = stp->lastAddr;
                    VM_FLUSH();
                    return next;
                }
            }
        }
        if (!ft.loops) {
            ++p.traceExits;
            prevPc_ = ft.lastAddr;
            VM_FLUSH();
            return ft.exitAddr;
        }
        d_disp += loop_cycles;
    }

#define VM_DONE_GOTO goto item_done
#include "uhm/vm_ops.inc"
#undef VM_DONE_GOTO
#undef VM_BAIL
#undef VM_FLUSH
}

void
Machine::runTieredFast()
{
    const uint32_t *vm_code = flat_.code.data();
    const int64_t *vm_imm = flat_.imm.data();
    const uint64_t tau1 = config_.timing.tau1;
    const uint64_t tau2 = config_.timing.tau2;
    const uint64_t tau_d = config_.timing.tauD;
    const uint64_t level1_words = mem_.level1Words();
    const uint64_t stack_base = config_.layout.stackBase;
    const uint64_t stack_words = config_.layout.stackWords;
    const bool capture = config_.captureAddressTrace;
    Dtb *const dtb = dtb_;
    auto &r = regs_;

    Pending p;
    uint64_t drained = breakdown_.total();
    uint64_t cyc = 0;
    uint64_t n = 0, sem_mem = 0, l1 = 0, l2 = 0;
    // Register-resident step buckets; see runDtbFast.
    uint64_t d_dir = 0, d_disp = 0, d_stage = 0, d_short = 0;
    uint64_t sp = sp_;
    uint64_t pc = pc_;
    uint64_t prev_pc = prevPc_;
    int64_t *stk = mem_.raw() + stack_base;
    uint64_t budget_left = config_.maxDirInstrs - dirInstrs_.value();
    uint64_t sample_at = sampleEvery_ ? nextSampleAt_ : UINT64_MAX;
    size_t vm_i = 0, vm_ii = 0;
    uint32_t vm_w = 0;
    FastSeq *site = nullptr;
    FastSeq *fs = nullptr;
    uint32_t idx = 0;
    uint64_t next = 0;

#define VM_FLUSH()                                                     \
    do {                                                               \
        uint64_t vm_sem = n * tau1 + sem_mem;                          \
        p.microOps += n;                                               \
        p.semantic += vm_sem;                                          \
        p.level1 += l1;                                                \
        p.level2 += l2;                                                \
        p.dirInstrs += d_dir;                                          \
        p.dispatch += d_disp;                                          \
        p.stage += d_stage;                                            \
        p.shortInstrs += d_short;                                      \
        cyc += vm_sem;                                                 \
        n = sem_mem = l1 = l2 = 0;                                     \
        d_dir = d_disp = d_stage = d_short = 0;                        \
        sp_ = sp;                                                      \
        pc_ = pc;                                                      \
        prevPc_ = prev_pc;                                             \
    } while (0)
#define VM_BAIL()                                                      \
    do {                                                               \
        VM_FLUSH();                                                    \
        drainPending(p);                                               \
    } while (0)

    while (!halted_) {
        {
            uint64_t now = drained + cyc + n * tau1 + sem_mem;
            if (now >= sliceLimit_)
                break;
            if (now >= sample_at) {
                VM_BAIL();
                drained = breakdown_.total();
                cyc = 0;
                budget_left =
                    config_.maxDirInstrs - dirInstrs_.value();
                takeSample();
                sample_at = nextSampleAt_;
            }
        }
        if (d_dir >= budget_left) {
            VM_BAIL();
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        }

        // While the recorder is active every step must pass through it:
        // keep to the switch path (recording windows are short).
        idx = UINT32_MAX;
        if (!tier_->recording()) {
            if (site && site->icTag == pc &&
                dtb->icCheck(site->icIdx, pc)) {
                idx = site->icIdx;
            } else {
                idx = dtb->probeIdx(pc);
                if (idx != UINT32_MAX && site) {
                    site->icTag = pc;
                    site->icIdx = idx;
                }
            }
        }
        fs = nullptr;
        if (idx != UINT32_MAX) {
            fs = ensureSeqLowered(idx);
            if (!fs->fastable || sp + fs->pushes.size() > stack_words)
                fs = nullptr;
        }
        if (!fs) {
            VM_BAIL();
            {
                uint64_t lookup_pc = pc;
                uint32_t hit = tieredStep();
                if (hit != UINT32_MAX) {
                    if (site) {
                        site->icTag = lookup_pc;
                        site->icIdx = hit;
                    }
                    site = ensureSeqLowered(hit);
                } else {
                    site = nullptr;
                }
            }
            drained = breakdown_.total();
            cyc = 0;
            budget_left = config_.maxDirInstrs - dirInstrs_.value();
            sample_at = sampleEvery_ ? nextSampleAt_ : UINT64_MAX;
            sp = sp_;
            pc = pc_;
            prev_pc = prevPc_;
            stk = mem_.raw() + stack_base;
            continue;
        }

        // Committed hit.
        dtb->hitAt(idx);
        d_disp += tau_d;
        cyc += tau_d;
        {
            EntryMeta &meta = dtb->metaAt(idx);
            bool backedge = pc <= prev_pc;
            if (backedge)
                ++meta.backedgeCount;

            if (meta.anchorsTrace) {
                // Trace dispatch (the recorder is known idle here): one
                // trace-cache access plus the dispatch overhead.
                uint64_t add = tau_d + config_.tier.dispatchCycles;
                d_disp += add;
                cyc += add;
                if (const tier::Trace *trace = tier_->lookupTrace(pc)) {
                    ++traceEnters_;
                    FastTrace *ft = nullptr;
                    uint32_t tidx = 0;
                    uint32_t tgen = 0;
                    if (tier_->cache().refOf(pc, tidx, tgen)) {
                        ft = &fastTraces_[tidx];
                        if (ft->gen != tgen) {
                            lowerFastTrace(*trace, flat_, tau_d, tau1,
                                           *ft);
                            ft->gen = tgen;
                        }
                        if (!ft->fastable)
                            ft = nullptr;
                    }
                    // Trace boundaries are drain points.
                    VM_BAIL();
                    if (ft)
                        next = executeTraceFast(*ft, p);
                    else
                        next = executeTrace(*trace);
                    drainPending(p);
                    drained = breakdown_.total();
                    cyc = 0;
                    budget_left =
                        config_.maxDirInstrs - dirInstrs_.value();
                    sample_at =
                        sampleEvery_ ? nextSampleAt_ : UINT64_MAX;
                    sp = sp_;
                    pc = pc_;
                    prev_pc = prevPc_;
                    stk = mem_.raw() + stack_base;
                    site = nullptr;
                    if (next == haltBitAddr)
                        halted_ = true;
                    else
                        pc = next;
                    continue;
                }
                // Stale anchor (cleared by lookupTrace): fall through
                // to the ordinary tier-1 sequence path.
            }
            if (backedge && tier_->wantsRecording(meta, pc))
                tier_->beginRecording(pc);
        }

        ++d_dir;
        if (capture)
            addressTrace_.push_back(pc);
        prev_pc = pc;

        {
            uint64_t add = fs->dispatchAdd;
            d_disp += add;
            d_stage += fs->stageAdd;
            cyc += add + fs->stageAdd;
        }
        l1 += fs->level1Add;
        d_short += fs->shortCount;

        {
            const int64_t *pv = fs->pushes.data();
            size_t np = fs->pushes.size();
            for (size_t k = 0; k < np; ++k)
                stk[sp + k] = pv[k];
            sp += np;
        }

        if (fs->routineEntry >= 0) {
            vm_i = static_cast<size_t>(fs->routineEntry);
            goto vm_enter;
        }
    seq_done:
        if (fs->stackNext) {
            if (sp == 0) {
                d_disp -= tau1;
                cyc -= tau1;
                --l1;
                VM_BAIL();
                fatal("operand stack underflow");
            }
            next = static_cast<uint64_t>(stk[--sp]);
        } else {
            next = fs->nextImm;
        }
        site = fs;
        if (next == haltBitAddr)
            halted_ = true;
        else
            pc = next;
    }
    VM_BAIL();
    return;

#define VM_DONE_GOTO goto seq_done
#include "uhm/vm_ops.inc"
#undef VM_DONE_GOTO
#undef VM_BAIL
#undef VM_FLUSH
}

void
Machine::runConventionalFast()
{
    const uint32_t *vm_code = flat_.code.data();
    const int64_t *vm_imm = flat_.imm.data();
    const uint64_t tau1 = config_.timing.tau1;
    const uint64_t tau2 = config_.timing.tau2;
    const uint64_t level1_words = mem_.level1Words();
    const uint64_t stack_base = config_.layout.stackBase;
    const uint64_t stack_words = config_.layout.stackWords;
    const bool capture = config_.captureAddressTrace;
    auto &r = regs_;

    Pending p;
    uint64_t drained = breakdown_.total();
    uint64_t cyc = 0;
    uint64_t n = 0, sem_mem = 0, l1 = 0, l2 = 0;
    // Register-resident step buckets; see runDtbFast.
    uint64_t d_dir = 0, d_disp = 0, d_stage = 0;
    uint64_t d_fetch = 0, d_decode = 0, d_refs = 0;
    uint64_t sp = sp_;
    uint64_t pc = pc_;
    int64_t *stk = mem_.raw() + stack_base;
    uint64_t budget_left = config_.maxDirInstrs - dirInstrs_.value();
    uint64_t sample_at = sampleEvery_ ? nextSampleAt_ : UINT64_MAX;
    size_t vm_i = 0, vm_ii = 0;
    uint32_t vm_w = 0;
    FastConv *fc = nullptr;

#define VM_FLUSH()                                                     \
    do {                                                               \
        uint64_t vm_sem = n * tau1 + sem_mem;                          \
        p.microOps += n;                                               \
        p.semantic += vm_sem;                                          \
        p.level1 += l1;                                                \
        p.level2 += l2;                                                \
        p.dirInstrs += d_dir;                                          \
        p.decodedInstrs += d_dir;                                      \
        p.dispatch += d_disp;                                          \
        p.stage += d_stage;                                            \
        p.fetch += d_fetch;                                            \
        p.decode += d_decode;                                          \
        p.dirFetchRefs += d_refs;                                      \
        cyc += vm_sem;                                                 \
        n = sem_mem = l1 = l2 = 0;                                     \
        d_dir = d_disp = d_stage = d_fetch = d_decode = d_refs = 0;    \
        sp_ = sp;                                                      \
        pc_ = pc;                                                      \
    } while (0)
#define VM_BAIL()                                                      \
    do {                                                               \
        VM_FLUSH();                                                    \
        drainPending(p);                                               \
    } while (0)

    while (!halted_) {
        {
            uint64_t now = drained + cyc + n * tau1 + sem_mem;
            if (now >= sliceLimit_)
                break;
            if (now >= sample_at) {
                VM_BAIL();
                drained = breakdown_.total();
                cyc = 0;
                budget_left =
                    config_.maxDirInstrs - dirInstrs_.value();
                takeSample();
                sample_at = nextSampleAt_;
            }
        }
        if (d_dir >= budget_left) {
            VM_BAIL();
            fatal("DIR instruction budget exhausted (%llu)",
                  static_cast<unsigned long long>(config_.maxDirInstrs));
        }
        ++d_dir;
        if (capture)
            addressTrace_.push_back(pc);

        {
            const DecodeResult &res = decodeMemo_.decodeAt(pc);
            fc = &convFast_[res.index];
            if (!fc->valid) {
                // Lower lazily on first visit. The image is immutable,
                // so a lowered instruction never invalidates.
                if (!stagingValid_[res.index]) {
                    stagingMemo_[res.index] =
                        stageInstruction(res.instr, *image_, res.index);
                    stagingValid_[res.index] = 1;
                }
                const Staging &st = stagingMemo_[res.index];
                fc->opIdx = static_cast<uint16_t>(res.instr.op);
                uint64_t bits = res.nextBitAddr - pc;
                fc->fetchRefs = static_cast<uint32_t>(
                    std::max<uint64_t>(1, (bits + 63) / 64));
                fc->fetchAdd = fc->fetchRefs * tau2;
                fc->decodeCycles = config_.costs.decodeCycles(res.cost);
                fc->pushes = st.pushes;
                fc->routineEntry = st.routine >= 0 ?
                    flat_.entry[static_cast<size_t>(st.routine)] : -1;
                fc->next = static_cast<uint8_t>(st.next);
                fc->nextImm = st.nextImm;
                fc->stageAdd = fc->pushes.size() * tau1;
                fc->dispatchAdd =
                    st.next == NextKind::Stack ? tau1 : 0;
                fc->level1Add =
                    static_cast<uint32_t>(fc->pushes.size()) +
                    (st.next == NextKind::Stack ? 1u : 0u);
                fc->valid = true;
            }
        }
        ++opcodeCounts_[fc->opIdx];
        {
            uint64_t add = fc->fetchAdd + fc->decodeCycles +
                fc->stageAdd + fc->dispatchAdd;
            d_fetch += fc->fetchAdd;
            d_decode += fc->decodeCycles;
            d_stage += fc->stageAdd;
            d_disp += fc->dispatchAdd;
            cyc += add;
        }
        d_refs += fc->fetchRefs;
        l1 += fc->level1Add;

        if (sp + fc->pushes.size() > stack_words) {
            VM_BAIL();
            fatal("operand stack overflow (%llu words)",
                  static_cast<unsigned long long>(stack_words));
        }
        {
            const int64_t *pv = fc->pushes.data();
            size_t np = fc->pushes.size();
            for (size_t k = 0; k < np; ++k)
                stk[sp + k] = pv[k];
            sp += np;
        }

        if (fc->routineEntry >= 0) {
            vm_i = static_cast<size_t>(fc->routineEntry);
            goto vm_enter;
        }
    conv_done:
        switch (static_cast<NextKind>(fc->next)) {
          case NextKind::Imm:
            pc = fc->nextImm;
            break;
          case NextKind::Stack:
            if (sp == 0) {
                d_disp -= tau1;
                cyc -= tau1;
                --l1;
                VM_BAIL();
                fatal("operand stack underflow");
            }
            pc = static_cast<uint64_t>(stk[--sp]);
            break;
          case NextKind::Halt:
            halted_ = true;
            break;
        }
    }
    VM_BAIL();
    return;

#define VM_DONE_GOTO goto conv_done
#include "uhm/vm_ops.inc"
#undef VM_DONE_GOTO
#undef VM_BAIL
#undef VM_FLUSH
}

void
Machine::takeSample()
{
    uint64_t now = breakdown_.total();
    obs::OccupancySample s;
    s.cycle = now;
    s.dirInstrs = dirInstrs_.value();
    if (dtb_) {
        s.dtbHitsDelta = dtb_->hits() - lastDtbHits_;
        s.dtbMissesDelta = dtb_->misses() - lastDtbMisses_;
        lastDtbHits_ = dtb_->hits();
        lastDtbMisses_ = dtb_->misses();
        s.dtbSetOccupancy = dtb_->setOccupancy();
    }
    uint64_t resident = 0;
    for (uint32_t n : s.dtbSetOccupancy)
        resident += n;
    if (tier_) {
        const tier::TraceCache &cache = tier_->cache();
        s.traceHitsDelta = cache.hits() - lastTraceHits_;
        s.traceMissesDelta = cache.misses() - lastTraceMisses_;
        lastTraceHits_ = cache.hits();
        lastTraceMisses_ = cache.misses();
        s.traceSetOccupancy = cache.setOccupancy();
    }
    emitEvent(obs::EventKind::Sample, samples_.size(), resident);
    samples_.push_back(std::move(s));
    // Advance past the *current* total, not by one interval: a long
    // instruction that crosses several boundaries yields one sample,
    // not a burst of identical ones.
    nextSampleAt_ = (now / sampleEvery_ + 1) * sampleEvery_;
}

void
Machine::beginRun(std::vector<int64_t> input)
{
    const DirProgram &prog = image_->program();
    const MachineLayout &layout = config_.layout;

    // Reset machine state.
    regs_.fill(0);
    sp_ = 0;
    ras_.clear();
    output_.clear();
    inputStorage_ = std::move(input);
    input_ = &inputStorage_;
    inputPos_ = 0;
    halted_ = false;
    sliceLimit_ = UINT64_MAX;
    cycleBase_ = 0;
    breakdown_ = CycleBreakdown{};
    dirInstrs_.reset();
    decodedInstrs_.reset();
    translatedInstrs_.reset();
    microOps_.reset();
    shortInstrs_.reset();
    dirFetchRefs_.reset();
    traps_.reset();
    translateShortEmitted_.reset();
    traceDirInstrs_.reset();
    traceShortInstrs_.reset();
    traceIterations_.reset();
    traceEnters_.reset();
    traceExits_.reset();
    prevPc_ = 0;
    translateLatency_.reset();
    dtbResidency_.reset();
    dtbEvictOccupancy_.reset();
    tierTraceLen_.reset();
    sampleEvery_ = config_.sampleIntervalCycles;
    nextSampleAt_ = sampleEvery_;
    lastDtbHits_ = 0;
    lastDtbMisses_ = 0;
    lastTraceHits_ = 0;
    lastTraceMisses_ = 0;
    samples_.clear();
    if (config_.profileEvents)
        tracer_.enable(config_.profileEventCapacity);
    else
        tracer_.disable();
    trace_.clear();
    addressTrace_.clear();
    opcodeCounts_.assign(numOps, 0);
    mem_.resetStats();
    if (dtb_ && !sharedDtb_) {
        dtb_->invalidateAll();
        dtb_->resetStats();
    }
    if (dtbL1_) {
        dtbL1_->invalidateAll();
        dtbL1_->resetStats();
    }
    if (icache_) {
        icache_->flush();
        icache_->resetStats();
    }
    if (tier_)
        tier_->reset();

    // Fast-run dispatch state. Sized once per run and never reallocated
    // while it runs, so FastSeq pointers (the inline-cache sites) stay
    // stable across the whole slice sequence.
    if (useFastLoops()) {
        if (dtb_)
            fastSlots_.assign(dtb_->numEntries(), FastSeq{});
        if (tier_)
            fastTraces_.assign(tier_->cache().numEntries(), FastTrace{});
        if (config_.kind == MachineKind::Conventional)
            convFast_.assign(image_->numInstrs(), FastConv{});
        // The fast loops address the operand stack through a raw
        // pointer; materialize its backing storage up front.
        mem_.ensure(config_.layout.stackBase + config_.layout.stackWords);
    }

    // Loader: display D[0] points at the globals; FSP starts just above
    // them. Loader pokes are not charged.
    uint64_t globals_base = layout.globalsBase();
    for (uint64_t d = 0; d <= layout.maxDepth; ++d)
        mem_.poke(layout.dispBase + d, 0);
    mem_.poke(layout.dispBase, static_cast<int64_t>(globals_base));
    for (uint64_t g = 0; g < prog.numGlobals; ++g)
        mem_.poke(globals_base + g, 0);
    regs_[regFsp] = static_cast<int64_t>(globals_base + prog.numGlobals);

    pc_ = image_->entryBitAddr();
}

uint64_t
Machine::runSlice(uint64_t max_cycles)
{
    if (halted_)
        return 0;
    uint64_t start = breakdown_.total();
    sliceLimit_ = max_cycles > UINT64_MAX - start ? UINT64_MAX :
        start + max_cycles;

    if (useFastLoops()) {
        if (config_.kind == MachineKind::Tiered)
            runTieredFast();
        else if (config_.kind == MachineKind::Dtb)
            runDtbFast();
        else
            runConventionalFast();
    } else if (config_.kind == MachineKind::Tiered) {
        runTiered();
    } else if (config_.kind == MachineKind::Dtb ||
               config_.kind == MachineKind::Dtb2) {
        runDtb();
    } else {
        runConventionalOrCached();
    }
    return breakdown_.total() - start;
}

void
Machine::flushDtb()
{
    if (!dtb_)
        return;
    uint64_t now = cycleBase_ + breakdown_.total();
    std::vector<Dtb::FlushedEntry> victims = dtb_->flush(now);
    for (const Dtb::FlushedEntry &v : victims) {
        // Cross-tenant victims (possible when flushing a shared buffer
        // in tag-and-share use) belong to other machines' histograms
        // and engines; only our own feed ours.
        if (v.asid != dtb_->asid())
            continue;
        dtbResidency_.record(v.residency);
        if (v.anchoredTrace && tier_)
            tier_->invalidateTrace(v.tag);
    }
    if (dtbL1_)
        dtbL1_->flush(now);
    emitEvent(obs::EventKind::DtbFlush, pc_, victims.size());
}

RunResult
Machine::finishRun()
{
    uhm_assert(halted_, "finishRun before HALT");
    // Drain residual residencies: entries still resident at halt never
    // reached the eviction path, and their lifetimes must show up in
    // the histogram too (they are the long ones).
    if (dtb_) {
        uint64_t now = cycleBase_ + breakdown_.total();
        for (uint64_t r : dtb_->residentResidencies(
                 now, sharedDtb_ ?
                     static_cast<int64_t>(dtb_->asid()) : -1))
            dtbResidency_.record(r);
    }

    RunResult result;
    result.output = std::move(output_);
    result.breakdown = breakdown_;
    result.cycles = breakdown_.total();
    result.dirInstrs = dirInstrs_;
    result.stats.add("micro_ops", microOps_.value());
    result.stats.add("short_instrs", shortInstrs_.value());
    result.stats.add("dir_fetch_refs", dirFetchRefs_.value());
    result.stats.merge(mem_.stats());
    result.trace = std::move(trace_);
    result.counters = registry_.snapshot();
    result.histograms = registry_.histogramSnapshot();
    result.samples = std::move(samples_);
    result.events = tracer_.events();
    result.eventsSeen = tracer_.seen();
    result.eventsDropped = tracer_.dropped();
    result.addressTrace = std::move(addressTrace_);
    if (config_.kind == MachineKind::Conventional ||
        config_.kind == MachineKind::Cached) {
        result.opcodeCounts = opcodeCounts_;
    }

    if (dtb_) {
        result.dtbHitRatio = dtb_->hitRatio();
        result.stats.add("dtb_hits", dtb_->hits());
        result.stats.add("dtb_misses", dtb_->misses());
        result.stats.merge(dtb_->stats());
    }
    if (dtbL1_) {
        result.dtbL1HitRatio = dtbL1_->hitRatio();
        result.stats.add("dtbl1_hits", dtbL1_->hits());
        result.stats.add("dtbl1_misses", dtbL1_->misses());
    }
    if (icache_) {
        result.cacheHitRatio = icache_->hitRatio();
        result.stats.add("icache_hits", icache_->hits());
        result.stats.add("icache_misses", icache_->misses());
    }
    if (tier_) {
        result.traceHitRatio = tier_->cache().hitRatio();
        result.traceCoverage = dirInstrs_ == 0 ? 0.0 :
            static_cast<double>(traceDirInstrs_.value()) /
            static_cast<double>(dirInstrs_.value());
        result.traceMeanIterLen = traceIterations_ == 0 ? 0.0 :
            static_cast<double>(traceDirInstrs_.value()) /
            static_cast<double>(traceIterations_.value());
        result.measuredG2 = tier_->compiledShortInstrs() == 0 ? 0.0 :
            static_cast<double>(breakdown_.translate2) /
            static_cast<double>(tier_->compiledShortInstrs());
        result.stats.add("trace_dir_instrs", traceDirInstrs_.value());
        result.stats.add("trace_short_instrs",
                         traceShortInstrs_.value());
        result.stats.add("trace_iterations", traceIterations_.value());
        result.stats.add("trace_enters", traceEnters_.value());
        result.stats.add("trace_exits", traceExits_.value());
    }

    result.measuredD = decodedInstrs_ == 0 ? 0.0 :
        static_cast<double>(breakdown_.decode) /
        static_cast<double>(decodedInstrs_);
    result.measuredX = dirInstrs_ == 0 ? 0.0 :
        static_cast<double>(breakdown_.semantic) /
        static_cast<double>(dirInstrs_);
    result.measuredG = translatedInstrs_ == 0 ? 0.0 :
        static_cast<double>(breakdown_.translate) /
        static_cast<double>(translatedInstrs_);
    return result;
}

RunResult
Machine::run(const std::vector<int64_t> &input)
{
    beginRun(input);
    runSlice(UINT64_MAX);
    return finishRun();
}

RunResult
runProgram(const DirProgram &program, EncodingScheme scheme,
           const MachineConfig &config, const std::vector<int64_t> &input)
{
    std::unique_ptr<EncodedDir> image = encodeDir(program, scheme);
    Machine machine(*image, config);
    return machine.run(input);
}

} // namespace uhm
