/**
 * @file
 * Flattened run images for the fast ("threaded") dispatch mode.
 *
 * The switch interpreter in uhm/machine.cc walks pointer-rich decoded
 * structures: vectors of MicroOp per routine, vectors of ShortInstr per
 * DTB entry, vectors of TraceStep per trace. The fast-run mode lowers
 * each of them once into arena-style, struct-of-arrays images so the
 * inner loop is pointer-chase-free:
 *
 *  - FlatRoutines: every semantic routine's micro-ops concatenated into
 *    two parallel streams (a packed op/register word and an immediate),
 *    with relative branch distances pre-resolved to absolute stream
 *    indices and a sentinel op terminating each routine.
 *  - FastSeq: one DTB-resident PSDER sequence (PUSH#* [CALL] INTERP)
 *    lowered to its push values, its routine's flat entry point, its
 *    successor, and the *statically known* cycle/counter deltas one
 *    execution of it incurs on the hit path. It doubles as the home of
 *    the per-INTERP-site inline cache for the successor's DTB entry.
 *  - FastTrace: a tier-2 trace body lowered the same way, one step per
 *    TraceStep with per-step static charges.
 *
 * Lowered images carry no simulated semantics of their own: every
 * charge they batch is the exact sum the switch interpreter would have
 * accumulated step by step, and tests assert byte-identical counters.
 * Validity is keyed on EntryMeta::gen — any insert/evict/flush of the
 * backing cache entry bumps the generation and orphans the lowered
 * image, so invalidation rides the existing replacement paths.
 */

#ifndef UHM_UHM_RUN_IMAGE_HH
#define UHM_UHM_RUN_IMAGE_HH

#include <cstdint>
#include <vector>

#include "psder/routines.hh"
#include "psder/short_isa.hh"
#include "tier/trace.hh"

namespace uhm
{

/**
 * All semantic routines flattened into contiguous opcode/operand
 * streams with absolute branch targets.
 */
struct FlatRoutines
{
    /** Packed micro-op: op | dst<<8 | srcA<<16 | srcB<<24. */
    std::vector<uint32_t> code;
    /** Immediate stream, parallel to #code. Branch immediates are
     *  pre-resolved to absolute indices into the streams. */
    std::vector<int64_t> imm;
    /** Flat entry index per routine id; -1 = empty routine. */
    std::vector<int32_t> entry;

    /** Op byte terminating each routine's stream ("fell off" guard).
     *  One past MOp::DONE, so the dispatch table stays dense. */
    static constexpr uint32_t sentinelOp =
        static_cast<uint32_t>(MOp::DONE) + 1;

    /**
     * Fused superops installed by the build() peephole. They exist only
     * in the flat streams — the switch path never sees them. Each is
     * the textual concatenation of its constituents' bodies with
     * identical per-constituent accounting (micro-op counts, charges
     * and fatal-check order), minus the inter-op dispatches. Only the
     * FIRST constituent word's op byte is rewritten; stream positions
     * (and thus pre-resolved branch targets) are unchanged, and later
     * constituent words keep their original op bytes, so a branch into
     * the middle of a fused region executes the original singletons.
     */
    enum FusedOp : uint32_t
    {
        // SPOP a; SPOP b; <alu> d,a,b; SPUSH d; DONE — one per ALU op.
        F_BIN_ADD = sentinelOp + 1,
        F_BIN_SUB, F_BIN_MUL, F_BIN_DIV, F_BIN_MOD, F_BIN_AND,
        F_BIN_OR, F_BIN_XOR, F_BIN_SHL, F_BIN_SHR, F_BIN_CMPEQ,
        F_BIN_CMPNE, F_BIN_CMPLT, F_BIN_CMPLE, F_BIN_CMPGT,
        F_BIN_CMPGE,
        F_PUSHL,    ///< SPOP SPOP LOAD ADD LOAD SPUSH DONE
        F_STORE3,   ///< SPOP SPOP SPOP LOAD ADD STORE DONE
        F_ADDR,     ///< SPOP SPOP LOAD ADD SPUSH DONE
        F_LOADI,    ///< SPOP LOAD SPUSH DONE
        F_STOREI,   ///< SPOP SPOP STORE DONE
        F_DUP,      ///< SPOP SPUSH SPUSH DONE
        F_POP_DONE, ///< SPOP DONE
        F_SWAP,     ///< SPOP SPOP SPUSH SPUSH DONE
        F_NEG1,     ///< SPOP NEG SPUSH DONE
        F_NOT1,     ///< SPOP NOT SPUSH DONE
        F_CALLP,    ///< SPOP RASPUSH DONE
        F_RET,      ///< SPOP SPOP SUB ADDI LOAD STORE RASPOP SPUSH DONE
        F_READ,     ///< INP SPUSH DONE
        F_WRITE,    ///< SPOP OUTP DONE
        F_INCL,     ///< SPOP SPOP SPOP LOAD ADD LOAD ADD STORE DONE
        F_WRITEL,   ///< SPOP SPOP LOAD ADD LOAD OUTP DONE
        F_PUSHL2,   ///< SPOP x4 LOAD ADD LOAD LOAD ADD LOAD SPUSH x2 DONE
        F_LEA4,     ///< SPOP x4 LOAD ADD LOAD (brzl/brnzl prefix)
        F_SPOP3,    ///< SPOP SPOP SPOP
        F_SPOP2,    ///< SPOP SPOP
        F_PUSH_BR,  ///< SPUSH BR
        F_PUSH_DONE,///< SPUSH DONE
        F_ENTER_PRE,  ///< SPOP x3 LOAD STORE ADDI STORE ADD ADDI
        F_ENTER_LOOP, ///< BRZ ADDI SPOP ADD STORE BR (per-iteration)
        /** BRZ r; BRNEG r; ADDI r,r,-1; BR <self>: a counted spin run
         *  to completion in closed form (identical retire counts). */
        F_SEMWORK_LOOP,
        fusedEnd,
    };

    /** Flatten @p count routines of @p lib (ids 0..count-1). */
    static FlatRoutines build(const RoutineLibrary &lib, size_t count);
};

/**
 * One DTB-resident PSDER sequence lowered for the fast hit path, plus
 * the per-site inline cache for its successor's DTB entry.
 */
struct FastSeq
{
    /** EntryMeta::gen of the DTB entry this lowering matches. gen 0 is
     *  unreachable for a resident entry (insert resets at least once),
     *  so a default-constructed FastSeq never validates. */
    uint32_t gen = 0;
    /** The sequence has the canonical PUSH#* [CALL] INTERP shape and
     *  may run on the fast path. */
    bool fastable = false;
    /** The successor is popped from the operand stack (INTERP-Stack). */
    bool stackNext = false;
    /** Short instructions executed (up to and including the INTERP). */
    uint32_t shortCount = 0;
    /** Flat entry of the CALLed routine; -1 = none (or empty). */
    int32_t routineEntry = -1;
    /** Static successor DIR bit address (when !stackNext); may be
     *  haltBitAddr. */
    uint64_t nextImm = 0;
    /** Statically known per-execution charge deltas on the hit path
     *  (IU2 fetches at tauD + the INTERP-Stack pop), excluding the
     *  initial DTB lookup itself. */
    uint64_t dispatchAdd = 0;
    /** Staging pushes: one level-1 store each. */
    uint64_t stageAdd = 0;
    /** Level-1 memory accesses (pushes + successor pop). */
    uint32_t level1Add = 0;
    /** Inline cache: last successor DIR address resolved at this
     *  INTERP site, and the DTB entry index it hit. icTag ~0 never
     *  matches a pc (halt is handled before the next lookup). */
    uint64_t icTag = ~0ull;
    uint32_t icIdx = 0;
    /** Immediate push values, in order. */
    std::vector<int64_t> pushes;
};

/**
 * Lower @p code into @p out. @return out.fastable: false when the
 * sequence is not of the canonical shape (the caller then keeps the
 * switch path for it — accounting stays identical either way).
 * @p tau_d / @p tau1 are the IU2 fetch and level-1 access times the
 * static charges are computed with.
 */
bool lowerFastSeq(const std::vector<ShortInstr> &code,
                  const FlatRoutines &flat, uint64_t tau_d,
                  uint64_t tau1, FastSeq &out);

/** One lowered trace-body element: a push or a routine call. */
struct FastTraceItem
{
    /** Flat routine entry; < 0 = this item is a push of #pushValue. */
    int32_t routineEntry = -1;
    int64_t pushValue = 0;
};

/** One lowered TraceStep with its static per-execution charges. */
struct FastTraceStep
{
    /** The source step (dirAddrs live there; stable while gen holds). */
    const tier::TraceStep *src = nullptr;
    uint32_t nDir = 0;
    uint32_t nBody = 0;
    uint32_t nPushes = 0;
    /** tauD per body instruction + the guard pop, when guarded. */
    uint64_t dispatchAdd = 0;
    uint64_t stageAdd = 0;
    uint32_t level1Add = 0;
    bool guarded = false;
    uint64_t expect = 0;
    /** Last DIR address the step retires (prevPc_ on side-exit). */
    uint64_t lastAddr = 0;
    std::vector<FastTraceItem> items;
};

/** A tier-2 trace lowered for the fast path. */
struct FastTrace
{
    /** EntryMeta::gen of the trace-cache entry this lowering matches. */
    uint32_t gen = 0;
    bool fastable = false;
    bool loops = false;
    uint64_t exitAddr = 0;
    /** prevPc_ when a non-looping trace runs off its last step. */
    uint64_t lastAddr = 0;
    std::vector<FastTraceStep> steps;
};

/**
 * Lower @p trace into @p out; same contract as lowerFastSeq. The
 * lowered image holds pointers into @p trace and is valid exactly as
 * long as the trace-cache entry's generation is unchanged.
 */
bool lowerFastTrace(const tier::Trace &trace, const FlatRoutines &flat,
                    uint64_t tau_d, uint64_t tau1, FastTrace &out);

/**
 * One conventional-path DIR instruction lowered for the fast loop:
 * static fetch/decode charges plus the staged pushes and successor.
 * The image is immutable, so a lowered instruction never invalidates.
 */
struct FastConv
{
    bool valid = false;
    /** Opcode index (opcodeCounts_ bump). */
    uint16_t opIdx = 0;
    /** Level-2 references one fetch performs. */
    uint32_t fetchRefs = 0;
    /** fetchRefs * tau2. */
    uint64_t fetchAdd = 0;
    uint64_t decodeCycles = 0;
    /** NextKind, widened. */
    uint8_t next = 0;
    uint64_t nextImm = 0;
    int32_t routineEntry = -1;
    uint64_t stageAdd = 0;
    /** Stack-successor pop charge (tau1 when next == Stack). */
    uint64_t dispatchAdd = 0;
    uint32_t level1Add = 0;
    std::vector<int64_t> pushes;
};

/**
 * Per-bucket deltas the fast dispatch loops accumulate in locals and
 * drain at trace boundaries, slice boundaries and sampler intervals.
 * Machine::drainPending applies a Pending to the real counters;
 * between drains, breakdown_.total() is understated by cycles().
 */
struct Pending
{
    uint64_t fetch = 0;
    uint64_t decode = 0;
    uint64_t stage = 0;
    uint64_t dispatch = 0;
    uint64_t semantic = 0;
    uint64_t dirInstrs = 0;
    uint64_t decodedInstrs = 0;
    uint64_t shortInstrs = 0;
    uint64_t microOps = 0;
    uint64_t dirFetchRefs = 0;
    /** Memory accesses by level (MainMemory::chargeBatch at drain). */
    uint64_t level1 = 0;
    uint64_t level2 = 0;
    // Tiered-execution counters.
    uint64_t traceDirInstrs = 0;
    uint64_t traceShortInstrs = 0;
    uint64_t traceIterations = 0;
    uint64_t traceExits = 0;

    /** Cycle delta not yet in breakdown_ (memory charges included in
     *  the bucket fields already). */
    uint64_t
    cycles() const
    {
        return fetch + decode + stage + dispatch + semantic;
    }
};

} // namespace uhm

#endif // UHM_UHM_RUN_IMAGE_HH
