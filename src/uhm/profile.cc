#include "uhm/profile.hh"

namespace uhm
{

obs::ProfileData
buildProfile(const ProfileMeta &meta, const RunResult &result)
{
    obs::ProfileData p;
    if (!meta.program.empty())
        p.meta.emplace_back("program", meta.program);
    if (!meta.machine.empty())
        p.meta.emplace_back("machine", meta.machine);
    if (!meta.encoding.empty())
        p.meta.emplace_back("encoding", meta.encoding);
    if (meta.imageBits != 0)
        p.meta.emplace_back("image_bits",
                            std::to_string(meta.imageBits));

    const CycleBreakdown &b = result.breakdown;
    p.phases = {
        {"fetch", b.fetch},         {"decode", b.decode},
        {"stage", b.stage},         {"dispatch", b.dispatch},
        {"semantic", b.semantic},   {"translate", b.translate},
        {"translate2", b.translate2},
        {"total", b.total()},
    };

    p.counters = result.counters;
    p.histograms = result.histograms;
    p.samples = result.samples;

    auto counter = [&result](const char *name) -> uint64_t {
        auto it = result.counters.find(name);
        return it == result.counters.end() ? 0 : it->second;
    };
    uint64_t translated = counter("machine.translated_instrs");
    uint64_t emitted = counter("translate.short_emitted");

    p.ratios.emplace_back("cycles_per_instr", result.avgInterpTime());
    p.ratios.emplace_back("dtb.hit_ratio", result.dtbHitRatio);
    p.ratios.emplace_back("dtbl1.hit_ratio", result.dtbL1HitRatio);
    p.ratios.emplace_back("icache.hit_ratio", result.cacheHitRatio);
    p.ratios.emplace_back(
        "translate.amplification",
        translated == 0 ? 0.0 :
        static_cast<double>(emitted) /
        static_cast<double>(translated));
    p.ratios.emplace_back(
        "translate.cycle_fraction",
        b.total() == 0 ? 0.0 :
        static_cast<double>(b.translate) /
        static_cast<double>(b.total()));
    p.ratios.emplace_back("measured_d", result.measuredD);
    p.ratios.emplace_back("measured_x", result.measuredX);
    p.ratios.emplace_back("measured_g", result.measuredG);
    p.ratios.emplace_back("tier.trace_hit_ratio", result.traceHitRatio);
    p.ratios.emplace_back("tier.coverage", result.traceCoverage);
    p.ratios.emplace_back("tier.mean_iter_len",
                          result.traceMeanIterLen);
    p.ratios.emplace_back("measured_g2", result.measuredG2);
    // Trace-ring health: the fraction of recorded events the bounded
    // ring overwrote. Anything above 0 means the event trace (and any
    // timeline built from it) is a suffix of the run, not the whole.
    p.ratios.emplace_back(
        "events.drop_rate",
        result.eventsSeen == 0 ? 0.0 :
        static_cast<double>(result.eventsDropped) /
        static_cast<double>(result.eventsSeen));

    p.events = result.events;
    p.eventsSeen = result.eventsSeen;
    p.eventsDropped = result.eventsDropped;
    return p;
}

std::string
profileJsonl(const ProfileMeta &meta, const RunResult &result)
{
    return obs::toJsonl(buildProfile(meta, result));
}

} // namespace uhm
