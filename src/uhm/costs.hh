/**
 * @file
 * Conversion of decode-work counts into machine cycles.
 *
 * Section 7: "For each field, for each level of decoding, at least two
 * instructions are needed; the first one extracts the field ... causing
 * a CASE STATEMENT type of branch ... The selected branch instruction
 * must then be executed." The cost model charges two cycles per field
 * extraction and per decode-tree edge (extract + branch) and one cycle
 * per metadata table lookup (a level-1 reference), plus a fixed
 * per-instruction dispatch overhead. These weights make the paper's d a
 * measured function of the encoding scheme; benches can scale it with
 * extraDecodeCycles to explore the d axis.
 */

#ifndef UHM_UHM_COSTS_HH
#define UHM_UHM_COSTS_HH

#include <cstdint>

#include "dir/encoding.hh"

namespace uhm
{

/** Decode-cost weights (in level-1 cycles). */
struct CostModel
{
    /** Cycles per packed-field extraction (shift/mask + branch). */
    uint64_t cyclesPerFieldExtract = 2;
    /** Cycles per Huffman decode-tree edge (bit extract + branch). */
    uint64_t cyclesPerTreeEdge = 2;
    /** Cycles per decode-metadata table lookup (level-1 reference). */
    uint64_t cyclesPerTableLookup = 1;
    /** Fixed per-instruction decode dispatch overhead. */
    uint64_t dispatchOverhead = 2;
    /** Additional artificial decode padding (d-axis sweeps). */
    uint64_t extraDecodeCycles = 0;

    /** Decode cycles for one instruction's DecodeCost. */
    uint64_t
    decodeCycles(const DecodeCost &cost) const
    {
        return cost.fieldExtracts * cyclesPerFieldExtract +
               cost.treeEdges * cyclesPerTreeEdge +
               cost.tableLookups * cyclesPerTableLookup +
               dispatchOverhead + extraDecodeCycles;
    }
};

} // namespace uhm

#endif // UHM_UHM_COSTS_HH
