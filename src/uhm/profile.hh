/**
 * @file
 * Bridging a RunResult into an obs::ProfileData report.
 *
 * Everything the report contains comes from the RunResult itself — the
 * cycle breakdown, the registry counter snapshot, the typed event
 * trace — so a profile can be built after the machine is gone. The
 * derived ratios reproduce the section 7 quantities: hit ratios (h_D,
 * h_c), cycles per DIR instruction (T) and translation amplification
 * (short instructions emitted per translated DIR instruction).
 */

#ifndef UHM_UHM_PROFILE_HH
#define UHM_UHM_PROFILE_HH

#include <cstdint>
#include <string>

#include "obs/report.hh"
#include "uhm/machine.hh"

namespace uhm
{

/** Identification attached to a profile's meta line. */
struct ProfileMeta
{
    std::string program;
    std::string machine;
    std::string encoding;
    /** Encoded image size in bits (0 = unknown). */
    uint64_t imageBits = 0;
};

/** Assemble the full report for one run. */
obs::ProfileData buildProfile(const ProfileMeta &meta,
                              const RunResult &result);

/** Convenience: buildProfile + obs::toJsonl. */
std::string profileJsonl(const ProfileMeta &meta,
                         const RunResult &result);

} // namespace uhm

#endif // UHM_UHM_PROFILE_HH
