/**
 * @file
 * The universal host machine simulator (section 6, Figure 3).
 *
 * One Machine executes an encoded DIR program under one of three
 * organizations — the three cases of the section 7 analysis:
 *
 *  - Conventional: the IFU fetches each DIR instruction from level-2
 *    memory; IU1 decodes it and runs the semantic routines (T1).
 *  - Cached: as Conventional, but DIR fetches pass through a
 *    set-associative instruction cache over level 2 (T3).
 *  - Dtb: the INTERP instruction presents each DIR address to the DTB.
 *    On a hit, IU2 executes the resident PSDER short-format sequence,
 *    CALLing into IU1 for semantic routines. On a miss, control traps
 *    through DTRPOINT to the dynamic translator, which decodes the DIR
 *    instruction, generates the PSDER translation, stores it in the DTB
 *    and starts it (T2; the Figure 4 flow).
 *
 * Two extensions go beyond the paper's three cases: Dtb2 adds a second,
 * tau1-speed translation buffer in front of the DTB, and Tiered (T4)
 * layers the adaptive tier of src/tier/ on the Dtb organization —
 * hotness profiling, trace recording, and tier-2 re-translation of hot
 * loops into fused PSDER trace bodies held in a trace cache.
 *
 * All organizations share the memory, the operand/return stacks and the
 * semantic-routine library, so program outputs are identical across
 * organizations; only the fetch/decode/translate path — and therefore
 * the cycle count — differs.
 */

#ifndef UHM_UHM_MACHINE_HH
#define UHM_UHM_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dtb.hh"
#include "core/translator.hh"
#include "dir/encoding.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"
#include "obs/counter.hh"
#include "obs/histogram.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "psder/layout.hh"
#include "psder/routines.hh"
#include "psder/staging.hh"
#include "tier/engine.hh"
#include "uhm/costs.hh"
#include "uhm/run_image.hh"

namespace uhm
{

/** The three machine organizations of section 7. */
enum class MachineKind : uint8_t
{
    Conventional, ///< T1: plain two-level UHM
    Cached,       ///< T3: UHM + instruction cache on level 2
    Dtb,          ///< T2: UHM + dynamic translation buffer
    /**
     * Two levels of dynamic translation (section 4: "it is possible
     * that a number of levels of dynamic translation will be
     * required"): a small tau1-speed first-level buffer backed by the
     * main DTB; hot translations are promoted on reuse.
     */
    Dtb2,
    /**
     * T4: adaptive tiered translation — the Dtb organization plus a
     * hotness profiler, trace recorder, tier-2 translator and trace
     * cache (src/tier/). Hot loops are re-translated into single
     * fused PSDER bodies that pay one trace dispatch per iteration
     * instead of one DTB lookup per instruction.
     */
    Tiered,
};

/** Printable name of a machine kind. */
const char *machineKindName(MachineKind kind);

/**
 * How the run loops execute. Both modes simulate the identical machine:
 * every counter, histogram, event and output byte matches between them
 * (tests/dispatch_test.cc holds the line). Threaded is a host-side
 * optimization only.
 */
enum class DispatchMode : uint8_t
{
    /** The reference interpreter: switch dispatch over decoded
     *  structures, every charge applied as it accrues. */
    Switch,
    /**
     * Fast-run mode: decoded Programs/DIR/PSDER structures are lowered
     * into flat run images (uhm/run_image.hh), micro-ops dispatch via
     * computed goto (portable switch fallback without __GNUC__),
     * per-INTERP-site inline caches skip DTB/trace-cache probes, and
     * cycle attribution is batched in registers and drained at trace,
     * slice and sampler boundaries. Organizations without a fast loop
     * (Cached, Dtb2) and runs with event tracing on silently keep the
     * switch loops.
     */
    Threaded,
};

/** Printable name of a dispatch mode. */
const char *dispatchModeName(DispatchMode mode);

/** Parse "switch"/"threaded" into @p out; false on anything else. */
bool parseDispatchMode(const std::string &name, DispatchMode &out);

/** Full configuration of one machine instance. */
struct MachineConfig
{
    MachineKind kind = MachineKind::Dtb;
    /** Execution engine for the run loops (see DispatchMode). */
    DispatchMode dispatch = DispatchMode::Switch;
    MachineLayout layout;
    MemTiming timing;
    CostModel costs;
    /** Instruction cache (Cached only). */
    CacheConfig icache;
    /** Dynamic translation buffer (Dtb and Dtb2). */
    DtbConfig dtb;
    /** First-level translation buffer (Dtb2 only). */
    DtbConfig dtbL1{
        .capacityBytes = 512,
        .unitShortInstrs = 4,
        .assoc = 4,
        .policy = ReplPolicy::LRU,
        .allowOverflow = true,
        .overflowFraction = 0.25,
        .seed = 11,
    };
    /** Trace formation policy (Tiered only). */
    tier::TierConfig tier;
    /** Trace cache above the DTB (Tiered only). */
    tier::TraceCacheConfig traceCache;
    /** Runaway guard: abort after this many DIR instructions. */
    uint64_t maxDirInstrs = 500'000'000;
    /** Fixed trap overhead on a DTB miss (DTRPOINT branch, Figure 4). */
    uint64_t trapCycles = 2;
    /** Record a legacy string trace (tests of the Figure 4 flow). */
    bool traceEvents = false;
    /**
     * Record typed obs::Events — fetch, decode, dtb_hit, dtb_miss,
     * dtb_evict, dtb_reject, trap, translate, promote — stamped with
     * the machine's cycle counter, into a bounded ring
     * (RunResult::events). Zero-overhead when off.
     */
    bool profileEvents = false;
    /** Ring capacity (events) for the typed trace. */
    size_t profileEventCapacity = obs::Tracer::defaultCapacity;
    /**
     * Interval sampler: every this many machine cycles, snapshot the
     * DTB (and trace cache) per-set occupancy and the hit/miss deltas
     * since the previous sample into RunResult::samples. 0 (the
     * default) disables sampling; the run loop then pays exactly one
     * predictable branch per DIR instruction.
     */
    uint64_t sampleIntervalCycles = 0;
    /**
     * Record the DIR-address reference trace of the run (one entry per
     * interpreted instruction) for trace-driven DTB studies
     * (core/trace_sim.hh). Off by default: long runs produce long
     * traces.
     */
    bool captureAddressTrace = false;
};

/** Cycle buckets: where the time went. */
struct CycleBreakdown
{
    uint64_t fetch = 0;     ///< DIR instruction fetches (level 2 / cache)
    uint64_t decode = 0;    ///< DIR decode work
    uint64_t stage = 0;     ///< staging pushes / IU2 PUSH execution
    uint64_t dispatch = 0;  ///< INTERP lookups, IU2 fetches, loop overhead
    uint64_t semantic = 0;  ///< IU1 semantic-routine execution (x)
    uint64_t translate = 0; ///< PSDER generation + buffer stores (g)
    uint64_t translate2 = 0; ///< tier-2 trace compilation (g2, Tiered)

    uint64_t
    total() const
    {
        return fetch + decode + stage + dispatch + semantic + translate +
            translate2;
    }
};

/** Result of one program execution. */
struct RunResult
{
    /** Values produced by WRITE, in order. */
    std::vector<int64_t> output;
    /** Total machine cycles. */
    uint64_t cycles = 0;
    /** DIR instructions interpreted. */
    uint64_t dirInstrs = 0;
    CycleBreakdown breakdown;
    /** Detailed counters (memory accesses, DTB/cache hits, ...). */
    StatSet stats;
    /** DTB hit ratio (Dtb/Dtb2 kinds; 1.0 otherwise). */
    double dtbHitRatio = 1.0;
    /** First-level translation-buffer hit ratio (Dtb2 only). */
    double dtbL1HitRatio = 1.0;
    /** Instruction-cache hit ratio (Cached kind; 1.0 otherwise). */
    double cacheHitRatio = 1.0;
    /** Legacy string trace (when MachineConfig::traceEvents). */
    std::vector<std::string> trace;
    /**
     * Hierarchical counter snapshot from the machine's obs::Registry
     * ("dtb.hits", "icache.misses", "machine.dir_instrs", ...).
     * Always filled; the counters agree exactly with the legacy keys
     * in #stats.
     */
    std::map<std::string, uint64_t> counters;
    /** Typed event trace (when MachineConfig::profileEvents). */
    std::vector<obs::Event> events;
    /** Events recorded in total, including ones the ring dropped. */
    uint64_t eventsSeen = 0;
    /** Events lost to ring overwrite. */
    uint64_t eventsDropped = 0;
    /**
     * Histogram snapshots from the machine's registry — translation
     * latency, tier-2 trace length, DTB residency lifetime, per-set
     * occupancy at eviction. Only the histograms the organization
     * actually registers appear (Conventional/Cached have none).
     */
    std::map<std::string, obs::HistogramSnapshot> histograms;
    /**
     * Interval-sampler time series (when
     * MachineConfig::sampleIntervalCycles > 0).
     */
    std::vector<obs::OccupancySample> samples;
    /** DIR-address trace (when MachineConfig::captureAddressTrace). */
    std::vector<uint64_t> addressTrace;
    /**
     * Dynamic opcode execution counts (indexed by Op). Filled by the
     * Conventional and Cached organizations, which decode every
     * executed instruction; the DTB organizations leave it empty
     * (on a hit the opcode is never re-decoded — that is the point).
     */
    std::vector<uint64_t> opcodeCounts;

    /** Average DIR instruction interpretation time (the paper's T). */
    double
    avgInterpTime() const
    {
        return dirInstrs == 0 ? 0.0 :
            static_cast<double>(cycles) / static_cast<double>(dirInstrs);
    }

    /** Measured average decode cycles per *decoded* DIR instruction. */
    double measuredD = 0.0;
    /** Measured average semantic cycles per DIR instruction (x). */
    double measuredX = 0.0;
    /** Measured average translate cycles per translated instruction. */
    double measuredG = 0.0;

    // ---- Tiered (T4) measurements; defaults are the no-tier values. ----
    /** Trace-cache hit ratio (Tiered only; 1.0 otherwise). */
    double traceHitRatio = 1.0;
    /** Fraction of DIR instructions retired inside traces (hT). */
    double traceCoverage = 0.0;
    /** Average DIR instructions per trace iteration (nT; 0 = none). */
    double traceMeanIterLen = 0.0;
    /** Measured tier-2 cycles per compiled short instruction (g2). */
    double measuredG2 = 0.0;
};

/** The universal host machine. */
class Machine
{
  public:
    /**
     * @param image the encoded static representation (must outlive the
     *              machine)
     * @param config machine organization and parameters
     * @param shared_dtb a DTB owned by someone else (the tenant
     *              scheduler) that this machine dispatches through
     *              instead of building its own. Only the Dtb and Tiered
     *              kinds accept one. The machine never invalidates or
     *              stat-resets a shared DTB (its owner controls the
     *              lifecycle) and does not publish its counters into
     *              the machine registry (they are not this machine's
     *              alone). Null = private DTB, exactly as before.
     */
    Machine(const EncodedDir &image, const MachineConfig &config,
            Dtb *shared_dtb = nullptr);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Execute the program to HALT. */
    RunResult run(const std::vector<int64_t> &input = {});

    // ---- sliced execution (the tenant scheduler's interface) -------------
    //
    // run() is exactly beginRun() + one unbounded runSlice() +
    // finishRun(); a scheduler interleaves bounded slices of several
    // machines instead.

    /** Reset machine state and load the program; no cycles execute. */
    void beginRun(std::vector<int64_t> input = {});

    /**
     * Execute until HALT or until at least @p max_cycles more cycles
     * have been consumed, whichever comes first. The bound is soft:
     * the slice ends at the first dispatch-loop boundary at or past
     * it (a trace iteration or long semantic routine may overshoot).
     * @return cycles actually consumed. 0 when already halted.
     */
    uint64_t runSlice(uint64_t max_cycles);

    /** The program has reached HALT. */
    bool finished() const { return halted_; }

    /**
     * Drain end-of-run observability (residual DTB residencies) and
     * assemble the RunResult. Call once, after finished().
     */
    RunResult finishRun();

    /**
     * Flush the DTB (and the first-level buffer, if any) through the
     * eviction path: victim residencies are recorded into the
     * residency histogram and victims that anchored a tier-2 trace
     * have that trace invalidated — the flush-on-switch path, also
     * exposed to tests. No-op for kinds without a DTB. Only victims of
     * this machine's own ASID feed the histogram and the trace
     * invalidation (a cross-tenant victim's trace lives in another
     * machine's engine).
     */
    void flushDtb();

    /**
     * Global-cycle offset for DTB residency stamps. A scheduler sets
     * it before each slice (global cycles minus this machine's own) so
     * insert/evict stamps of all tenants share one clock; standalone
     * runs leave it 0 and nothing changes.
     */
    void setCycleBase(uint64_t base) { cycleBase_ = base; }

    /** Cycles consumed so far in the current run. */
    uint64_t cyclesSoFar() const { return breakdown_.total(); }

    /** DIR instructions interpreted so far in the current run. */
    uint64_t dirInstrsSoFar() const { return dirInstrs_.value(); }

    /** Cycle breakdown so far (live view; for scheduler phase sums). */
    const CycleBreakdown &breakdownSoFar() const { return breakdown_; }

    /** The DTB (Dtb/Dtb2/Tiered kinds; null otherwise). */
    const Dtb *dtb() const { return dtb_; }

    /** The tier engine (Tiered kind only; null otherwise). */
    const tier::TierEngine *tier() const { return tier_.get(); }

    /** The first-level translation buffer (Dtb2 only). */
    const Dtb *dtbL1() const { return dtbL1_.get(); }

    /** The instruction cache (Cached kind only; null otherwise). */
    const SetAssocCache *icache() const { return icache_.get(); }

    /** The semantic-routine library. */
    const RoutineLibrary &routines() const { return routines_; }

    /**
     * The machine's counter registry. Every component registered its
     * counters here at construction; reading it is a live view.
     */
    const obs::Registry &registry() const { return registry_; }

    const MachineConfig &config() const { return config_; }

  private:
    // ---- operand stack (resident in level-1 memory) ----------------------
    void pushStack(int64_t value, uint64_t &bucket);
    int64_t popStack(uint64_t &bucket);

    // ---- IU1: long-format micro-routine execution ------------------------
    void runRoutine(const MicroRoutine &routine);

    // ---- fetch paths ------------------------------------------------------
    /** Charge a conventional level-2 fetch of @p bits DIR bits. */
    void chargeFetchLevel2(uint64_t bits);
    /** Charge a fetch of @p bits at @p bit_addr through the icache. */
    void chargeFetchCached(uint64_t bit_addr, uint64_t bits);

    // ---- execution loops ---------------------------------------------------
    void runConventionalOrCached();
    void runDtb();
    void runTiered();

    /**
     * One switch-path iteration of the Dtb/Dtb2 loop (sampler gate,
     * budget check, lookup or miss flow, sequence execution). The fast
     * loop calls it for every instruction it cannot run from a lowered
     * image, so cold paths have exactly one accounting implementation.
     * @return the main-DTB entry index that hit, or UINT32_MAX (miss,
     *         or an L1-buffer hit in two-level mode).
     */
    uint32_t dtbStep(bool two_level);

    /** One switch-path iteration of the Tiered loop; same contract. */
    uint32_t tieredStep();

    // ---- fast-run dispatch (DispatchMode::Threaded) ------------------------
    /** The fast loops are in force for this config and machine kind. */
    bool
    useFastLoops() const
    {
        return config_.dispatch == DispatchMode::Threaded && fastOk_ &&
            (config_.kind == MachineKind::Dtb ||
             config_.kind == MachineKind::Tiered ||
             config_.kind == MachineKind::Conventional);
    }

    /** Apply a Pending's batched deltas to the real counters, the
     *  breakdown and the memory accounting, and reset it. */
    void drainPending(Pending &p);

    /** The lowered FastSeq for DTB entry @p idx (which must be valid),
     *  relowered first if the entry's generation moved on. */
    FastSeq *ensureSeqLowered(uint32_t idx);

    /** Run the flat micro-routine starting at stream index @p entry
     *  (computed-goto dispatch), accounting into @p p. */

    void runDtbFast();
    void runTieredFast();
    void runConventionalFast();

    /** Fast-path mirror of executeTrace over a lowered image. */
    uint64_t executeTraceFast(const FastTrace &ft, Pending &p);

    /** Perform the staging actions and semantics of one instruction. */
    void executeStaged(const Staging &staging);

    /** Execute one non-INTERP short instruction (PUSH/POP/CALL). */
    void executeShort(const ShortInstr &si);

    /**
     * Execute one PSDER short sequence; returns the successor address.
     * @param fetch_cost cycles per short-instruction fetch (tauD from
     *                   the main DTB, tau1 from the first-level buffer)
     */
    uint64_t executeShortSequence(const std::vector<ShortInstr> &code,
                                  uint64_t fetch_cost);

    /**
     * Execute a compiled tier-2 trace until a guard side-exits or a
     * non-looping trace runs out of steps; returns the exit address.
     * Counts every covered DIR instruction exactly as the tier-1 loop
     * would (dirInstrs, address trace), charges tauD per body short
     * instruction and TierConfig::dispatchCycles per loop-back.
     */
    uint64_t executeTrace(const tier::Trace &trace);

    void traceEvent(const std::string &event);

    /**
     * Record a typed obs event stamped with the current cycle count.
     * The enabled check comes first so a run without a tracer sink
     * pays one predictable branch — the cycle stamp
     * (breakdown_.total(), five adds) is never computed when no one is
     * listening.
     */
    void
    emitEvent(obs::EventKind kind, uint64_t addr, uint64_t arg = 0)
    {
        if (tracer_.enabled())
            tracer_.record(kind, breakdown_.total(), addr, arg);
    }

    /**
     * Interval-sampler gate, called once per run-loop iteration. The
     * interval check comes first so a run without sampling pays one
     * predictable branch — the cycle total is only computed (and the
     * occupancy snapshot only taken, in takeSample) once sampling is
     * on.
     */
    void
    maybeSample()
    {
        if (sampleEvery_ == 0)
            return;
        if (breakdown_.total() >= nextSampleAt_)
            takeSample();
    }

    /** Snapshot occupancy + deltas into samples_ (sampler on only). */
    void takeSample();

    const EncodedDir *image_;
    MachineConfig config_;
    RoutineLibrary routines_;
    MainMemory mem_;
    /** The DTB this machine dispatches through: ownedDtb_ or a shared
     *  one injected at construction. */
    Dtb *dtb_ = nullptr;
    std::unique_ptr<Dtb> ownedDtb_;
    /** dtb_ is injected — never invalidate/reset it here. */
    bool sharedDtb_ = false;
    std::unique_ptr<Dtb> dtbL1_;
    std::unique_ptr<SetAssocCache> icache_;
    std::unique_ptr<tier::TierEngine> tier_;
    DynamicTranslator translator_;
    /**
     * Host-side decode/staging memos for the conventional and cached
     * fetch paths (the DTB paths memoize inside translator_). The
     * image is immutable, so the memos never invalidate; simulated
     * decode cycles are charged from the cached DecodeCost and are
     * identical to a cold decode.
     */
    DecodeMemo decodeMemo_;
    std::vector<uint8_t> stagingValid_;
    std::vector<Staging> stagingMemo_;

    // Fast-run dispatch state (DispatchMode::Threaded; see
    // uhm/run_image.hh and docs/INTERNALS.md "Fast-run dispatch").
    /** All semantic routines flattened; immutable, built once. */
    FlatRoutines flat_;
    /** Layout/config admits the fast loops at all (stack resident in
     *  level 1, no event tracing). Computed at construction. */
    bool fastOk_ = false;
    /** Lowered PSDER sequences + inline caches, by DTB entry index.
     *  Sized at beginRun; never reallocated during a run, so FastSeq
     *  pointers stay stable across iterations. */
    std::vector<FastSeq> fastSlots_;
    /** Lowered trace bodies, by trace-cache entry index. */
    std::vector<FastTrace> fastTraces_;
    /** Lowered conventional-path instructions, by image index. */
    std::vector<FastConv> convFast_;
    /** Semantic routines by id, resolved once per run at beginRun so
     *  the interpreter loops index a raw-pointer table per CALL instead
     *  of going through the bounds-checked RoutineLibrary::byId. */
    std::vector<const MicroRoutine *> routinePtrs_;

    // Machine state.
    std::array<int64_t, numMicroRegs> regs_{};
    uint64_t sp_ = 0;
    std::vector<uint64_t> ras_;
    uint64_t pc_ = 0;
    /** Previously interpreted DIR address (backedge detection). */
    uint64_t prevPc_ = 0;
    bool halted_ = false;
    /** Dispatch loops stop once breakdown_.total() reaches this. */
    uint64_t sliceLimit_ = UINT64_MAX;
    /** Global-cycle offset added to DTB residency stamps. */
    uint64_t cycleBase_ = 0;

    // I/O.
    std::vector<int64_t> inputStorage_;
    const std::vector<int64_t> *input_ = nullptr;
    size_t inputPos_ = 0;
    std::vector<int64_t> output_;

    // Accounting: counters are registered into registry_ at
    // construction (see the naming scheme in docs/INTERNALS.md).
    CycleBreakdown breakdown_;
    obs::Counter dirInstrs_;
    obs::Counter decodedInstrs_;
    obs::Counter translatedInstrs_;
    obs::Counter microOps_;
    obs::Counter shortInstrs_;
    obs::Counter dirFetchRefs_;
    obs::Counter traps_;
    /** Short instructions emitted by the dynamic translator. */
    obs::Counter translateShortEmitted_;
    // Tiered-execution counters (registered under "tier.*").
    /** DIR instructions retired inside traces. */
    obs::Counter traceDirInstrs_;
    /** Body short instructions executed inside traces. */
    obs::Counter traceShortInstrs_;
    /** Trace iterations (passes over a trace's steps) started. */
    obs::Counter traceIterations_;
    /** Trace dispatches (entries from the tier-1 loop). */
    obs::Counter traceEnters_;
    /** Trace exits (guard side-exits and non-looping run-offs). */
    obs::Counter traceExits_;
    // Histograms (registered alongside the counters; see
    // docs/INTERNALS.md "Observability"). Only slow paths record into
    // them — misses, evictions, tier-2 compilations — so the
    // hit-dominated hot path never touches one.
    /** "translate.latency_cycles": full Figure 4 miss-flow latency. */
    obs::Histogram translateLatency_;
    /** "dtb.residency_cycles": victim lifetime at eviction. */
    obs::Histogram dtbResidency_;
    /** "dtb.evict_set_occupancy": valid ways in the set at eviction. */
    obs::Histogram dtbEvictOccupancy_;
    /** "tier.trace_len_dir": DIR length of each compiled trace. */
    obs::Histogram tierTraceLen_;
    // Interval-sampler state (see MachineConfig::sampleIntervalCycles).
    uint64_t sampleEvery_ = 0;
    uint64_t nextSampleAt_ = 0;
    uint64_t lastDtbHits_ = 0;
    uint64_t lastDtbMisses_ = 0;
    uint64_t lastTraceHits_ = 0;
    uint64_t lastTraceMisses_ = 0;
    std::vector<obs::OccupancySample> samples_;
    obs::Registry registry_;
    obs::Tracer tracer_;
    std::vector<std::string> trace_;
    std::vector<uint64_t> opcodeCounts_;
    std::vector<uint64_t> addressTrace_;
};

/** Convenience: encode @p program with @p scheme and run it. */
RunResult runProgram(const DirProgram &program, EncodingScheme scheme,
                     const MachineConfig &config,
                     const std::vector<int64_t> &input = {});

} // namespace uhm

#endif // UHM_UHM_MACHINE_HH
