#include "sched/scheduler.hh"

#include <algorithm>
#include <cstdio>

#include "obs/registry.hh"
#include "support/logging.hh"

namespace uhm::sched
{

namespace
{

/** Zero-padded tenant counter namespace: "tenant.0007". */
std::string
tenantPrefix(uint32_t asid)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "tenant.%04u", asid);
    return buf;
}

} // anonymous namespace

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::RoundRobin:   return "rr";
      case Policy::Priority:     return "prio";
      case Policy::MissFeedback: return "feedback";
    }
    return "?";
}

bool
parsePolicy(const std::string &name, Policy &out)
{
    if (name == "rr") {
        out = Policy::RoundRobin;
    } else if (name == "prio") {
        out = Policy::Priority;
    } else if (name == "feedback") {
        out = Policy::MissFeedback;
    } else {
        return false;
    }
    return true;
}

const char *
switchModeName(SwitchMode mode)
{
    switch (mode) {
      case SwitchMode::FlushOnSwitch: return "flush";
      case SwitchMode::TagAndShare:   return "tag";
    }
    return "?";
}

bool
parseSwitchMode(const std::string &name, SwitchMode &out)
{
    if (name == "flush") {
        out = SwitchMode::FlushOnSwitch;
    } else if (name == "tag") {
        out = SwitchMode::TagAndShare;
    } else {
        return false;
    }
    return true;
}

uint64_t
TenantResult::cpiPercentile(unsigned pct) const
{
    if (sliceCpiMilli.empty())
        return 0;
    std::vector<uint64_t> sorted = sliceCpiMilli;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = (sorted.size() - 1) * pct / 100;
    return sorted[idx];
}

Scheduler::Scheduler(const SchedConfig &config,
                     std::vector<TenantSpec> tenants)
    : config_(config), specs_(std::move(tenants)), dtb_(config.machine.dtb)
{
    uhm_assert(!specs_.empty(), "scheduler needs at least one tenant");
    uhm_assert(config_.quantumCycles >= 1, "zero scheduling quantum");
    if (config_.machine.kind != MachineKind::Dtb &&
        config_.machine.kind != MachineKind::Tiered) {
        fatal("tenant scheduling requires a DTB-dispatching machine "
              "kind (dtb or tiered), not '%s'",
              machineKindName(config_.machine.kind));
    }
    images_.reserve(specs_.size());
    machines_.reserve(specs_.size());
    for (const TenantSpec &spec : specs_) {
        uhm_assert(spec.priority >= 1, "tenant priority below one");
        images_.push_back(encodeDir(spec.program, config_.scheme));
        machines_.push_back(std::make_unique<Machine>(
            *images_.back(), config_.machine, &dtb_));
    }
    state_.assign(specs_.size(), TenantState{});
}

Scheduler::~Scheduler() = default;

size_t
Scheduler::pickNext(size_t current)
{
    size_t n = specs_.size();
    // A Priority tenant holds the machine for its remaining quanta.
    if (config_.policy == Policy::Priority && current < n &&
        !state_[current].finished && state_[current].quantaLeft > 0) {
        --state_[current].quantaLeft;
        return current;
    }
    size_t start = current >= n ? 0 : (current + 1) % n;
    for (size_t k = 0; k < n; ++k) {
        size_t c = (start + k) % n;
        if (state_[c].finished)
            continue;
        if (config_.policy == Policy::Priority)
            state_[c].quantaLeft = specs_[c].priority - 1;
        return c;
    }
    panic("pickNext with every tenant finished");
}

uint64_t
Scheduler::effectiveQuantum(size_t t) const
{
    uint64_t q = config_.quantumCycles;
    if (config_.policy != Policy::MissFeedback || !state_[t].ranBefore)
        return q;
    // A heavily missing previous slice means the tenant just paid the
    // cold-start translation storm; stretch the next quantum so the
    // warmed buffer is actually used. Integer thresholds keep this
    // deterministic: rate >= 1/4 -> 4x, >= 1/8 -> 2x.
    uint64_t hits = state_[t].lastSliceHits;
    uint64_t misses = state_[t].lastSliceMisses;
    uint64_t total = hits + misses;
    if (total == 0)
        return q;
    if (misses * 4 >= total)
        return q * 4;
    if (misses * 8 >= total)
        return q * 2;
    return q;
}

SchedResult
Scheduler::run()
{
    uhm_assert(!ran_, "Scheduler::run called twice");
    ran_ = true;
    size_t n = specs_.size();

    dtb_.invalidateAll();
    dtb_.resetStats();
    dtb_.setAsid(0);
    if (config_.profileEvents)
        tracer_.enable(config_.profileEventCapacity);

    SchedResult result;
    result.tenants.resize(n);
    for (size_t t = 0; t < n; ++t) {
        result.tenants[t].name = specs_[t].name;
        result.tenants[t].asid = static_cast<uint32_t>(t);
        machines_[t]->beginRun(specs_[t].input);
    }

    uint64_t global = 0;
    size_t current = SIZE_MAX;
    size_t finished_count = 0;

    while (finished_count < n) {
        size_t next = pickNext(current);
        if (next != current) {
            if (current != SIZE_MAX) {
                ++result.switches;
                if (config_.switchMode == SwitchMode::FlushOnSwitch) {
                    // Flush through the *outgoing* machine while the
                    // DTB's ASID is still its own, so residencies land
                    // in its histogram and its anchored traces die.
                    uint64_t before = dtb_.flushedEntries();
                    machines_[current]->flushDtb();
                    tracer_.record(obs::EventKind::DtbFlush, global,
                                   current,
                                   dtb_.flushedEntries() - before);
                }
            }
            dtb_.setAsid(static_cast<uint32_t>(next));
            tracer_.record(obs::EventKind::SchedSwitch, global, next);
        }
        current = next;

        Machine &m = *machines_[current];
        TenantState &st = state_[current];
        TenantResult &tr = result.tenants[current];

        uint64_t quantum = effectiveQuantum(current);
        // Re-anchor the machine's residency clock on the global one:
        // stamps it writes this slice are global cycles.
        m.setCycleBase(global - m.cyclesSoFar());

        uint64_t hits0 = dtb_.hits();
        uint64_t misses0 = dtb_.misses();
        uint64_t instrs0 = m.dirInstrsSoFar();
        uint64_t consumed = m.runSlice(quantum);
        global += consumed;

        uint64_t dh = dtb_.hits() - hits0;
        uint64_t dm = dtb_.misses() - misses0;
        tr.dtbHits += dh;
        tr.dtbMisses += dm;
        st.lastSliceHits = dh;
        st.lastSliceMisses = dm;
        st.ranBefore = true;
        ++tr.slices;
        uint64_t di = m.dirInstrsSoFar() - instrs0;
        if (di > 0)
            tr.sliceCpiMilli.push_back(consumed * 1000 / di);
        tracer_.record(obs::EventKind::SchedSlice, global, current,
                       consumed);

        if (m.finished()) {
            st.finished = true;
            ++finished_count;
            tr.finishedAtCycle = global;
            // The DTB's ASID is this tenant's, so the end-of-run
            // residency drain filters to its own entries.
            tr.run = m.finishRun();
        }
    }

    result.totalCycles = global;
    result.flushes = dtb_.flushes();
    result.flushedEntries = dtb_.flushedEntries();
    result.events = tracer_.events();
    result.eventsSeen = tracer_.seen();
    result.eventsDropped = tracer_.dropped();

    // Merged counter map: scheduler totals, the shared DTB, and one
    // zero-padded namespace per tenant.
    result.counters["sched.tenants"] = n;
    result.counters["sched.switches"] = result.switches;
    result.counters["sched.flushes"] = result.flushes;
    result.counters["sched.flushed_entries"] = result.flushedEntries;
    result.counters["sched.total_cycles"] = result.totalCycles;
    obs::Registry dtb_registry;
    dtb_.registerCounters(dtb_registry, "dtb");
    for (const auto &kv : dtb_registry.snapshot())
        result.counters[kv.first] = kv.second;
    for (const TenantResult &tr : result.tenants) {
        std::string prefix = tenantPrefix(tr.asid);
        result.counters[prefix + ".cycles"] = tr.run.cycles;
        result.counters[prefix + ".dir_instrs"] = tr.run.dirInstrs;
        result.counters[prefix + ".slices"] = tr.slices;
        result.counters[prefix + ".dtb_hits"] = tr.dtbHits;
        result.counters[prefix + ".dtb_misses"] = tr.dtbMisses;
        result.counters[prefix + ".finished_at_cycle"] =
            tr.finishedAtCycle;
        for (const auto &kv : tr.run.histograms)
            result.histograms[prefix + "." + kv.first] = kv.second;
        result.breakdown.fetch += tr.run.breakdown.fetch;
        result.breakdown.decode += tr.run.breakdown.decode;
        result.breakdown.stage += tr.run.breakdown.stage;
        result.breakdown.dispatch += tr.run.breakdown.dispatch;
        result.breakdown.semantic += tr.run.breakdown.semantic;
        result.breakdown.translate += tr.run.breakdown.translate;
        result.breakdown.translate2 += tr.run.breakdown.translate2;
    }
    return result;
}

SchedResult
runScheduled(const SchedConfig &config, std::vector<TenantSpec> tenants)
{
    Scheduler scheduler(config, std::move(tenants));
    return scheduler.run();
}

} // namespace uhm::sched
