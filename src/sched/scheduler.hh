/**
 * @file
 * The tenant scheduler: time-slicing N independent guest programs over
 * one universal host machine.
 *
 * The paper's UHM hosts one program; a real host machine is
 * multi-programmed, and the interesting question is what happens to
 * the dynamic translation buffer when several working sets compete for
 * it. The scheduler runs one Machine per tenant, all dispatching
 * through ONE shared DTB (Machine's shared-DTB constructor), and
 * interleaves bounded slices (Machine::beginRun/runSlice/finishRun):
 *
 *  - RoundRobin: one quantum per tenant, in tenant order.
 *  - Priority:   weighted round-robin — a tenant with priority p keeps
 *                the machine for p consecutive quanta.
 *  - MissFeedback: round-robin, but a tenant whose previous slice
 *                missed heavily in the DTB (its working set was cold —
 *                it just paid the translation storm) gets a stretched
 *                quantum to amortize it: >= 1/4 miss rate doubles
 *                twice, >= 1/8 doubles once. Deterministic: integer
 *                thresholds on the slice's own hit/miss deltas.
 *
 * Tenant isolation in the shared DTB uses EntryMeta::asid:
 *
 *  - FlushOnSwitch: the buffer is flushed through the eviction path on
 *    every tenant switch (Machine::flushDtb — residencies drained,
 *    anchored traces invalidated). Every tenant starts its slice cold.
 *  - TagAndShare: entries stay resident across switches and lookups
 *    match on (tag, asid); tenants evict each other under capacity
 *    pressure but re-entry is warm. DtbConfig::numPartitions >= 2
 *    additionally partitions the set space so tenants cannot evict
 *    each other at all.
 *
 * A scheduler run is single-threaded and integer-deterministic: the
 * same config and tenants produce byte-identical results regardless of
 * what else the process runs (bench_multitenant fans grid points over
 * worker threads and relies on this).
 */

#ifndef UHM_SCHED_SCHEDULER_HH
#define UHM_SCHED_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dir/encoding.hh"
#include "dir/program.hh"
#include "obs/trace.hh"
#include "uhm/machine.hh"

namespace uhm::sched
{

/** How the scheduler picks the next tenant. */
enum class Policy : uint8_t
{
    RoundRobin,   ///< one quantum each, in tenant order
    Priority,     ///< weighted: priority p = p consecutive quanta
    MissFeedback, ///< round-robin with miss-rate-stretched quanta
};

/** Printable name of @p policy ("rr", "prio", "feedback"). */
const char *policyName(Policy policy);

/** Parse a policy name; @return false when @p name is unknown. */
bool parsePolicy(const std::string &name, Policy &out);

/** What happens to the shared DTB on a tenant switch. */
enum class SwitchMode : uint8_t
{
    FlushOnSwitch, ///< flush the buffer; every slice starts cold
    TagAndShare,   ///< entries persist, tagged by ASID
};

/** Printable name of @p mode ("flush", "tag"). */
const char *switchModeName(SwitchMode mode);

/** Parse a switch-mode name; @return false when unknown. */
bool parseSwitchMode(const std::string &name, SwitchMode &out);

/** One guest program and its scheduling parameters. */
struct TenantSpec
{
    /** Display name ("qsort", "tenant3", ...). */
    std::string name;
    DirProgram program;
    std::vector<int64_t> input;
    /**
     * Consecutive quanta under Policy::Priority (>= 1; other policies
     * ignore it).
     */
    uint32_t priority = 1;
};

/** Scheduler-level configuration. */
struct SchedConfig
{
    Policy policy = Policy::RoundRobin;
    SwitchMode switchMode = SwitchMode::TagAndShare;
    /** Nominal slice length in machine cycles (>= 1). */
    uint64_t quantumCycles = 5000;
    /** DIR encoding all tenants are encoded with. */
    EncodingScheme scheme = EncodingScheme::Huffman;
    /**
     * Per-tenant machine template. kind must be Dtb or Tiered (the
     * organizations that dispatch through a DTB); the dtb member
     * configures the one shared buffer (numPartitions >= 2 gives each
     * tenant a private region of it).
     */
    MachineConfig machine;
    /**
     * Record scheduler events (sched_switch, sched_slice, dtb_flush)
     * into a bounded ring, stamped with the global cycle clock.
     */
    bool profileEvents = false;
    size_t profileEventCapacity = obs::Tracer::defaultCapacity;
};

/** Everything one tenant's run produced. */
struct TenantResult
{
    std::string name;
    uint32_t asid = 0;
    /** The tenant's full RunResult (output, cycles, histograms, ...). */
    RunResult run;
    /** Scheduler slices this tenant received. */
    uint64_t slices = 0;
    /** Global cycle at which the tenant reached HALT. */
    uint64_t finishedAtCycle = 0;
    /** Shared-DTB hits/misses attributed to this tenant's slices. */
    uint64_t dtbHits = 0;
    uint64_t dtbMisses = 0;
    /**
     * Per-slice CPI in milli-cycles per DIR instruction
     * (cycles * 1000 / instructions, integer); slices that retired no
     * instruction are skipped. Feeds the dispatch-latency percentiles.
     */
    std::vector<uint64_t> sliceCpiMilli;

    /** This tenant's DTB miss rate (misses / lookups); 0 if none. */
    double
    missRate() const
    {
        uint64_t total = dtbHits + dtbMisses;
        return total == 0 ? 0.0 :
            static_cast<double>(dtbMisses) / static_cast<double>(total);
    }

    /** p50 of sliceCpiMilli (0 when empty). */
    uint64_t cpiP50() const { return cpiPercentile(50); }

    /** p99 of sliceCpiMilli (0 when empty). */
    uint64_t cpiP99() const { return cpiPercentile(99); }

    /** Nearest-rank percentile of sliceCpiMilli (0 when empty). */
    uint64_t cpiPercentile(unsigned pct) const;
};

/** Result of one multi-tenant scheduler run. */
struct SchedResult
{
    /** Global cycles: sum of every slice of every tenant. */
    uint64_t totalCycles = 0;
    /** Tenant-to-tenant transitions. */
    uint64_t switches = 0;
    /** Whole-DTB flushes (FlushOnSwitch switches). */
    uint64_t flushes = 0;
    /** Entries destroyed by those flushes. */
    uint64_t flushedEntries = 0;
    /** Per-tenant results, in tenant (ASID) order. */
    std::vector<TenantResult> tenants;
    /**
     * Merged counter map: "sched.*" (switches, flushes, total_cycles),
     * the shared DTB's "dtb.*", and per-tenant "tenant.NNNN.*"
     * (cycles, dir_instrs, slices, dtb_hits, dtb_misses) — zero-padded
     * so lexical order is tenant order. Deterministic contents.
     */
    std::map<std::string, uint64_t> counters;
    /** Per-tenant histograms, namespaced "tenant.NNNN.<name>". */
    std::map<std::string, obs::HistogramSnapshot> histograms;
    /** Scheduler events on the global clock (when profileEvents). */
    std::vector<obs::Event> events;
    uint64_t eventsSeen = 0;
    uint64_t eventsDropped = 0;
    /** Cycle buckets summed across tenants (timeline overview). */
    CycleBreakdown breakdown;
};

/**
 * The scheduler itself. Owns the shared DTB, the encoded images and
 * one Machine per tenant; run() executes every tenant to HALT under
 * the configured policy.
 */
class Scheduler
{
  public:
    /** Tenant i runs under ASID i. At least one tenant. */
    Scheduler(const SchedConfig &config,
              std::vector<TenantSpec> tenants);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Run every tenant to completion. Call once per Scheduler. */
    SchedResult run();

    /** The shared DTB (live view). */
    const Dtb &dtb() const { return dtb_; }

    const SchedConfig &config() const { return config_; }

  private:
    /** Per-tenant scheduling state. */
    struct TenantState
    {
        bool finished = false;
        /** Remaining consecutive quanta (Policy::Priority). */
        uint32_t quantaLeft = 0;
        /** Hit/miss deltas of the previous slice (MissFeedback). */
        uint64_t lastSliceHits = 0;
        uint64_t lastSliceMisses = 0;
        bool ranBefore = false;
    };

    /** Next runnable tenant after @p current (npos = first pick). */
    size_t pickNext(size_t current);

    /** Effective quantum for @p t under the configured policy. */
    uint64_t effectiveQuantum(size_t t) const;

    SchedConfig config_;
    std::vector<TenantSpec> specs_;
    Dtb dtb_;
    std::vector<std::unique_ptr<EncodedDir>> images_;
    std::vector<std::unique_ptr<Machine>> machines_;
    std::vector<TenantState> state_;
    obs::Tracer tracer_;
    bool ran_ = false;
};

/** Convenience: construct a Scheduler and run it. */
SchedResult runScheduled(const SchedConfig &config,
                         std::vector<TenantSpec> tenants);

} // namespace uhm::sched

#endif // UHM_SCHED_SCHEDULER_HH
