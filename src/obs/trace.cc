#include "obs/trace.hh"

#include "support/logging.hh"

namespace uhm::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch:     return "fetch";
      case EventKind::Decode:    return "decode";
      case EventKind::DtbHit:    return "dtb_hit";
      case EventKind::DtbMiss:   return "dtb_miss";
      case EventKind::DtbEvict:  return "dtb_evict";
      case EventKind::DtbReject: return "dtb_reject";
      case EventKind::Trap:      return "trap";
      case EventKind::Translate: return "translate";
      case EventKind::Promote:   return "promote";
      case EventKind::TraceRecord:     return "trace_record";
      case EventKind::TraceAbort:      return "trace_abort";
      case EventKind::Translate2:      return "translate2";
      case EventKind::TraceEnter:      return "trace_enter";
      case EventKind::TraceExit:       return "trace_exit";
      case EventKind::TraceEvict:      return "trace_evict";
      case EventKind::TraceInvalidate: return "trace_invalidate";
      case EventKind::Sample:          return "sample";
      case EventKind::DtbFlush:        return "dtb_flush";
      case EventKind::SchedSlice:      return "sched_slice";
      case EventKind::SchedSwitch:     return "sched_switch";
      case EventKind::ServeEnqueue:    return "serve_enqueue";
      case EventKind::ServeBegin:      return "serve_begin";
      case EventKind::ServeDone:       return "serve_done";
      case EventKind::ServeReject:     return "serve_reject";
      case EventKind::ServeAcquire:    return "serve_acquire";
      case EventKind::ServeSlice:      return "serve_slice";
    }
    return "?";
}

void
Tracer::enable(size_t capacity)
{
    uhm_assert(capacity >= 1, "tracer ring needs at least one slot");
    ring_.assign(capacity, Event{});
    next_ = 0;
    seen_ = 0;
    enabled_ = true;
}

void
Tracer::disable()
{
    ring_.clear();
    ring_.shrink_to_fit();
    next_ = 0;
    seen_ = 0;
    enabled_ = false;
}

std::vector<Event>
Tracer::events() const
{
    std::vector<Event> out;
    if (seen_ == 0)
        return out;
    if (seen_ <= ring_.size()) {
        out.assign(ring_.begin(),
                   ring_.begin() + static_cast<ptrdiff_t>(seen_));
        return out;
    }
    // Ring wrapped: the oldest retained event is at next_.
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
    return out;
}

void
Tracer::clear()
{
    next_ = 0;
    seen_ = 0;
}

} // namespace uhm::obs
