#include "obs/registry.hh"

#include "support/json.hh"
#include "support/logging.hh"

namespace uhm::obs
{

std::string
joinName(const std::string &prefix, const std::string &leaf)
{
    return prefix.empty() ? leaf : prefix + "." + leaf;
}

void
Registry::add(const std::string &name, const Counter &counter)
{
    uhm_assert(!name.empty(), "counter registered with empty name");
    auto [it, inserted] = counters_.emplace(name, &counter);
    (void)it;
    uhm_assert(inserted, "duplicate counter '%s'", name.c_str());
}

uint64_t
Registry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

bool
Registry::contains(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::map<std::string, uint64_t>
Registry::snapshot() const
{
    std::map<std::string, uint64_t> values;
    for (const auto &kv : counters_)
        values.emplace(kv.first, kv.second->value());
    return values;
}

uint64_t
Registry::total(const std::string &prefix) const
{
    uint64_t sum = 0;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end(); ++it) {
        const std::string &name = it->first;
        if (name.compare(0, prefix.size(), prefix) != 0)
            break;
        if (name.size() == prefix.size() ||
            name[prefix.size()] == '.') {
            sum += it->second->value();
        }
    }
    return sum;
}

void
Registry::addHistogram(const std::string &name,
                       const Histogram &histogram)
{
    uhm_assert(!name.empty(), "histogram registered with empty name");
    auto [it, inserted] = histograms_.emplace(name, &histogram);
    (void)it;
    uhm_assert(inserted, "duplicate histogram '%s'", name.c_str());
}

bool
Registry::containsHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

const Histogram *
Registry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

std::map<std::string, HistogramSnapshot>
Registry::histogramSnapshot() const
{
    std::map<std::string, HistogramSnapshot> values;
    for (const auto &kv : histograms_)
        values.emplace(kv.first, kv.second->snapshot());
    return values;
}

void
Registry::writeJson(JsonWriter &jw) const
{
    jw.beginObject();
    for (const auto &kv : counters_)
        jw.key(kv.first).value(kv.second->value());
    jw.endObject();
}

} // namespace uhm::obs
