/**
 * @file
 * A single always-on event counter.
 *
 * The observability layer's unit of accounting: a plain 64-bit count
 * that components own as a member and bump on their hot paths. Unlike
 * the string-keyed StatSet (a map lookup per increment), a Counter
 * increment compiles to one add — cheap enough to leave enabled
 * unconditionally. Counters become visible by being registered into an
 * obs::Registry under a hierarchical dotted name ("dtb.hits").
 */

#ifndef UHM_OBS_COUNTER_HH
#define UHM_OBS_COUNTER_HH

#include <cstdint>

namespace uhm::obs
{

/** An owned event counter; register it to publish it. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p delta events. */
    void add(uint64_t delta = 1) { value_ += delta; }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    /** Overwrite the count (state resets between runs). */
    Counter &
    operator=(uint64_t value)
    {
        value_ = value;
        return *this;
    }

    uint64_t value() const { return value_; }

    /** Counters read as plain integers in arithmetic and comparisons. */
    operator uint64_t() const { return value_; }

    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

} // namespace uhm::obs

#endif // UHM_OBS_COUNTER_HH
