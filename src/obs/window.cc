#include "obs/window.hh"

#include <algorithm>
#include <cmath>

namespace uhm::obs
{

double
histogramPercentile(const HistogramSnapshot &snap, double q)
{
    if (snap.count == 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(snap.min);
    if (q >= 1.0)
        return static_cast<double>(snap.max);

    // Nearest-rank: the 1-based index of the observation that answers
    // the quantile in the sorted fill.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(snap.count)));
    rank = std::clamp<uint64_t>(rank, 1, snap.count);

    uint64_t before = 0;
    for (const auto &[bucket, n] : snap.buckets) {
        if (before + n < rank) {
            before += n;
            continue;
        }
        // The global min/max tighten the edge buckets: only the first
        // non-empty bucket can start below min and only the last can
        // end above max, so this clamp is exact where it applies.
        uint64_t lo = std::max(histogramBucketLow(bucket), snap.min);
        uint64_t hi = std::min(histogramBucketHigh(bucket), snap.max);
        if (hi <= lo || n == 1)
            return static_cast<double>(lo);
        // Place the bucket's n observations evenly across [lo, hi];
        // the rank'th one sits at fraction (rank - before - 1)/(n - 1).
        double f = static_cast<double>(rank - before - 1) /
            static_cast<double>(n - 1);
        return static_cast<double>(lo) +
            f * static_cast<double>(hi - lo);
    }
    return static_cast<double>(snap.max);
}

uint64_t
WindowSnapshot::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

RollingWindow::RollingWindow(uint64_t window_us, size_t buckets)
    : windowUs_(std::max<uint64_t>(window_us, 1))
{
    buckets = std::max<size_t>(buckets, 1);
    bucketUs_ = std::max<uint64_t>(windowUs_ / buckets, 1);
    ring_.resize(buckets);
}

RollingWindow::Bucket &
RollingWindow::bucketFor(uint64_t now_us)
{
    const uint64_t idx = now_us / bucketUs_;
    const uint64_t n = ring_.size();
    if (idx > latest_) {
        // Time advanced: everything that slid out of the window must
        // die now, not when its slot is next reused, or snapshot()
        // would keep reporting it.
        for (Bucket &b : ring_) {
            if (b.index != unusedIndex && b.index + n <= idx)
                b = Bucket{};
        }
        latest_ = idx;
    } else if (idx + n <= latest_) {
        // A record stamped before it reached the lock, now older than
        // the whole window: count it into the oldest slot we still
        // track rather than resurrecting an expired bucket.
        return bucketFor(latest_ * bucketUs_);
    }
    Bucket &b = ring_[idx % n];
    if (b.index != idx) {
        b = Bucket{};
        b.index = idx;
    }
    return b;
}

void
RollingWindow::count(const std::string &name, uint64_t now_us,
                     uint64_t delta)
{
    bucketFor(now_us).counters[name] += delta;
}

void
RollingWindow::record(const std::string &name, uint64_t now_us,
                      uint64_t value)
{
    bucketFor(now_us).histograms[name].record(value);
}

WindowSnapshot
RollingWindow::snapshot() const
{
    WindowSnapshot out;
    out.windowUs = windowUs_;

    // Oldest first, so spanUs and any order-sensitive consumer see the
    // buckets as a time series (the merges themselves are commutative).
    std::vector<const Bucket *> live;
    for (const Bucket &b : ring_) {
        if (b.index != unusedIndex)
            live.push_back(&b);
    }
    std::sort(live.begin(), live.end(),
              [](const Bucket *a, const Bucket *b) {
                  return a->index < b->index;
              });
    if (!live.empty())
        out.spanUs =
            (live.back()->index - live.front()->index + 1) * bucketUs_;

    for (const Bucket *b : live) {
        for (const auto &[name, value] : b->counters)
            out.counters[name] += value;
        for (const auto &[name, hist] : b->histograms)
            out.histograms[name].merge(hist.snapshot());
    }
    return out;
}

void
RollingWindow::reset()
{
    for (Bucket &b : ring_)
        b = Bucket{};
    latest_ = 0;
}

} // namespace uhm::obs
