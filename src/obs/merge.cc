#include "obs/merge.hh"

#include <queue>

#include "obs/registry.hh"
#include "support/json.hh"

namespace uhm::obs
{

void
mergeCounterSnapshots(std::map<std::string, uint64_t> &into,
                      const std::map<std::string, uint64_t> &from)
{
    for (const auto &kv : from)
        into[kv.first] += kv.second;
}

void
MergedCounters::accumulate(const std::map<std::string, uint64_t> &snapshot)
{
    mergeCounterSnapshots(values_, snapshot);
    ++shards_;
}

void
MergedCounters::accumulate(const Registry &registry)
{
    accumulate(registry.snapshot());
}

uint64_t
MergedCounters::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
}

void
MergedCounters::writeJson(JsonWriter &jw) const
{
    jw.beginObject();
    for (const auto &kv : values_)
        jw.key(kv.first).value(kv.second);
    jw.endObject();
}

void
mergeHistogramSnapshots(
    std::map<std::string, HistogramSnapshot> &into,
    const std::map<std::string, HistogramSnapshot> &from)
{
    for (const auto &kv : from)
        into[kv.first].merge(kv.second);
}

void
MergedHistograms::accumulate(
    const std::map<std::string, HistogramSnapshot> &snapshot)
{
    mergeHistogramSnapshots(values_, snapshot);
    ++shards_;
}

HistogramSnapshot
MergedHistograms::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? HistogramSnapshot{} : it->second;
}

void
MergedHistograms::writeJson(JsonWriter &jw) const
{
    jw.beginObject();
    for (const auto &kv : values_) {
        jw.key(kv.first);
        kv.second.writeJson(jw);
    }
    jw.endObject();
}

std::vector<Event>
mergeEventStreams(const std::vector<std::vector<Event>> &shards)
{
    // Cursor into one shard; ordering key is (cycle, shard index) so
    // the merge is total and stable.
    struct Cursor
    {
        size_t shard;
        size_t pos;
        uint64_t cycle;
    };
    auto later = [](const Cursor &a, const Cursor &b) {
        return a.cycle != b.cycle ? a.cycle > b.cycle : a.shard > b.shard;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)>
        heads(later);

    size_t total = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
        total += shards[s].size();
        if (!shards[s].empty())
            heads.push({s, 0, shards[s][0].cycle});
    }

    std::vector<Event> merged;
    merged.reserve(total);
    while (!heads.empty()) {
        Cursor cur = heads.top();
        heads.pop();
        merged.push_back(shards[cur.shard][cur.pos]);
        if (cur.pos + 1 < shards[cur.shard].size()) {
            heads.push({cur.shard, cur.pos + 1,
                        shards[cur.shard][cur.pos + 1].cycle});
        }
    }
    return merged;
}

} // namespace uhm::obs
