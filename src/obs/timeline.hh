/**
 * @file
 * Cycle-attribution timelines: Chrome-trace-event export of a run.
 *
 * Flat counters average the transient away; the timeline shows it.
 * The machine's typed event ring (obs/trace.hh) stamps every event
 * with the cycle counter *after* the work it names was charged, so
 * consecutive stamps carve the run into contiguous duration spans:
 * the span ending at a `decode` event is that instruction's decode
 * work, the span ending at a `dtb_hit` covers the dispatch lookup plus
 * the executed short sequence of the *previous* instruction, a
 * `translate` span is the PSDER generation burst, and so on. Together
 * with the cycle buckets (one overview span per bucket, laid end to
 * end) this reconstructs where the cycles went over time — the
 * cold-start miss storm, translation bursts, tier-2 promotion waves —
 * without any extra hot-path instrumentation.
 *
 * The export target is the Chrome trace-event JSON format (the
 * "JSON Array Format" with a `traceEvents` top-level key), loadable in
 * Perfetto or chrome://tracing. One track (thread) per machine unit:
 * the cycle-bucket overview, the IFU, IU1, IU2, the dynamic
 * translator, the tier engine and the interval sampler. Occupancy
 * samples additionally become Chrome counter series.
 * `scripts/trace_report.py --check` validates the schema.
 */

#ifndef UHM_OBS_TIMELINE_HH
#define UHM_OBS_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.hh"
#include "obs/trace.hh"

namespace uhm::obs
{

/** One reconstructed duration span ([start, end] in machine cycles). */
struct TimelineSpan
{
    uint64_t start = 0;
    uint64_t end = 0;
    /** DIR bit address of the event that closed the span. */
    uint64_t addr = 0;
    /** Kind-specific argument of that event. */
    uint64_t arg = 0;
    EventKind kind = EventKind::Fetch;

    uint64_t duration() const { return end - start; }
};

/**
 * The machine unit whose track @p kind renders on: "ifu" (fetch),
 * "iu1" (decode), "iu2" (dispatch / DTB), "translator" (trap,
 * translate, DTB allocation, flushes), "tier" (recording, tier-2
 * compilation, trace dispatch), "sampler" or "sched" (tenant slices
 * and switches). Total and stable: every EventKind has a track.
 */
const char *eventKindTrack(EventKind kind);

/** Stable Chrome tid of @p kind's track (the overview track is 0). */
int eventKindTrackId(EventKind kind);

/**
 * Display label of the serve verb index packed into a ServeEnqueue
 * arg's low byte ("run", "metrics", ...; "?" when out of range).
 * Mirrors serve::verbName() by enum value — obs cannot link against
 * serve, so tests/serve_test.cc checks the two tables agree.
 */
const char *serveVerbLabel(uint64_t verb);

/**
 * Reconstruct duration spans from a cycle-ordered event stream: span i
 * runs from the previous event's stamp to event i's stamp and carries
 * event i's kind/addr/arg. The first event opens at its own stamp (a
 * ring that dropped its prefix has no earlier boundary to anchor on).
 */
std::vector<TimelineSpan>
buildTimelineSpans(const std::vector<Event> &events);

/**
 * Render @p profile as one Chrome trace-event JSON document:
 * process/thread metadata, one overview span per cycle bucket, one
 * complete ("ph":"X") event per reconstructed span, async ("ph":"b"/
 * "e", cat "serve.request") per-request span trees stitched from the
 * serve-track events by request id (enqueue -> wait -> acquire ->
 * slices -> reply), and counter ("ph":"C") series from the occupancy
 * samples. Timestamps are the machine cycle counter (server
 * microseconds on the serve track), written as trace microseconds.
 * `otherData` carries the profile meta and the events seen/dropped
 * totals, so a truncated timeline is detectable from the file alone.
 */
std::string toChromeTrace(const ProfileData &profile);

} // namespace uhm::obs

#endif // UHM_OBS_TIMELINE_HH
