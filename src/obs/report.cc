#include "obs/report.hh"

#include "support/json.hh"

namespace uhm::obs
{

namespace
{

void
writeEvent(JsonWriter &jw, const Event &e)
{
    jw.beginObject();
    jw.key("type").value("event");
    jw.key("cycle").value(e.cycle);
    jw.key("kind").value(eventKindName(e.kind));
    jw.key("addr").value(e.addr);
    jw.key("arg").value(e.arg);
    jw.endObject();
}

void
writeMeta(JsonWriter &jw, const ProfileData &p)
{
    jw.key("type").value("meta");
    for (const auto &kv : p.meta)
        jw.key(kv.first).value(kv.second);
}

void
writePhases(JsonWriter &jw, const ProfileData &p)
{
    jw.key("type").value("phases");
    for (const auto &kv : p.phases)
        jw.key(kv.first).value(kv.second);
}

void
writeCounters(JsonWriter &jw, const ProfileData &p)
{
    jw.key("type").value("counters");
    for (const auto &kv : p.counters)
        jw.key(kv.first).value(kv.second);
}

void
writeHistograms(JsonWriter &jw, const ProfileData &p)
{
    jw.key("type").value("histograms");
    for (const auto &kv : p.histograms) {
        jw.key(kv.first);
        kv.second.writeJson(jw);
    }
}

void
writeRatios(JsonWriter &jw, const ProfileData &p)
{
    jw.key("type").value("ratios");
    for (const auto &kv : p.ratios)
        jw.key(kv.first).value(kv.second);
}

void
writeTraceSummary(JsonWriter &jw, const ProfileData &p)
{
    jw.key("type").value("trace_summary");
    jw.key("retained").value(static_cast<uint64_t>(p.events.size()));
    jw.key("seen").value(p.eventsSeen);
    jw.key("dropped").value(p.eventsDropped);
}

} // anonymous namespace

std::string
toJsonl(const ProfileData &profile)
{
    std::string out;
    auto line = [&out](auto &&fill) {
        JsonWriter jw;
        jw.beginObject();
        fill(jw);
        jw.endObject();
        out += jw.str();
        out += '\n';
    };
    line([&](JsonWriter &jw) { writeMeta(jw, profile); });
    line([&](JsonWriter &jw) { writePhases(jw, profile); });
    line([&](JsonWriter &jw) { writeCounters(jw, profile); });
    line([&](JsonWriter &jw) { writeHistograms(jw, profile); });
    line([&](JsonWriter &jw) { writeRatios(jw, profile); });
    line([&](JsonWriter &jw) { writeTraceSummary(jw, profile); });
    for (const OccupancySample &s : profile.samples) {
        line([&](JsonWriter &jw) {
            jw.key("type").value("sample");
            writeSampleFields(jw, s);
        });
    }
    out += eventsToJsonl(profile.events);
    return out;
}

void
writeJson(JsonWriter &jw, const ProfileData &profile)
{
    jw.beginObject();
    jw.key("meta").beginObject();
    for (const auto &kv : profile.meta)
        jw.key(kv.first).value(kv.second);
    jw.endObject();
    jw.key("phases").beginObject();
    for (const auto &kv : profile.phases)
        jw.key(kv.first).value(kv.second);
    jw.endObject();
    jw.key("counters").beginObject();
    for (const auto &kv : profile.counters)
        jw.key(kv.first).value(kv.second);
    jw.endObject();
    jw.key("histograms").beginObject();
    for (const auto &kv : profile.histograms) {
        jw.key(kv.first);
        kv.second.writeJson(jw);
    }
    jw.endObject();
    jw.key("ratios").beginObject();
    for (const auto &kv : profile.ratios)
        jw.key(kv.first).value(kv.second);
    jw.endObject();
    jw.key("samples_taken").value(
        static_cast<uint64_t>(profile.samples.size()));
    jw.key("events_seen").value(profile.eventsSeen);
    jw.key("events_dropped").value(profile.eventsDropped);
    jw.endObject();
}

std::string
eventsToJsonl(const std::vector<Event> &events)
{
    std::string out;
    for (const Event &e : events) {
        JsonWriter jw;
        writeEvent(jw, e);
        out += jw.str();
        out += '\n';
    }
    return out;
}

void
writeSampleFields(JsonWriter &jw, const OccupancySample &sample)
{
    jw.key("cycle").value(sample.cycle);
    jw.key("dir_instrs").value(sample.dirInstrs);
    jw.key("dtb_hits_delta").value(sample.dtbHitsDelta);
    jw.key("dtb_misses_delta").value(sample.dtbMissesDelta);
    jw.key("trace_hits_delta").value(sample.traceHitsDelta);
    jw.key("trace_misses_delta").value(sample.traceMissesDelta);
    jw.key("dtb_occupancy").beginArray();
    for (uint32_t n : sample.dtbSetOccupancy)
        jw.value(uint64_t{n});
    jw.endArray();
    jw.key("trace_occupancy").beginArray();
    for (uint32_t n : sample.traceSetOccupancy)
        jw.value(uint64_t{n});
    jw.endArray();
}

} // namespace uhm::obs
