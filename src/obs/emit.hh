/**
 * @file
 * Report emission: one place that turns a ProfileData into bytes on a
 * sink.
 *
 * uhm_cli's --profile/--timeline flags, the uhm_serve daemon's
 * response payloads and its shutdown timeline all emit the same two
 * documents — the JSONL profile report (obs::toJsonl) and the Chrome
 * trace timeline (obs::toChromeTrace). This module owns the
 * render-then-write step so the emitters cannot drift: every consumer
 * gets its bytes from renderProfileJsonl()/renderChromeTrace(), and
 * the file-or-stream sink convention ("-" = the caller's fallback
 * stream, anything else = a file, fatal on open failure) is implemented
 * once.
 */

#ifndef UHM_OBS_EMIT_HH
#define UHM_OBS_EMIT_HH

#include <cstdio>
#include <string>

#include "obs/report.hh"

namespace uhm::obs
{

/**
 * The JSONL profile report for @p profile — the exact bytes
 * `uhm_cli --profile` writes and a `uhm_serve` profile response
 * carries as its payload. A thin, named alias of toJsonl() so callers
 * that must stay byte-identical share one entry point.
 */
std::string renderProfileJsonl(const ProfileData &profile);

/** The Chrome trace-event timeline document for @p profile. */
std::string renderChromeTrace(const ProfileData &profile);

/**
 * Write @p text to @p path; a path of "-" means @p dash_stream
 * instead. Fatal (exit-1 FatalError) when the file cannot be opened.
 */
void writeTextTo(const std::string &text, const std::string &path,
                 std::FILE *dash_stream);

/** renderProfileJsonl + writeTextTo. */
void emitProfileJsonl(const ProfileData &profile,
                      const std::string &path,
                      std::FILE *dash_stream = stderr);

/**
 * renderChromeTrace + writeTextTo + the "# timeline: N events -> path"
 * status note on stderr (the note is part of the CLI contract too).
 */
void emitChromeTrace(const ProfileData &profile,
                     const std::string &path);

} // namespace uhm::obs

#endif // UHM_OBS_EMIT_HH
