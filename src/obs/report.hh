/**
 * @file
 * Profile reports: the machine-readable sidecar of a run.
 *
 * A ProfileData bundles everything the section 7 analysis needs to be
 * checked from outside the process — per-phase cycle buckets, the full
 * counter snapshot, derived ratios (hit ratios, translation
 * amplification) and the retained event trace — and renders it either
 * as JSONL (one self-describing object per line: meta, phases,
 * counters, ratios, trace_summary, then events) or as a single JSON
 * object for embedding inside a larger export document. The JSONL form
 * is what `uhm_cli --profile` and the bench sidecars emit; its format
 * is documented in docs/INTERNALS.md.
 */

#ifndef UHM_OBS_REPORT_HH
#define UHM_OBS_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hh"
#include "obs/trace.hh"

namespace uhm
{
class JsonWriter;
}

namespace uhm::obs
{

/**
 * One interval-sampler observation: translation-buffer state captured
 * when the machine's cycle counter crossed a sampling boundary
 * (MachineConfig::sampleIntervalCycles). The per-set occupancy vectors
 * are heatmap columns — one sample per column, one set per row — and
 * the hit/miss deltas are the traffic since the previous sample.
 */
struct OccupancySample
{
    /** Cycle count when the sample was taken. */
    uint64_t cycle = 0;
    /** DIR instructions retired so far. */
    uint64_t dirInstrs = 0;
    /** DTB hits/misses since the previous sample. */
    uint64_t dtbHitsDelta = 0;
    uint64_t dtbMissesDelta = 0;
    /** Trace-cache hits/misses since the previous sample (Tiered). */
    uint64_t traceHitsDelta = 0;
    uint64_t traceMissesDelta = 0;
    /** Valid entries per DTB set (empty when no DTB). */
    std::vector<uint32_t> dtbSetOccupancy;
    /** Valid entries per trace-cache set (empty when no tier). */
    std::vector<uint32_t> traceSetOccupancy;

    bool operator==(const OccupancySample &) const = default;
};

/** Everything one profile report contains, in emission order. */
struct ProfileData
{
    /** Free-form identification: program, machine kind, encoding, ... */
    std::vector<std::pair<std::string, std::string>> meta;
    /** Cycle buckets (fetch, decode, ..., total), in display order. */
    std::vector<std::pair<std::string, uint64_t>> phases;
    /** Hierarchical counter snapshot ("dtb.hits" -> 12). */
    std::map<std::string, uint64_t> counters;
    /** Histogram snapshots ("translate.latency_cycles" -> ...). */
    std::map<std::string, HistogramSnapshot> histograms;
    /** Derived ratios (hit ratios, amplification), in display order. */
    std::vector<std::pair<std::string, double>> ratios;
    /** Interval-sampler time series (empty when sampling was off). */
    std::vector<OccupancySample> samples;
    /** Retained events (may be empty when tracing was off). */
    std::vector<Event> events;
    /** Events recorded in total, including dropped ones. */
    uint64_t eventsSeen = 0;
    /** Events lost to ring overwrite. */
    uint64_t eventsDropped = 0;
};

/**
 * Render @p profile as JSONL: one "\n"-terminated JSON object per line,
 * typed via a "type" member. Event lines come last, oldest first.
 */
std::string toJsonl(const ProfileData &profile);

/**
 * Emit @p profile as one JSON object (no events, only their summary)
 * into an in-progress @p jw document.
 */
void writeJson(JsonWriter &jw, const ProfileData &profile);

/** Render @p events alone as JSONL event lines. */
std::string eventsToJsonl(const std::vector<Event> &events);

/**
 * Emit one sample as a JSON object (sans the "type" discriminator —
 * the caller sets that, so uhm_cli profiles and sweep reports can
 * share the field layout under different line types).
 */
void writeSampleFields(JsonWriter &jw, const OccupancySample &sample);

} // namespace uhm::obs

#endif // UHM_OBS_REPORT_HH
