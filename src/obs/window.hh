/**
 * @file
 * Rolling-window aggregation over counters and histograms.
 *
 * The lifetime counters answer "what happened since the daemon
 * started"; a live monitor needs "what is happening *now*". A
 * RollingWindow keeps the recent past in a ring of fixed-width time
 * buckets: each record lands in the bucket covering its timestamp,
 * buckets older than the window are cleared as time advances, and a
 * snapshot merges the live buckets into one counter map plus one
 * HistogramSnapshot per series.
 *
 * Two properties matter for the serving stack:
 *
 *  - Time advances only on record(). snapshot() is a pure read of
 *    frozen state, so a quiesced daemon answers every monitoring query
 *    with identical bytes no matter when, or how concurrently, it is
 *    asked — the byte-identity contract of the `metrics` verb.
 *  - Merging is per-bucket addition (HistogramSnapshot::merge), so a
 *    snapshot depends only on what was recorded, never on scheduling.
 *
 * The class is externally synchronized: the server calls it under its
 * stats mutex, exactly like the lifetime histograms next to it.
 *
 * histogramPercentile() is the shared quantile extractor over the
 * log2-bucketed HistogramSnapshot: the `metrics` verb, the watch
 * client and bench_serve all report percentiles through it, so a value
 * computed independently from a `stats` histogram matches the served
 * one exactly.
 */

#ifndef UHM_OBS_WINDOW_HH
#define UHM_OBS_WINDOW_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hh"

namespace uhm::obs
{

/**
 * Quantile @p q (0..1) of @p snap under the log2-bucket model:
 * nearest-rank selection of the bucket, then linear placement of the
 * rank's observation across the bucket's clamped [low, high] range
 * (clamped by the snapshot's global min/max, so a single-valued fill
 * reports that value exactly for every quantile). A lone observation
 * in a bucket reports the clamped bucket low. Returns 0.0 on an empty
 * snapshot.
 */
double histogramPercentile(const HistogramSnapshot &snap, double q);

/** One merged view of the window (plain data). */
struct WindowSnapshot
{
    /** Nominal window width in microseconds. */
    uint64_t windowUs = 0;
    /** Time actually covered by live buckets (<= windowUs). */
    uint64_t spanUs = 0;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Counter by name (0 when absent). */
    uint64_t counter(const std::string &name) const;
};

/** Ring of time buckets over named counters and histograms. */
class RollingWindow
{
  public:
    /**
     * @param window_us  window width (min 1 us)
     * @param buckets    ring granularity: the window is covered by this
     *                   many equal buckets (min 1), so expiry happens
     *                   in window/buckets steps rather than all at once
     */
    explicit RollingWindow(uint64_t window_us, size_t buckets = 16);

    /** Add @p delta to counter @p name at time @p now_us. */
    void count(const std::string &name, uint64_t now_us,
               uint64_t delta = 1);

    /** Record @p value into histogram @p name at time @p now_us. */
    void record(const std::string &name, uint64_t now_us,
                uint64_t value);

    /**
     * Merge the live buckets, oldest first. Pure: does not advance
     * time, so repeated snapshots of an idle window are identical.
     */
    WindowSnapshot snapshot() const;

    /** Forget everything (the window restarts at the next record). */
    void reset();

    uint64_t windowUs() const { return windowUs_; }
    uint64_t bucketUs() const { return bucketUs_; }

  private:
    struct Bucket
    {
        /** Absolute bucket index (start time / bucketUs_); ~0 = free. */
        uint64_t index = unusedIndex;
        std::map<std::string, uint64_t> counters;
        std::map<std::string, Histogram> histograms;
    };

    static constexpr uint64_t unusedIndex = ~uint64_t{0};

    /** The ring bucket covering @p now_us, expiring stale slots. */
    Bucket &bucketFor(uint64_t now_us);

    uint64_t windowUs_;
    uint64_t bucketUs_;
    /** Largest absolute bucket index any record has reached. */
    uint64_t latest_ = 0;
    std::vector<Bucket> ring_;
};

} // namespace uhm::obs

#endif // UHM_OBS_WINDOW_HH
