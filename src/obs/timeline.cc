#include "obs/timeline.hh"

#include "support/json.hh"

namespace uhm::obs
{

namespace
{

/** Chrome pid all tracks live under (one simulated machine). */
constexpr int tracePid = 1;

/** tid of the cycle-bucket overview track. */
constexpr int overviewTid = 0;

/** Track names indexed by tid (overview first). */
constexpr const char *trackNames[] = {
    "cycle buckets", "ifu", "iu1", "iu2", "translator", "tier",
    "sampler", "sched", "serve",
};
constexpr int numTracks =
    static_cast<int>(sizeof(trackNames) / sizeof(trackNames[0]));

/** Common prologue of one trace event object. */
void
beginTraceEvent(JsonWriter &jw, const char *name, const char *ph,
                uint64_t ts, int tid)
{
    jw.beginObject();
    jw.key("name").value(name);
    jw.key("ph").value(ph);
    jw.key("ts").value(ts);
    jw.key("pid").value(tracePid);
    jw.key("tid").value(tid);
}

void
writeMetadataEvents(JsonWriter &jw, const ProfileData &profile)
{
    std::string process = "uhm";
    for (const auto &kv : profile.meta) {
        if (kv.first == "program" || kv.first == "machine")
            process += " " + kv.second;
    }
    beginTraceEvent(jw, "process_name", "M", 0, overviewTid);
    jw.key("args").beginObject();
    jw.key("name").value(process);
    jw.endObject();
    jw.endObject();

    for (int tid = 0; tid < numTracks; ++tid) {
        beginTraceEvent(jw, "thread_name", "M", 0, tid);
        jw.key("args").beginObject();
        jw.key("name").value(trackNames[tid]);
        jw.endObject();
        jw.endObject();
    }
}

/**
 * The overview track: one span per cycle bucket, laid end to end in
 * phase order, so the top lane reads as a stacked where-did-the-run-go
 * bar. The "total" entry is the sum of the others and is skipped.
 */
void
writeBucketSpans(JsonWriter &jw, const ProfileData &profile)
{
    uint64_t at = 0;
    for (const auto &kv : profile.phases) {
        if (kv.first == "total")
            continue;
        beginTraceEvent(jw, kv.first.c_str(), "X", at, overviewTid);
        jw.key("dur").value(kv.second);
        jw.key("args").beginObject();
        jw.key("bucket_cycles").value(kv.second);
        jw.endObject();
        jw.endObject();
        at += kv.second;
    }
}

void
writeSpanEvents(JsonWriter &jw, const std::vector<TimelineSpan> &spans)
{
    for (const TimelineSpan &span : spans) {
        beginTraceEvent(jw, eventKindName(span.kind), "X", span.start,
                        eventKindTrackId(span.kind));
        jw.key("cat").value(eventKindTrack(span.kind));
        jw.key("dur").value(span.duration());
        jw.key("args").beginObject();
        jw.key("addr").value(span.addr);
        jw.key("arg").value(span.arg);
        jw.endObject();
        jw.endObject();
    }
}

/** One Chrome counter sample: {"name":..,"ph":"C","ts":..,args}. */
void
writeCounterSample(JsonWriter &jw, const char *name, uint64_t ts,
                   uint64_t value)
{
    beginTraceEvent(jw, name, "C", ts, overviewTid);
    jw.key("args").beginObject();
    jw.key("value").value(value);
    jw.endObject();
    jw.endObject();
}

void
writeSampleCounters(JsonWriter &jw, const ProfileData &profile)
{
    for (const OccupancySample &s : profile.samples) {
        uint64_t dtb_resident = 0;
        for (uint32_t n : s.dtbSetOccupancy)
            dtb_resident += n;
        writeCounterSample(jw, "dtb_resident_entries", s.cycle,
                           dtb_resident);
        writeCounterSample(jw, "dtb_hits_delta", s.cycle,
                           s.dtbHitsDelta);
        writeCounterSample(jw, "dtb_misses_delta", s.cycle,
                           s.dtbMissesDelta);
        if (!s.traceSetOccupancy.empty()) {
            uint64_t trace_resident = 0;
            for (uint32_t n : s.traceSetOccupancy)
                trace_resident += n;
            writeCounterSample(jw, "trace_resident_entries", s.cycle,
                               trace_resident);
        }
    }
}

} // anonymous namespace

const char *
eventKindTrack(EventKind kind)
{
    return trackNames[eventKindTrackId(kind)];
}

int
eventKindTrackId(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch:
        return 1; // ifu
      case EventKind::Decode:
        return 2; // iu1
      case EventKind::DtbHit:
      case EventKind::DtbMiss:
      case EventKind::Promote:
        return 3; // iu2
      case EventKind::Trap:
      case EventKind::Translate:
      case EventKind::DtbEvict:
      case EventKind::DtbReject:
      case EventKind::DtbFlush:
        return 4; // translator
      case EventKind::TraceRecord:
      case EventKind::TraceAbort:
      case EventKind::Translate2:
      case EventKind::TraceEnter:
      case EventKind::TraceExit:
      case EventKind::TraceEvict:
      case EventKind::TraceInvalidate:
        return 5; // tier
      case EventKind::Sample:
        return 6; // sampler
      case EventKind::SchedSlice:
      case EventKind::SchedSwitch:
        return 7; // sched
      case EventKind::ServeEnqueue:
      case EventKind::ServeBegin:
      case EventKind::ServeDone:
      case EventKind::ServeReject:
        return 8; // serve
    }
    return overviewTid;
}

std::vector<TimelineSpan>
buildTimelineSpans(const std::vector<Event> &events)
{
    std::vector<TimelineSpan> spans;
    spans.reserve(events.size());
    uint64_t prev = events.empty() ? 0 : events.front().cycle;
    for (const Event &e : events) {
        TimelineSpan span;
        // A merged or corrupted stream could run backwards; clamp so
        // durations never underflow.
        span.start = prev <= e.cycle ? prev : e.cycle;
        span.end = e.cycle;
        span.addr = e.addr;
        span.arg = e.arg;
        span.kind = e.kind;
        spans.push_back(span);
        prev = e.cycle;
    }
    return spans;
}

std::string
toChromeTrace(const ProfileData &profile)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("traceEvents").beginArray();
    writeMetadataEvents(jw, profile);
    writeBucketSpans(jw, profile);
    writeSpanEvents(jw, buildTimelineSpans(profile.events));
    writeSampleCounters(jw, profile);
    jw.endArray();
    jw.key("displayTimeUnit").value("ms");
    jw.key("otherData").beginObject();
    for (const auto &kv : profile.meta)
        jw.key(kv.first).value(kv.second);
    jw.key("events_seen").value(profile.eventsSeen);
    jw.key("events_dropped").value(profile.eventsDropped);
    jw.key("complete").value(profile.eventsDropped == 0);
    jw.endObject();
    jw.endObject();
    return jw.str();
}

} // namespace uhm::obs
