#include "obs/timeline.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "support/json.hh"

namespace uhm::obs
{

namespace
{

/** Chrome pid all tracks live under (one simulated machine). */
constexpr int tracePid = 1;

/** tid of the cycle-bucket overview track. */
constexpr int overviewTid = 0;

/** Track names indexed by tid (overview first). */
constexpr const char *trackNames[] = {
    "cycle buckets", "ifu", "iu1", "iu2", "translator", "tier",
    "sampler", "sched", "serve",
};
constexpr int numTracks =
    static_cast<int>(sizeof(trackNames) / sizeof(trackNames[0]));

/** Common prologue of one trace event object. */
void
beginTraceEvent(JsonWriter &jw, const char *name, const char *ph,
                uint64_t ts, int tid)
{
    jw.beginObject();
    jw.key("name").value(name);
    jw.key("ph").value(ph);
    jw.key("ts").value(ts);
    jw.key("pid").value(tracePid);
    jw.key("tid").value(tid);
}

void
writeMetadataEvents(JsonWriter &jw, const ProfileData &profile)
{
    std::string process = "uhm";
    for (const auto &kv : profile.meta) {
        if (kv.first == "program" || kv.first == "machine")
            process += " " + kv.second;
    }
    beginTraceEvent(jw, "process_name", "M", 0, overviewTid);
    jw.key("args").beginObject();
    jw.key("name").value(process);
    jw.endObject();
    jw.endObject();

    for (int tid = 0; tid < numTracks; ++tid) {
        beginTraceEvent(jw, "thread_name", "M", 0, tid);
        jw.key("args").beginObject();
        jw.key("name").value(trackNames[tid]);
        jw.endObject();
        jw.endObject();
    }
}

/**
 * The overview track: one span per cycle bucket, laid end to end in
 * phase order, so the top lane reads as a stacked where-did-the-run-go
 * bar. The "total" entry is the sum of the others and is skipped.
 */
void
writeBucketSpans(JsonWriter &jw, const ProfileData &profile)
{
    uint64_t at = 0;
    for (const auto &kv : profile.phases) {
        if (kv.first == "total")
            continue;
        beginTraceEvent(jw, kv.first.c_str(), "X", at, overviewTid);
        jw.key("dur").value(kv.second);
        jw.key("args").beginObject();
        jw.key("bucket_cycles").value(kv.second);
        jw.endObject();
        jw.endObject();
        at += kv.second;
    }
}

void
writeSpanEvents(JsonWriter &jw, const std::vector<TimelineSpan> &spans)
{
    for (const TimelineSpan &span : spans) {
        beginTraceEvent(jw, eventKindName(span.kind), "X", span.start,
                        eventKindTrackId(span.kind));
        jw.key("cat").value(eventKindTrack(span.kind));
        jw.key("dur").value(span.duration());
        jw.key("args").beginObject();
        jw.key("addr").value(span.addr);
        jw.key("arg").value(span.arg);
        jw.endObject();
        jw.endObject();
    }
}

/** One Chrome counter sample: {"name":..,"ph":"C","ts":..,args}. */
void
writeCounterSample(JsonWriter &jw, const char *name, uint64_t ts,
                   uint64_t value)
{
    beginTraceEvent(jw, name, "C", ts, overviewTid);
    jw.key("args").beginObject();
    jw.key("value").value(value);
    jw.endObject();
    jw.endObject();
}

void
writeSampleCounters(JsonWriter &jw, const ProfileData &profile)
{
    for (const OccupancySample &s : profile.samples) {
        uint64_t dtb_resident = 0;
        for (uint32_t n : s.dtbSetOccupancy)
            dtb_resident += n;
        writeCounterSample(jw, "dtb_resident_entries", s.cycle,
                           dtb_resident);
        writeCounterSample(jw, "dtb_hits_delta", s.cycle,
                           s.dtbHitsDelta);
        writeCounterSample(jw, "dtb_misses_delta", s.cycle,
                           s.dtbMissesDelta);
        if (!s.traceSetOccupancy.empty()) {
            uint64_t trace_resident = 0;
            for (uint32_t n : s.traceSetOccupancy)
                trace_resident += n;
            writeCounterSample(jw, "trace_resident_entries", s.cycle,
                               trace_resident);
        }
    }
}

/**
 * Group the serve-track events by request id and emit one Chrome
 * *async* event tree ("ph":"b"/"e", cat "serve.request", id = the rid)
 * per completed request: an outer `request` span from enqueue to done
 * enclosing `wait` (enqueue -> first dispatch), `acquire` (dispatch ->
 * session resolved), one `slice` per runSlice() call and a final
 * `reply`. Only requests whose enqueue *and* done survived the ring
 * are stitched — a tree with a missing edge would lie about latency.
 * The flat per-event spans stay as-is; the trees ride on top.
 */
void
writeServeRequestTrees(JsonWriter &jw, const std::vector<Event> &events)
{
    struct RequestEvents
    {
        const Event *enqueue = nullptr;
        const Event *begin = nullptr;
        const Event *acquire = nullptr;
        const Event *done = nullptr;
        std::vector<const Event *> slices;
    };
    std::map<uint64_t, RequestEvents> byRid;
    for (const Event &e : events) {
        switch (e.kind) {
          case EventKind::ServeEnqueue: byRid[e.addr].enqueue = &e; break;
          case EventKind::ServeBegin:   byRid[e.addr].begin = &e;   break;
          case EventKind::ServeAcquire: byRid[e.addr].acquire = &e; break;
          case EventKind::ServeDone:    byRid[e.addr].done = &e;    break;
          case EventKind::ServeSlice:
            byRid[e.addr].slices.push_back(&e);
            break;
          default:
            break;
        }
    }

    const int serveTid = eventKindTrackId(EventKind::ServeEnqueue);
    for (const auto &[rid, r] : byRid) {
        if (r.enqueue == nullptr || r.done == nullptr)
            continue;
        char id[24];
        std::snprintf(id, sizeof(id), "%llu",
                      static_cast<unsigned long long>(rid));
        auto async = [&](const char *name, const char *ph, uint64_t ts) {
            beginTraceEvent(jw, name, ph, ts, serveTid);
            jw.key("cat").value("serve.request");
            jw.key("id").value(id);
        };

        async("request", "b", r.enqueue->cycle);
        jw.key("args").beginObject();
        jw.key("rid").value(rid);
        jw.key("verb").value(serveVerbLabel(r.enqueue->arg & 0xFF));
        jw.key("queue_depth").value(r.enqueue->arg >> 8);
        jw.endObject();
        jw.endObject();

        uint64_t last = r.enqueue->cycle;
        if (r.begin != nullptr) {
            async("wait", "b", r.enqueue->cycle);
            jw.key("args").beginObject();
            jw.key("wait_us").value(r.begin->arg);
            jw.endObject();
            jw.endObject();
            async("wait", "e", r.begin->cycle);
            jw.endObject();
            last = r.begin->cycle;
        }
        if (r.acquire != nullptr) {
            async("acquire", "b", last);
            jw.key("args").beginObject();
            char session[24];
            std::snprintf(session, sizeof(session), "%015llx",
                          static_cast<unsigned long long>(
                              r.acquire->arg >> 1));
            jw.key("session").value(session);
            jw.key("cached").value((r.acquire->arg & 1) != 0);
            jw.endObject();
            jw.endObject();
            async("acquire", "e", r.acquire->cycle);
            jw.endObject();
            last = r.acquire->cycle;
        }
        for (const Event *slice : r.slices) {
            uint64_t dur = slice->arg & 0xFFFFF;
            uint64_t start =
                slice->cycle >= dur ? slice->cycle - dur : 0;
            async("slice", "b", std::max(start, last));
            jw.key("args").beginObject();
            jw.key("cycles").value(slice->arg >> 20);
            jw.endObject();
            jw.endObject();
            async("slice", "e", slice->cycle);
            jw.endObject();
            last = slice->cycle;
        }
        uint64_t done = std::max(r.done->cycle, last);
        async("reply", "b", std::min(last, done));
        jw.key("args").beginObject();
        jw.key("service_us").value(r.done->arg);
        jw.endObject();
        jw.endObject();
        async("reply", "e", done);
        jw.endObject();

        async("request", "e", done);
        jw.endObject();
    }
}

} // anonymous namespace

const char *
serveVerbLabel(uint64_t verb)
{
    // Mirrors serve::verbName() by index; obs cannot depend on serve,
    // so serve_test cross-checks the two tables stay in lockstep.
    static constexpr const char *labels[] = {
        "ping", "compile", "encode", "run", "profile", "sweep",
        "stats", "shutdown", "metrics",
    };
    constexpr uint64_t n = sizeof(labels) / sizeof(labels[0]);
    return verb < n ? labels[verb] : "?";
}

const char *
eventKindTrack(EventKind kind)
{
    return trackNames[eventKindTrackId(kind)];
}

int
eventKindTrackId(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch:
        return 1; // ifu
      case EventKind::Decode:
        return 2; // iu1
      case EventKind::DtbHit:
      case EventKind::DtbMiss:
      case EventKind::Promote:
        return 3; // iu2
      case EventKind::Trap:
      case EventKind::Translate:
      case EventKind::DtbEvict:
      case EventKind::DtbReject:
      case EventKind::DtbFlush:
        return 4; // translator
      case EventKind::TraceRecord:
      case EventKind::TraceAbort:
      case EventKind::Translate2:
      case EventKind::TraceEnter:
      case EventKind::TraceExit:
      case EventKind::TraceEvict:
      case EventKind::TraceInvalidate:
        return 5; // tier
      case EventKind::Sample:
        return 6; // sampler
      case EventKind::SchedSlice:
      case EventKind::SchedSwitch:
        return 7; // sched
      case EventKind::ServeEnqueue:
      case EventKind::ServeBegin:
      case EventKind::ServeDone:
      case EventKind::ServeReject:
      case EventKind::ServeAcquire:
      case EventKind::ServeSlice:
        return 8; // serve
    }
    return overviewTid;
}

std::vector<TimelineSpan>
buildTimelineSpans(const std::vector<Event> &events)
{
    std::vector<TimelineSpan> spans;
    spans.reserve(events.size());
    uint64_t prev = events.empty() ? 0 : events.front().cycle;
    for (const Event &e : events) {
        TimelineSpan span;
        // A merged or corrupted stream could run backwards; clamp so
        // durations never underflow.
        span.start = prev <= e.cycle ? prev : e.cycle;
        span.end = e.cycle;
        span.addr = e.addr;
        span.arg = e.arg;
        span.kind = e.kind;
        spans.push_back(span);
        prev = e.cycle;
    }
    return spans;
}

std::string
toChromeTrace(const ProfileData &profile)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("traceEvents").beginArray();
    writeMetadataEvents(jw, profile);
    writeBucketSpans(jw, profile);
    writeSpanEvents(jw, buildTimelineSpans(profile.events));
    writeServeRequestTrees(jw, profile.events);
    writeSampleCounters(jw, profile);
    jw.endArray();
    jw.key("displayTimeUnit").value("ms");
    jw.key("otherData").beginObject();
    for (const auto &kv : profile.meta)
        jw.key(kv.first).value(kv.second);
    jw.key("events_seen").value(profile.eventsSeen);
    jw.key("events_dropped").value(profile.eventsDropped);
    jw.key("complete").value(profile.eventsDropped == 0);
    jw.endObject();
    jw.endObject();
    return jw.str();
}

} // namespace uhm::obs
