/**
 * @file
 * The counters registry: one namespace for every counter in a machine.
 *
 * Components (DTB, instruction cache, memory, the machine's execution
 * loops) own their obs::Counter members and register them here under
 * hierarchical dotted names — "dtb.hits", "icache.misses",
 * "machine.dir_instrs" — so benches, the CLI's --profile mode and tests
 * read one uniform, machine-readable view of where the events went.
 * The registry holds non-owning pointers: reading it is always a live
 * snapshot, and registration happens once at construction time, never
 * on a hot path.
 */

#ifndef UHM_OBS_REGISTRY_HH
#define UHM_OBS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>

#include "obs/counter.hh"
#include "obs/histogram.hh"

namespace uhm
{
class JsonWriter;
}

namespace uhm::obs
{

/** Join a hierarchical prefix and a leaf name: "dtb" + "hits". */
std::string joinName(const std::string &prefix, const std::string &leaf);

/** A named, hierarchical view over externally-owned counters. */
class Registry
{
  public:
    /**
     * Publish @p counter under @p name. The counter must outlive the
     * registry. Registering two counters under one name is an internal
     * error (panics).
     */
    void add(const std::string &name, const Counter &counter);

    /** Current value of the counter named @p name; 0 if absent. */
    uint64_t get(const std::string &name) const;

    /** True if a counter is registered under @p name. */
    bool contains(const std::string &name) const;

    /** Number of registered counters. */
    size_t size() const { return counters_.size(); }

    /** Materialize every counter's current value, sorted by name. */
    std::map<std::string, uint64_t> snapshot() const;

    /**
     * Sum of every counter whose name starts with "<prefix>." (or
     * equals @p prefix): totals for a whole component.
     */
    uint64_t total(const std::string &prefix) const;

    /** Emit one flat JSON object: {"dtb.hits": 12, ...}. */
    void writeJson(JsonWriter &jw) const;

    // ---- histograms: registered alongside counters, same rules ------

    /**
     * Publish @p histogram under @p name (same lifetime and
     * uniqueness rules as add()). Counter and histogram namespaces
     * are separate sections of the report, but share the dotted
     * naming scheme.
     */
    void addHistogram(const std::string &name,
                      const Histogram &histogram);

    /** True if a histogram is registered under @p name. */
    bool containsHistogram(const std::string &name) const;

    /** The registered histogram, or null. */
    const Histogram *histogram(const std::string &name) const;

    /** Number of registered histograms. */
    size_t numHistograms() const { return histograms_.size(); }

    /** Materialize every histogram's value, sorted by name. */
    std::map<std::string, HistogramSnapshot> histogramSnapshot() const;

  private:
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Histogram *> histograms_;
};

} // namespace uhm::obs

#endif // UHM_OBS_REGISTRY_HH
