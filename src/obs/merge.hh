/**
 * @file
 * Deterministic merging of per-worker observability state.
 *
 * A parallel sweep gives every simulation point its own Machine and
 * therefore its own obs::Registry and obs::Tracer — nothing in the hot
 * path is shared, so there is nothing to contend on. The cost of that
 * isolation is aggregation: after the sweep, the per-point counter
 * snapshots and event streams must be folded into one view, and that
 * fold must be bit-identical regardless of thread count or completion
 * order.
 *
 * The rules that guarantee it (also in docs/INTERNALS.md):
 *
 *  1. merges run over *snapshots* (plain values), never live counters,
 *     so a merge can happen after the machines are gone;
 *  2. snapshots are accumulated in shard-index (sweep-point) order,
 *     never completion order — the caller iterates its result vector,
 *     which is index-addressed;
 *  3. counter merging is per-name addition over name-ordered maps, so
 *     the merged map's iteration order is the sorted-name order no
 *     matter how the inputs arrived;
 *  4. event-stream merging is a stable k-way merge on the cycle stamp
 *     with ties broken by shard index, then in-shard order.
 */

#ifndef UHM_OBS_MERGE_HH
#define UHM_OBS_MERGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "obs/trace.hh"

namespace uhm
{
class JsonWriter;
}

namespace uhm::obs
{

class Registry;

/** Add every counter of @p from into @p into (absent names appear). */
void mergeCounterSnapshots(std::map<std::string, uint64_t> &into,
                           const std::map<std::string, uint64_t> &from);

/**
 * Accumulator for per-worker/per-point counter snapshots. Feed it
 * snapshots in sweep-point order; the merged view is then independent
 * of which worker produced which snapshot when.
 */
class MergedCounters
{
  public:
    /** Fold one end-of-run snapshot into the aggregate. */
    void accumulate(const std::map<std::string, uint64_t> &snapshot);

    /** Fold a live registry's current values into the aggregate. */
    void accumulate(const Registry &registry);

    /** Snapshots folded in so far. */
    uint64_t shards() const { return shards_; }

    /** Merged value of @p name; 0 if never seen. */
    uint64_t get(const std::string &name) const;

    /** The merged snapshot, name-ordered. */
    const std::map<std::string, uint64_t> &values() const
    {
        return values_;
    }

    /** Emit one flat JSON object: {"dtb.hits": 12, ...}. */
    void writeJson(JsonWriter &jw) const;

  private:
    std::map<std::string, uint64_t> values_;
    uint64_t shards_ = 0;
};

/** Fold every histogram of @p from into @p into (absent names appear). */
void mergeHistogramSnapshots(
    std::map<std::string, HistogramSnapshot> &into,
    const std::map<std::string, HistogramSnapshot> &from);

/**
 * Accumulator for per-point histogram snapshots, the histogram twin of
 * MergedCounters. Histogram merging is per-bucket addition plus
 * min/max folds — commutative and associative — but feed snapshots in
 * sweep-point order anyway so every aggregate in a report obeys the
 * same rule.
 */
class MergedHistograms
{
  public:
    /** Fold one end-of-run histogram snapshot map into the aggregate. */
    void accumulate(
        const std::map<std::string, HistogramSnapshot> &snapshot);

    /** Snapshot maps folded in so far. */
    uint64_t shards() const { return shards_; }

    /** The merged snapshot of @p name (empty if never seen). */
    HistogramSnapshot get(const std::string &name) const;

    /** The merged snapshots, name-ordered. */
    const std::map<std::string, HistogramSnapshot> &values() const
    {
        return values_;
    }

    /** Emit {"name": {histogram object}, ...}. */
    void writeJson(JsonWriter &jw) const;

  private:
    std::map<std::string, HistogramSnapshot> values_;
    uint64_t shards_ = 0;
};

/**
 * Stable k-way merge of per-shard event streams into one stream
 * ordered by cycle stamp; equal stamps keep shard-index order, and
 * events within one shard keep their recorded order. The result is a
 * function of the shard *contents*, not of scheduling.
 */
std::vector<Event>
mergeEventStreams(const std::vector<std::vector<Event>> &shards);

} // namespace uhm::obs

#endif // UHM_OBS_MERGE_HH
