/**
 * @file
 * Typed event tracing over a bounded ring buffer.
 *
 * Counters say how often; the tracer says *when*. Each event is a fixed
 * 32-byte record — kind, the machine cycle at which it happened, the
 * DIR bit address involved and one kind-specific argument — recorded
 * into a preallocated ring. When the ring fills, the oldest events are
 * overwritten and counted as dropped, so tracing a long run costs a
 * bounded amount of memory and never reallocates on the hot path.
 * Recording into a disabled tracer is a single predictable branch.
 */

#ifndef UHM_OBS_TRACE_HH
#define UHM_OBS_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uhm::obs
{

/** What happened. The argument's meaning depends on the kind. */
enum class EventKind : uint8_t
{
    Fetch,     ///< DIR bits fetched; arg = level-2/cache word refs
    Decode,    ///< DIR instruction decoded; arg = decode cycles
    DtbHit,    ///< INTERP found the translation resident
    DtbMiss,   ///< INTERP missed in the DTB
    DtbEvict,  ///< a resident translation was replaced; addr = its tag
    DtbReject, ///< translation not retained; arg = units it needed
    Trap,      ///< DTRPOINT trap to the translator; arg = trap cycles
    Translate, ///< PSDER generated; arg = short instructions emitted
    Promote,   ///< translation copied into the first-level buffer (Dtb2)
    TraceRecord,     ///< tier recording started; addr = trace head
    TraceAbort,      ///< recording abandoned; addr = offending pc
    Translate2,      ///< trace compiled; addr = head, arg = short instrs
    TraceEnter,      ///< trace dispatched; addr = head, arg = DIR instrs/pass
    TraceExit,       ///< trace left; addr = exit pc, arg = iterations run
    TraceEvict,      ///< trace displaced from the trace cache; addr = head
    TraceInvalidate, ///< anchoring DTB entry evicted; addr = head
    Sample,          ///< occupancy sample taken; addr = sample index,
                     ///< arg = resident DTB entries
    DtbFlush,        ///< whole-DTB flush; arg = entries destroyed
    SchedSlice,      ///< tenant slice ended; addr = tenant id,
                     ///< arg = cycles consumed
    SchedSwitch,     ///< scheduler switched tenants; addr = tenant id
    // Serving events (src/serve). The server has no simulated clock, so
    // these are stamped with microseconds since server start instead of
    // machine cycles; the addr is always the server-assigned monotonic
    // request id (rid), which is what lets the timeline exporter stitch
    // one request's events into a single span tree.
    ServeEnqueue,    ///< request admitted;
                     ///< arg = (queue depth << 8) | verb index
    ServeBegin,      ///< first slice dispatched; arg = wait in us
    ServeDone,       ///< response written; arg = service time in us
    ServeReject,     ///< backpressure rejection; arg = requests in flight
    ServeAcquire,    ///< session resolved; arg = (session key hash << 1)
                     ///< | cache-hit bit
    ServeSlice,      ///< one runSlice() finished; arg = (cycles consumed
                     ///< << 20) | slice wall time in us (both saturating)
};

/** Number of distinct EventKind values. */
inline constexpr size_t numEventKinds =
    static_cast<size_t>(EventKind::ServeSlice) + 1;

/**
 * Every EventKind, in declaration order. The timeline exporter's
 * kind->track mapping and the exhaustiveness test iterate this; a new
 * kind that is not appended here fails ObsTracer.EventKindNames*.
 */
inline constexpr EventKind allEventKinds[numEventKinds] = {
    EventKind::Fetch,       EventKind::Decode,
    EventKind::DtbHit,      EventKind::DtbMiss,
    EventKind::DtbEvict,    EventKind::DtbReject,
    EventKind::Trap,        EventKind::Translate,
    EventKind::Promote,     EventKind::TraceRecord,
    EventKind::TraceAbort,  EventKind::Translate2,
    EventKind::TraceEnter,  EventKind::TraceExit,
    EventKind::TraceEvict,  EventKind::TraceInvalidate,
    EventKind::Sample,      EventKind::DtbFlush,
    EventKind::SchedSlice,  EventKind::SchedSwitch,
    EventKind::ServeEnqueue, EventKind::ServeBegin,
    EventKind::ServeDone,    EventKind::ServeReject,
    EventKind::ServeAcquire, EventKind::ServeSlice,
};

/** Stable lowercase name of @p kind ("dtb_miss"). */
const char *eventKindName(EventKind kind);

/** One trace record. */
struct Event
{
    uint64_t cycle = 0; ///< machine cycle counter at the event
    uint64_t addr = 0;  ///< DIR bit address involved
    uint64_t arg = 0;   ///< kind-specific argument
    EventKind kind = EventKind::Fetch;
};

/** Bounded ring-buffer event recorder. */
class Tracer
{
  public:
    /** Default ring capacity (events). */
    static constexpr size_t defaultCapacity = 65536;

    /** Start recording into a ring of @p capacity events. */
    void enable(size_t capacity = defaultCapacity);

    /** Stop recording and release the ring. */
    void disable();

    bool enabled() const { return enabled_; }

    /** Ring capacity in events (0 when disabled). */
    size_t capacity() const { return ring_.size(); }

    /** Record one event; a no-op (one branch) when disabled. */
    void
    record(EventKind kind, uint64_t cycle, uint64_t addr,
           uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        ring_[next_] = Event{cycle, addr, arg, kind};
        next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
        ++seen_;
    }

    /** Events recorded since enable()/clear(), including dropped ones. */
    uint64_t seen() const { return seen_; }

    /** Events overwritten because the ring filled. */
    uint64_t
    dropped() const
    {
        return seen_ > ring_.size() ? seen_ - ring_.size() : 0;
    }

    /** The retained events, oldest first. */
    std::vector<Event> events() const;

    /** Drop all recorded events, keeping the ring and enablement. */
    void clear();

  private:
    std::vector<Event> ring_;
    size_t next_ = 0;
    uint64_t seen_ = 0;
    bool enabled_ = false;
};

} // namespace uhm::obs

#endif // UHM_OBS_TRACE_HH
