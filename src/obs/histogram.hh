/**
 * @file
 * Log2-bucketed histogram metrics.
 *
 * Counters say how often; histograms say how *big*. A Histogram
 * accumulates uint64 observations into power-of-two buckets (bucket i
 * holds values whose bit width is i, so bucket 0 is exactly {0},
 * bucket 1 is {1}, bucket 2 is {2,3}, bucket 3 is {4..7}, ...), plus
 * exact count/sum/min/max. Recording is a handful of integer ops — no
 * floating point, no allocation — so the metric can stay enabled on
 * the translate/evict/compile paths unconditionally, like a Counter.
 *
 * The read side is a HistogramSnapshot: a plain value type with a
 * sparse bucket list, mergeable by pure addition (plus min/max folds),
 * which is what keeps parallel-sweep aggregation byte-identical for
 * any job count (see obs/merge.hh).
 */

#ifndef UHM_OBS_HISTOGRAM_HH
#define UHM_OBS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace uhm
{
class JsonWriter;
}

namespace uhm::obs
{

/** Bucket index of @p value: its bit width (0 for 0). */
constexpr unsigned
histogramBucketOf(uint64_t value)
{
    unsigned width = 0;
    while (value != 0) {
        ++width;
        value >>= 1;
    }
    return width;
}

/** Smallest value bucket @p bucket holds (0, 1, 2, 4, 8, ...). */
constexpr uint64_t
histogramBucketLow(unsigned bucket)
{
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
}

/** Largest value bucket @p bucket holds (0, 1, 3, 7, 15, ...). */
constexpr uint64_t
histogramBucketHigh(unsigned bucket)
{
    return bucket == 0 ? 0 :
        bucket >= 64 ? ~uint64_t{0} : (uint64_t{1} << bucket) - 1;
}

/**
 * End-of-run value of one histogram: exact count/sum/min/max plus the
 * sparse (bucket, count) list, bucket-ordered. Plain data — merging
 * two snapshots is per-bucket addition, so the result depends only on
 * the inputs, never on scheduling.
 */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t sum = 0;
    /** Smallest observation (meaningful when count > 0). */
    uint64_t min = 0;
    /** Largest observation (meaningful when count > 0). */
    uint64_t max = 0;
    /** (bucket index, observations) for every non-empty bucket. */
    std::vector<std::pair<unsigned, uint64_t>> buckets;

    bool operator==(const HistogramSnapshot &) const = default;

    /** Fold @p other in: counts add, min/max widen. */
    void merge(const HistogramSnapshot &other);

    /**
     * Emit as one JSON object:
     * {"count":..,"sum":..,"min":..,"max":..,"buckets":[[i,n],...]}.
     */
    void writeJson(JsonWriter &jw) const;
};

/** An owned log2 histogram; register it to publish it. */
class Histogram
{
  public:
    /** Number of buckets (bit widths 0..64). */
    static constexpr unsigned numBuckets = 65;

    /** Record one observation. */
    void
    record(uint64_t value)
    {
        ++buckets_[histogramBucketOf(value)];
        ++count_;
        sum_ += value;
        if (count_ == 1) {
            min_ = max_ = value;
        } else {
            if (value < min_)
                min_ = value;
            if (value > max_)
                max_ = value;
        }
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return min_; }
    uint64_t max() const { return max_; }

    /** Observations in bucket @p bucket. */
    uint64_t
    bucketCount(unsigned bucket) const
    {
        return bucket < numBuckets ? buckets_[bucket] : 0;
    }

    /** Mean observation; 0.0 when empty. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 :
            static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /** Materialize the sparse, mergeable value. */
    HistogramSnapshot snapshot() const;

    /** Forget every observation. */
    void reset();

  private:
    std::array<uint64_t, numBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace uhm::obs

#endif // UHM_OBS_HISTOGRAM_HH
