#include "obs/histogram.hh"

#include "support/json.hh"

namespace uhm::obs
{

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        if (other.min < min)
            min = other.min;
        if (other.max > max)
            max = other.max;
    }
    count += other.count;
    sum += other.sum;

    // Merge two bucket-ordered sparse lists by per-bucket addition.
    std::vector<std::pair<unsigned, uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    size_t a = 0, b = 0;
    while (a < buckets.size() || b < other.buckets.size()) {
        if (b == other.buckets.size() ||
            (a < buckets.size() &&
             buckets[a].first < other.buckets[b].first)) {
            merged.push_back(buckets[a++]);
        } else if (a == buckets.size() ||
                   other.buckets[b].first < buckets[a].first) {
            merged.push_back(other.buckets[b++]);
        } else {
            merged.emplace_back(buckets[a].first,
                                buckets[a].second +
                                    other.buckets[b].second);
            ++a;
            ++b;
        }
    }
    buckets = std::move(merged);
}

void
HistogramSnapshot::writeJson(JsonWriter &jw) const
{
    jw.beginObject();
    jw.key("count").value(count);
    jw.key("sum").value(sum);
    jw.key("min").value(min);
    jw.key("max").value(max);
    jw.key("buckets").beginArray();
    for (const auto &bc : buckets) {
        jw.beginArray();
        jw.value(uint64_t{bc.first});
        jw.value(bc.second);
        jw.endArray();
    }
    jw.endArray();
    jw.endObject();
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    for (unsigned b = 0; b < numBuckets; ++b) {
        if (buckets_[b] != 0)
            snap.buckets.emplace_back(b, buckets_[b]);
    }
    return snap;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

} // namespace uhm::obs
