#include "obs/emit.hh"

#include <fstream>

#include "obs/timeline.hh"
#include "support/logging.hh"

namespace uhm::obs
{

std::string
renderProfileJsonl(const ProfileData &profile)
{
    return toJsonl(profile);
}

std::string
renderChromeTrace(const ProfileData &profile)
{
    return toChromeTrace(profile);
}

void
writeTextTo(const std::string &text, const std::string &path,
            std::FILE *dash_stream)
{
    if (path == "-") {
        std::fputs(text.c_str(), dash_stream);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s'", path.c_str());
    out << text;
}

void
emitProfileJsonl(const ProfileData &profile, const std::string &path,
                 std::FILE *dash_stream)
{
    writeTextTo(renderProfileJsonl(profile), path, dash_stream);
}

void
emitChromeTrace(const ProfileData &profile, const std::string &path)
{
    writeTextTo(renderChromeTrace(profile), path, stderr);
    std::fprintf(stderr, "# timeline: %zu events -> %s\n",
                 profile.events.size(), path.c_str());
}

} // namespace uhm::obs
