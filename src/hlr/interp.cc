#include "hlr/interp.hh"

#include <deque>
#include <memory>
#include <optional>

#include "support/logging.hh"
#include "support/wrap.hh"

namespace uhm::hlr
{

namespace
{

/** A run-time value: scalar or array. */
struct Value
{
    int64_t scalar = 0;
    std::vector<int64_t> array;
    bool isArray = false;
};

/** One name binding inside an activation record. */
struct Binding
{
    std::string name;
    Value value;
    /** True for 'const' bindings (immutable, not readable-into). */
    bool isConst = false;
};

/** A procedure visible inside an activation record. */
struct ProcBinding
{
    std::string name;
    const ProcDecl *decl;
    /** Activation record that lexically encloses the declaration. */
    size_t defActivation;
};

/**
 * An activation record (contour). Records are kept in a vector and
 * linked by static (lexical) parent index; index 0 is the global
 * contour.
 */
struct Activation
{
    std::vector<Binding> vars;
    std::vector<ProcBinding> procs;
    /** Static link; SIZE_MAX for the outermost record. */
    size_t staticParent = SIZE_MAX;
};

/** Signals a 'return' unwinding, carrying the value for functions. */
struct ReturnSignal
{
    int64_t value;
    bool hasValue;
};

class HlrInterp
{
  public:
    HlrInterp(const AstProgram &ast, const std::vector<int64_t> &input,
              uint64_t max_steps)
        : ast_(ast), input_(input), maxSteps_(max_steps)
    {}

    HlrRunResult
    run()
    {
        // Global contour: the main block's variables and procedures.
        activations_.emplace_back();
        openBlock(ast_.main, 0, 0);
        for (const StmtPtr &stmt : ast_.main.body) {
            if (execStmt(*stmt, 0))
                break;
        }
        result_.stats.add("hlr_name_search_steps", searchSteps_);
        return std::move(result_);
    }

  private:
    /** Populate activation @p act with @p block's declarations. */
    void
    openBlock(const Block &block, size_t act, size_t def_act)
    {
        for (const ConstDecl &decl : block.consts) {
            Binding b;
            b.name = decl.name;
            b.value.scalar = decl.value;
            b.isConst = true;
            activations_[act].vars.push_back(std::move(b));
        }
        for (const VarDecl &var : block.vars) {
            Binding b;
            b.name = var.name;
            if (var.arraySize > 0) {
                b.value.isArray = true;
                b.value.array.assign(var.arraySize, 0);
            }
            activations_[act].vars.push_back(std::move(b));
        }
        for (const ProcDecl &proc : block.procs) {
            activations_[act].procs.push_back(
                {proc.name, &proc, def_act});
        }
    }

    /**
     * Associative lookup: search the name tables along the static chain,
     * counting comparisons.
     */
    Value *
    findVar(const std::string &name, size_t act)
    {
        for (size_t a = act; a != SIZE_MAX;
             a = activations_[a].staticParent) {
            for (Binding &b : activations_[a].vars) {
                ++searchSteps_;
                if (b.name == name)
                    return &b.value;
            }
        }
        return nullptr;
    }

    const ProcBinding *
    findProc(const std::string &name, size_t act)
    {
        for (size_t a = act; a != SIZE_MAX;
             a = activations_[a].staticParent) {
            for (const ProcBinding &p : activations_[a].procs) {
                ++searchSteps_;
                if (p.name == name)
                    return &p;
            }
        }
        return nullptr;
    }

    Value &
    requireVar(const std::string &name, size_t act, SourceLoc loc)
    {
        Value *v = findVar(name, act);
        if (!v)
            fatal("%s: undeclared name '%s'", loc.toString().c_str(),
                  name.c_str());
        return *v;
    }

    /** As requireVar, but rejects 'const' bindings (write targets). */
    Value &
    requireMutable(const std::string &name, size_t act, SourceLoc loc)
    {
        for (size_t a = act; a != SIZE_MAX;
             a = activations_[a].staticParent) {
            for (Binding &b : activations_[a].vars) {
                ++searchSteps_;
                if (b.name == name) {
                    if (b.isConst)
                        fatal("%s: constant '%s' cannot be assigned "
                              "or read into", loc.toString().c_str(),
                              name.c_str());
                    return b.value;
                }
            }
        }
        fatal("%s: undeclared name '%s'", loc.toString().c_str(),
              name.c_str());
    }

    void
    step(SourceLoc loc)
    {
        if (++steps_ > maxSteps_)
            fatal("%s: statement budget exhausted",
                  loc.toString().c_str());
        result_.stats.add("hlr_stmts");
    }

    int64_t
    callProc(const std::string &name, const std::vector<ExprPtr> &args,
             size_t act, SourceLoc loc, bool want_value)
    {
        const ProcBinding *pb = findProc(name, act);
        if (!pb)
            fatal("%s: undeclared procedure '%s'",
                  loc.toString().c_str(), name.c_str());
        const ProcDecl &decl = *pb->decl;
        if (want_value && !decl.isFunc)
            fatal("%s: '%s' does not return a value",
                  loc.toString().c_str(), name.c_str());
        if (args.size() != decl.params.size())
            fatal("%s: '%s' expects %zu argument(s), got %zu",
                  loc.toString().c_str(), name.c_str(),
                  decl.params.size(), args.size());

        std::vector<int64_t> arg_values;
        arg_values.reserve(args.size());
        for (const ExprPtr &arg : args)
            arg_values.push_back(evalExpr(*arg, act));

        size_t callee = activations_.size();
        activations_.emplace_back();
        activations_[callee].staticParent = pb->defActivation;
        for (size_t i = 0; i < decl.params.size(); ++i) {
            Binding b;
            b.name = decl.params[i];
            b.value.scalar = arg_values[i];
            activations_[callee].vars.push_back(std::move(b));
        }
        openBlock(*decl.block, callee, callee);

        int64_t ret = 0;
        for (const StmtPtr &stmt : decl.block->body) {
            if (auto sig = execStmtSig(*stmt, callee)) {
                if (sig->hasValue)
                    ret = sig->value;
                break;
            }
        }
        activations_.pop_back();
        return ret;
    }

    /** Execute @p stmt; true means a return/halt unwound through it. */
    bool
    execStmt(const Stmt &stmt, size_t act)
    {
        return execStmtSig(stmt, act).has_value();
    }

    std::optional<ReturnSignal>
    execStmtSig(const Stmt &stmt, size_t act)
    {
        step(stmt.loc);
        switch (stmt.kind) {
          case Stmt::Kind::Assign: {
            int64_t v = evalExpr(*stmt.exprs[0], act);
            Value &var = requireMutable(stmt.name, act, stmt.loc);
            if (stmt.exprs.size() > 1) {
                if (!var.isArray)
                    fatal("%s: '%s' is not an array",
                          stmt.loc.toString().c_str(), stmt.name.c_str());
                int64_t idx = evalExpr(*stmt.exprs[1], act);
                boundsCheck(var, idx, stmt.loc);
                var.array[idx] = v;
            } else {
                if (var.isArray)
                    fatal("%s: array '%s' needs an index",
                          stmt.loc.toString().c_str(), stmt.name.c_str());
                var.scalar = v;
            }
            return std::nullopt;
          }
          case Stmt::Kind::If: {
            const auto &branch = evalExpr(*stmt.exprs[0], act) != 0 ?
                stmt.body : stmt.elseBody;
            for (const StmtPtr &s : branch) {
                if (auto sig = execStmtSig(*s, act))
                    return sig;
            }
            return std::nullopt;
          }
          case Stmt::Kind::While: {
            while (evalExpr(*stmt.exprs[0], act) != 0) {
                for (const StmtPtr &s : stmt.body) {
                    if (auto sig = execStmtSig(*s, act))
                        return sig;
                }
                step(stmt.loc);
            }
            return std::nullopt;
          }
          case Stmt::Kind::For: {
            int64_t from = evalExpr(*stmt.exprs[0], act);
            {
                Value &var = requireMutable(stmt.name, act, stmt.loc);
                if (var.isArray)
                    fatal("%s: array '%s' cannot be a loop variable",
                          stmt.loc.toString().c_str(),
                          stmt.name.c_str());
                var.scalar = from;
            }
            for (;;) {
                // Match the compiled code's order exactly: the loop
                // variable is read *before* the bound is re-evaluated
                // (the bound expression may have side effects on it).
                int64_t cur =
                    requireMutable(stmt.name, act, stmt.loc).scalar;
                int64_t bound = evalExpr(*stmt.exprs[1], act);
                if (cur > bound)
                    break;
                for (const StmtPtr &s : stmt.body) {
                    if (auto sig = execStmtSig(*s, act))
                        return sig;
                }
                Value &again = requireMutable(stmt.name, act, stmt.loc);
                again.scalar = wrapAdd(again.scalar, 1);
                step(stmt.loc);
            }
            return std::nullopt;
          }
          case Stmt::Kind::Repeat: {
            do {
                for (const StmtPtr &s : stmt.body) {
                    if (auto sig = execStmtSig(*s, act))
                        return sig;
                }
                step(stmt.loc);
            } while (evalExpr(*stmt.exprs[0], act) == 0);
            return std::nullopt;
          }
          case Stmt::Kind::Call:
            callProc(stmt.name, stmt.exprs, act, stmt.loc, false);
            return std::nullopt;
          case Stmt::Kind::Write:
            result_.output.push_back(evalExpr(*stmt.exprs[0], act));
            return std::nullopt;
          case Stmt::Kind::Read: {
            int64_t v = 0;
            if (inputPos_ < input_.size())
                v = input_[inputPos_++];
            Value &var = requireMutable(stmt.name, act, stmt.loc);
            if (!stmt.exprs.empty()) {
                int64_t idx = evalExpr(*stmt.exprs[0], act);
                boundsCheck(var, idx, stmt.loc);
                var.array[idx] = v;
            } else {
                var.scalar = v;
            }
            return std::nullopt;
          }
          case Stmt::Kind::Return: {
            ReturnSignal sig{0, false};
            if (!stmt.exprs.empty()) {
                sig.value = evalExpr(*stmt.exprs[0], act);
                sig.hasValue = true;
            }
            return sig;
          }
        }
        panic("unhandled statement kind");
    }

    void
    boundsCheck(const Value &var, int64_t idx, SourceLoc loc)
    {
        if (!var.isArray || idx < 0 ||
            static_cast<size_t>(idx) >= var.array.size()) {
            fatal("%s: array index %lld out of bounds",
                  loc.toString().c_str(), static_cast<long long>(idx));
        }
    }

    int64_t
    evalExpr(const Expr &expr, size_t act)
    {
        result_.stats.add("hlr_exprs");
        switch (expr.kind) {
          case Expr::Kind::Number:
            return expr.value;
          case Expr::Kind::Var: {
            Value &v = requireVar(expr.name, act, expr.loc);
            if (v.isArray)
                fatal("%s: array '%s' needs an index",
                      expr.loc.toString().c_str(), expr.name.c_str());
            return v.scalar;
          }
          case Expr::Kind::Index: {
            Value &v = requireVar(expr.name, act, expr.loc);
            int64_t idx = evalExpr(*expr.kids[0], act);
            boundsCheck(v, idx, expr.loc);
            return v.array[idx];
          }
          case Expr::Kind::Call:
            return callProc(expr.name, expr.kids, act, expr.loc, true);
          case Expr::Kind::Unary: {
            int64_t v = evalExpr(*expr.kids[0], act);
            return expr.op == AstOp::Neg ? wrapNeg(v) : (v == 0 ? 1 : 0);
          }
          case Expr::Kind::Binary: {
            int64_t a = evalExpr(*expr.kids[0], act);
            int64_t b = evalExpr(*expr.kids[1], act);
            switch (expr.op) {
              case AstOp::Add: return wrapAdd(a, b);
              case AstOp::Sub: return wrapSub(a, b);
              case AstOp::Mul: return wrapMul(a, b);
              case AstOp::Div:
                if (b == 0)
                    fatal("%s: division by zero",
                          expr.loc.toString().c_str());
                return wrapDiv(a, b);
              case AstOp::Mod:
                if (b == 0)
                    fatal("%s: modulo by zero",
                          expr.loc.toString().c_str());
                return wrapMod(a, b);
              case AstOp::Eq:  return a == b;
              case AstOp::Ne:  return a != b;
              case AstOp::Lt:  return a < b;
              case AstOp::Le:  return a <= b;
              case AstOp::Gt:  return a > b;
              case AstOp::Ge:  return a >= b;
              case AstOp::And: return (a != 0 && b != 0) ? 1 : 0;
              case AstOp::Or:  return (a != 0 || b != 0) ? 1 : 0;
              default: panic("bad binary operator");
            }
          }
        }
        panic("unhandled expression kind");
    }

    const AstProgram &ast_;
    const std::vector<int64_t> &input_;
    size_t inputPos_ = 0;
    uint64_t maxSteps_;
    uint64_t steps_ = 0;
    uint64_t searchSteps_ = 0;
    std::deque<Activation> activations_;
    HlrRunResult result_;
};

} // anonymous namespace

HlrRunResult
interpretHlr(const AstProgram &ast, const std::vector<int64_t> &input,
             uint64_t max_steps)
{
    HlrInterp interp(ast, input, max_steps);
    return interp.run();
}

} // namespace uhm::hlr
