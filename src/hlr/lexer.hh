/**
 * @file
 * Lexer for the Contour language.
 */

#ifndef UHM_HLR_LEXER_HH
#define UHM_HLR_LEXER_HH

#include <string>
#include <vector>

#include "hlr/token.hh"

namespace uhm::hlr
{

/**
 * Turns source text into a token stream. Comments run from '#' to end of
 * line. Lexical errors raise FatalError with a source location.
 */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Lex the whole input; the last token is always EndOfFile. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek() const;
    char advance();
    bool atEnd() const { return pos_ >= src_.size(); }

    std::string src_;
    size_t pos_ = 0;
    SourceLoc loc_;
};

} // namespace uhm::hlr

#endif // UHM_HLR_LEXER_HH
