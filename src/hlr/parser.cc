#include "hlr/parser.hh"

#include <sstream>

#include "hlr/lexer.hh"
#include "support/logging.hh"

namespace uhm::hlr
{

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens))
{
    uhm_assert(!tokens_.empty() &&
               tokens_.back().kind == Tok::EndOfFile,
               "token stream must end with EndOfFile");
}

const Token &
Parser::peekAhead() const
{
    size_t i = pos_ + 1;
    return tokens_[std::min(i, tokens_.size() - 1)];
}

Token
Parser::advance()
{
    Token t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return t;
}

bool
Parser::match(Tok kind)
{
    if (!check(kind))
        return false;
    advance();
    return true;
}

Token
Parser::expect(Tok kind, const char *context)
{
    if (!check(kind)) {
        fatal("%s: expected %s %s, found %s",
              peek().loc.toString().c_str(), tokName(kind), context,
              tokName(peek().kind));
    }
    return advance();
}

AstProgram
Parser::parseProgram()
{
    AstProgram prog;
    expect(Tok::KwProgram, "at start of program");
    prog.name = expect(Tok::Ident, "as program name").text;
    expect(Tok::Semi, "after program name");
    prog.main = parseBlock();
    expect(Tok::Dot, "at end of program");
    expect(Tok::EndOfFile, "after final '.'");
    return prog;
}

ExprPtr
Parser::parseExprOnly()
{
    ExprPtr e = parseExpr();
    expect(Tok::EndOfFile, "after expression");
    return e;
}

Block
Parser::parseBlock()
{
    Block block;
    for (;;) {
        if (match(Tok::KwVar)) {
            parseVarDecls(block);
        } else if (match(Tok::KwConst)) {
            parseConstDecls(block);
        } else if (check(Tok::KwProc) || check(Tok::KwFunc)) {
            bool is_func = advance().kind == Tok::KwFunc;
            block.procs.push_back(parseProcDecl(is_func));
        } else {
            break;
        }
    }
    expect(Tok::KwBegin, "at start of block body");
    block.body = parseStmts();
    expect(Tok::KwEnd, "at end of block body");
    return block;
}

void
Parser::parseVarDecls(Block &block)
{
    do {
        VarDecl var;
        Token name = expect(Tok::Ident, "as variable name");
        var.name = name.text;
        var.loc = name.loc;
        if (match(Tok::LBracket)) {
            Token size = expect(Tok::Number, "as array size");
            if (size.value <= 0) {
                fatal("%s: array size must be positive",
                      size.loc.toString().c_str());
            }
            var.arraySize = static_cast<uint32_t>(size.value);
            expect(Tok::RBracket, "after array size");
        }
        block.vars.push_back(std::move(var));
    } while (match(Tok::Comma));
    expect(Tok::Semi, "after variable declarations");
}

void
Parser::parseConstDecls(Block &block)
{
    do {
        ConstDecl decl;
        Token name = expect(Tok::Ident, "as constant name");
        decl.name = name.text;
        decl.loc = name.loc;
        expect(Tok::Eq, "in constant declaration");
        bool negative = match(Tok::Minus);
        Token value = expect(Tok::Number, "as constant value");
        decl.value = negative ? -value.value : value.value;
        block.consts.push_back(std::move(decl));
    } while (match(Tok::Comma));
    expect(Tok::Semi, "after constant declarations");
}

ProcDecl
Parser::parseProcDecl(bool is_func)
{
    ProcDecl proc;
    proc.isFunc = is_func;
    Token name = expect(Tok::Ident, "as procedure name");
    proc.name = name.text;
    proc.loc = name.loc;
    expect(Tok::LParen, "after procedure name");
    if (!check(Tok::RParen)) {
        do {
            proc.params.push_back(
                expect(Tok::Ident, "as parameter name").text);
        } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "after parameter list");
    expect(Tok::Semi, "after procedure header");
    proc.block = std::make_unique<Block>(parseBlock());
    expect(Tok::Semi, "after procedure body");
    return proc;
}

std::vector<StmtPtr>
Parser::parseStmts()
{
    std::vector<StmtPtr> stmts;
    while (!check(Tok::KwEnd) && !check(Tok::KwFi) && !check(Tok::KwOd) &&
           !check(Tok::KwElse) && !check(Tok::KwUntil) &&
           !check(Tok::EndOfFile)) {
        stmts.push_back(parseStmt());
        expect(Tok::Semi, "after statement");
    }
    return stmts;
}

StmtPtr
Parser::parseStmt()
{
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;

    switch (peek().kind) {
      case Tok::Ident: {
        stmt->kind = Stmt::Kind::Assign;
        stmt->name = advance().text;
        ExprPtr index;
        if (match(Tok::LBracket)) {
            index = parseExpr();
            expect(Tok::RBracket, "after array index");
        }
        expect(Tok::Assign, "in assignment");
        stmt->exprs.push_back(parseExpr());
        if (index)
            stmt->exprs.push_back(std::move(index));
        return stmt;
      }
      case Tok::KwIf: {
        advance();
        stmt->kind = Stmt::Kind::If;
        stmt->exprs.push_back(parseExpr());
        expect(Tok::KwThen, "in if statement");
        stmt->body = parseStmts();
        if (match(Tok::KwElse))
            stmt->elseBody = parseStmts();
        expect(Tok::KwFi, "at end of if statement");
        return stmt;
      }
      case Tok::KwWhile: {
        advance();
        stmt->kind = Stmt::Kind::While;
        stmt->exprs.push_back(parseExpr());
        expect(Tok::KwDo, "in while statement");
        stmt->body = parseStmts();
        expect(Tok::KwOd, "at end of while statement");
        return stmt;
      }
      case Tok::KwFor: {
        advance();
        stmt->kind = Stmt::Kind::For;
        stmt->name = expect(Tok::Ident, "as loop variable").text;
        expect(Tok::Assign, "in for statement");
        stmt->exprs.push_back(parseExpr());
        expect(Tok::KwTo, "in for statement");
        stmt->exprs.push_back(parseExpr());
        expect(Tok::KwDo, "in for statement");
        stmt->body = parseStmts();
        expect(Tok::KwOd, "at end of for statement");
        return stmt;
      }
      case Tok::KwRepeat: {
        advance();
        stmt->kind = Stmt::Kind::Repeat;
        stmt->body = parseStmts();
        expect(Tok::KwUntil, "at end of repeat statement");
        stmt->exprs.push_back(parseExpr());
        return stmt;
      }
      case Tok::KwCall: {
        advance();
        stmt->kind = Stmt::Kind::Call;
        stmt->name = expect(Tok::Ident, "as procedure name").text;
        expect(Tok::LParen, "in call statement");
        stmt->exprs = parseArgs();
        expect(Tok::RParen, "after call arguments");
        return stmt;
      }
      case Tok::KwWrite: {
        advance();
        stmt->kind = Stmt::Kind::Write;
        stmt->exprs.push_back(parseExpr());
        return stmt;
      }
      case Tok::KwRead: {
        advance();
        stmt->kind = Stmt::Kind::Read;
        stmt->name = expect(Tok::Ident, "as read target").text;
        if (match(Tok::LBracket)) {
            stmt->exprs.push_back(parseExpr());
            expect(Tok::RBracket, "after array index");
        }
        return stmt;
      }
      case Tok::KwReturn: {
        advance();
        stmt->kind = Stmt::Kind::Return;
        if (!check(Tok::Semi))
            stmt->exprs.push_back(parseExpr());
        return stmt;
      }
      default:
        fatal("%s: expected a statement, found %s",
              peek().loc.toString().c_str(), tokName(peek().kind));
    }
}

std::vector<ExprPtr>
Parser::parseArgs()
{
    std::vector<ExprPtr> args;
    if (check(Tok::RParen))
        return args;
    do {
        args.push_back(parseExpr());
    } while (match(Tok::Comma));
    return args;
}

ExprPtr
Parser::parseExpr()
{
    return parseOr();
}

namespace
{

ExprPtr
makeBinary(AstOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Binary;
    e->op = op;
    e->loc = loc;
    e->kids.push_back(std::move(lhs));
    e->kids.push_back(std::move(rhs));
    return e;
}

} // anonymous namespace

ExprPtr
Parser::parseOr()
{
    ExprPtr e = parseAnd();
    while (check(Tok::KwOr)) {
        SourceLoc loc = advance().loc;
        e = makeBinary(AstOp::Or, std::move(e), parseAnd(), loc);
    }
    return e;
}

ExprPtr
Parser::parseAnd()
{
    ExprPtr e = parseRel();
    while (check(Tok::KwAnd)) {
        SourceLoc loc = advance().loc;
        e = makeBinary(AstOp::And, std::move(e), parseRel(), loc);
    }
    return e;
}

ExprPtr
Parser::parseRel()
{
    ExprPtr e = parseAdd();
    AstOp op;
    switch (peek().kind) {
      case Tok::Eq: op = AstOp::Eq; break;
      case Tok::Ne: op = AstOp::Ne; break;
      case Tok::Lt: op = AstOp::Lt; break;
      case Tok::Le: op = AstOp::Le; break;
      case Tok::Gt: op = AstOp::Gt; break;
      case Tok::Ge: op = AstOp::Ge; break;
      default: return e;
    }
    SourceLoc loc = advance().loc;
    return makeBinary(op, std::move(e), parseAdd(), loc);
}

ExprPtr
Parser::parseAdd()
{
    ExprPtr e = parseMul();
    for (;;) {
        AstOp op;
        if (check(Tok::Plus))
            op = AstOp::Add;
        else if (check(Tok::Minus))
            op = AstOp::Sub;
        else
            break;
        SourceLoc loc = advance().loc;
        e = makeBinary(op, std::move(e), parseMul(), loc);
    }
    return e;
}

ExprPtr
Parser::parseMul()
{
    ExprPtr e = parseUnary();
    for (;;) {
        AstOp op;
        if (check(Tok::Star))
            op = AstOp::Mul;
        else if (check(Tok::Slash))
            op = AstOp::Div;
        else if (check(Tok::Percent))
            op = AstOp::Mod;
        else
            break;
        SourceLoc loc = advance().loc;
        e = makeBinary(op, std::move(e), parseUnary(), loc);
    }
    return e;
}

ExprPtr
Parser::parseUnary()
{
    if (check(Tok::Minus) || check(Tok::KwNot)) {
        Token t = advance();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Unary;
        e->op = t.kind == Tok::Minus ? AstOp::Neg : AstOp::Not;
        e->loc = t.loc;
        e->kids.push_back(parseUnary());
        return e;
    }
    return parsePrimary();
}

ExprPtr
Parser::parsePrimary()
{
    auto e = std::make_unique<Expr>();
    e->loc = peek().loc;

    if (check(Tok::Number)) {
        e->kind = Expr::Kind::Number;
        e->value = advance().value;
        return e;
    }
    if (match(Tok::LParen)) {
        e = parseExpr();
        expect(Tok::RParen, "after parenthesized expression");
        return e;
    }
    if (check(Tok::Ident)) {
        e->name = advance().text;
        if (match(Tok::LBracket)) {
            e->kind = Expr::Kind::Index;
            e->kids.push_back(parseExpr());
            expect(Tok::RBracket, "after array index");
        } else if (match(Tok::LParen)) {
            e->kind = Expr::Kind::Call;
            e->kids = parseArgs();
            expect(Tok::RParen, "after call arguments");
        } else {
            e->kind = Expr::Kind::Var;
        }
        return e;
    }
    fatal("%s: expected an expression, found %s",
          peek().loc.toString().c_str(), tokName(peek().kind));
}

AstProgram
parse(const std::string &source)
{
    Lexer lexer(source);
    Parser parser(lexer.lexAll());
    return parser.parseProgram();
}

std::string
toString(const Expr &expr)
{
    std::ostringstream os;
    switch (expr.kind) {
      case Expr::Kind::Number:
        os << expr.value;
        break;
      case Expr::Kind::Var:
        os << expr.name;
        break;
      case Expr::Kind::Index:
        os << expr.name << "[" << toString(*expr.kids[0]) << "]";
        break;
      case Expr::Kind::Call: {
        os << expr.name << "(";
        for (size_t i = 0; i < expr.kids.size(); ++i)
            os << (i ? ", " : "") << toString(*expr.kids[i]);
        os << ")";
        break;
      }
      case Expr::Kind::Unary: {
        os << (expr.op == AstOp::Neg ? "-" : "not ")
           << toString(*expr.kids[0]);
        break;
      }
      case Expr::Kind::Binary: {
        const char *sym = "?";
        switch (expr.op) {
          case AstOp::Add: sym = "+"; break;
          case AstOp::Sub: sym = "-"; break;
          case AstOp::Mul: sym = "*"; break;
          case AstOp::Div: sym = "/"; break;
          case AstOp::Mod: sym = "%"; break;
          case AstOp::Eq:  sym = "="; break;
          case AstOp::Ne:  sym = "<>"; break;
          case AstOp::Lt:  sym = "<"; break;
          case AstOp::Le:  sym = "<="; break;
          case AstOp::Gt:  sym = ">"; break;
          case AstOp::Ge:  sym = ">="; break;
          case AstOp::And: sym = "and"; break;
          case AstOp::Or:  sym = "or"; break;
          default: break;
        }
        os << "(" << toString(*expr.kids[0]) << " " << sym << " "
           << toString(*expr.kids[1]) << ")";
        break;
      }
    }
    return os.str();
}

} // namespace uhm::hlr
