/**
 * @file
 * Abstract syntax tree of the Contour language.
 *
 * The tree is the program's high-level representation: names are still
 * symbolic, scoping is implicit in block nesting, and expressions are
 * hierarchical — the properties the compiler's binding step removes when
 * lowering to the DIR.
 *
 * Nodes are tagged structs (a Kind enum plus a child vector) rather than
 * a class-per-node hierarchy; the grammar is small enough that a single
 * shape keeps the parser, the compiler and the direct interpreter short.
 */

#ifndef UHM_HLR_AST_HH
#define UHM_HLR_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hlr/token.hh"

namespace uhm::hlr
{

/** Binary and unary operators (shared tag space). */
enum class AstOp : uint8_t
{
    Add, Sub, Mul, Div, Mod,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or,
    Neg, Not,
    None
};

/** Expression node. */
struct Expr
{
    enum class Kind : uint8_t
    {
        Number,   ///< integer literal (value)
        Var,      ///< scalar variable reference (name)
        Index,    ///< array element (name, kids[0] = index)
        Call,     ///< function call (name, kids = args)
        Unary,    ///< op, kids[0]
        Binary,   ///< op, kids[0], kids[1]
    };

    Kind kind;
    SourceLoc loc;
    int64_t value = 0;
    std::string name;
    AstOp op = AstOp::None;
    std::vector<std::unique_ptr<Expr>> kids;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Block;

/** Statement node. */
struct Stmt
{
    enum class Kind : uint8_t
    {
        Assign,    ///< name [index] := value; exprs[0]=value, exprs[1]=index?
        If,        ///< exprs[0]=cond, body=then, elseBody=else
        While,     ///< exprs[0]=cond, body
        Call,      ///< call name(args); exprs = args
        Write,     ///< exprs[0]
        Read,      ///< read name [index]; exprs[0]=index?
        Return,    ///< exprs[0]=value?
        For,       ///< for name := exprs[0] to exprs[1] do body od
        Repeat,    ///< repeat body until exprs[0]
    };

    Kind kind;
    SourceLoc loc;
    std::string name;
    std::vector<ExprPtr> exprs;
    std::vector<std::unique_ptr<Stmt>> body;
    std::vector<std::unique_ptr<Stmt>> elseBody;
};

using StmtPtr = std::unique_ptr<Stmt>;

/** A named compile-time constant. */
struct ConstDecl
{
    std::string name;
    int64_t value = 0;
    SourceLoc loc;
};

/** A declared variable: scalar (arraySize 0) or array. */
struct VarDecl
{
    std::string name;
    /** 0 for a scalar; otherwise the number of elements. */
    uint32_t arraySize = 0;
    SourceLoc loc;
};

/** A procedure or function declaration. */
struct ProcDecl
{
    std::string name;
    std::vector<std::string> params;
    bool isFunc = false;
    std::unique_ptr<Block> block;
    SourceLoc loc;
};

/** A block: declarations followed by a statement list. */
struct Block
{
    std::vector<ConstDecl> consts;
    std::vector<VarDecl> vars;
    std::vector<ProcDecl> procs;
    std::vector<StmtPtr> body;
};

/** A whole parsed program. */
struct AstProgram
{
    std::string name;
    Block main;
};

/** Pretty-print an expression (round-trip tests). */
std::string toString(const Expr &expr);

} // namespace uhm::hlr

#endif // UHM_HLR_AST_HH
