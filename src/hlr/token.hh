/**
 * @file
 * Tokens of the Contour language.
 *
 * Contour is the HLR of this reproduction: a small ALGOL-style
 * block-structured language with nested procedures, chosen to exhibit
 * exactly the HLR properties section 2.2 enumerates — hierarchical
 * syntax, block structure with name scoping (an implicit associative
 * memory), infix notation and symbolic names of unbounded length.
 */

#ifndef UHM_HLR_TOKEN_HH
#define UHM_HLR_TOKEN_HH

#include <cstdint>
#include <string>

namespace uhm::hlr
{

/** A position in the source text. */
struct SourceLoc
{
    int line = 1;
    int col = 1;

    std::string
    toString() const
    {
        return std::to_string(line) + ":" + std::to_string(col);
    }
};

/** Token kinds. */
enum class Tok : uint8_t
{
    // Literals and names.
    Number, Ident,

    // Keywords.
    KwProgram, KwVar, KwConst, KwProc, KwFunc, KwBegin, KwEnd,
    KwIf, KwThen, KwElse, KwFi, KwWhile, KwDo, KwOd,
    KwFor, KwTo, KwRepeat, KwUntil,
    KwCall, KwWrite, KwRead, KwReturn, KwAnd, KwOr, KwNot,

    // Punctuation and operators.
    Semi, Comma, LParen, RParen, LBracket, RBracket, Dot,
    Assign,                  // :=
    Plus, Minus, Star, Slash, Percent,
    Eq, Ne, Lt, Le, Gt, Ge,  // = <> < <= > >=

    EndOfFile
};

/** Printable name of a token kind. */
const char *tokName(Tok kind);

/** One lexed token. */
struct Token
{
    Tok kind = Tok::EndOfFile;
    /** Identifier spelling (Ident only). */
    std::string text;
    /** Literal value (Number only). */
    int64_t value = 0;
    SourceLoc loc;
};

} // namespace uhm::hlr

#endif // UHM_HLR_TOKEN_HH
