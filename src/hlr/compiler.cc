#include "hlr/compiler.hh"

#include <map>
#include <sstream>
#include <vector>

#include "hlr/lexer.hh"
#include "hlr/parser.hh"
#include "support/logging.hh"

namespace uhm::hlr
{

namespace
{

/** A resolved name. */
struct Symbol
{
    enum class Kind : uint8_t { Scalar, Array, Proc, Const };
    Kind kind = Kind::Scalar;
    /** Contour depth of the defining block (variables). */
    unsigned depth = 0;
    /** First slot (variables). */
    uint32_t slot = 0;
    /** Element count (arrays). */
    uint32_t arraySize = 0;
    /** Procedure index (CALLP operand). */
    uint32_t procIdx = 0;
    /** Parameter count (procedures). */
    uint32_t nparams = 0;
    /** True for 'func' procedures. */
    bool isFunc = false;
    /** Compile-time value (constants). */
    int64_t constValue = 0;
};

class Compiler
{
  public:
    DirProgram
    run(const AstProgram &ast)
    {
        prog_.name = ast.name;

        // Globals: the main block's variables live at depth 0.
        std::map<std::string, Symbol> global_scope;
        uint32_t next_slot = 0;
        for (const ConstDecl &decl : ast.main.consts)
            declareConst(global_scope, decl);
        for (const VarDecl &var : ast.main.vars)
            declareVar(global_scope, var, 0, next_slot);
        prog_.numGlobals = next_slot;

        // Main contour (id 0): depth 1, no locals of its own.
        Contour main_ctr;
        main_ctr.name = "<main>";
        main_ctr.depth = 1;
        main_ctr.slotsAtDepth = {prog_.numGlobals, 0};
        prog_.contours.push_back(main_ctr);

        scopes_.push_back(std::move(global_scope));
        chain_ = {prog_.numGlobals, 0};

        // Register and compile the main block's procedures, then main
        // itself.
        std::map<std::string, Symbol> main_scope;
        registerProcs(main_scope, ast.main, 1);
        scopes_.push_back(std::move(main_scope));
        compileProcs(ast.main, 1);

        currentContour_ = 0;
        inFunc_ = false;
        inMain_ = true;
        prog_.entry = emit({Op::ENTER, 1, 0, 0});
        prog_.contours[0].entry = prog_.entry;
        for (const StmtPtr &stmt : ast.main.body)
            compileStmt(*stmt);
        emit({Op::HALT});
        scopes_.pop_back();
        scopes_.pop_back();

        if (!errors_.empty()) {
            std::ostringstream os;
            for (size_t i = 0; i < errors_.size(); ++i)
                os << (i ? "\n" : "") << errors_[i];
            throw FatalError(os.str());
        }

        prog_.validate();
        return std::move(prog_);
    }

  private:
    // ---- error handling -------------------------------------------------

    void
    error(SourceLoc loc, const std::string &msg)
    {
        errors_.push_back(loc.toString() + ": " + msg);
    }

    // ---- declarations ---------------------------------------------------

    void
    declareConst(std::map<std::string, Symbol> &scope,
                 const ConstDecl &decl)
    {
        Symbol sym;
        sym.kind = Symbol::Kind::Const;
        sym.constValue = decl.value;
        if (!scope.emplace(decl.name, sym).second)
            error(decl.loc, "redeclaration of '" + decl.name + "'");
    }

    void
    declareVar(std::map<std::string, Symbol> &scope, const VarDecl &var,
               unsigned depth, uint32_t &next_slot)
    {
        Symbol sym;
        sym.kind = var.arraySize > 0 ? Symbol::Kind::Array :
            Symbol::Kind::Scalar;
        sym.depth = depth;
        sym.slot = next_slot;
        sym.arraySize = var.arraySize;
        next_slot += var.arraySize > 0 ? var.arraySize : 1;
        if (!scope.emplace(var.name, sym).second)
            error(var.loc, "redeclaration of '" + var.name + "'");
    }

    /**
     * Register every procedure declared in @p block (at contour depth
     * @p depth) into @p scope, assigning procedure indices and building
     * contour-table entries. Registration precedes body compilation so
     * sibling procedures may call each other.
     */
    void
    registerProcs(std::map<std::string, Symbol> &scope,
                  const Block &block, unsigned depth)
    {
        for (const ProcDecl &proc : block.procs) {
            Symbol sym;
            sym.kind = Symbol::Kind::Proc;
            sym.procIdx = static_cast<uint32_t>(prog_.contours.size() - 1);
            sym.nparams = static_cast<uint32_t>(proc.params.size());
            sym.isFunc = proc.isFunc;
            if (!scope.emplace(proc.name, sym).second)
                error(proc.loc, "redeclaration of '" + proc.name + "'");

            Contour ctr;
            ctr.name = proc.name;
            ctr.depth = depth + 1;
            ctr.nparams = sym.nparams;
            ctr.isFunc = proc.isFunc;
            // nlocals: params, then declared variables.
            uint32_t nlocals = sym.nparams;
            for (const VarDecl &var : proc.block->vars)
                nlocals += var.arraySize > 0 ? var.arraySize : 1;
            ctr.nlocals = nlocals;
            // slotsAtDepth is completed when the body is compiled (the
            // chain up to 'depth' is only known then); reserve now.
            prog_.contours.push_back(ctr);
        }
    }

    /** Compile the bodies of every procedure declared in @p block. */
    void
    compileProcs(const Block &block, unsigned depth)
    {
        for (const ProcDecl &proc : block.procs) {
            const Symbol &sym = scopes_.back().at(proc.name);
            compileProcBody(proc, sym, depth + 1);
        }
    }

    void
    compileProcBody(const ProcDecl &proc, const Symbol &sym,
                    unsigned depth)
    {
        uint32_t ctr_id = sym.procIdx + 1;
        // NOTE: prog_.contours grows while inner procedures register,
        // so the contour is re-indexed rather than held by reference.
        uint32_t nlocals = prog_.contours[ctr_id].nlocals;

        // Local scope: constants, then parameters, then variables.
        std::map<std::string, Symbol> scope;
        uint32_t next_slot = 0;
        for (const ConstDecl &decl : proc.block->consts)
            declareConst(scope, decl);
        for (const std::string &param : proc.params) {
            VarDecl pv;
            pv.name = param;
            pv.loc = proc.loc;
            declareVar(scope, pv, depth, next_slot);
        }
        for (const VarDecl &var : proc.block->vars)
            declareVar(scope, var, depth, next_slot);
        uhm_assert(next_slot == nlocals, "nlocals mismatch in '%s'",
                   proc.name.c_str());

        chain_.push_back(nlocals);
        prog_.contours[ctr_id].slotsAtDepth = chain_;

        // Inner procedures first.
        std::map<std::string, Symbol> inner_scope;
        registerProcs(inner_scope, *proc.block, depth);

        scopes_.push_back(std::move(scope));
        scopes_.push_back(std::move(inner_scope));
        compileProcs(*proc.block, depth);

        uint32_t saved_contour = currentContour_;
        bool saved_in_func = inFunc_;
        bool saved_in_main = inMain_;
        currentContour_ = ctr_id;
        inFunc_ = proc.isFunc;
        inMain_ = false;

        prog_.contours[ctr_id].entry =
            emit({Op::ENTER, static_cast<int64_t>(depth), nlocals,
                  prog_.contours[ctr_id].nparams});
        for (const StmtPtr &stmt : proc.block->body)
            compileStmt(*stmt);
        // Fall-off-the-end return; functions yield 0.
        if (proc.isFunc)
            emit({Op::PUSHC, 0});
        emit({Op::RET, static_cast<int64_t>(depth), nlocals});

        currentContour_ = saved_contour;
        inFunc_ = saved_in_func;
        inMain_ = saved_in_main;
        scopes_.pop_back();
        scopes_.pop_back();
        chain_.pop_back();
    }

    // ---- name lookup ----------------------------------------------------

    const Symbol *
    lookup(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    const Symbol *
    lookupVar(const std::string &name, SourceLoc loc, bool want_array)
    {
        const Symbol *sym = lookup(name);
        if (!sym) {
            error(loc, "undeclared name '" + name + "'");
            return nullptr;
        }
        if (sym->kind == Symbol::Kind::Proc) {
            error(loc, "'" + name + "' is a procedure, not a variable");
            return nullptr;
        }
        if (sym->kind == Symbol::Kind::Const) {
            error(loc, "constant '" + name + "' cannot be assigned or "
                  "read into");
            return nullptr;
        }
        if (want_array && sym->kind != Symbol::Kind::Array) {
            error(loc, "'" + name + "' is not an array");
            return nullptr;
        }
        if (!want_array && sym->kind == Symbol::Kind::Array) {
            error(loc, "array '" + name + "' needs an index here");
            return nullptr;
        }
        return sym;
    }

    // ---- emission -------------------------------------------------------

    size_t
    emit(DirInstruction ins)
    {
        prog_.instrs.push_back(ins);
        prog_.contourOf.push_back(currentContour_);
        return prog_.instrs.size() - 1;
    }

    void
    patchTarget(size_t at, size_t target)
    {
        prog_.instrs[at].operands[0] = static_cast<int64_t>(target);
    }

    // ---- statements -----------------------------------------------------

    void
    compileStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case Stmt::Kind::Assign: {
            bool indexed = stmt.exprs.size() > 1;
            const Symbol *sym = lookupVar(stmt.name, stmt.loc, indexed);
            if (!sym)
                return;
            if (indexed) {
                compileExpr(*stmt.exprs[0]);
                emit({Op::ADDR, sym->depth, sym->slot});
                compileExpr(*stmt.exprs[1]);
                emit({Op::ADD});
                emit({Op::STOREI});
            } else {
                compileExpr(*stmt.exprs[0]);
                emit({Op::STOREL, sym->depth, sym->slot});
            }
            return;
          }
          case Stmt::Kind::If: {
            compileExpr(*stmt.exprs[0]);
            size_t jz = emit({Op::JZ, 0});
            for (const StmtPtr &s : stmt.body)
                compileStmt(*s);
            if (stmt.elseBody.empty()) {
                patchTarget(jz, prog_.instrs.size());
            } else {
                size_t jmp = emit({Op::JMP, 0});
                patchTarget(jz, prog_.instrs.size());
                for (const StmtPtr &s : stmt.elseBody)
                    compileStmt(*s);
                patchTarget(jmp, prog_.instrs.size());
            }
            return;
          }
          case Stmt::Kind::While: {
            size_t top = prog_.instrs.size();
            compileExpr(*stmt.exprs[0]);
            size_t jz = emit({Op::JZ, 0});
            for (const StmtPtr &s : stmt.body)
                compileStmt(*s);
            emit({Op::JMP, static_cast<int64_t>(top)});
            patchTarget(jz, prog_.instrs.size());
            return;
          }
          case Stmt::Kind::For: {
            // for v := a to b: the bound is re-evaluated every
            // iteration (documented language semantics).
            const Symbol *sym = lookupVar(stmt.name, stmt.loc, false);
            if (!sym)
                return;
            compileExpr(*stmt.exprs[0]);
            emit({Op::STOREL, sym->depth, sym->slot});
            size_t top = prog_.instrs.size();
            emit({Op::PUSHL, sym->depth, sym->slot});
            compileExpr(*stmt.exprs[1]);
            emit({Op::LE});
            size_t jz = emit({Op::JZ, 0});
            for (const StmtPtr &s : stmt.body)
                compileStmt(*s);
            emit({Op::PUSHL, sym->depth, sym->slot});
            emit({Op::PUSHC, 1});
            emit({Op::ADD});
            emit({Op::STOREL, sym->depth, sym->slot});
            emit({Op::JMP, static_cast<int64_t>(top)});
            patchTarget(jz, prog_.instrs.size());
            return;
          }
          case Stmt::Kind::Repeat: {
            size_t top = prog_.instrs.size();
            for (const StmtPtr &s : stmt.body)
                compileStmt(*s);
            compileExpr(*stmt.exprs[0]);
            emit({Op::JZ, static_cast<int64_t>(top)});
            return;
          }
          case Stmt::Kind::Call: {
            const Symbol *sym = lookup(stmt.name);
            if (!sym || sym->kind != Symbol::Kind::Proc) {
                error(stmt.loc, "'" + stmt.name + "' is not a procedure");
                return;
            }
            compileCall(*sym, stmt.exprs, stmt.loc, stmt.name);
            if (sym->isFunc)
                emit({Op::DROP});
            return;
          }
          case Stmt::Kind::Write:
            compileExpr(*stmt.exprs[0]);
            emit({Op::WRITE});
            return;
          case Stmt::Kind::Read: {
            bool indexed = !stmt.exprs.empty();
            const Symbol *sym = lookupVar(stmt.name, stmt.loc, indexed);
            if (!sym)
                return;
            emit({Op::READ});
            if (indexed) {
                emit({Op::ADDR, sym->depth, sym->slot});
                compileExpr(*stmt.exprs[0]);
                emit({Op::ADD});
                emit({Op::STOREI});
            } else {
                emit({Op::STOREL, sym->depth, sym->slot});
            }
            return;
          }
          case Stmt::Kind::Return: {
            if (inMain_) {
                if (!stmt.exprs.empty())
                    error(stmt.loc, "the main program cannot return a "
                          "value");
                emit({Op::HALT});
                return;
            }
            const Contour &ctr = prog_.contours[currentContour_];
            if (inFunc_) {
                if (stmt.exprs.empty()) {
                    error(stmt.loc, "function must return a value");
                    emit({Op::PUSHC, 0});
                } else {
                    compileExpr(*stmt.exprs[0]);
                }
            } else if (!stmt.exprs.empty()) {
                error(stmt.loc, "procedure cannot return a value");
            }
            emit({Op::RET, static_cast<int64_t>(ctr.depth), ctr.nlocals});
            return;
          }
        }
        panic("unhandled statement kind");
    }

    void
    compileCall(const Symbol &sym, const std::vector<ExprPtr> &args,
                SourceLoc loc, const std::string &name)
    {
        if (args.size() != sym.nparams) {
            error(loc, "'" + name + "' expects " +
                  std::to_string(sym.nparams) + " argument(s), got " +
                  std::to_string(args.size()));
        }
        for (const ExprPtr &arg : args)
            compileExpr(*arg);
        emit({Op::CALLP, sym.procIdx});
    }

    // ---- expressions ----------------------------------------------------

    /** True if @p expr statically yields 0 or 1. */
    static bool
    isBooleanShaped(const Expr &expr)
    {
        if (expr.kind == Expr::Kind::Unary)
            return expr.op == AstOp::Not;
        if (expr.kind != Expr::Kind::Binary)
            return false;
        switch (expr.op) {
          case AstOp::Eq: case AstOp::Ne: case AstOp::Lt:
          case AstOp::Le: case AstOp::Gt: case AstOp::Ge:
          case AstOp::And: case AstOp::Or:
            return true;
          default:
            return false;
        }
    }

    /** Compile @p expr and normalize the result to 0/1. */
    void
    compileBool(const Expr &expr)
    {
        compileExpr(expr);
        if (!isBooleanShaped(expr)) {
            emit({Op::PUSHC, 0});
            emit({Op::NE});
        }
    }

    void
    compileExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::Number:
            emit({Op::PUSHC, expr.value});
            return;
          case Expr::Kind::Var: {
            const Symbol *sym = lookup(expr.name);
            if (sym && sym->kind == Symbol::Kind::Const) {
                emit({Op::PUSHC, sym->constValue});
                return;
            }
            sym = lookupVar(expr.name, expr.loc, false);
            if (!sym)
                return;
            emit({Op::PUSHL, sym->depth, sym->slot});
            return;
          }
          case Expr::Kind::Index: {
            const Symbol *sym = lookupVar(expr.name, expr.loc, true);
            if (!sym)
                return;
            emit({Op::ADDR, sym->depth, sym->slot});
            compileExpr(*expr.kids[0]);
            emit({Op::ADD});
            emit({Op::LOADI});
            return;
          }
          case Expr::Kind::Call: {
            const Symbol *sym = lookup(expr.name);
            if (!sym || sym->kind != Symbol::Kind::Proc) {
                error(expr.loc, "'" + expr.name + "' is not a procedure");
                return;
            }
            if (!sym->isFunc) {
                error(expr.loc, "'" + expr.name +
                      "' does not return a value");
                return;
            }
            compileCall(*sym, expr.kids, expr.loc, expr.name);
            return;
          }
          case Expr::Kind::Unary:
            if (expr.op == AstOp::Neg) {
                compileExpr(*expr.kids[0]);
                emit({Op::NEG});
            } else {
                // not x  ==  (x = 0)
                compileExpr(*expr.kids[0]);
                emit({Op::PUSHC, 0});
                emit({Op::EQ});
            }
            return;
          case Expr::Kind::Binary: {
            if (expr.op == AstOp::And || expr.op == AstOp::Or) {
                compileBool(*expr.kids[0]);
                compileBool(*expr.kids[1]);
                emit({expr.op == AstOp::And ? Op::AND : Op::OR});
                return;
            }
            compileExpr(*expr.kids[0]);
            compileExpr(*expr.kids[1]);
            Op op;
            switch (expr.op) {
              case AstOp::Add: op = Op::ADD; break;
              case AstOp::Sub: op = Op::SUB; break;
              case AstOp::Mul: op = Op::MUL; break;
              case AstOp::Div: op = Op::DIV; break;
              case AstOp::Mod: op = Op::MOD; break;
              case AstOp::Eq:  op = Op::EQ; break;
              case AstOp::Ne:  op = Op::NE; break;
              case AstOp::Lt:  op = Op::LT; break;
              case AstOp::Le:  op = Op::LE; break;
              case AstOp::Gt:  op = Op::GT; break;
              case AstOp::Ge:  op = Op::GE; break;
              default: panic("bad binary operator");
            }
            emit({op});
            return;
          }
        }
        panic("unhandled expression kind");
    }

    DirProgram prog_;
    std::vector<std::map<std::string, Symbol>> scopes_;
    /** slotsAtDepth chain of the contour being compiled. */
    std::vector<uint32_t> chain_;
    std::vector<std::string> errors_;
    uint32_t currentContour_ = 0;
    bool inFunc_ = false;
    bool inMain_ = true;
};

} // anonymous namespace

DirProgram
compile(const AstProgram &ast)
{
    Compiler compiler;
    return compiler.run(ast);
}

DirProgram
compileSource(const std::string &source)
{
    return compile(parse(source));
}

} // namespace uhm::hlr
