/**
 * @file
 * Direct interpreter for the Contour HLR.
 *
 * Section 2.2 argues that interpreting a HLR directly is unattractive
 * because "the structure of most high-level languages implicitly assumes
 * the existence of an associative memory ... it must then be simulated by
 * performing time-consuming table searches". This interpreter executes
 * the AST exactly that way — every name reference linearly searches the
 * activation-record name tables along the static chain — and counts the
 * comparisons performed, giving the reproduction a measured cost for the
 * "interpret the HLR directly" design point that the DIR levels are
 * compared against.
 */

#ifndef UHM_HLR_INTERP_HH
#define UHM_HLR_INTERP_HH

#include <cstdint>
#include <vector>

#include "hlr/ast.hh"
#include "support/stats.hh"

namespace uhm::hlr
{

/** Result of a direct HLR execution. */
struct HlrRunResult
{
    /** Values produced by 'write' statements, in order. */
    std::vector<int64_t> output;
    /**
     * Counters:
     *  - hlr_name_search_steps: name-table comparisons performed
     *  - hlr_stmts: statements executed
     *  - hlr_exprs: expression nodes evaluated
     */
    StatSet stats;
};

/**
 * Interpret @p ast directly.
 * @param input values consumed by 'read' statements
 * @param max_steps statement budget; exceeding it is a FatalError
 *                  (guards runaway programs in tests)
 */
HlrRunResult interpretHlr(const AstProgram &ast,
                          const std::vector<int64_t> &input = {},
                          uint64_t max_steps = 100'000'000);

} // namespace uhm::hlr

#endif // UHM_HLR_INTERP_HH
