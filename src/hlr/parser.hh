/**
 * @file
 * Recursive-descent parser for the Contour language.
 *
 * Grammar:
 * @verbatim
 *   program  := 'program' IDENT ';' block '.'
 *   block    := { decl } 'begin' stmts 'end'
 *   decl     := 'var' vardecl { ',' vardecl } ';'
 *             | 'const' IDENT '=' ['-'] NUMBER { ',' ... } ';'
 *             | ('proc'|'func') IDENT '(' [ params ] ')' ';' block ';'
 *   vardecl  := IDENT [ '[' NUMBER ']' ]
 *   params   := IDENT { ',' IDENT }
 *   stmts    := { stmt ';' }
 *   stmt     := IDENT [ '[' expr ']' ] ':=' expr
 *             | 'if' expr 'then' stmts [ 'else' stmts ] 'fi'
 *             | 'while' expr 'do' stmts 'od'
 *             | 'for' IDENT ':=' expr 'to' expr 'do' stmts 'od'
 *             | 'repeat' stmts 'until' expr
 *             | 'call' IDENT '(' [ args ] ')'
 *             | 'write' expr | 'read' IDENT [ '[' expr ']' ]
 *             | 'return' [ expr ]
 *   expr     := or-expr with the usual precedence ladder:
 *               or < and < relational < additive < multiplicative < unary
 *   primary  := NUMBER | IDENT | IDENT '[' expr ']' | IDENT '(' args ')'
 *             | '(' expr ')'
 * @endverbatim
 *
 * 'and'/'or'/'not' are boolean operators over truthiness (nonzero is
 * true) and do not short-circuit.
 */

#ifndef UHM_HLR_PARSER_HH
#define UHM_HLR_PARSER_HH

#include <string>
#include <vector>

#include "hlr/ast.hh"
#include "hlr/token.hh"

namespace uhm::hlr
{

/** Parse errors raise FatalError with "line:col: message". */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens);

    /** Parse a whole program. */
    AstProgram parseProgram();

    /** Parse a standalone expression (testing hook). */
    ExprPtr parseExprOnly();

  private:
    const Token &peek() const { return tokens_[pos_]; }
    const Token &peekAhead() const;
    Token advance();
    bool check(Tok kind) const { return peek().kind == kind; }
    bool match(Tok kind);
    Token expect(Tok kind, const char *context);

    Block parseBlock();
    void parseVarDecls(Block &block);
    void parseConstDecls(Block &block);
    ProcDecl parseProcDecl(bool is_func);
    std::vector<StmtPtr> parseStmts();
    StmtPtr parseStmt();
    std::vector<ExprPtr> parseArgs();

    ExprPtr parseExpr();
    ExprPtr parseOr();
    ExprPtr parseAnd();
    ExprPtr parseRel();
    ExprPtr parseAdd();
    ExprPtr parseMul();
    ExprPtr parseUnary();
    ExprPtr parsePrimary();

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

/** Convenience: lex and parse @p source. */
AstProgram parse(const std::string &source);

} // namespace uhm::hlr

#endif // UHM_HLR_PARSER_HH
