/**
 * @file
 * The Contour-to-DIR compiler.
 *
 * This is the binding step of section 3.3: symbolic names are bound to
 * (contour depth, slot) coordinates so no associative memory is needed
 * at run time, the expression trees are unravelled into postfix order,
 * and control structure becomes explicit branches. What the compiler
 * binds stays bound for the life of the program — the long-persistence
 * end of the paper's binding spectrum (section 4).
 *
 * Calling convention (shared with the machine's semantic routines):
 *  - the caller pushes arguments left to right, then CALLP;
 *  - the callee's ENTER(depth, nlocals, nparams) saves the display entry
 *    for its depth, allocates a frame of nlocals slots and pops the
 *    nparams arguments into slots nparams-1 .. 0;
 *  - functions leave their result on the operand stack across RET;
 *  - RET(depth, nlocals) releases the frame, restores the display entry
 *    and returns through the return-address stack.
 */

#ifndef UHM_HLR_COMPILER_HH
#define UHM_HLR_COMPILER_HH

#include <string>

#include "dir/program.hh"
#include "hlr/ast.hh"

namespace uhm::hlr
{

/**
 * Compile a parsed program to DIR. Semantic errors (undeclared or
 * misused names, arity mismatches, ...) are collected and reported
 * together via FatalError.
 */
DirProgram compile(const AstProgram &ast);

/** Lex, parse and compile @p source in one step. */
DirProgram compileSource(const std::string &source);

} // namespace uhm::hlr

#endif // UHM_HLR_COMPILER_HH
