#include "hlr/lexer.hh"

#include <cctype>
#include <map>

#include "support/logging.hh"

namespace uhm::hlr
{

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::Number:    return "number";
      case Tok::Ident:     return "identifier";
      case Tok::KwProgram: return "'program'";
      case Tok::KwVar:     return "'var'";
      case Tok::KwConst:   return "'const'";
      case Tok::KwProc:    return "'proc'";
      case Tok::KwFunc:    return "'func'";
      case Tok::KwBegin:   return "'begin'";
      case Tok::KwEnd:     return "'end'";
      case Tok::KwIf:      return "'if'";
      case Tok::KwThen:    return "'then'";
      case Tok::KwElse:    return "'else'";
      case Tok::KwFi:      return "'fi'";
      case Tok::KwWhile:   return "'while'";
      case Tok::KwDo:      return "'do'";
      case Tok::KwOd:      return "'od'";
      case Tok::KwFor:     return "'for'";
      case Tok::KwTo:      return "'to'";
      case Tok::KwRepeat:  return "'repeat'";
      case Tok::KwUntil:   return "'until'";
      case Tok::KwCall:    return "'call'";
      case Tok::KwWrite:   return "'write'";
      case Tok::KwRead:    return "'read'";
      case Tok::KwReturn:  return "'return'";
      case Tok::KwAnd:     return "'and'";
      case Tok::KwOr:      return "'or'";
      case Tok::KwNot:     return "'not'";
      case Tok::Semi:      return "';'";
      case Tok::Comma:     return "','";
      case Tok::LParen:    return "'('";
      case Tok::RParen:    return "')'";
      case Tok::LBracket:  return "'['";
      case Tok::RBracket:  return "']'";
      case Tok::Dot:       return "'.'";
      case Tok::Assign:    return "':='";
      case Tok::Plus:      return "'+'";
      case Tok::Minus:     return "'-'";
      case Tok::Star:      return "'*'";
      case Tok::Slash:     return "'/'";
      case Tok::Percent:   return "'%%'";
      case Tok::Eq:        return "'='";
      case Tok::Ne:        return "'<>'";
      case Tok::Lt:        return "'<'";
      case Tok::Le:        return "'<='";
      case Tok::Gt:        return "'>'";
      case Tok::Ge:        return "'>='";
      case Tok::EndOfFile: return "end of input";
    }
    return "?";
}

namespace
{

const std::map<std::string, Tok> &
keywords()
{
    static const std::map<std::string, Tok> kw = {
        {"program", Tok::KwProgram}, {"var", Tok::KwVar},
        {"const", Tok::KwConst},     {"for", Tok::KwFor},
        {"to", Tok::KwTo},           {"repeat", Tok::KwRepeat},
        {"until", Tok::KwUntil},
        {"proc", Tok::KwProc},       {"func", Tok::KwFunc},
        {"begin", Tok::KwBegin},     {"end", Tok::KwEnd},
        {"if", Tok::KwIf},           {"then", Tok::KwThen},
        {"else", Tok::KwElse},       {"fi", Tok::KwFi},
        {"while", Tok::KwWhile},     {"do", Tok::KwDo},
        {"od", Tok::KwOd},           {"call", Tok::KwCall},
        {"write", Tok::KwWrite},     {"read", Tok::KwRead},
        {"return", Tok::KwReturn},   {"and", Tok::KwAnd},
        {"or", Tok::KwOr},           {"not", Tok::KwNot},
    };
    return kw;
}

} // anonymous namespace

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char
Lexer::peek() const
{
    return atEnd() ? '\0' : src_[pos_];
}

char
Lexer::advance()
{
    char c = src_[pos_++];
    if (c == '\n') {
        ++loc_.line;
        loc_.col = 1;
    } else {
        ++loc_.col;
    }
    return c;
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> tokens;
    for (;;) {
        Token t = next();
        tokens.push_back(t);
        if (t.kind == Tok::EndOfFile)
            break;
    }
    return tokens;
}

Token
Lexer::next()
{
    // Skip whitespace and '#' comments.
    for (;;) {
        while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
            advance();
        if (!atEnd() && peek() == '#') {
            while (!atEnd() && peek() != '\n')
                advance();
            continue;
        }
        break;
    }

    Token t;
    t.loc = loc_;
    if (atEnd()) {
        t.kind = Tok::EndOfFile;
        return t;
    }

    char c = advance();

    if (std::isdigit(static_cast<unsigned char>(c))) {
        int64_t v = c - '0';
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
            int64_t digit = advance() - '0';
            if (v > (INT64_MAX - digit) / 10) {
                fatal("%s: integer literal overflows",
                      t.loc.toString().c_str());
            }
            v = v * 10 + digit;
        }
        t.kind = Tok::Number;
        t.value = v;
        return t;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word(1, c);
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(peek())) ||
                peek() == '_')) {
            word.push_back(advance());
        }
        auto it = keywords().find(word);
        if (it != keywords().end()) {
            t.kind = it->second;
        } else {
            t.kind = Tok::Ident;
            t.text = std::move(word);
        }
        return t;
    }

    switch (c) {
      case ';': t.kind = Tok::Semi; return t;
      case ',': t.kind = Tok::Comma; return t;
      case '(': t.kind = Tok::LParen; return t;
      case ')': t.kind = Tok::RParen; return t;
      case '[': t.kind = Tok::LBracket; return t;
      case ']': t.kind = Tok::RBracket; return t;
      case '.': t.kind = Tok::Dot; return t;
      case '+': t.kind = Tok::Plus; return t;
      case '-': t.kind = Tok::Minus; return t;
      case '*': t.kind = Tok::Star; return t;
      case '/': t.kind = Tok::Slash; return t;
      case '%': t.kind = Tok::Percent; return t;
      case '=': t.kind = Tok::Eq; return t;
      case ':':
        if (peek() == '=') {
            advance();
            t.kind = Tok::Assign;
            return t;
        }
        fatal("%s: expected '=' after ':'", t.loc.toString().c_str());
      case '<':
        if (peek() == '=') {
            advance();
            t.kind = Tok::Le;
        } else if (peek() == '>') {
            advance();
            t.kind = Tok::Ne;
        } else {
            t.kind = Tok::Lt;
        }
        return t;
      case '>':
        if (peek() == '=') {
            advance();
            t.kind = Tok::Ge;
        } else {
            t.kind = Tok::Gt;
        }
        return t;
      default:
        fatal("%s: stray character '%c'", t.loc.toString().c_str(), c);
    }
}

} // namespace uhm::hlr
