/**
 * @file
 * The uhm_serve daemon core: a unix-domain JSONL request server over
 * the session cache and the work-stealing thread pool.
 *
 * Thread structure:
 *
 *  - one acceptor thread (poll + accept, so stop() is noticed),
 *  - one reader thread per connection: frames request lines, performs
 *    admission control, and submits admitted requests to the pool —
 *    never touches a machine, so admission latency stays in
 *    microseconds even under load,
 *  - the ThreadPool workers execute requests. A run executes as a
 *    chain of bounded Machine::runSlice() calls, the job resubmitting
 *    itself between slices, so a long run shares the workers with
 *    short requests instead of starving them (the PR-6 slice API as a
 *    fairness device).
 *
 * Backpressure: at most ServerConfig::maxQueue requests may be in
 * flight (admitted, not yet responded). Beyond that the reader writes
 * an explicit `overloaded` error response immediately — the client
 * always learns its request's fate; nothing queues unboundedly.
 *
 * Responses are written under a per-connection mutex as one atomic
 * block (header + payload), in completion order. Profile payloads come
 * from uhm::profileJsonl on the machine's RunResult — the same bytes a
 * cold `uhm_cli --profile` run emits.
 */

#ifndef UHM_SERVE_SERVER_HH
#define UHM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <map>

#include "obs/report.hh"
#include "obs/window.hh"
#include "serve/cache.hh"
#include "support/pool.hh"

namespace uhm::serve
{

/** Daemon knobs. */
struct ServerConfig
{
    std::string socketPath = "/tmp/uhm_serve.sock";
    /** Pool worker count (0 = defaultJobs()). */
    unsigned workers = 0;
    /** Session-cache capacity. */
    size_t maxSessions = 32;
    /** Max in-flight requests before `overloaded` rejections. */
    size_t maxQueue = 128;
    /** Cycle budget per runSlice() call (fairness granule). */
    uint64_t sliceCycles = 50'000;
    /** serve-track event ring capacity (--timeline-events). */
    size_t eventCapacity = 1 << 20;
    /** Rolling metrics window width in microseconds (--window). */
    uint64_t windowUs = 60'000'000;
};

/** One accepted connection (shared by its reader and its jobs). */
struct Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Write one atomic response block; errors mark the peer dead. */
    void writeBlock(const std::string &text);

    const int fd;
    std::mutex writeMutex;
    std::atomic<bool> dead{false};
};

/** The daemon. */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and start the acceptor. Fatal on bind failure. */
    void start();

    /** True once a shutdown request (or stop()) has been seen. */
    bool stopRequested() const { return stopping_.load(); }

    /** Block until stopRequested() (the daemon main loop's wait). */
    void waitForStop();

    /**
     * Stop accepting, drain in-flight requests, join every thread and
     * close the socket. Idempotent.
     */
    void stop();

    /**
     * The serve.* observability snapshot: request/cache counters,
     * wait/service/queue-depth histograms, and the serve-track event
     * trace. @p reset zeroes the counters and histograms after the
     * snapshot (the event ring always keeps accumulating).
     */
    obs::ProfileData statsProfile(bool reset);

    const ServerConfig &config() const { return config_; }

  private:
    /** One admitted request mid-flight. */
    struct Pending
    {
        std::shared_ptr<Connection> conn;
        Request req;
        std::shared_ptr<Session> session;
        bool cached = false;
        /** Server-assigned monotonic request id: the `addr` of every
         *  serve-track event this request emits, which is what the
         *  timeline exporter keys its per-request span trees on. */
        uint64_t rid = 0;
        /** Monitoring verbs (stats/metrics) stay out of the latency
         *  ledger they report — see proto.hh. */
        bool monitoring = false;
        uint64_t enqueueUs = 0;
        uint64_t beginUs = 0;
    };

    /** Microseconds since the server started. */
    uint64_t nowUs() const;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);

    /** Reader-side: admit or reject one raw request line. */
    void admitLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);

    /** First pool step: resolve the session and start the verb. */
    void startRequest(std::shared_ptr<Pending> p);

    /** One bounded execution slice; resubmits itself until HALT. */
    void runSliceStep(std::shared_ptr<Pending> p);

    /** Write the final response and retire the request. */
    void finishRequest(const std::shared_ptr<Pending> &p,
                       ResponseInfo info, const std::string &payload);

    /** Write an error response and retire the request. */
    void failRequest(const std::shared_ptr<Pending> &p,
                     const std::string &code, const std::string &message);

    /** Drop one in-flight slot and open its response write. Called
     *  with statsMutex_ held, in the same critical section that
     *  records the request's stats: once a client holds a response
     *  the ledger is settled (the metrics byte-identity contract). */
    void retireLocked(bool monitoring);

    /** Close a response write opened by retireLocked(); wakes the
     *  drain wait once nothing is in flight or mid-send. */
    void writeDone();

    /** Stamp the session-acquire event for @p p (post-acquire). */
    void recordAcquire(const std::shared_ptr<Pending> &p);

    /** One-shot stderr warning when the event ring starts dropping. */
    void maybeWarnDropsLocked();

    /** The `metrics` verb payloads (self-locking). */
    std::string metricsJson();
    std::string metricsProm();

    ServerConfig config_;
    int listenFd_ = -1;
    std::thread acceptor_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;

    std::mutex connMutex_;
    std::vector<std::thread> readers_;
    std::vector<std::weak_ptr<Connection>> conns_;

    std::unique_ptr<ThreadPool> pool_;
    SessionCache cache_;

    std::chrono::steady_clock::time_point epoch_;

    /** Guards the counters, histograms, tracer and inflight_. */
    mutable std::mutex statsMutex_;
    std::condition_variable drainCv_;
    size_t inflight_ = 0;
    uint64_t requests_ = 0;
    uint64_t responses_ = 0;
    uint64_t errors_ = 0;
    uint64_t overloaded_ = 0;
    /** Next request id (rids start at 1; 0 = never admitted). */
    uint64_t nextRid_ = 0;
    /** Monitoring-verb traffic, tracked apart from the workload ledger
     *  so the ledger the `metrics` verb reports is invariant under the
     *  act of reading it (the byte-identity contract). */
    uint64_t monitoringRequests_ = 0;
    uint64_t monitoringResponses_ = 0;
    size_t monitoringInflight_ = 0;
    /** Responses being written right now (slot already released);
     *  stop() drains these too, so teardown never races a send. */
    size_t writing_ = 0;
    /** Lifetime workload requests per verb name. */
    std::map<std::string, uint64_t> verbCounts_;
    obs::Histogram waitUs_;
    obs::Histogram serviceUs_;
    obs::Histogram queueDepth_;
    obs::RollingWindow window_;
    obs::Tracer tracer_;
    /** The drop warning fired (it is one-shot). */
    bool dropWarned_ = false;

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
};

} // namespace uhm::serve

#endif // UHM_SERVE_SERVER_HH
