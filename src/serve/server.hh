/**
 * @file
 * The uhm_serve daemon core: a unix-domain JSONL request server over
 * the session cache and the work-stealing thread pool.
 *
 * Thread structure:
 *
 *  - one acceptor thread (poll + accept, so stop() is noticed),
 *  - one reader thread per connection: frames request lines, performs
 *    admission control, and submits admitted requests to the pool —
 *    never touches a machine, so admission latency stays in
 *    microseconds even under load,
 *  - the ThreadPool workers execute requests. A run executes as a
 *    chain of bounded Machine::runSlice() calls, the job resubmitting
 *    itself between slices, so a long run shares the workers with
 *    short requests instead of starving them (the PR-6 slice API as a
 *    fairness device).
 *
 * Backpressure: at most ServerConfig::maxQueue requests may be in
 * flight (admitted, not yet responded). Beyond that the reader writes
 * an explicit `overloaded` error response immediately — the client
 * always learns its request's fate; nothing queues unboundedly.
 *
 * Responses are written under a per-connection mutex as one atomic
 * block (header + payload), in completion order. Profile payloads come
 * from uhm::profileJsonl on the machine's RunResult — the same bytes a
 * cold `uhm_cli --profile` run emits.
 */

#ifndef UHM_SERVE_SERVER_HH
#define UHM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/report.hh"
#include "serve/cache.hh"
#include "support/pool.hh"

namespace uhm::serve
{

/** Daemon knobs. */
struct ServerConfig
{
    std::string socketPath = "/tmp/uhm_serve.sock";
    /** Pool worker count (0 = defaultJobs()). */
    unsigned workers = 0;
    /** Session-cache capacity. */
    size_t maxSessions = 32;
    /** Max in-flight requests before `overloaded` rejections. */
    size_t maxQueue = 128;
    /** Cycle budget per runSlice() call (fairness granule). */
    uint64_t sliceCycles = 50'000;
    /** serve-track event ring capacity. */
    size_t eventCapacity = 1 << 16;
};

/** One accepted connection (shared by its reader and its jobs). */
struct Connection
{
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Write one atomic response block; errors mark the peer dead. */
    void writeBlock(const std::string &text);

    const int fd;
    std::mutex writeMutex;
    std::atomic<bool> dead{false};
};

/** The daemon. */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and start the acceptor. Fatal on bind failure. */
    void start();

    /** True once a shutdown request (or stop()) has been seen. */
    bool stopRequested() const { return stopping_.load(); }

    /** Block until stopRequested() (the daemon main loop's wait). */
    void waitForStop();

    /**
     * Stop accepting, drain in-flight requests, join every thread and
     * close the socket. Idempotent.
     */
    void stop();

    /**
     * The serve.* observability snapshot: request/cache counters,
     * wait/service/queue-depth histograms, and the serve-track event
     * trace. @p reset zeroes the counters and histograms after the
     * snapshot (the event ring always keeps accumulating).
     */
    obs::ProfileData statsProfile(bool reset);

    const ServerConfig &config() const { return config_; }

  private:
    /** One admitted request mid-flight. */
    struct Pending
    {
        std::shared_ptr<Connection> conn;
        Request req;
        std::shared_ptr<Session> session;
        bool cached = false;
        uint64_t enqueueUs = 0;
        uint64_t beginUs = 0;
    };

    /** Microseconds since the server started. */
    uint64_t nowUs() const;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);

    /** Reader-side: admit or reject one raw request line. */
    void admitLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);

    /** First pool step: resolve the session and start the verb. */
    void startRequest(std::shared_ptr<Pending> p);

    /** One bounded execution slice; resubmits itself until HALT. */
    void runSliceStep(std::shared_ptr<Pending> p);

    /** Write the final response and retire the request. */
    void finishRequest(const std::shared_ptr<Pending> &p,
                       ResponseInfo info, const std::string &payload);

    /** Write an error response and retire the request. */
    void failRequest(const std::shared_ptr<Pending> &p,
                     const std::string &code, const std::string &message);

    /** Drop one in-flight slot (wakes the drain wait). */
    void retire();

    ServerConfig config_;
    int listenFd_ = -1;
    std::thread acceptor_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;

    std::mutex connMutex_;
    std::vector<std::thread> readers_;
    std::vector<std::weak_ptr<Connection>> conns_;

    std::unique_ptr<ThreadPool> pool_;
    SessionCache cache_;

    std::chrono::steady_clock::time_point epoch_;

    /** Guards the counters, histograms, tracer and inflight_. */
    mutable std::mutex statsMutex_;
    std::condition_variable drainCv_;
    size_t inflight_ = 0;
    uint64_t requests_ = 0;
    uint64_t responses_ = 0;
    uint64_t errors_ = 0;
    uint64_t overloaded_ = 0;
    obs::Histogram waitUs_;
    obs::Histogram serviceUs_;
    obs::Histogram queueDepth_;
    obs::Tracer tracer_;

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
};

} // namespace uhm::serve

#endif // UHM_SERVE_SERVER_HH
