#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/logging.hh"

namespace uhm::serve
{

uint64_t
Response::uintField(const std::string &key) const
{
    const JsonValue *v = doc.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::Int ||
        v->integer < 0)
        return 0;
    return static_cast<uint64_t>(v->integer);
}

Client::Client(const std::string &socket_path)
{
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' too long", socket_path.c_str());
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0)
        fatal("connect '%s': %s", socket_path.c_str(),
              std::strerror(errno));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Client::send(const std::string &request_line)
{
    std::string text = request_line + "\n";
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::send(fd_, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("send: %s", std::strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
}

std::string
Client::readLine()
{
    for (;;) {
        size_t eol = buffer_.find('\n');
        if (eol != std::string::npos) {
            std::string line = buffer_.substr(0, eol);
            buffer_.erase(0, eol + 1);
            return line;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            fatal("connection closed by the server");
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

Response
Client::recv()
{
    Response r;
    r.header = readLine();
    std::string err;
    if (!parseJson(r.header, r.doc, err))
        fatal("malformed response header: %s", err.c_str());
    const JsonValue *ok = r.doc.find("ok");
    r.ok = ok != nullptr && ok->kind == JsonValue::Kind::Bool &&
        ok->boolean;
    r.id = r.uintField("id");
    if (const JsonValue *e = r.doc.find("error"))
        r.error = e->string;
    if (const JsonValue *m = r.doc.find("message"))
        r.message = m->string;
    uint64_t lines = r.uintField("payload_lines");
    for (uint64_t i = 0; i < lines; ++i)
        r.payload += readLine() + "\n";
    return r;
}

Response
Client::call(const std::string &request_line)
{
    send(request_line);
    return recv();
}

} // namespace uhm::serve
