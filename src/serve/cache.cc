#include "serve/cache.hh"

#include <algorithm>

#include "bench_common.hh"
#include "dir/serialize.hh"
#include "hlr/compiler.hh"
#include "support/logging.hh"
#include "workload/samples.hh"

namespace uhm::serve
{

namespace
{

/** FNV-1a over @p bytes (the same flavor the serializer trailers use). */
uint64_t
fnv1a(const void *data, size_t size)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t hash = 14695981039346656037ull;
    for (size_t i = 0; i < size; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

} // anonymous namespace

SessionCache::SessionCache(size_t max_sessions)
    : maxSessions_(std::max<size_t>(max_sessions, 1))
{
}

std::string
SessionCache::keyFor(const Request &req)
{
    std::string source_id;
    if (!req.source.empty()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "source:%016llx",
                      static_cast<unsigned long long>(
                          fnv1a(req.source.data(), req.source.size())));
        source_id = buf;
    } else if (req.program == "synthetic") {
        source_id = "synthetic:" + std::to_string(req.seed);
    } else {
        source_id = "sample:" + req.program;
    }
    return source_id + "|" + req.machine.fingerprint();
}

std::shared_ptr<Session>
SessionCache::build(const Request &req, const std::string &key)
{
    auto session = std::make_shared<Session>();
    session->key = key;
    session->keyHash = fnv1a(key.data(), key.size());
    if (!req.source.empty()) {
        session->label = req.program;
        session->program = hlr::compileSource(req.source);
    } else if (req.program == "synthetic") {
        session->label = "synthetic";
        // The same generator call uhm_cli's sweep subcommand makes, so
        // a served synthetic run diffs clean against a cold sweep.
        session->program = bench::gridWorkload(2, req.seed);
    } else {
        const workload::SampleProgram &sample =
            workload::sampleByName(req.program);
        session->label = sample.name;
        session->defaultInput = sample.input;
        session->program = hlr::compileSource(sample.source);
    }
    std::vector<uint8_t> bytes = serializeDirProgram(session->program);
    session->programHash = fnv1a(bytes.data(), bytes.size());
    session->image = encodeDir(session->program, req.machine.scheme);
    session->machine = std::make_unique<Machine>(
        *session->image, req.machine.toConfig());
    return session;
}

std::shared_ptr<Session>
SessionCache::acquire(const Request &req, bool &cached)
{
    const std::string key = keyFor(req);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = sessions_.find(key);
        if (it != sessions_.end()) {
            if (!it->second->busy) {
                it->second->busy = true;
                it->second->lastUse = ++tick_;
                ++stats_.hits;
                cached = true;
                return it->second;
            }
            // Warm but executing someone else's request: serve this
            // one from a private chain instead of waiting.
            ++stats_.busyBypass;
        } else {
            ++stats_.misses;
        }
    }

    // Build outside the lock — compiles are the slow path and must not
    // serialize against cache hits.
    std::shared_ptr<Session> session = build(req, key);
    session->busy = true;
    cached = false;

    std::lock_guard<std::mutex> lock(mutex_);
    session->lastUse = ++tick_;
    // Insert only when the slot is free; losing a build race (or a
    // busy bypass) makes this session transient.
    if (sessions_.find(key) == sessions_.end()) {
        sessions_.emplace(key, session);
        shrinkLocked();
    } else {
        session->key.clear();
    }
    return session;
}

void
SessionCache::release(const std::shared_ptr<Session> &session)
{
    std::lock_guard<std::mutex> lock(mutex_);
    session->busy = false;
    // An earlier insert may have been refused its eviction because
    // every candidate was pinned; finish the deferred shrink now.
    shrinkLocked();
}

void
SessionCache::shrinkLocked()
{
    while (sessions_.size() > maxSessions_) {
        auto victim = sessions_.end();
        for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
            if (it->second->busy)
                continue;
            if (victim == sessions_.end() ||
                it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == sessions_.end()) {
            // Everything is pinned mid-run; refuse rather than tear.
            ++stats_.evictRejected;
            return;
        }
        ++stats_.evictions;
        sessions_.erase(victim);
    }
}

CacheStats
SessionCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

size_t
SessionCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

} // namespace uhm::serve
