/**
 * @file
 * The uhm_serve wire protocol.
 *
 * Line-delimited JSON over a unix-domain stream socket. Each request
 * is one JSON object on one line; each response is one header object
 * on one line, followed by `payload_lines` verbatim payload lines
 * (themselves JSON objects — the stream as a whole stays JSONL), so a
 * client can frame a response by reading exactly
 * 1 + header.payload_lines lines. Requests may be pipelined on one
 * connection; responses carry the request's `id` and are written in
 * completion order, each as one atomic block.
 *
 * Request grammar (all fields optional unless noted; unknown fields
 * are rejected so a typo cannot silently change a run):
 *
 *   {"verb": "ping" | "compile" | "encode" | "run" | "profile" |
 *            "sweep" | "stats" | "shutdown" | "metrics", // required
 *    "id": <uint>,                 // echoed in the response (default 0)
 *    "program": <sample name | "synthetic">,
 *    "source": <inline Contour source, overrides "program">,
 *    "seed": <uint>,               // "synthetic" generator seed (1978)
 *    "input": [<int>, ...],        // read-statement input
 *    "machine": "conventional"|"cached"|"dtb"|"dtb2"|"tiered",
 *    "encoding": "expanded"|"packed"|"contextual"|"huffman"|
 *                "pair-huffman"|"quantized",
 *    "dispatch": "switch"|"threaded",
 *    "dtb_bytes": <uint>, "assoc": <uint>,
 *    "tier_threshold": <uint>, "trace_cap": <uint>,
 *    "trace_bytes": <uint>,        // tiered machines only, like the CLI
 *    "sample_interval": <uint>,
 *    "profile": <bool>,            // run: attach the profile payload
 *    "disasm": <bool>,             // compile: attach the disassembly
 *    "programs": [<name>, ...],    // sweep points (default: the corpus)
 *    "reset": <bool>,              // stats: zero the counters after
 *    "format": "json"|"prometheus"} // metrics payload format
 *
 * The metrics verb returns the rolling-window + lifetime aggregates
 * (src/obs/window.hh) as one JSON line ("format":"json", the default)
 * or as a Prometheus text-exposition payload ("format":"prometheus").
 * The prometheus payload's lines are verbatim text, not JSON — the
 * one payload whose lines are not JSONL; framing is unaffected since
 * clients count lines, never parse them. Monitoring verbs (stats,
 * metrics) are excluded from the latency/queue ledger they report,
 * so a quiesced daemon answers concurrent metrics requests with
 * byte-identical payloads.
 *
 * Response header:
 *
 *   {"type":"response","id":N,"ok":true,"verb":...,
 *    "cached":true|false,          // run/profile: session-cache hit
 *    "payload_lines":K,            // verbatim lines that follow
 *    "output":[...],               // run/profile: WRITE values
 *    "cycles":N,"dir_instrs":N,    // run/profile summary
 *    "wait_us":N,"service_us":N}   // queue wait / execution time
 *
 * Error header (never followed by payload lines):
 *
 *   {"type":"response","id":N,"ok":false,
 *    "error":"bad_request"|"overloaded"|"shutting_down",
 *    "message":"..."}
 *
 * The profile payload of a run/profile response and the report payload
 * of a sweep response are byte-identical to what a cold `uhm_cli`
 * process emits for the same request (--profile= and sweep --out=
 * respectively) — CI diffs the two.
 */

#ifndef UHM_SERVE_PROTO_HH
#define UHM_SERVE_PROTO_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uhm/machine.hh"

namespace uhm::serve
{

// ---------------------------------------------------------------------
// A minimal JSON value + parser (the writer side reuses JsonWriter).
// ---------------------------------------------------------------------

/** One parsed JSON value. */
struct JsonValue
{
    enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array,
                                Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    int64_t integer = 0;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered; duplicate keys are a parse error. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const
    {
        return kind == Kind::Int || kind == Kind::Double;
    }

    /** Object member by key; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse one complete JSON document from @p text (trailing whitespace
 * allowed, trailing garbage is an error). @return false with a
 * diagnostic in @p err on malformed input.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &err);

// ---------------------------------------------------------------------
// Machine settings: the request fields that select a machine config.
// ---------------------------------------------------------------------

/**
 * The knobs a request (or the uhm_cli command line) may set on the
 * simulated machine, plus the one mapping from them to a
 * MachineConfig. uhm_cli's single-run path and the server build their
 * configs through this struct so a served run cannot drift from a cold
 * CLI run of the same request.
 */
struct MachineSettings
{
    MachineKind kind = MachineKind::Dtb;
    DispatchMode dispatch = DispatchMode::Switch;
    EncodingScheme scheme = EncodingScheme::Huffman;
    uint64_t dtbBytes = 4096;
    unsigned assoc = 4;
    uint32_t tierThreshold = 8;
    size_t traceCap = 64;
    uint64_t traceBytes = 8192;
    uint64_t sampleInterval = 0;

    /**
     * The MachineConfig uhm_cli would build for these settings (the
     * icache mirrors the DTB sizing knobs, exactly as the CLI does).
     * Event-tracing fields stay at their defaults; callers layer those
     * on top.
     */
    MachineConfig toConfig() const;

    /**
     * Stable fingerprint of everything that affects a session's
     * compiled/warm state — the config half of a session-cache key.
     */
    std::string fingerprint() const;
};

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/** The request verbs. */
enum class Verb : uint8_t
{
    Ping,     ///< liveness check; header only
    Compile,  ///< resolve + compile; optional disassembly
    Encode,   ///< compile + encode; image size in the header
    Run,      ///< execute; profile payload when "profile":true
    Profile,  ///< run with the profile payload always attached
    Sweep,    ///< batch sweep; payload = the sweep JSONL report
    Stats,    ///< serve.* counters/histograms as a profile payload
    Shutdown, ///< acknowledge, then stop the server
    Metrics,  ///< rolling-window + lifetime aggregates (json/prometheus)
};

/** Printable verb name ("run"). */
const char *verbName(Verb verb);

/** Parse a verb name; @return false when unknown. */
bool parseVerb(const std::string &name, Verb &out);

/** One decoded request. */
struct Request
{
    uint64_t id = 0;
    Verb verb = Verb::Ping;
    /** Sample name or "synthetic"; empty = default ("qsort"). */
    std::string program = "qsort";
    /** Inline Contour source; overrides program when non-empty. */
    std::string source;
    uint64_t seed = 1978;
    std::vector<int64_t> input;
    /** True when the request carried an explicit "input". */
    bool inputGiven = false;
    MachineSettings machine;
    /** First tier-only field seen (tier flags on a non-tiered machine
     *  are a bad_request, matching the CLI). Empty = none. */
    std::string tierFieldSeen;
    bool profile = false;
    bool disasm = false;
    bool resetStats = false;
    /** Sweep points; empty = the whole sample corpus + synthetic. */
    std::vector<std::string> programs;
    /** Metrics payload format ("json" or "prometheus"). */
    std::string format = "json";
    /** True when the request carried an explicit "format" (only legal
     *  on the metrics verb, like tier fields on a tiered machine). */
    bool formatGiven = false;
};

/**
 * Decode one request line. @return false with a human-readable
 * diagnostic in @p err on malformed JSON, an unknown verb, an unknown
 * field, or a field of the wrong type.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &err);

// ---------------------------------------------------------------------
// Response headers (writer side).
// ---------------------------------------------------------------------

/** The non-payload half of a success response. */
struct ResponseInfo
{
    uint64_t id = 0;
    Verb verb = Verb::Ping;
    /** run/profile: the session was warm. */
    bool cached = false;
    bool hasCached = false;
    /** run/profile summary. */
    std::vector<int64_t> output;
    bool hasRunSummary = false;
    uint64_t cycles = 0;
    uint64_t dirInstrs = 0;
    /** compile/encode summary. */
    bool hasProgramSummary = false;
    uint64_t instrs = 0;
    uint64_t programHash = 0;
    uint64_t imageBits = 0;
    /** compile: the disassembly (escaped into the header). */
    std::string disasm;
    /** Queueing observability. */
    uint64_t waitUs = 0;
    uint64_t serviceUs = 0;
};

/**
 * Render a success header line (no trailing newline) announcing
 * @p payload_lines verbatim lines to follow.
 */
std::string successHeader(const ResponseInfo &info,
                          size_t payload_lines);

/** Render an error header line (no trailing newline). */
std::string errorHeader(uint64_t id, const std::string &code,
                        const std::string &message);

} // namespace uhm::serve

#endif // UHM_SERVE_PROTO_HH
