/**
 * @file
 * Client side of the uhm_serve protocol: connect, send request lines,
 * frame responses (header + payload_lines verbatim lines).
 */

#ifndef UHM_SERVE_CLIENT_HH
#define UHM_SERVE_CLIENT_HH

#include <string>

#include "serve/proto.hh"

namespace uhm::serve
{

/** One framed response. */
struct Response
{
    /** The raw header line (no newline). */
    std::string header;
    /** The parsed header. */
    JsonValue doc;
    /** The verbatim payload lines, concatenated ('\n'-terminated). */
    std::string payload;

    bool ok = false;
    uint64_t id = 0;
    /** Error code when !ok ("bad_request", "overloaded", ...). */
    std::string error;
    std::string message;

    /** Header field as unsigned (0 when absent). */
    uint64_t uintField(const std::string &key) const;
};

/** A blocking connection to a uhm_serve daemon. */
class Client
{
  public:
    /** Connect to @p socket_path; fatal on failure. */
    explicit Client(const std::string &socket_path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send one request line (newline appended). Fatal on error. */
    void send(const std::string &request_line);

    /**
     * Read the next response (header + its payload). Fatal on a
     * protocol violation or a closed connection.
     */
    Response recv();

    /** send() + recv() — one synchronous round trip. */
    Response call(const std::string &request_line);

  private:
    /** Next '\n'-terminated line (without the newline). */
    std::string readLine();

    int fd_ = -1;
    std::string buffer_;
};

} // namespace uhm::serve

#endif // UHM_SERVE_CLIENT_HH
