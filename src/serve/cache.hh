/**
 * @file
 * The session cache: warm compiled/encoded/instantiated state, keyed
 * by what the request asked to run.
 *
 * A Session is the full artifact chain for one (program, machine
 * settings) pair — the compiled DirProgram, its encoded image (the
 * decode memo lives inside the image's decoder state), and a
 * constructed Machine. Machine::beginRun() fully resets the machine,
 * so re-running a warm session is byte-identical to a cold one; the
 * cache only skips the compile/encode/construct work, never the reset.
 *
 * Keying: source identity × MachineSettings::fingerprint(). The run
 * input is deliberately NOT part of the key — beginRun() takes the
 * input per run, so one warm session serves every input.
 *
 * Eviction: bounded LRU over *idle* sessions. A session that is
 * executing a request is busy and pinned — an eviction that would
 * select it is rejected (serve.cache.evict_rejected) rather than
 * tearing a machine out from under a run. When the cache is full of
 * busy sessions, or a second request arrives for a busy session, the
 * requester gets a private transient session (serve.cache.busy_bypass)
 * that is dropped after the run instead of inserted.
 */

#ifndef UHM_SERVE_CACHE_HH
#define UHM_SERVE_CACHE_HH

#include <map>
#include <memory>
#include <mutex>

#include "serve/proto.hh"

namespace uhm::serve
{

/** One warm artifact chain; owned by the cache (or one request). */
struct Session
{
    /** Cache key (empty for transient sessions). */
    std::string key;
    /** FNV-1a of the cache key — the session tag serve-track acquire
     *  events carry (stable even for transient sessions, whose key is
     *  cleared on the losing side of a build race). */
    uint64_t keyHash = 0;
    /** Program name for profile meta (mirrors uhm_cli's). */
    std::string label;
    DirProgram program;
    /** The sample's canonical input (empty for synthetic/source). */
    std::vector<int64_t> defaultInput;
    /** FNV-1a of the serialized program. */
    uint64_t programHash = 0;
    std::unique_ptr<EncodedDir> image;
    std::unique_ptr<Machine> machine;
    /** Executing a request right now (pinned against eviction). */
    bool busy = false;
    /** Logical LRU clock value of the last acquire. */
    uint64_t lastUse = 0;
};

/** Cache traffic counters (served under serve.cache.*). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Evictions refused because every candidate was busy. */
    uint64_t evictRejected = 0;
    /** Requests served by a transient session (target was busy). */
    uint64_t busyBypass = 0;
};

/** Bounded LRU map of warm sessions. Thread-safe. */
class SessionCache
{
  public:
    /** @param max_sessions capacity in sessions (min 1). */
    explicit SessionCache(size_t max_sessions);

    /**
     * Get a session for @p req, building one on a miss. The returned
     * session is marked busy until release(). @p cached is true when
     * the session was already warm (and idle) in the cache. Throws
     * FatalError for unresolvable programs / malformed source.
     */
    std::shared_ptr<Session> acquire(const Request &req, bool &cached);

    /** Mark @p session idle again. */
    void release(const std::shared_ptr<Session> &session);

    CacheStats stats() const;

    /** Sessions currently cached. */
    size_t size() const;

    /** The cache key acquire() would use for @p req. */
    static std::string keyFor(const Request &req);

  private:
    /** Compile/encode/construct the chain for @p req (no lock held). */
    static std::shared_ptr<Session> build(const Request &req,
                                          const std::string &key);

    /** Evict idle-LRU entries until size <= capacity. Lock held. */
    void shrinkLocked();

    mutable std::mutex mutex_;
    size_t maxSessions_;
    uint64_t tick_ = 0;
    std::map<std::string, std::shared_ptr<Session>> sessions_;
    CacheStats stats_;
};

} // namespace uhm::serve

#endif // UHM_SERVE_CACHE_HH
