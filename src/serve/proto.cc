#include "serve/proto.hh"

#include <cctype>
#include <cstdio>

#include "support/json.hh"

namespace uhm::serve
{

namespace
{

// ---------------------------------------------------------------------
// JSON parsing.
// ---------------------------------------------------------------------

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after the JSON value");
        return true;
    }

  private:
    /** Deep nesting is an attack, not a request. */
    static constexpr int maxDepth = 32;

    bool
    fail(const std::string &what)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " at offset %zu", pos_);
        err_ = what + buf;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n') {
            if (text_.compare(pos_, 4, "null") != 0)
                return fail("bad literal");
            pos_ += 4;
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseBool(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() && std::isdigit(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool integral = true;
        if (pos_ < text_.size() &&
            (text_[pos_] == '.' || text_[pos_] == 'e' ||
             text_[pos_] == 'E')) {
            integral = false;
            while (pos_ < text_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' || text_[pos_] == '+' ||
                    text_[pos_] == '-'))
                ++pos_;
        }
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
            return fail("bad number");
        std::string token = text_.substr(start, pos_ - start);
        try {
            if (integral) {
                out.kind = JsonValue::Kind::Int;
                out.integer = std::stoll(token);
                out.number = static_cast<double>(out.integer);
            } else {
                out.kind = JsonValue::Kind::Double;
                out.number = std::stod(token);
                out.integer = static_cast<int64_t>(out.number);
            }
        } catch (const std::exception &) {
            return fail("number out of range");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are not reassembled — requests are ASCII in
                // practice and the bytes round-trip).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected a string key");
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto &kv : out.object) {
                if (kv.first == key)
                    return fail("duplicate key '" + key + "'");
            }
            skipSpace();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string &err_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Request-field helpers.
// ---------------------------------------------------------------------

bool
parseMachineKind(const std::string &name, MachineKind &out)
{
    static constexpr MachineKind kinds[] = {
        MachineKind::Conventional, MachineKind::Cached,
        MachineKind::Dtb,          MachineKind::Dtb2,
        MachineKind::Tiered,
    };
    for (MachineKind kind : kinds) {
        if (name == machineKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
parseEncodingScheme(const std::string &name, EncodingScheme &out)
{
    for (EncodingScheme scheme : allEncodingSchemes()) {
        if (name == encodingName(scheme)) {
            out = scheme;
            return true;
        }
    }
    return false;
}

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : object) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    JsonParser parser(text, err);
    return parser.parseDocument(out);
}

MachineConfig
MachineSettings::toConfig() const
{
    MachineConfig cfg;
    cfg.kind = kind;
    cfg.dispatch = dispatch;
    cfg.dtb.capacityBytes = dtbBytes;
    cfg.dtb.assoc = assoc;
    cfg.icache.capacityBytes = dtbBytes;
    cfg.icache.assoc = assoc;
    cfg.tier.hotThreshold = tierThreshold;
    cfg.tier.traceCap = traceCap;
    cfg.traceCache.capacityBytes = traceBytes;
    cfg.sampleIntervalCycles = sampleInterval;
    return cfg;
}

std::string
MachineSettings::fingerprint() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "m=%s;d=%s;e=%s;dtb=%llu;assoc=%u;tt=%u;tc=%zu;"
                  "tb=%llu;si=%llu",
                  machineKindName(kind), dispatchModeName(dispatch),
                  encodingName(scheme),
                  static_cast<unsigned long long>(dtbBytes), assoc,
                  tierThreshold, traceCap,
                  static_cast<unsigned long long>(traceBytes),
                  static_cast<unsigned long long>(sampleInterval));
    return buf;
}

const char *
verbName(Verb verb)
{
    switch (verb) {
      case Verb::Ping:     return "ping";
      case Verb::Compile:  return "compile";
      case Verb::Encode:   return "encode";
      case Verb::Run:      return "run";
      case Verb::Profile:  return "profile";
      case Verb::Sweep:    return "sweep";
      case Verb::Stats:    return "stats";
      case Verb::Shutdown: return "shutdown";
      case Verb::Metrics:  return "metrics";
    }
    return "?";
}

bool
parseVerb(const std::string &name, Verb &out)
{
    static constexpr Verb verbs[] = {
        Verb::Ping, Verb::Compile, Verb::Encode,   Verb::Run,
        Verb::Profile, Verb::Sweep, Verb::Stats, Verb::Shutdown,
        Verb::Metrics,
    };
    for (Verb verb : verbs) {
        if (name == verbName(verb)) {
            out = verb;
            return true;
        }
    }
    return false;
}

bool
parseRequest(const std::string &line, Request &out, std::string &err)
{
    out = Request{};
    JsonValue doc;
    if (!parseJson(line, doc, err))
        return false;
    if (doc.kind != JsonValue::Kind::Object) {
        err = "request must be a JSON object";
        return false;
    }

    auto wantString = [&err](const JsonValue &v, const char *field,
                             std::string &into) {
        if (v.kind != JsonValue::Kind::String) {
            err = std::string("'") + field + "' must be a string";
            return false;
        }
        into = v.string;
        return true;
    };
    auto wantUint = [&err](const JsonValue &v, const char *field,
                           uint64_t &into) {
        if (v.kind != JsonValue::Kind::Int || v.integer < 0) {
            err = std::string("'") + field +
                "' must be a non-negative integer";
            return false;
        }
        into = static_cast<uint64_t>(v.integer);
        return true;
    };
    auto wantBool = [&err](const JsonValue &v, const char *field,
                           bool &into) {
        if (v.kind != JsonValue::Kind::Bool) {
            err = std::string("'") + field + "' must be a boolean";
            return false;
        }
        into = v.boolean;
        return true;
    };

    bool sawVerb = false;
    for (const auto &kv : doc.object) {
        const std::string &key = kv.first;
        const JsonValue &v = kv.second;
        if (key == "id") {
            if (!wantUint(v, "id", out.id))
                return false;
        } else if (key == "verb") {
            std::string name;
            if (!wantString(v, "verb", name))
                return false;
            if (!parseVerb(name, out.verb)) {
                err = "unknown verb '" + name + "'";
                return false;
            }
            sawVerb = true;
        } else if (key == "program") {
            if (!wantString(v, "program", out.program))
                return false;
        } else if (key == "source") {
            if (!wantString(v, "source", out.source))
                return false;
        } else if (key == "seed") {
            if (!wantUint(v, "seed", out.seed))
                return false;
        } else if (key == "input") {
            if (v.kind != JsonValue::Kind::Array) {
                err = "'input' must be an array of integers";
                return false;
            }
            out.input.clear();
            for (const JsonValue &element : v.array) {
                if (element.kind != JsonValue::Kind::Int) {
                    err = "'input' must be an array of integers";
                    return false;
                }
                out.input.push_back(element.integer);
            }
            out.inputGiven = true;
        } else if (key == "machine") {
            std::string name;
            if (!wantString(v, "machine", name))
                return false;
            if (!parseMachineKind(name, out.machine.kind)) {
                err = "unknown machine kind '" + name + "'";
                return false;
            }
        } else if (key == "encoding") {
            std::string name;
            if (!wantString(v, "encoding", name))
                return false;
            if (!parseEncodingScheme(name, out.machine.scheme)) {
                err = "unknown encoding '" + name + "'";
                return false;
            }
        } else if (key == "dispatch") {
            std::string name;
            if (!wantString(v, "dispatch", name))
                return false;
            if (!parseDispatchMode(name, out.machine.dispatch)) {
                err = "unknown dispatch mode '" + name + "'";
                return false;
            }
        } else if (key == "dtb_bytes") {
            if (!wantUint(v, "dtb_bytes", out.machine.dtbBytes))
                return false;
        } else if (key == "assoc") {
            uint64_t n = 0;
            if (!wantUint(v, "assoc", n))
                return false;
            out.machine.assoc = static_cast<unsigned>(n);
        } else if (key == "tier_threshold") {
            uint64_t n = 0;
            if (!wantUint(v, "tier_threshold", n))
                return false;
            out.machine.tierThreshold = static_cast<uint32_t>(n);
            out.tierFieldSeen = "tier_threshold";
        } else if (key == "trace_cap") {
            uint64_t n = 0;
            if (!wantUint(v, "trace_cap", n))
                return false;
            out.machine.traceCap = n;
            out.tierFieldSeen = "trace_cap";
        } else if (key == "trace_bytes") {
            if (!wantUint(v, "trace_bytes", out.machine.traceBytes))
                return false;
            out.tierFieldSeen = "trace_bytes";
        } else if (key == "sample_interval") {
            if (!wantUint(v, "sample_interval",
                          out.machine.sampleInterval))
                return false;
        } else if (key == "profile") {
            if (!wantBool(v, "profile", out.profile))
                return false;
        } else if (key == "disasm") {
            if (!wantBool(v, "disasm", out.disasm))
                return false;
        } else if (key == "reset") {
            if (!wantBool(v, "reset", out.resetStats))
                return false;
        } else if (key == "format") {
            if (!wantString(v, "format", out.format))
                return false;
            if (out.format != "json" && out.format != "prometheus") {
                err = "'format' must be \"json\" or \"prometheus\" "
                      "(got '" + out.format + "')";
                return false;
            }
            out.formatGiven = true;
        } else if (key == "programs") {
            if (v.kind != JsonValue::Kind::Array) {
                err = "'programs' must be an array of names";
                return false;
            }
            out.programs.clear();
            for (const JsonValue &element : v.array) {
                if (element.kind != JsonValue::Kind::String) {
                    err = "'programs' must be an array of names";
                    return false;
                }
                out.programs.push_back(element.string);
            }
        } else {
            err = "unknown field '" + key + "'";
            return false;
        }
    }
    if (!sawVerb) {
        err = "missing 'verb'";
        return false;
    }
    // Tier fields on a non-tiered machine are an error, not a no-op —
    // exactly the uhm_cli contract for the corresponding flags.
    if (!out.tierFieldSeen.empty() &&
        out.machine.kind != MachineKind::Tiered) {
        err = "'" + out.tierFieldSeen +
            "' only applies to \"machine\":\"tiered\" (got '" +
            machineKindName(out.machine.kind) + "')";
        return false;
    }
    // A payload format on a verb that has no formattable payload is a
    // typo'd request, not a preference — same contract as tier fields.
    if (out.formatGiven && out.verb != Verb::Metrics) {
        err = "'format' only applies to \"verb\":\"metrics\" (got '" +
            std::string(verbName(out.verb)) + "')";
        return false;
    }
    if (out.verb == Verb::Profile)
        out.profile = true;
    return true;
}

std::string
successHeader(const ResponseInfo &info, size_t payload_lines)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("type").value("response");
    jw.key("id").value(info.id);
    jw.key("ok").value(true);
    jw.key("verb").value(verbName(info.verb));
    if (info.hasCached)
        jw.key("cached").value(info.cached);
    jw.key("payload_lines").value(
        static_cast<uint64_t>(payload_lines));
    if (info.hasRunSummary) {
        jw.key("output").beginArray();
        for (int64_t v : info.output)
            jw.value(v);
        jw.endArray();
        jw.key("cycles").value(info.cycles);
        jw.key("dir_instrs").value(info.dirInstrs);
    }
    if (info.hasProgramSummary) {
        jw.key("instrs").value(info.instrs);
        // Hex string: a raw 64-bit hash can exceed what JSON integers
        // (and this protocol's int64 parser) can carry.
        char hash[24];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(
                          info.programHash));
        jw.key("program_hash").value(hash);
        if (info.imageBits != 0)
            jw.key("image_bits").value(info.imageBits);
        if (!info.disasm.empty())
            jw.key("disasm").value(info.disasm);
    }
    jw.key("wait_us").value(info.waitUs);
    jw.key("service_us").value(info.serviceUs);
    jw.endObject();
    return jw.str();
}

std::string
errorHeader(uint64_t id, const std::string &code,
            const std::string &message)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("type").value("response");
    jw.key("id").value(id);
    jw.key("ok").value(false);
    jw.key("error").value(code);
    jw.key("message").value(message);
    jw.endObject();
    return jw.str();
}

} // namespace uhm::serve
