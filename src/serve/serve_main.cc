/**
 * @file
 * uhm_serve: the persistent UHM daemon.
 *
 * Binds a unix-domain socket, serves line-delimited JSON requests (see
 * serve/proto.hh for the grammar) and runs until SIGINT/SIGTERM or a
 * `{"verb":"shutdown"}` request. On exit it can dump the serve-track
 * timeline (--timeline=) and the serve.* counters (--stats).
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/emit.hh"
#include "serve/server.hh"
#include "support/logging.hh"

namespace
{

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int)
{
    g_signal = 1;
}

void
printHelp(std::FILE *out)
{
    std::fputs(
        "usage: uhm_serve [options]\n"
        "\n"
        "Serve UHM simulations over a unix-domain socket (JSONL\n"
        "protocol; see src/serve/proto.hh). Runs until SIGINT,\n"
        "SIGTERM or a {\"verb\":\"shutdown\"} request.\n"
        "\n"
        "options:\n"
        "  --socket=PATH        listen path "
        "(default /tmp/uhm_serve.sock)\n"
        "  --workers=N          pool workers (default: UHM_JOBS or "
        "hardware)\n"
        "  --max-sessions=N     session-cache capacity (default 32)\n"
        "  --max-queue=N        in-flight cap before 'overloaded' "
        "(default 128)\n"
        "  --slice-cycles=N     cycles per execution slice "
        "(default 50000)\n"
        "  --timeline=FILE      dump the serve-track Chrome trace on "
        "exit\n"
        "  --timeline-events=N  serve-track event ring capacity "
        "(default 1048576)\n"
        "  --window=SECS        rolling metrics window width "
        "(default 60)\n"
        "  --stats              dump serve.* counters to stderr on "
        "exit\n"
        "  --help               this text\n",
        out);
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    uhm::serve::ServerConfig cfg;
    std::string timeline_path;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        // Strict positive integer: the whole text must parse and the
        // result must be >= 1, so `--timeline-events=0` (a ring that
        // can hold nothing) and trailing garbage both fail loudly.
        auto uintValue = [&](const char *prefix) -> uint64_t {
            const std::string text = value(prefix);
            uint64_t parsed = 0;
            size_t used = 0;
            try {
                parsed = std::stoull(text, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (text.empty() || used != text.size() || parsed == 0)
                uhm::fatal("%sN needs a positive integer (got '%s')",
                           prefix, text.c_str());
            return parsed;
        };
        if (arg.rfind("--socket=", 0) == 0)
            cfg.socketPath = value("--socket=");
        else if (arg.rfind("--workers=", 0) == 0)
            cfg.workers = static_cast<unsigned>(
                std::stoul(value("--workers=")));
        else if (arg.rfind("--max-sessions=", 0) == 0)
            cfg.maxSessions = std::stoull(value("--max-sessions="));
        else if (arg.rfind("--max-queue=", 0) == 0)
            cfg.maxQueue = std::stoull(value("--max-queue="));
        else if (arg.rfind("--slice-cycles=", 0) == 0)
            cfg.sliceCycles = std::stoull(value("--slice-cycles="));
        else if (arg.rfind("--timeline=", 0) == 0)
            timeline_path = value("--timeline=");
        else if (arg.rfind("--timeline-events=", 0) == 0)
            cfg.eventCapacity = uintValue("--timeline-events=");
        else if (arg.rfind("--window=", 0) == 0)
            cfg.windowUs = uintValue("--window=") * 1'000'000;
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            return 0;
        } else {
            printHelp(stderr);
            uhm::fatal("unknown option '%s'", arg.c_str());
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    uhm::serve::Server server(cfg);
    server.start();
    std::fprintf(stderr, "# uhm_serve: listening on %s\n",
                 cfg.socketPath.c_str());

    while (!server.stopRequested() && g_signal == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();

    uhm::obs::ProfileData profile = server.statsProfile(false);
    if (stats) {
        for (const auto &kv : profile.counters)
            std::fprintf(stderr, "# %s = %llu\n", kv.first.c_str(),
                         static_cast<unsigned long long>(kv.second));
    }
    if (!timeline_path.empty())
        uhm::obs::emitChromeTrace(profile, timeline_path);
    std::fprintf(stderr, "# uhm_serve: stopped\n");
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
