/**
 * @file
 * uhm_client: command-line client for a running uhm_serve daemon.
 *
 * Mirrors uhm_cli's output conventions so served results diff cleanly
 * against cold CLI runs: run output values go to stdout one per line,
 * the profile payload goes to --out= (default: stderr), a sweep/stats
 * payload goes to --out= (default: stdout).
 *
 * --jobs=N opens N connections and sends the same request
 * concurrently; the client then verifies every response carried
 * byte-identical payloads and identical output values, exiting 1 on
 * any divergence — the wire-level determinism check used by the tests
 * and the CI smoke job.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace
{

struct Options
{
    std::string socketPath = "/tmp/uhm_serve.sock";
    std::string verb = "run";
    std::string program;
    std::vector<std::string> positional;
    std::string machine, encoding, dispatch;
    std::string input; // comma-separated
    bool haveSeed = false;
    uint64_t seed = 0;
    bool profile = false;
    bool disasm = false;
    bool reset = false;
    std::string outPath;
    std::string rawJson;
    unsigned jobs = 1;
    uint64_t id = 0;
    /** metrics payload format ("" = daemon default, json). */
    std::string format;
    /** --watch refresh period; watching when > 0. */
    double watchSecs = 0.0;
    /** --count: watch iterations (0 = until interrupted). */
    uint64_t count = 0;
};

void
printHelp(std::FILE *out)
{
    std::fputs(
        "usage: uhm_client [options] [program ...]\n"
        "\n"
        "Send one request to a uhm_serve daemon and print the\n"
        "response. Run output values go to stdout (like uhm_cli);\n"
        "payloads go to --out=.\n"
        "\n"
        "options:\n"
        "  --socket=PATH      daemon socket "
        "(default /tmp/uhm_serve.sock)\n"
        "  --verb=V           ping|compile|encode|run|profile|sweep|"
        "stats|metrics|shutdown (default run)\n"
        "  --format=F         metrics payload: json|prometheus "
        "(default json)\n"
        "  --watch=SECS       live monitor: poll the metrics verb "
        "every SECS seconds\n"
        "  --count=N          stop --watch after N refreshes "
        "(default: until ^C)\n"
        "  --machine=KIND     conventional|cached|dtb|dtb2|tiered\n"
        "  --encoding=E       expanded|packed|contextual|huffman|"
        "pair-huffman|quantized\n"
        "  --dispatch=MODE    switch|threaded\n"
        "  --input=a,b,c      read-statement input values\n"
        "  --seed=N           synthetic workload seed\n"
        "  --profile          attach the profile payload to a run\n"
        "  --disasm           attach the disassembly to a compile\n"
        "  --reset            stats: zero the counters after\n"
        "  --out=FILE         write the payload to FILE\n"
        "  --id=N             request id (fan-out uses N..N+jobs-1)\n"
        "  --jobs=N           send N concurrent copies and verify "
        "byte-identical responses\n"
        "  --json=RAW         send RAW as the request line verbatim\n"
        "  --help             this text\n",
        out);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--socket=", 0) == 0)
            opts.socketPath = value("--socket=");
        else if (arg.rfind("--verb=", 0) == 0)
            opts.verb = value("--verb=");
        else if (arg.rfind("--machine=", 0) == 0)
            opts.machine = value("--machine=");
        else if (arg.rfind("--encoding=", 0) == 0)
            opts.encoding = value("--encoding=");
        else if (arg.rfind("--dispatch=", 0) == 0)
            opts.dispatch = value("--dispatch=");
        else if (arg.rfind("--input=", 0) == 0)
            opts.input = value("--input=");
        else if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = std::stoull(value("--seed="));
            opts.haveSeed = true;
        } else if (arg == "--profile")
            opts.profile = true;
        else if (arg == "--disasm")
            opts.disasm = true;
        else if (arg == "--reset")
            opts.reset = true;
        else if (arg.rfind("--out=", 0) == 0)
            opts.outPath = value("--out=");
        else if (arg.rfind("--id=", 0) == 0)
            opts.id = std::stoull(value("--id="));
        else if (arg.rfind("--jobs=", 0) == 0)
            opts.jobs = static_cast<unsigned>(
                std::stoul(value("--jobs=")));
        else if (arg.rfind("--format=", 0) == 0)
            opts.format = value("--format=");
        else if (arg.rfind("--watch=", 0) == 0) {
            opts.watchSecs = std::stod(value("--watch="));
            if (!(opts.watchSecs > 0.0))
                uhm::fatal("--watch=SECS needs a positive interval");
        } else if (arg.rfind("--count=", 0) == 0)
            opts.count = std::stoull(value("--count="));
        else if (arg.rfind("--json=", 0) == 0)
            opts.rawJson = value("--json=");
        else if (arg == "--help" || arg == "-h") {
            printHelp(stdout);
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            printHelp(stderr);
            uhm::fatal("unknown option '%s'", arg.c_str());
        } else {
            opts.positional.push_back(arg);
        }
    }
    if (!opts.positional.empty())
        opts.program = opts.positional.front();
    return opts;
}

/** Build the request line opts describes (id overridden per copy). */
std::string
buildRequest(const Options &opts, uint64_t id)
{
    uhm::JsonWriter jw;
    jw.beginObject();
    jw.key("id").value(id);
    jw.key("verb").value(opts.verb);
    if (!opts.program.empty() && opts.verb != "sweep")
        jw.key("program").value(opts.program);
    if (opts.verb == "sweep" && !opts.positional.empty()) {
        jw.key("programs").beginArray();
        for (const std::string &name : opts.positional)
            jw.value(name);
        jw.endArray();
    }
    if (!opts.machine.empty())
        jw.key("machine").value(opts.machine);
    if (!opts.encoding.empty())
        jw.key("encoding").value(opts.encoding);
    if (!opts.dispatch.empty())
        jw.key("dispatch").value(opts.dispatch);
    if (opts.haveSeed)
        jw.key("seed").value(opts.seed);
    if (!opts.input.empty()) {
        jw.key("input").beginArray();
        std::string token;
        std::istringstream is(opts.input);
        while (std::getline(is, token, ','))
            jw.value(static_cast<int64_t>(std::stoll(token)));
        jw.endArray();
    }
    if (opts.profile)
        jw.key("profile").value(true);
    if (opts.disasm)
        jw.key("disasm").value(true);
    if (opts.reset)
        jw.key("reset").value(true);
    if (!opts.format.empty())
        jw.key("format").value(opts.format);
    jw.endObject();
    return jw.str();
}

/** Print one response the way uhm_cli would have. */
int
printResponse(const Options &opts, const uhm::serve::Response &r)
{
    if (!r.ok) {
        std::fprintf(stderr, "error: %s: %s\n", r.error.c_str(),
                     r.message.c_str());
        return 1;
    }
    if (const uhm::serve::JsonValue *out = r.doc.find("output")) {
        for (const uhm::serve::JsonValue &v : out->array)
            std::printf("%lld\n", static_cast<long long>(v.integer));
    }
    if (const uhm::serve::JsonValue *d = r.doc.find("disasm"))
        std::fputs(d->string.c_str(), stdout);
    std::fprintf(stderr,
                 "# id %llu: ok, %zu payload lines, wait %llu us, "
                 "service %llu us%s\n",
                 static_cast<unsigned long long>(r.id),
                 static_cast<size_t>(r.uintField("payload_lines")),
                 static_cast<unsigned long long>(r.uintField("wait_us")),
                 static_cast<unsigned long long>(
                     r.uintField("service_us")),
                 r.doc.find("cached") != nullptr &&
                         r.doc.find("cached")->boolean ?
                     " (cached)" : "");
    if (r.payload.empty())
        return 0;
    if (!opts.outPath.empty()) {
        std::ofstream out(opts.outPath);
        if (!out)
            uhm::fatal("cannot open '%s'", opts.outPath.c_str());
        out << r.payload;
    } else if (opts.verb == "sweep" || opts.verb == "stats" ||
               opts.verb == "metrics") {
        std::fputs(r.payload.c_str(), stdout);
    } else {
        std::fputs(r.payload.c_str(), stderr);
    }
    return 0;
}

/** Numeric member of @p v by @p key (0.0 when absent). */
double
num(const uhm::serve::JsonValue &v, const char *key)
{
    const uhm::serve::JsonValue *m = v.find(key);
    if (m == nullptr)
        return 0.0;
    return m->kind == uhm::serve::JsonValue::Kind::Int ?
        static_cast<double>(m->integer) : m->number;
}

/** One "  name   p50 .. p99 .. mean .. max .. (n)" quantile row. */
void
printQuantileRow(const char *label, const uhm::serve::JsonValue &scope,
                 const char *key)
{
    const uhm::serve::JsonValue *q = scope.find(key);
    if (q == nullptr)
        return;
    std::printf("  %-12s p50 %9.1f  p95 %9.1f  p99 %9.1f  "
                "mean %9.1f  max %9.0f  (n=%llu)\n",
                label, num(*q, "p50"), num(*q, "p95"), num(*q, "p99"),
                num(*q, "mean"), num(*q, "max"),
                static_cast<unsigned long long>(num(*q, "count")));
}

/** Render one --watch frame from a parsed metrics payload. */
void
renderMetrics(const uhm::serve::JsonValue &m)
{
    const uhm::serve::JsonValue *w = m.find("window");
    const uhm::serve::JsonValue *l = m.find("lifetime");
    const uhm::serve::JsonValue *e = m.find("events");
    std::printf("uhm_serve metrics  (window %.0fs, span %.1fs)\n",
                num(m, "window_us") / 1e6, num(m, "span_us") / 1e6);
    if (w != nullptr) {
        const uhm::serve::JsonValue *cache = w->find("cache");
        std::printf("  %-12s %9.1f rps   requests %llu   errors %llu   "
                    "overloaded %llu\n",
                    "window", num(*w, "rps"),
                    static_cast<unsigned long long>(num(*w, "requests")),
                    static_cast<unsigned long long>(num(*w, "errors")),
                    static_cast<unsigned long long>(
                        num(*w, "overloaded")));
        if (cache != nullptr)
            std::printf("  %-12s %5.1f%% hit rate  (%llu hits, "
                        "%llu misses)\n",
                        "cache", num(*cache, "hit_rate") * 100.0,
                        static_cast<unsigned long long>(
                            num(*cache, "hits")),
                        static_cast<unsigned long long>(
                            num(*cache, "misses")));
        printQuantileRow("wait_us", *w, "wait_us");
        printQuantileRow("service_us", *w, "service_us");
        printQuantileRow("slice_us", *w, "slice_us");
        printQuantileRow("queue_depth", *w, "queue_depth");
    }
    if (l != nullptr)
        std::printf("  %-12s requests %llu   responses %llu   "
                    "errors %llu   inflight %llu\n",
                    "lifetime",
                    static_cast<unsigned long long>(num(*l, "requests")),
                    static_cast<unsigned long long>(
                        num(*l, "responses")),
                    static_cast<unsigned long long>(num(*l, "errors")),
                    static_cast<unsigned long long>(
                        num(*l, "inflight")));
    if (e != nullptr)
        std::printf("  %-12s %llu seen, %llu dropped "
                    "(drop rate %.4f)\n",
                    "events",
                    static_cast<unsigned long long>(num(*e, "seen")),
                    static_cast<unsigned long long>(num(*e, "dropped")),
                    num(*e, "drop_rate"));
    std::fflush(stdout);
}

/** The --watch loop: poll the metrics verb until --count or ^C. */
int
watchLoop(const Options &opts)
{
    uhm::serve::Client client(opts.socketPath);
    const bool clear = isatty(STDOUT_FILENO) != 0;
    for (uint64_t i = 0; opts.count == 0 || i < opts.count; ++i) {
        if (i != 0)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                opts.watchSecs));
        Options req = opts;
        req.verb = "metrics";
        uhm::serve::Response r = client.call(
            buildRequest(req, opts.id + i));
        if (!r.ok) {
            std::fprintf(stderr, "error: %s: %s\n", r.error.c_str(),
                         r.message.c_str());
            return 1;
        }
        if (clear)
            std::fputs("\033[H\033[2J", stdout);
        if (opts.format == "prometheus") {
            std::fputs(r.payload.c_str(), stdout);
            std::fflush(stdout);
            continue;
        }
        uhm::serve::JsonValue metrics;
        std::string err;
        if (!uhm::serve::parseJson(r.payload, metrics, err))
            uhm::fatal("bad metrics payload: %s", err.c_str());
        renderMetrics(metrics);
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    Options opts = parseArgs(argc, argv);

    if (opts.watchSecs > 0.0)
        return watchLoop(opts);

    if (opts.jobs <= 1) {
        uhm::serve::Client client(opts.socketPath);
        std::string line = opts.rawJson.empty() ?
            buildRequest(opts, opts.id) : opts.rawJson;
        return printResponse(opts, client.call(line));
    }

    // Fan-out: every copy runs on its own connection; the responses
    // must agree byte for byte.
    std::vector<uhm::serve::Response> responses(opts.jobs);
    std::vector<std::thread> threads;
    threads.reserve(opts.jobs);
    for (unsigned i = 0; i < opts.jobs; ++i) {
        threads.emplace_back([&, i] {
            uhm::serve::Client client(opts.socketPath);
            std::string line = opts.rawJson.empty() ?
                buildRequest(opts, opts.id + i) : opts.rawJson;
            responses[i] = client.call(line);
        });
    }
    for (std::thread &t : threads)
        t.join();

    auto outputOf = [](const uhm::serve::Response &r) {
        std::vector<int64_t> values;
        if (const uhm::serve::JsonValue *out = r.doc.find("output"))
            for (const uhm::serve::JsonValue &v : out->array)
                values.push_back(v.integer);
        return values;
    };
    int divergent = 0;
    for (unsigned i = 1; i < opts.jobs; ++i) {
        if (responses[i].ok != responses[0].ok ||
            outputOf(responses[i]) != outputOf(responses[0]) ||
            responses[i].payload != responses[0].payload) {
            std::fprintf(stderr,
                         "error: response %u diverges from response 0 "
                         "(%zu vs %zu payload bytes)\n",
                         i, responses[i].payload.size(),
                         responses[0].payload.size());
            divergent = 1;
        }
    }
    std::fprintf(stderr, "# fan-out: %u concurrent requests, %s\n",
                 opts.jobs,
                 divergent ? "DIVERGENT responses" :
                             "byte-identical responses");
    int rc = printResponse(opts, responses[0]);
    return divergent != 0 ? 1 : rc;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
