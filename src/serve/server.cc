#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "hlr/compiler.hh"
#include "obs/emit.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

namespace uhm::serve
{

namespace
{

/** Payload lines = '\n' count (every payload line is terminated). */
size_t
countLines(const std::string &payload)
{
    size_t n = 0;
    for (char c : payload)
        if (c == '\n')
            ++n;
    return n;
}

} // anonymous namespace

Connection::~Connection()
{
    ::close(fd);
}

void
Connection::writeBlock(const std::string &text)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    if (dead.load())
        return;
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            dead.store(true);
            return;
        }
        off += static_cast<size_t>(n);
    }
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.maxSessions),
      epoch_(std::chrono::steady_clock::now()),
      window_(config_.windowUs)
{
    tracer_.enable(config_.eventCapacity);
}

Server::~Server()
{
    stop();
}

uint64_t
Server::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Server::start()
{
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket: %s", std::strerror(errno));

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' too long", config_.socketPath.c_str());
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("bind '%s': %s", config_.socketPath.c_str(),
              std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("listen: %s", std::strerror(errno));

    pool_ = std::make_unique<ThreadPool>(config_.workers);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.push_back(conn);
        readers_.emplace_back(
            [this, conn = std::move(conn)]() mutable {
                readerLoop(std::move(conn));
            });
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<size_t>(n));
        size_t start = 0;
        for (;;) {
            size_t eol = buffer.find('\n', start);
            if (eol == std::string::npos)
                break;
            std::string line = buffer.substr(start, eol - start);
            start = eol + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                admitLine(conn, line);
        }
        buffer.erase(0, start);
    }
}

void
Server::admitLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line)
{
    Request req;
    std::string err;
    if (!parseRequest(line, req, err)) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++requests_;
            ++errors_;
        }
        conn->writeBlock(errorHeader(req.id, "bad_request", err) + "\n");
        return;
    }
    if (stopping_.load()) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++requests_;
            ++errors_;
        }
        conn->writeBlock(errorHeader(req.id, "shutting_down",
                                     "the server is stopping") + "\n");
        return;
    }
    // Monitoring verbs bypass the workload ledger *and* the admission
    // bound: the overload path must stay observable from outside.
    const bool monitoring =
        req.verb == Verb::Stats || req.verb == Verb::Metrics;
    const uint64_t now = nowUs();
    bool rejected = false;
    uint64_t rid = 0;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++requests_;
        rid = ++nextRid_;
        if (monitoring) {
            ++monitoringRequests_;
            ++monitoringInflight_;
        } else {
            ++verbCounts_[verbName(req.verb)];
            window_.count("requests", now);
            window_.count(std::string("verb.") + verbName(req.verb),
                          now);
            if (inflight_ >= config_.maxQueue) {
                ++overloaded_;
                ++errors_;
                tracer_.record(obs::EventKind::ServeReject, now, rid,
                               inflight_);
                window_.count("overloaded", now);
                window_.count("errors", now);
                rejected = true;
            } else {
                ++inflight_;
                queueDepth_.record(inflight_);
                window_.record("queue_depth", now, inflight_);
                tracer_.record(
                    obs::EventKind::ServeEnqueue, now, rid,
                    (static_cast<uint64_t>(inflight_) << 8) |
                        static_cast<uint64_t>(req.verb));
            }
        }
    }
    if (rejected) {
        conn->writeBlock(errorHeader(
            req.id, "overloaded",
            "request queue is full (max " +
                std::to_string(config_.maxQueue) + ")") + "\n");
        return;
    }
    auto p = std::make_shared<Pending>();
    p->conn = conn;
    p->req = std::move(req);
    p->rid = rid;
    p->monitoring = monitoring;
    p->enqueueUs = now;
    pool_->submit([this, p] { startRequest(p); });
}

void
Server::startRequest(std::shared_ptr<Pending> p)
{
    p->beginUs = nowUs();
    if (!p->monitoring) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        tracer_.record(obs::EventKind::ServeBegin, p->beginUs,
                       p->rid, p->beginUs - p->enqueueUs);
    }
    try {
        switch (p->req.verb) {
          case Verb::Ping: {
            finishRequest(p, ResponseInfo{}, "");
            return;
          }
          case Verb::Shutdown: {
            finishRequest(p, ResponseInfo{}, "");
            stopping_.store(true);
            stopCv_.notify_all();
            return;
          }
          case Verb::Stats: {
            obs::ProfileData profile = statsProfile(p->req.resetStats);
            finishRequest(p, ResponseInfo{},
                          obs::renderProfileJsonl(profile));
            return;
          }
          case Verb::Metrics: {
            finishRequest(p, ResponseInfo{},
                          p->req.format == "prometheus" ?
                              metricsProm() : metricsJson());
            return;
          }
          case Verb::Compile:
          case Verb::Encode: {
            p->session = cache_.acquire(p->req, p->cached);
            recordAcquire(p);
            ResponseInfo info;
            info.hasCached = true;
            info.cached = p->cached;
            info.hasProgramSummary = true;
            info.instrs = p->session->program.size();
            info.programHash = p->session->programHash;
            if (p->req.verb == Verb::Encode)
                info.imageBits = p->session->image->bitSize();
            if (p->req.disasm)
                info.disasm = p->session->program.disassemble();
            cache_.release(p->session);
            p->session.reset();
            finishRequest(p, info, "");
            return;
          }
          case Verb::Run:
          case Verb::Profile: {
            p->session = cache_.acquire(p->req, p->cached);
            recordAcquire(p);
            const std::vector<int64_t> &input = p->req.inputGiven ?
                p->req.input : p->session->defaultInput;
            p->session->machine->beginRun(input);
            runSliceStep(std::move(p));
            return;
          }
          case Verb::Sweep: {
            // One sweep request = one pool task; the report is built
            // by a single-worker runner so its bytes match
            // `uhm_cli sweep` for any server parallelism.
            std::vector<std::string> programs = p->req.programs;
            if (programs.empty()) {
                for (const auto &sample : workload::samplePrograms())
                    programs.push_back(sample.name);
            }
            std::vector<bench::SweepPoint> points;
            for (const std::string &name : programs) {
                bench::SweepPoint point;
                point.label = name;
                if (name == "synthetic") {
                    point.program =
                        bench::gridWorkload(2, p->req.seed);
                } else {
                    const workload::SampleProgram &sample =
                        workload::sampleByName(name);
                    point.input = sample.input;
                    point.program = hlr::compileSource(sample.source);
                }
                point.scheme = p->req.machine.scheme;
                // Exactly the fields `uhm_cli sweep` sets (it leaves
                // the DTB geometry at its defaults).
                point.config.kind = p->req.machine.kind;
                point.config.dispatch = p->req.machine.dispatch;
                point.config.tier.hotThreshold =
                    p->req.machine.tierThreshold;
                point.config.tier.traceCap = p->req.machine.traceCap;
                point.config.traceCache.capacityBytes =
                    p->req.machine.traceBytes;
                point.config.sampleIntervalCycles =
                    p->req.machine.sampleInterval;
                points.push_back(std::move(point));
            }
            bench::SweepRunner runner(1);
            bench::SweepReport report = bench::runSweep(runner, points);
            finishRequest(p, ResponseInfo{}, report.jsonl);
            return;
          }
        }
        failRequest(p, "bad_request", "unhandled verb");
    } catch (const FatalError &e) {
        if (p->session) {
            cache_.release(p->session);
            p->session.reset();
        }
        failRequest(p, "bad_request", e.what());
    }
}

void
Server::recordAcquire(const std::shared_ptr<Pending> &p)
{
    const uint64_t now = nowUs();
    std::lock_guard<std::mutex> lock(statsMutex_);
    tracer_.record(obs::EventKind::ServeAcquire, now, p->rid,
                   (p->session->keyHash << 1) |
                       static_cast<uint64_t>(p->cached ? 1 : 0));
    window_.count(p->cached ? "cache.hits" : "cache.misses", now);
}

void
Server::runSliceStep(std::shared_ptr<Pending> p)
{
    const uint64_t sliceStartUs = nowUs();
    try {
        uint64_t consumed =
            p->session->machine->runSlice(config_.sliceCycles);
        {
            const uint64_t end = nowUs();
            const uint64_t sliceUs = end - sliceStartUs;
            // arg packing: low 20 bits wall microseconds, high 44 bits
            // simulated cycles, both saturating.
            const uint64_t cyc =
                std::min<uint64_t>(consumed, (uint64_t{1} << 44) - 1);
            std::lock_guard<std::mutex> lock(statsMutex_);
            tracer_.record(obs::EventKind::ServeSlice, end, p->rid,
                           (cyc << 20) |
                               std::min<uint64_t>(sliceUs, 0xFFFFF));
            window_.record("slice_us", end, sliceUs);
        }
        if (!p->session->machine->finished()) {
            pool_->submit([this, p] { runSliceStep(p); });
            return;
        }
        RunResult r = p->session->machine->finishRun();

        ProfileMeta meta;
        meta.program = p->session->label;
        meta.machine = machineKindName(p->req.machine.kind);
        meta.encoding = encodingName(p->req.machine.scheme);
        meta.imageBits = p->session->image->bitSize();

        ResponseInfo info;
        info.hasCached = true;
        info.cached = p->cached;
        info.hasRunSummary = true;
        info.output = r.output;
        info.cycles = r.cycles;
        info.dirInstrs = r.dirInstrs;

        std::string payload;
        if (p->req.profile)
            payload = profileJsonl(meta, r);

        cache_.release(p->session);
        p->session.reset();
        finishRequest(p, info, payload);
    } catch (const FatalError &e) {
        if (p->session) {
            cache_.release(p->session);
            p->session.reset();
        }
        failRequest(p, "bad_request", e.what());
    }
}

void
Server::finishRequest(const std::shared_ptr<Pending> &p,
                      ResponseInfo info, const std::string &payload)
{
    uint64_t end = nowUs();
    info.id = p->req.id;
    info.verb = p->req.verb;
    info.waitUs = p->beginUs - p->enqueueUs;
    info.serviceUs = end - p->beginUs;
    std::string text =
        successHeader(info, countLines(payload)) + "\n" + payload;
    // Record before writing: once a client holds the response, the
    // request's latency is visible in stats/metrics — the ordering the
    // serve tests lean on.
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++responses_;
        if (p->monitoring) {
            ++monitoringResponses_;
        } else {
            waitUs_.record(info.waitUs);
            serviceUs_.record(info.serviceUs);
            window_.count("responses", end);
            window_.record("wait_us", end, info.waitUs);
            window_.record("service_us", end, info.serviceUs);
            tracer_.record(obs::EventKind::ServeDone, end, p->rid,
                           info.serviceUs);
        }
        maybeWarnDropsLocked();
        // Release the slot with the stats, not after the write: a
        // client holding its response must find the daemon's ledger
        // fully settled (the metrics byte-identity contract). The
        // writing_ count keeps stop()'s drain honest about the send.
        retireLocked(p->monitoring);
    }
    p->conn->writeBlock(text);
    writeDone();
}

void
Server::failRequest(const std::shared_ptr<Pending> &p,
                    const std::string &code, const std::string &message)
{
    const uint64_t end = nowUs();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++errors_;
        if (!p->monitoring) {
            window_.count("errors", end);
            tracer_.record(obs::EventKind::ServeDone, end, p->rid, 0);
        }
        maybeWarnDropsLocked();
        retireLocked(p->monitoring);
    }
    p->conn->writeBlock(errorHeader(p->req.id, code, message) + "\n");
    writeDone();
}

void
Server::retireLocked(bool monitoring)
{
    if (monitoring)
        --monitoringInflight_;
    else
        --inflight_;
    ++writing_;
}

void
Server::writeDone()
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        --writing_;
    }
    drainCv_.notify_all();
}

void
Server::maybeWarnDropsLocked()
{
    if (dropWarned_ || tracer_.dropped() == 0)
        return;
    dropWarned_ = true;
    std::fprintf(stderr,
                 "# uhm_serve: timeline ring dropped %llu of %llu "
                 "events (capacity %zu); raise --timeline-events=N "
                 "for complete request traces\n",
                 static_cast<unsigned long long>(tracer_.dropped()),
                 static_cast<unsigned long long>(tracer_.seen()),
                 tracer_.capacity());
}

void
Server::waitForStop()
{
    std::unique_lock<std::mutex> lock(stopMutex_);
    stopCv_.wait(lock, [this] { return stopping_.load(); });
}

void
Server::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);
    stopCv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Drain in-flight requests before tearing down the connections
    // their responses go to.
    {
        std::unique_lock<std::mutex> lock(statsMutex_);
        drainCv_.wait(lock, [this] {
            return inflight_ == 0 && monitoringInflight_ == 0 &&
                writing_ == 0;
        });
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const auto &weak : conns_) {
            if (auto conn = weak.lock())
                ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (std::thread &reader : readers_)
        reader.join();
    readers_.clear();
    conns_.clear();
    pool_.reset();
    ::unlink(config_.socketPath.c_str());
}

obs::ProfileData
Server::statsProfile(bool reset)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    obs::ProfileData profile;
    profile.meta.emplace_back("program", "serve");
    profile.meta.emplace_back("machine", "daemon");
    profile.meta.emplace_back("encoding", "jsonl");

    CacheStats cache = cache_.stats();
    profile.counters["serve.requests"] = requests_;
    profile.counters["serve.responses"] = responses_;
    profile.counters["serve.errors"] = errors_;
    profile.counters["serve.overloaded"] = overloaded_;
    profile.counters["serve.inflight"] = inflight_;
    profile.counters["serve.monitoring.requests"] = monitoringRequests_;
    profile.counters["serve.monitoring.responses"] =
        monitoringResponses_;
    profile.counters["serve.cache.size"] = cache_.size();
    profile.counters["serve.cache.hits"] = cache.hits;
    profile.counters["serve.cache.misses"] = cache.misses;
    profile.counters["serve.cache.evictions"] = cache.evictions;
    profile.counters["serve.cache.evict_rejected"] = cache.evictRejected;
    profile.counters["serve.cache.busy_bypass"] = cache.busyBypass;
    for (const auto &[name, count] : verbCounts_)
        profile.counters["serve.verb." + name] = count;

    profile.histograms["serve.wait_us"] = waitUs_.snapshot();
    profile.histograms["serve.service_us"] = serviceUs_.snapshot();
    profile.histograms["serve.queue_depth"] = queueDepth_.snapshot();

    profile.ratios.emplace_back(
        "events.drop_rate",
        tracer_.seen() == 0 ?
            0.0 :
            static_cast<double>(tracer_.dropped()) /
                static_cast<double>(tracer_.seen()));

    profile.events = tracer_.events();
    profile.eventsSeen = tracer_.seen();
    profile.eventsDropped = tracer_.dropped();

    if (reset) {
        requests_ = responses_ = errors_ = overloaded_ = 0;
        // The monitoring side resets with the ledger it shadows, so
        // the (requests - monitoring) differences stay consistent.
        monitoringRequests_ = monitoringResponses_ = 0;
        verbCounts_.clear();
        waitUs_.reset();
        serviceUs_.reset();
        queueDepth_.reset();
        window_.reset();
    }
    return profile;
}

namespace
{

/** One latency/depth quantile summary object for the metrics line. */
void
writeQuantiles(JsonWriter &jw, const obs::HistogramSnapshot &h)
{
    jw.beginObject();
    jw.key("p50").value(obs::histogramPercentile(h, 0.50));
    jw.key("p95").value(obs::histogramPercentile(h, 0.95));
    jw.key("p99").value(obs::histogramPercentile(h, 0.99));
    jw.key("mean").value(
        h.count == 0 ? 0.0 :
            static_cast<double>(h.sum) / static_cast<double>(h.count));
    jw.key("max").value(h.max);
    jw.key("count").value(h.count);
    jw.endObject();
}

/** hits/(hits+misses); 0.0 on no traffic. */
double
hitRate(uint64_t hits, uint64_t misses)
{
    return hits + misses == 0 ?
        0.0 :
        static_cast<double>(hits) / static_cast<double>(hits + misses);
}

} // anonymous namespace

std::string
Server::metricsJson()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    obs::WindowSnapshot w = window_.snapshot();
    CacheStats cache = cache_.stats();

    JsonWriter jw;
    jw.beginObject();
    jw.key("type").value("metrics");
    jw.key("window_us").value(w.windowUs);
    jw.key("span_us").value(w.spanUs);

    jw.key("window").beginObject();
    jw.key("requests").value(w.counter("requests"));
    jw.key("responses").value(w.counter("responses"));
    jw.key("errors").value(w.counter("errors"));
    jw.key("overloaded").value(w.counter("overloaded"));
    jw.key("rps").value(
        w.spanUs == 0 ?
            0.0 :
            static_cast<double>(w.counter("responses")) * 1e6 /
                static_cast<double>(w.spanUs));
    jw.key("wait_us");
    writeQuantiles(jw, w.histograms["wait_us"]);
    jw.key("service_us");
    writeQuantiles(jw, w.histograms["service_us"]);
    jw.key("slice_us");
    writeQuantiles(jw, w.histograms["slice_us"]);
    jw.key("queue_depth");
    writeQuantiles(jw, w.histograms["queue_depth"]);
    const uint64_t whits = w.counter("cache.hits");
    const uint64_t wmisses = w.counter("cache.misses");
    jw.key("cache").beginObject();
    jw.key("hits").value(whits);
    jw.key("misses").value(wmisses);
    jw.key("hit_rate").value(hitRate(whits, wmisses));
    jw.endObject();
    jw.key("verbs").beginObject();
    for (const auto &[name, count] : w.counters) {
        if (name.rfind("verb.", 0) == 0)
            jw.key(name.substr(5)).value(count);
    }
    jw.endObject();
    jw.endObject();

    jw.key("lifetime").beginObject();
    jw.key("requests").value(requests_ - monitoringRequests_);
    jw.key("responses").value(responses_ - monitoringResponses_);
    jw.key("errors").value(errors_);
    jw.key("overloaded").value(overloaded_);
    jw.key("inflight").value(static_cast<uint64_t>(inflight_));
    jw.key("wait_us");
    writeQuantiles(jw, waitUs_.snapshot());
    jw.key("service_us");
    writeQuantiles(jw, serviceUs_.snapshot());
    jw.key("queue_depth");
    writeQuantiles(jw, queueDepth_.snapshot());
    jw.key("cache").beginObject();
    jw.key("hits").value(cache.hits);
    jw.key("misses").value(cache.misses);
    jw.key("hit_rate").value(hitRate(cache.hits, cache.misses));
    jw.key("evictions").value(cache.evictions);
    jw.key("sessions").value(static_cast<uint64_t>(cache_.size()));
    jw.endObject();
    jw.key("verbs").beginObject();
    for (const auto &[name, count] : verbCounts_)
        jw.key(name).value(count);
    jw.endObject();
    jw.endObject();

    jw.key("events").beginObject();
    jw.key("seen").value(tracer_.seen());
    jw.key("dropped").value(tracer_.dropped());
    jw.key("drop_rate").value(
        tracer_.seen() == 0 ?
            0.0 :
            static_cast<double>(tracer_.dropped()) /
                static_cast<double>(tracer_.seen()));
    jw.endObject();
    jw.endObject();
    return jw.str() + "\n";
}

std::string
Server::metricsProm()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    obs::WindowSnapshot w = window_.snapshot();
    CacheStats cache = cache_.stats();

    std::string out;
    auto fmt = [](double v) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        return std::string(buf);
    };
    auto head = [&out](const std::string &name, const char *type,
                       const char *help) {
        out += "# HELP " + name + " " + help + "\n";
        out += "# TYPE " + name + " " + type + "\n";
    };
    auto counter = [&](const std::string &name, const char *help,
                       uint64_t v) {
        head(name, "counter", help);
        out += name + " " + std::to_string(v) + "\n";
    };
    auto gauge = [&](const std::string &name, const char *help,
                     double v) {
        head(name, "gauge", help);
        out += name + " " + fmt(v) + "\n";
    };
    // Summaries report the rolling window, not the lifetime: a scrape
    // wants "now", and the _total counters already carry forever.
    auto summary = [&](const std::string &name, const char *help,
                       const obs::HistogramSnapshot &h, double scale) {
        head(name, "summary", help);
        const std::pair<const char *, double> quantiles[] = {
            {"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto &[label, q] : quantiles)
            out += name + "{quantile=\"" + label + "\"} " +
                fmt(obs::histogramPercentile(h, q) * scale) + "\n";
        out += name + "_sum " +
            fmt(static_cast<double>(h.sum) * scale) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
    };

    counter("uhm_serve_requests_total",
            "Workload requests admitted or rejected.",
            requests_ - monitoringRequests_);
    counter("uhm_serve_responses_total",
            "Successful workload responses written.",
            responses_ - monitoringResponses_);
    counter("uhm_serve_errors_total", "Error responses written.",
            errors_);
    counter("uhm_serve_overloaded_total",
            "Requests rejected by admission control.", overloaded_);
    head("uhm_serve_requests_by_verb_total",
         "counter", "Workload requests by verb.");
    for (const auto &[name, count] : verbCounts_)
        out += "uhm_serve_requests_by_verb_total{verb=\"" + name +
            "\"} " + std::to_string(count) + "\n";
    gauge("uhm_serve_inflight", "Workload requests in flight.",
          static_cast<double>(inflight_));
    gauge("uhm_serve_requests_per_second",
          "Windowed response rate.",
          w.spanUs == 0 ?
              0.0 :
              static_cast<double>(w.counter("responses")) * 1e6 /
                  static_cast<double>(w.spanUs));
    counter("uhm_serve_cache_hits_total", "Session-cache hits.",
            cache.hits);
    counter("uhm_serve_cache_misses_total", "Session-cache misses.",
            cache.misses);
    counter("uhm_serve_cache_evictions_total",
            "Session-cache evictions.", cache.evictions);
    gauge("uhm_serve_cache_hit_rate", "Windowed session-cache hit rate.",
          hitRate(w.counter("cache.hits"), w.counter("cache.misses")));
    gauge("uhm_serve_cache_sessions", "Sessions currently cached.",
          static_cast<double>(cache_.size()));
    summary("uhm_serve_wait_seconds", "Windowed queue wait.",
            w.histograms["wait_us"], 1e-6);
    summary("uhm_serve_service_seconds", "Windowed service time.",
            w.histograms["service_us"], 1e-6);
    summary("uhm_serve_queue_depth", "Windowed queue depth at admission.",
            w.histograms["queue_depth"], 1.0);
    counter("uhm_serve_events_seen_total",
            "Serve-track events recorded.", tracer_.seen());
    counter("uhm_serve_events_dropped_total",
            "Serve-track events lost to ring overwrite.",
            tracer_.dropped());
    gauge("uhm_serve_event_drop_rate",
          "Fraction of serve-track events dropped.",
          tracer_.seen() == 0 ?
              0.0 :
              static_cast<double>(tracer_.dropped()) /
                  static_cast<double>(tracer_.seen()));
    return out;
}

} // namespace uhm::serve
