#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "bench_common.hh"
#include "hlr/compiler.hh"
#include "obs/emit.hh"
#include "support/logging.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

namespace uhm::serve
{

namespace
{

/** Payload lines = '\n' count (every payload line is terminated). */
size_t
countLines(const std::string &payload)
{
    size_t n = 0;
    for (char c : payload)
        if (c == '\n')
            ++n;
    return n;
}

} // anonymous namespace

Connection::~Connection()
{
    ::close(fd);
}

void
Connection::writeBlock(const std::string &text)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    if (dead.load())
        return;
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            dead.store(true);
            return;
        }
        off += static_cast<size_t>(n);
    }
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.maxSessions),
      epoch_(std::chrono::steady_clock::now())
{
    tracer_.enable(config_.eventCapacity);
}

Server::~Server()
{
    stop();
}

uint64_t
Server::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Server::start()
{
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("socket: %s", std::strerror(errno));

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' too long", config_.socketPath.c_str());
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("bind '%s': %s", config_.socketPath.c_str(),
              std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("listen: %s", std::strerror(errno));

    pool_ = std::make_unique<ThreadPool>(config_.workers);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.push_back(conn);
        readers_.emplace_back(
            [this, conn = std::move(conn)]() mutable {
                readerLoop(std::move(conn));
            });
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<size_t>(n));
        size_t start = 0;
        for (;;) {
            size_t eol = buffer.find('\n', start);
            if (eol == std::string::npos)
                break;
            std::string line = buffer.substr(start, eol - start);
            start = eol + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                admitLine(conn, line);
        }
        buffer.erase(0, start);
    }
}

void
Server::admitLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line)
{
    Request req;
    std::string err;
    if (!parseRequest(line, req, err)) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++requests_;
            ++errors_;
        }
        conn->writeBlock(errorHeader(req.id, "bad_request", err) + "\n");
        return;
    }
    if (stopping_.load()) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++requests_;
            ++errors_;
        }
        conn->writeBlock(errorHeader(req.id, "shutting_down",
                                     "the server is stopping") + "\n");
        return;
    }
    bool rejected = false;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++requests_;
        if (inflight_ >= config_.maxQueue) {
            ++overloaded_;
            ++errors_;
            tracer_.record(obs::EventKind::ServeReject, nowUs(), req.id,
                           inflight_);
            rejected = true;
        } else {
            ++inflight_;
            queueDepth_.record(inflight_);
            tracer_.record(obs::EventKind::ServeEnqueue, nowUs(),
                           req.id, inflight_);
        }
    }
    if (rejected) {
        conn->writeBlock(errorHeader(
            req.id, "overloaded",
            "request queue is full (max " +
                std::to_string(config_.maxQueue) + ")") + "\n");
        return;
    }
    auto p = std::make_shared<Pending>();
    p->conn = conn;
    p->req = std::move(req);
    p->enqueueUs = nowUs();
    pool_->submit([this, p] { startRequest(p); });
}

void
Server::startRequest(std::shared_ptr<Pending> p)
{
    p->beginUs = nowUs();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        tracer_.record(obs::EventKind::ServeBegin, p->beginUs,
                       p->req.id, p->beginUs - p->enqueueUs);
    }
    try {
        switch (p->req.verb) {
          case Verb::Ping: {
            finishRequest(p, ResponseInfo{}, "");
            return;
          }
          case Verb::Shutdown: {
            finishRequest(p, ResponseInfo{}, "");
            stopping_.store(true);
            stopCv_.notify_all();
            return;
          }
          case Verb::Stats: {
            obs::ProfileData profile = statsProfile(p->req.resetStats);
            finishRequest(p, ResponseInfo{},
                          obs::renderProfileJsonl(profile));
            return;
          }
          case Verb::Compile:
          case Verb::Encode: {
            p->session = cache_.acquire(p->req, p->cached);
            ResponseInfo info;
            info.hasCached = true;
            info.cached = p->cached;
            info.hasProgramSummary = true;
            info.instrs = p->session->program.size();
            info.programHash = p->session->programHash;
            if (p->req.verb == Verb::Encode)
                info.imageBits = p->session->image->bitSize();
            if (p->req.disasm)
                info.disasm = p->session->program.disassemble();
            cache_.release(p->session);
            p->session.reset();
            finishRequest(p, info, "");
            return;
          }
          case Verb::Run:
          case Verb::Profile: {
            p->session = cache_.acquire(p->req, p->cached);
            const std::vector<int64_t> &input = p->req.inputGiven ?
                p->req.input : p->session->defaultInput;
            p->session->machine->beginRun(input);
            runSliceStep(std::move(p));
            return;
          }
          case Verb::Sweep: {
            // One sweep request = one pool task; the report is built
            // by a single-worker runner so its bytes match
            // `uhm_cli sweep` for any server parallelism.
            std::vector<std::string> programs = p->req.programs;
            if (programs.empty()) {
                for (const auto &sample : workload::samplePrograms())
                    programs.push_back(sample.name);
            }
            std::vector<bench::SweepPoint> points;
            for (const std::string &name : programs) {
                bench::SweepPoint point;
                point.label = name;
                if (name == "synthetic") {
                    point.program =
                        bench::gridWorkload(2, p->req.seed);
                } else {
                    const workload::SampleProgram &sample =
                        workload::sampleByName(name);
                    point.input = sample.input;
                    point.program = hlr::compileSource(sample.source);
                }
                point.scheme = p->req.machine.scheme;
                // Exactly the fields `uhm_cli sweep` sets (it leaves
                // the DTB geometry at its defaults).
                point.config.kind = p->req.machine.kind;
                point.config.dispatch = p->req.machine.dispatch;
                point.config.tier.hotThreshold =
                    p->req.machine.tierThreshold;
                point.config.tier.traceCap = p->req.machine.traceCap;
                point.config.traceCache.capacityBytes =
                    p->req.machine.traceBytes;
                point.config.sampleIntervalCycles =
                    p->req.machine.sampleInterval;
                points.push_back(std::move(point));
            }
            bench::SweepRunner runner(1);
            bench::SweepReport report = bench::runSweep(runner, points);
            finishRequest(p, ResponseInfo{}, report.jsonl);
            return;
          }
        }
        failRequest(p, "bad_request", "unhandled verb");
    } catch (const FatalError &e) {
        if (p->session) {
            cache_.release(p->session);
            p->session.reset();
        }
        failRequest(p, "bad_request", e.what());
    }
}

void
Server::runSliceStep(std::shared_ptr<Pending> p)
{
    try {
        p->session->machine->runSlice(config_.sliceCycles);
        if (!p->session->machine->finished()) {
            pool_->submit([this, p] { runSliceStep(p); });
            return;
        }
        RunResult r = p->session->machine->finishRun();

        ProfileMeta meta;
        meta.program = p->session->label;
        meta.machine = machineKindName(p->req.machine.kind);
        meta.encoding = encodingName(p->req.machine.scheme);
        meta.imageBits = p->session->image->bitSize();

        ResponseInfo info;
        info.hasCached = true;
        info.cached = p->cached;
        info.hasRunSummary = true;
        info.output = r.output;
        info.cycles = r.cycles;
        info.dirInstrs = r.dirInstrs;

        std::string payload;
        if (p->req.profile)
            payload = profileJsonl(meta, r);

        cache_.release(p->session);
        p->session.reset();
        finishRequest(p, info, payload);
    } catch (const FatalError &e) {
        if (p->session) {
            cache_.release(p->session);
            p->session.reset();
        }
        failRequest(p, "bad_request", e.what());
    }
}

void
Server::finishRequest(const std::shared_ptr<Pending> &p,
                      ResponseInfo info, const std::string &payload)
{
    uint64_t end = nowUs();
    info.id = p->req.id;
    info.verb = p->req.verb;
    info.waitUs = p->beginUs - p->enqueueUs;
    info.serviceUs = end - p->beginUs;
    std::string text =
        successHeader(info, countLines(payload)) + "\n" + payload;
    p->conn->writeBlock(text);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++responses_;
        waitUs_.record(info.waitUs);
        serviceUs_.record(info.serviceUs);
        tracer_.record(obs::EventKind::ServeDone, end, p->req.id,
                       info.serviceUs);
    }
    retire();
}

void
Server::failRequest(const std::shared_ptr<Pending> &p,
                    const std::string &code, const std::string &message)
{
    p->conn->writeBlock(errorHeader(p->req.id, code, message) + "\n");
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++errors_;
        tracer_.record(obs::EventKind::ServeDone, nowUs(), p->req.id, 0);
    }
    retire();
}

void
Server::retire()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    --inflight_;
    drainCv_.notify_all();
}

void
Server::waitForStop()
{
    std::unique_lock<std::mutex> lock(stopMutex_);
    stopCv_.wait(lock, [this] { return stopping_.load(); });
}

void
Server::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);
    stopCv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Drain in-flight requests before tearing down the connections
    // their responses go to.
    {
        std::unique_lock<std::mutex> lock(statsMutex_);
        drainCv_.wait(lock, [this] { return inflight_ == 0; });
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const auto &weak : conns_) {
            if (auto conn = weak.lock())
                ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (std::thread &reader : readers_)
        reader.join();
    readers_.clear();
    conns_.clear();
    pool_.reset();
    ::unlink(config_.socketPath.c_str());
}

obs::ProfileData
Server::statsProfile(bool reset)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    obs::ProfileData profile;
    profile.meta.emplace_back("program", "serve");
    profile.meta.emplace_back("machine", "daemon");
    profile.meta.emplace_back("encoding", "jsonl");

    CacheStats cache = cache_.stats();
    profile.counters["serve.requests"] = requests_;
    profile.counters["serve.responses"] = responses_;
    profile.counters["serve.errors"] = errors_;
    profile.counters["serve.overloaded"] = overloaded_;
    profile.counters["serve.inflight"] = inflight_;
    profile.counters["serve.cache.size"] = cache_.size();
    profile.counters["serve.cache.hits"] = cache.hits;
    profile.counters["serve.cache.misses"] = cache.misses;
    profile.counters["serve.cache.evictions"] = cache.evictions;
    profile.counters["serve.cache.evict_rejected"] = cache.evictRejected;
    profile.counters["serve.cache.busy_bypass"] = cache.busyBypass;

    profile.histograms["serve.wait_us"] = waitUs_.snapshot();
    profile.histograms["serve.service_us"] = serviceUs_.snapshot();
    profile.histograms["serve.queue_depth"] = queueDepth_.snapshot();

    profile.events = tracer_.events();
    profile.eventsSeen = tracer_.seen();
    profile.eventsDropped = tracer_.dropped();

    if (reset) {
        requests_ = responses_ = errors_ = overloaded_ = 0;
        waitUs_.reset();
        serviceUs_.reset();
        queueDepth_.reset();
    }
    return profile;
}

} // namespace uhm::serve
