#include "analytic/model.hh"

namespace uhm::analytic
{

double
t1(const ModelParams &p)
{
    return p.s2 * p.tau2 + p.d + p.x;
}

double
t2(const ModelParams &p)
{
    return p.s1 * p.tauD + (1.0 - p.hD) * p.s2 * p.tau2 +
           (1.0 - p.hD) * (p.d + p.g) + p.x;
}

double
t3(const ModelParams &p)
{
    return p.hc * p.s2 * p.tauD + (1.0 - p.hc) * p.s2 * p.tau2 +
           p.d + p.x;
}

double
t4(const ModelParams &p)
{
    double in_trace = p.s1T * p.tauD + p.tauD / p.nT;
    double cold = p.s1 * p.tauD +
        (1.0 - p.hD) * (p.s2 * p.tau2 + p.d + p.g);
    return p.hT * in_trace + (1.0 - p.hT) * cold + p.cT * p.g2 + p.x;
}

double
f1(const ModelParams &p)
{
    return (t3(p) - t2(p)) / t2(p) * 100.0;
}

double
f2(const ModelParams &p)
{
    return (t1(p) - t2(p)) / t2(p) * 100.0;
}

double
paperTable2(double d, double x)
{
    return (0.4 + 0.6 * d) / (8.0 + 0.4 * d + x) * 100.0;
}

double
paperTable3(double d, double x)
{
    return (7.4 + 0.6 * d) / (8.0 + 0.4 * d + x) * 100.0;
}

const std::vector<double> &
paperDGrid()
{
    static const std::vector<double> grid = {10.0, 20.0, 30.0};
    return grid;
}

const std::vector<double> &
paperXGrid()
{
    static const std::vector<double> grid = {5, 10, 15, 20, 25, 30};
    return grid;
}

} // namespace uhm::analytic
