/**
 * @file
 * The closed-form performance model of section 7.
 *
 * Average DIR instruction interpretation times:
 *
 *   T1 = s2*tau2 + d + x                               (conventional UHM)
 *   T2 = s1*tauD + (1-hD)*s2*tau2 + (1-hD)*(d+g) + x   (UHM + DTB)
 *   T3 = hc*s2*tauD + (1-hc)*s2*tau2 + d + x           (UHM + icache)
 *
 * and figures of merit F1 = (T3-T2)/T2 (percentage degradation caused by
 * using the DTB's resources as a plain instruction cache instead) and
 * F2 = (T1-T2)/T2 (degradation caused by not using a DTB at all).
 *
 * Reproduction note (documented in EXPERIMENTS.md): the paper's printed
 * Tables 2 and 3 are exactly
 *
 *   Table2(d, x) = (0.4 + 0.6 d) / (8 + 0.4 d + x) * 100
 *   Table3(d, x) = (7.4 + 0.6 d) / (8 + 0.4 d + x) * 100
 *
 * whose shared denominator equals T2 evaluated at the stated parameters
 * (tauD=2, tau2=10, s1=3, s2=1, hD=0.8) with g = d — not the stated
 * g = 1.5 d — and whose Table-3 numerator implies an effective
 * conventional fetch cost of 15.4 rather than s2*tau2 = 10. We therefore
 * expose both: the faithful section-7 expressions (for sweeps and
 * comparison with simulation) and the printed-table closed forms (for
 * digit-exact regeneration of Tables 2 and 3).
 */

#ifndef UHM_ANALYTIC_MODEL_HH
#define UHM_ANALYTIC_MODEL_HH

#include <vector>

namespace uhm::analytic
{

/** The model's parameters (section 7's list, same symbols). */
struct ModelParams
{
    // Hardware dependent.
    double tau1 = 1.0;  ///< level-1 access time (the time unit)
    double tau2 = 10.0; ///< level-2 access time
    double tauD = 2.0;  ///< DTB / cache access time

    // Language dependent.
    double d = 10.0;    ///< average decode time per DIR instruction
    double g = 15.0;    ///< average PSDER generate-and-store time
    double x = 5.0;     ///< average semantic-routine time
    double s1 = 3.0;    ///< level-1 refs per PSDER version
    double s2 = 1.0;    ///< level-2 refs per DIR instruction

    // Program behavior dependent.
    double hc = 0.9;    ///< instruction-cache hit ratio
    double hD = 0.8;    ///< DTB hit ratio

    // Tiered-translation extension (T4; src/tier/). These go beyond
    // the paper: hT/nT/cT are measured program behavior, g2 and s1T
    // are tier-2 implementation costs.
    double hT = 0.0;    ///< fraction of DIR instrs retired in traces
    double nT = 1.0;    ///< average DIR instrs per trace iteration
    double s1T = 2.0;   ///< trace-body refs per DIR instr (s1 minus INTERP)
    double g2 = 4.0;    ///< tier-2 generate-and-store time per short instr
    double cT = 0.0;    ///< compiled trace short instrs per retired instr
};

/** T1: conventional UHM. */
double t1(const ModelParams &p);

/** T2: UHM with a dynamic translation buffer. */
double t2(const ModelParams &p);

/** T3: UHM with an instruction cache on level 2. */
double t3(const ModelParams &p);

/**
 * T4: UHM with a DTB plus the adaptive tier (trace cache).
 *
 *   T4 = hT*(s1T*tauD + tauD/nT)
 *      + (1-hT)*(s1*tauD + (1-hD)*(s2*tau2 + d + g))
 *      + cT*g2 + x
 *
 * Instructions retired inside a trace pay s1T short fetches (the
 * per-instruction INTERP lookup and successor fetch are gone) plus the
 * per-iteration trace dispatch amortized over nT instructions; the
 * remainder behave as in T2; tier-2 compilation amortizes to cT*g2 per
 * retired instruction.
 */
double t4(const ModelParams &p);

/** F1 = (T3 - T2)/T2 * 100. */
double f1(const ModelParams &p);

/** F2 = (T1 - T2)/T2 * 100. */
double f2(const ModelParams &p);

/** The paper's printed Table 2 closed form. */
double paperTable2(double d, double x);

/** The paper's printed Table 3 closed form. */
double paperTable3(double d, double x);

/** The d values of the paper's grid: {10, 20, 30}. */
const std::vector<double> &paperDGrid();

/** The x values of the paper's grid: {5, 10, 15, 20, 25, 30}. */
const std::vector<double> &paperXGrid();

} // namespace uhm::analytic

#endif // UHM_ANALYTIC_MODEL_HH
