/**
 * @file
 * Regenerates Figure 4 of the paper: the flow of the INTERP
 * instruction — the hit path straight into the PSDER sequence and the
 * miss path trapping through DTRPOINT into the dynamic translator.
 *
 * Two demonstrations:
 *  1. an annotated event trace of a short loop's first iterations,
 *     showing each DIR address missing exactly once and hitting
 *     thereafter;
 *  2. the amortization curve: binding cost per executed instruction as
 *     a function of how many times the loop re-executes — "the time
 *     spent in binding is spread out over those instructions" (sec. 4).
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
printTrace()
{
    DirProgram prog = hlr::compileSource(
        "program t; var i, s; begin i := 3; s := 0; "
        "while i > 0 do s := s + i; i := i - 1; od; write s; end.");
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg = makeConfig(MachineKind::Dtb);
    cfg.traceEvents = true;
    Machine machine(*image, cfg);
    RunResult r = machine.run();

    std::printf("Event trace (3-iteration countdown loop, huffman DIR):\n"
                "first %d INTERP events --\n\n", 40);
    int shown = 0;
    for (const std::string &event : r.trace) {
        std::printf("  %s\n", event.c_str());
        if (++shown >= 40)
            break;
    }
    uint64_t misses = r.stats.get("dtb_misses");
    uint64_t hits = r.stats.get("dtb_hits");
    std::printf("\n%llu interp events total: %llu misses (one per "
                "distinct DIR instruction\nexecuted), %llu hits; output "
                "= %lld (expected 6)\n",
                static_cast<unsigned long long>(misses + hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(hits),
                static_cast<long long>(r.output.at(0)));
}

void
printAmortization()
{
    TextTable table(
        "Amortization of binding: average cycles per DIR instruction vs "
        "loop trip\ncount (the same loop body, re-executed)");
    table.setHeader({"iterations", "h_D", "dtb cycles/instr",
                     "conv cycles/instr", "dtb/conv"});
    for (uint32_t iters : {1u, 2u, 5u, 10u, 50u, 200u, 1000u}) {
        std::ostringstream src;
        src << "program t; var i, s; begin i := " << iters
            << "; s := 0; while i > 0 do s := s + i * i; i := i - 1; od;"
            << " write s; end.";
        DirProgram prog = hlr::compileSource(src.str());
        auto image = encodeDir(prog, EncodingScheme::Huffman);

        Machine dtb(*image, makeConfig(MachineKind::Dtb));
        Machine conv(*image, makeConfig(MachineKind::Conventional));
        RunResult rd = dtb.run();
        RunResult rc = conv.run();
        table.addRow({TextTable::num(uint64_t{iters}),
                      TextTable::num(rd.dtbHitRatio, 4),
                      TextTable::num(rd.avgInterpTime(), 2),
                      TextTable::num(rc.avgInterpTime(), 2),
                      TextTable::num(rd.avgInterpTime() /
                                     rc.avgInterpTime(), 3)});
    }
    table.print();
    std::printf(
        "\nShape check: at 1 iteration the DTB pays translation for "
        "nothing and loses;\nas the trip count grows the bound "
        "representation is reused, h_D -> 1, and the\nDTB settles at a "
        "fraction of the conventional cost.\n");
}

void
printMissPathCost()
{
    // Decompose the miss path of Figure 4: trap + fetch + decode +
    // generate/store, from a single cold pass (every instruction
    // missing once, no reuse).
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("echo").source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg = makeConfig(MachineKind::Dtb);
    Machine machine(*image, cfg);
    RunResult r = machine.run({0});

    TextTable table("Miss-path decomposition (cold straight-line code, "
                    "per translated instruction)");
    table.setHeader({"component", "cycles/translated instr"});
    double n = static_cast<double>(r.stats.get("dtb_misses"));
    table.addRow({"fetch DIR from level 2",
                  TextTable::num(r.breakdown.fetch / n, 2)});
    table.addRow({"decode + parse (d)",
                  TextTable::num(r.breakdown.decode / n, 2)});
    table.addRow({"generate + store PSDER (g)",
                  TextTable::num(r.breakdown.translate / n, 2)});
    table.print();
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 4: flow diagram of the INTERP instruction "
                "===\n\n");
    printTrace();
    std::printf("\n");
    printAmortization();
    std::printf("\n");
    printMissPathCost();
    return 0;
}
