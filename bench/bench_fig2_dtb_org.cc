/**
 * @file
 * Regenerates Figure 2 of the paper: the organization of the dynamic
 * translation buffer — quantitatively, as hit-ratio and cycle sweeps
 * over the organizational parameters the figure depicts: buffer
 * capacity, set associativity (the paper: "set associativity of degree
 * 4 has been found to be nearly as effective as full associativity"),
 * the unit of allocation and the overflow area (section 5.1).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/trace_sim.hh"
#include "core/translator.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

RunResult
runDtb(const DirProgram &prog, const DtbConfig &dtb_cfg)
{
    MachineConfig cfg = makeConfig(MachineKind::Dtb);
    cfg.dtb = dtb_cfg;
    return runProgram(prog, EncodingScheme::Huffman, cfg);
}

void
capacitySweep(const DirProgram &prog)
{
    TextTable table("Capacity sweep (4-way LRU, unit = 4 short instrs): "
                    "hit ratio h_D rises with\nbuffer size and saturates "
                    "once the working set fits");
    table.setHeader({"capacity (bytes)", "entries", "h_D",
                     "cycles/instr"});
    for (uint64_t cap : {256u, 512u, 1024u, 2048u, 4096u, 8192u,
                         16384u, 65536u}) {
        DtbConfig dtb;
        dtb.capacityBytes = cap;
        RunResult r = runDtb(prog, dtb);
        Dtb probe(dtb);
        table.addRow({TextTable::num(cap),
                      TextTable::num(probe.numEntries()),
                      TextTable::num(r.dtbHitRatio, 4),
                      TextTable::num(r.avgInterpTime(), 2)});
    }
    table.print();
}

void
associativitySweep(const DirProgram &prog)
{
    TextTable table("Associativity sweep (4096-byte buffer): degree 4 is "
                    "nearly as effective as\nfull associativity "
                    "(section 5.2)");
    table.setHeader({"associativity", "sets", "h_D", "cycles/instr"});
    for (unsigned assoc : {1u, 2u, 4u, 8u, 16u, 0u}) {
        DtbConfig dtb;
        dtb.assoc = assoc;
        RunResult r = runDtb(prog, dtb);
        Dtb probe(dtb);
        table.addRow({assoc == 0 ? "full" : TextTable::num(uint64_t{assoc}),
                      TextTable::num(probe.numSets()),
                      TextTable::num(r.dtbHitRatio, 4),
                      TextTable::num(r.avgInterpTime(), 2)});
    }
    table.print();
}

void
allocationSweep(const DirProgram &prog)
{
    TextTable table("Unit-of-allocation sweep (4096 bytes, 4-way): small "
                    "units need the overflow\narea, big units waste "
                    "entries (section 5.1)");
    table.setHeader({"unit (short instrs)", "overflow", "entries", "h_D",
                     "overflow blocks used", "rejects", "cycles/instr"});
    for (unsigned unit : {2u, 3u, 4u, 6u, 8u}) {
        for (bool overflow : {true, false}) {
            DtbConfig dtb;
            dtb.unitShortInstrs = unit;
            dtb.allowOverflow = overflow;
            RunResult r = runDtb(prog, dtb);
            Dtb probe(dtb);
            table.addRow({TextTable::num(uint64_t{unit}),
                          overflow ? "yes" : "no",
                          TextTable::num(probe.numEntries()),
                          TextTable::num(r.dtbHitRatio, 4),
                          TextTable::num(r.stats.get(
                              "dtb_overflow_blocks")),
                          TextTable::num(r.stats.get("dtb_rejects")),
                          TextTable::num(r.avgInterpTime(), 2)});
        }
    }
    table.print();
}

void
traceDrivenMatrix(const DirProgram &prog)
{
    // The 1970s methodology the paper's hit-ratio assumptions rest on:
    // capture one reference trace, replay it through many geometries.
    auto image = encodeDir(prog, EncodingScheme::Huffman);
    MachineConfig cfg = makeConfig(MachineKind::Dtb);
    cfg.captureAddressTrace = true;
    Machine machine(*image, cfg);
    RunResult run = machine.run();
    DynamicTranslator translator(*image);
    auto size_of = [&](uint64_t addr) {
        return static_cast<unsigned>(
            translator.translate(addr).code.size());
    };

    TextTable table("Trace-driven capacity x associativity matrix (h_D "
                    "from replaying one captured\ntrace of " +
                    TextTable::num(uint64_t{run.dirInstrs}) +
                    " references)");
    table.setHeader({"capacity \\ assoc", "1", "2", "4", "8", "full"});
    for (uint64_t cap : {512u, 1024u, 2048u, 4096u, 8192u}) {
        std::vector<std::string> row = {TextTable::num(cap)};
        for (unsigned assoc : {1u, 2u, 4u, 8u, 0u}) {
            DtbConfig dtb;
            dtb.capacityBytes = cap;
            dtb.assoc = assoc;
            TraceSimResult r =
                simulateDtbTrace(run.addressTrace, dtb, size_of);
            row.push_back(TextTable::num(r.hitRatio(), 3));
        }
        table.addRow(row);
    }
    table.print();
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 2: organization of the dynamic translation "
                "buffer ===\n\n");
    // A workload whose instruction working set stresses a 4KB DTB.
    workload::SyntheticConfig cfg;
    cfg.numLoops = 10;
    cfg.bodyInstrs = 45;
    cfg.iterations = 8;
    cfg.outerRepeats = 10;
    cfg.semworkDensity = 0.1;
    cfg.semworkWeight = 2;
    cfg.seed = 2;
    DirProgram prog = workload::generateSynthetic(cfg);
    std::printf("workload: synthetic, %zu DIR instructions\n\n",
                prog.size());

    capacitySweep(prog);
    std::printf("\n");
    associativitySweep(prog);
    std::printf("\n");
    allocationSweep(prog);
    std::printf("\n");
    traceDrivenMatrix(prog);
    std::printf(
        "\nShape checks: h_D rises monotonically with capacity; degree-4 "
        "tracks full\nassociativity to within a few tenths of a percent; "
        "disabling the overflow area\nat small units turns long "
        "translations into permanent misses.\n");
    return 0;
}
