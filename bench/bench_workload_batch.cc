/**
 * @file
 * Multi-program batch throughput: the "heavy traffic" scenario.
 *
 * Treats the whole sample corpus as one batch of independent jobs —
 * every program on all four machine organizations — and pushes it
 * through the sweep harness the way a translation service would: many
 * concurrent simulations, per-job observability isolated per worker,
 * one deterministic merged ledger at the end.
 *
 * All table and counter output is byte-identical for any --jobs value;
 * the host wall-clock goes to stderr where it cannot perturb diffs.
 *
 * Usage: bench_workload_batch [--jobs=N]
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

int
main(int argc, char **argv)
{
    SweepRunner runner(jobsFromArgs(argc, argv));

    const std::vector<MachineKind> kinds = {
        MachineKind::Conventional, MachineKind::Cached, MachineKind::Dtb,
        MachineKind::Dtb2};

    std::vector<SweepPoint> points;
    for (const auto &sample : workload::samplePrograms()) {
        for (MachineKind kind : kinds) {
            SweepPoint point;
            point.label = sample.name;
            point.program = hlr::compileSource(sample.source);
            point.config = makeConfig(kind);
            point.input = sample.input;
            points.push_back(std::move(point));
        }
    }

    std::printf("=== Batch workload: %zu jobs (%zu programs x %zu "
                "organizations) ===\n\n",
                points.size(), points.size() / kinds.size(),
                kinds.size());

    auto start = std::chrono::steady_clock::now();
    SweepReport report = runSweep(runner, points);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    TextTable table("Cycles per DIR instruction by organization "
                    "(huffman DIR)");
    table.setHeader({"program", "conventional", "cached", "dtb",
                     "dtb2"});
    for (size_t i = 0; i < points.size(); i += kinds.size()) {
        std::vector<std::string> row = {points[i].label};
        for (size_t k = 0; k < kinds.size(); ++k) {
            row.push_back(TextTable::num(
                report.results[i + k].avgInterpTime(), 2));
        }
        table.addRow(row);
    }
    table.print();

    const obs::MergedCounters &merged = report.counters;
    std::printf("\nMerged ledger over the whole batch (point-order "
                "merge; see src/obs/merge.hh):\n");
    std::printf("  simulated DIR instrs : %llu\n",
                static_cast<unsigned long long>(
                    merged.get("machine.dir_instrs")));
    std::printf("  simulated cycles     : level1 %llu + level2 %llu "
                "memory accesses\n",
                static_cast<unsigned long long>(
                    merged.get("mem.level1_accesses")),
                static_cast<unsigned long long>(
                    merged.get("mem.level2_accesses")));
    std::printf("  dtb traffic          : %llu hits / %llu misses / "
                "%llu evictions\n",
                static_cast<unsigned long long>(merged.get("dtb.hits")),
                static_cast<unsigned long long>(
                    merged.get("dtb.misses")),
                static_cast<unsigned long long>(
                    merged.get("dtb.evictions")));

    std::fprintf(stderr, "# %zu jobs on %u workers: %.2f s host "
                 "wall-clock\n",
                 points.size(), runner.jobs(), elapsed.count());
    return 0;
}
