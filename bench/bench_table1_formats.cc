/**
 * @file
 * Regenerates Table 1 of the paper: "Equivalence of a PSDER sequence to
 * more compact, encoded formats."
 *
 * The paper shows one two-operand operation in three representations:
 * the PSDER procedure-call sequence, a PDP-11-style two-operand format
 * and a System/360 RX-style format (minus the index field), each more
 * compact and more heavily bound than the last. This bench prints the
 * worked equivalence for a representative DIR instruction sequence and
 * the aggregate bits-per-DIR-instruction of each representation over
 * the sample programs.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/translator.hh"
#include "psder/staging.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

/**
 * Format models (field widths in bits).
 *
 * PSDER: each short instruction is a 16-bit word (2-bit opcode, 2-bit
 * mode, 12-bit operand/literal; wide literals take an extra word).
 *
 * PDP-11 style: 16-bit word = 4-bit opcode + two 6-bit operand
 * specifications (3-bit mode + 3-bit register each).
 *
 * System/360 RX style (index field dropped, as in the paper's Table 1):
 * 8-bit opcode + 4-bit register + 4-bit base + 12-bit displacement =
 * 28 bits.
 */
constexpr unsigned psderWordBits = 16;
constexpr unsigned pdp11Bits = 16;
constexpr unsigned rxBits = 28;

void
printWorkedExample()
{
    // The paper's example: one two-operand operation (operand 1 a
    // source, operand 2 source-and-destination), e.g. b := b + a.
    std::printf(
        "Worked example: the DIR statement  b := b + a  (globals a=slot 0,"
        " b=slot 1)\n\n");

    DirProgram p;
    p.name = "table1";
    p.numGlobals = 2;
    Contour main_ctr;
    main_ctr.name = "<main>";
    main_ctr.depth = 1;
    main_ctr.slotsAtDepth = {2, 0};
    p.contours.push_back(main_ctr);
    auto emit = [&](DirInstruction ins) {
        p.instrs.push_back(ins);
        p.contourOf.push_back(0);
        return p.instrs.size() - 1;
    };
    p.entry = emit({Op::ENTER, 1, 0, 0});
    emit({Op::PUSHL, 0, 1}); // b
    emit({Op::PUSHL, 0, 0}); // a
    emit({Op::ADD});
    emit({Op::STOREL, 0, 1});
    emit({Op::HALT});
    p.contours[0].entry = p.entry;
    p.validate();

    auto image = encodeDir(p, EncodingScheme::Packed);
    DynamicTranslator translator(*image);

    std::printf("1. PSDER sequence (the dynamic representation; each line"
                " one short-format\n   instruction of %u bits):\n",
                psderWordBits);
    size_t total_short = 0;
    for (size_t i = 1; i <= 4; ++i) {
        Translation tr = translator.translate(image->bitAddrOf(i));
        std::printf("   ; %s\n", p.instrs[i].toString().c_str());
        for (const ShortInstr &si : tr.code)
            std::printf("       %s\n", si.toString().c_str());
        total_short += tr.code.size();
    }
    std::printf("   total: %zu short instructions = %zu bits\n\n",
                total_short, total_short * psderWordBits);

    std::printf("2. PDP-11-style two-operand format (one %u-bit word:\n"
                "   OPCODE | mode+reg operand1 (source) | mode+reg "
                "operand2 (src+dst)):\n"
                "       ADD  a, b          ; %u bits\n\n",
                pdp11Bits, pdp11Bits);

    std::printf("3. System/360 RX-style format (OPCODE 8 | REG 4 | BASE 4"
                " | DISP 12,\n   index field dropped as in the paper):\n"
                "       A    r1, disp(base) ; %u bits\n\n", rxBits);

    std::printf("Compactness ordering (one logical add): PSDER %zu bits"
                "  >  PDP-11 %u bits\n>  RX %u bits -- the PSDER is the"
                " fastest to dispatch but the least compact;\nencoding"
                " trades that speed for space (section 3.2).\n\n",
                total_short * psderWordBits, pdp11Bits, rxBits);
}

void
printAggregate()
{
    TextTable table(
        "Aggregate over compiled sample programs: mean bits per DIR "
        "instruction in\neach representation");
    table.setHeader({"program", "instrs", "PSDER", "expanded", "packed",
                     "huffman", "pair-huffman"});

    for (const char *name : {"sieve", "fib", "qsort", "matmul", "queens",
                             "nest", "collatz"}) {
        DirProgram prog = hlr::compileSource(
            workload::sampleByName(name).source);
        auto packed = encodeDir(prog, EncodingScheme::Packed);
        auto expanded = encodeDir(prog, EncodingScheme::Expanded);
        auto huffman = encodeDir(prog, EncodingScheme::Huffman);
        auto pair = encodeDir(prog, EncodingScheme::PairHuffman);

        DynamicTranslator translator(*packed);
        size_t short_instrs = 0;
        for (size_t i = 0; i < prog.size(); ++i)
            short_instrs +=
                translator.translate(packed->bitAddrOf(i)).code.size();
        double psder_bits = static_cast<double>(
            short_instrs * psderWordBits) / prog.size();

        table.addRow({name, TextTable::num(uint64_t{prog.size()}),
                      TextTable::num(psder_bits, 1),
                      TextTable::num(expanded->meanInstrBits(), 1),
                      TextTable::num(packed->meanInstrBits(), 1),
                      TextTable::num(huffman->meanInstrBits(), 1),
                      TextTable::num(pair->meanInstrBits(), 1)});
    }
    table.print();
    std::printf(
        "\nShape check: PSDER (dynamic) > packed > huffman >= pair-huffman"
        " (static),\nreproducing Table 1's compactness ordering; the "
        "expanded machine-language\nform dwarfs them all.\n");
}

} // anonymous namespace

int
main()
{
    std::printf("=== Table 1: equivalence of a PSDER sequence to more "
                "compact, encoded formats ===\n\n");
    printWorkedExample();
    printAggregate();
    return 0;
}
