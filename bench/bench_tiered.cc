/**
 * @file
 * bench_tiered — the adaptive tier's operating space (the PR-4
 * tentpole): sweep the hotness threshold and the trace-cache capacity
 * for the tiered organization over the whole sample corpus plus the
 * synthetic grid workload, against measured T1/T2/T3 baselines
 * (conventional, DTB, icache at the same capacity).
 *
 * Every number here is a *simulated* cycle count or a ratio of such
 * counts — fully deterministic, byte-identical for any --jobs value
 * (the points fan out over bench_common's SweepRunner and are
 * aggregated in grid order). There are deliberately no wall-clock
 * metrics; scripts/bench_compare.py therefore treats the committed
 * BENCH_tiered.json as an exact-schema reference, not a noisy one.
 *
 * Emits a human-readable table on stdout and a JSON document (schema
 * in docs/BENCHMARKS.md) to --out=<file>, default BENCH_tiered.json.
 *
 * Usage: bench_tiered [--out=FILE] [--jobs=N] [--seed=N]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

/** One corpus entry: a compiled program plus its input. */
struct CorpusEntry
{
    std::string name;
    DirProgram program;
    std::vector<int64_t> input;
};

std::vector<CorpusEntry>
buildCorpus(uint64_t seed)
{
    std::vector<CorpusEntry> corpus;
    for (const auto &sample : workload::samplePrograms()) {
        CorpusEntry e;
        e.name = sample.name;
        e.program = hlr::compileSource(sample.source);
        e.input = sample.input;
        corpus.push_back(std::move(e));
    }
    CorpusEntry synth;
    synth.name = "synthetic";
    synth.program = gridWorkload(2, seed);
    corpus.push_back(std::move(synth));
    return corpus;
}

/** Corpus-aggregate of one machine configuration. */
struct AggRow
{
    uint64_t cycles = 0;
    uint64_t dirInstrs = 0;
    /** Weighted (per-instruction) means over the corpus. */
    double dtbHitRatio = 0;
    double traceHitRatio = 0;
    double coverage = 0;
    double cpi() const
    {
        return dirInstrs == 0 ? 0.0 :
               static_cast<double>(cycles) /
               static_cast<double>(dirInstrs);
    }
};

AggRow
aggregate(const std::vector<RunResult> &results)
{
    AggRow row;
    double dtb = 0, trace = 0, cover = 0;
    for (const RunResult &r : results) {
        row.cycles += r.cycles;
        row.dirInstrs += r.dirInstrs;
        double w = static_cast<double>(r.dirInstrs);
        dtb += w * r.dtbHitRatio;
        trace += w * r.traceHitRatio;
        cover += w * r.traceCoverage;
    }
    double n = static_cast<double>(row.dirInstrs);
    if (n > 0) {
        row.dtbHitRatio = dtb / n;
        row.traceHitRatio = trace / n;
        row.coverage = cover / n;
    }
    return row;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string out_path = "BENCH_tiered.json";
    uint64_t seed = 1978;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(std::strlen("--out="));
        else if (arg.rfind("--seed=", 0) == 0)
            seed = std::stoull(arg.substr(std::strlen("--seed=")));
        else if (arg.rfind("--jobs=", 0) == 0)
            continue; // consumed by jobsFromArgs below
        else
            fatal("unknown option '%s'", arg.c_str());
    }

    std::vector<CorpusEntry> corpus = buildCorpus(seed);

    // The grid: hotness thresholds x trace-cache capacities. The
    // baselines (T1/T2/T3 organizations) share the corpus and the
    // default DTB/icache capacity, so the tiered column is an
    // apples-to-apples T4 at equal second-level resources.
    const std::vector<uint32_t> thresholds = {2, 4, 8, 16};
    // 256 B holds only a handful of traces (capacity pressure shows in
    // the coverage column); 8192 B is the default operating point.
    const std::vector<uint64_t> traceBytes = {256, 8192};
    const std::vector<MachineKind> baselineKinds = {
        MachineKind::Conventional, MachineKind::Dtb, MachineKind::Cached,
    };

    // Flatten (config x program) into one SweepPoint batch so every
    // simulation fans out over the runner at once; aggregation below
    // walks the result vector in grid order, keeping the report
    // byte-identical for any job count.
    std::vector<MachineConfig> configs;
    std::vector<std::string> configNames;
    for (MachineKind kind : baselineKinds) {
        configs.push_back(makeConfig(kind));
        configNames.push_back(machineKindName(kind));
    }
    for (uint32_t threshold : thresholds) {
        for (uint64_t bytes : traceBytes) {
            MachineConfig cfg = makeConfig(MachineKind::Tiered);
            cfg.tier.hotThreshold = threshold;
            cfg.traceCache.capacityBytes = bytes;
            configs.push_back(cfg);
            configNames.push_back(
                "tiered t=" + std::to_string(threshold) +
                " tc=" + std::to_string(bytes));
        }
    }

    std::vector<SweepPoint> points;
    for (const MachineConfig &cfg : configs) {
        for (const CorpusEntry &e : corpus) {
            SweepPoint point;
            point.label = e.name;
            point.program = e.program;
            point.config = cfg;
            point.input = e.input;
            points.push_back(std::move(point));
        }
    }

    SweepRunner runner(jobsFromArgs(argc, argv));
    SweepReport report = runSweep(runner, points);

    std::vector<AggRow> rows;
    for (size_t c = 0; c < configs.size(); ++c) {
        std::vector<RunResult> slice(
            report.results.begin() +
                static_cast<ptrdiff_t>(c * corpus.size()),
            report.results.begin() +
                static_cast<ptrdiff_t>((c + 1) * corpus.size()));
        rows.push_back(aggregate(slice));
    }

    const AggRow &dtb_row = rows[1]; // baselineKinds order: the T2 row

    std::printf("bench_tiered: %zu corpus programs x %zu configs on %u "
                "workers (simulated cycles)\n\n",
                corpus.size(), configs.size(), runner.jobs());
    std::printf("%-22s %12s %10s %8s %8s %9s\n", "config",
                "cycles/instr", "vs dtb", "hD", "cover", "trace-hit");
    for (size_t c = 0; c < configs.size(); ++c) {
        const AggRow &r = rows[c];
        std::printf("%-22s %12.3f %9.3fx %8.4f %8.4f %9.4f\n",
                    configNames[c].c_str(), r.cpi(),
                    dtb_row.cpi() / r.cpi(), r.dtbHitRatio, r.coverage,
                    r.traceHitRatio);
    }

    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("bench_tiered");
    jw.key("corpus_programs").value(
        static_cast<uint64_t>(corpus.size()));
    jw.key("seed").value(seed);
    jw.key("baseline").beginArray();
    for (size_t c = 0; c < baselineKinds.size(); ++c) {
        jw.beginObject();
        jw.key("machine").value(configNames[c]);
        jw.key("cycles").value(rows[c].cycles);
        jw.key("dir_instrs").value(rows[c].dirInstrs);
        jw.key("cycles_per_instr").value(rows[c].cpi());
        jw.endObject();
    }
    jw.endArray();
    jw.key("tiered").beginArray();
    for (size_t t = 0; t < thresholds.size(); ++t) {
        for (size_t b = 0; b < traceBytes.size(); ++b) {
            size_t c = baselineKinds.size() + t * traceBytes.size() + b;
            const AggRow &r = rows[c];
            jw.beginObject();
            jw.key("threshold").value(
                static_cast<uint64_t>(thresholds[t]));
            jw.key("trace_bytes").value(traceBytes[b]);
            jw.key("cycles").value(r.cycles);
            jw.key("dir_instrs").value(r.dirInstrs);
            jw.key("cycles_per_instr").value(r.cpi());
            jw.key("speedup_vs_dtb").value(dtb_row.cpi() / r.cpi());
            jw.key("dtb_hit_ratio").value(r.dtbHitRatio);
            jw.key("tier_coverage").value(r.coverage);
            jw.key("trace_hit_ratio").value(r.traceHitRatio);
            jw.endObject();
        }
    }
    jw.endArray();
    jw.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot open '%s'", out_path.c_str());
    out << jw.str() << "\n";
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
