/**
 * @file
 * Scaling study of the parallel sweep harness itself.
 *
 * Runs one fixed batch workload — every sample program on the
 * conventional and DTB organizations — serially (--jobs=1) and on the
 * full worker complement, reports host wall-clock per configuration
 * and the speedup, and verifies the harness's central promise: the
 * merged JSONL report is byte-identical at every job count.
 *
 * This is the one bench whose *numbers* (host seconds) legitimately
 * vary run to run; the verdict lines ("identical: yes") and the
 * report bytes themselves are deterministic. See docs/BENCHMARKS.md.
 *
 * Usage: bench_sweep_scaling [--jobs=N]   (N caps the parallel leg)
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

std::vector<SweepPoint>
batchWorkload()
{
    std::vector<SweepPoint> points;
    for (const auto &sample : workload::samplePrograms()) {
        for (MachineKind kind : {MachineKind::Conventional,
                                 MachineKind::Dtb}) {
            SweepPoint point;
            point.label = sample.name;
            point.program = hlr::compileSource(sample.source);
            point.config = makeConfig(kind);
            point.input = sample.input;
            points.push_back(std::move(point));
        }
    }
    return points;
}

/** Run the batch at @p jobs workers; returns (report, seconds). */
std::pair<SweepReport, double>
timedSweep(const std::vector<SweepPoint> &points, unsigned jobs)
{
    SweepRunner runner(jobs);
    auto start = std::chrono::steady_clock::now();
    SweepReport report = runSweep(runner, points);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return {std::move(report), elapsed.count()};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned jobs = jobsFromArgs(argc, argv);
    if (jobs == 0)
        jobs = defaultJobs();

    std::printf("=== Sweep harness scaling (%zu points: samples x "
                "{conventional, dtb}) ===\n\n", batchWorkload().size());

    std::vector<SweepPoint> points = batchWorkload();
    auto [serial, serial_s] = timedSweep(points, 1);
    auto [parallel, parallel_s] = timedSweep(points, jobs);

    TextTable table("Wall-clock by worker count (host seconds; varies "
                    "with the machine — the\nbyte-identity verdict "
                    "below is the deterministic part)");
    table.setHeader({"jobs", "seconds", "speedup"});
    table.addRow({"1", TextTable::num(serial_s, 2), "1.00x"});
    table.addRow({TextTable::num(static_cast<uint64_t>(jobs)),
                  TextTable::num(parallel_s, 2),
                  TextTable::num(serial_s / parallel_s, 2) + "x"});
    table.print();

    bool identical = serial.jsonl == parallel.jsonl;
    std::printf("\nmerged JSONL report byte-identical across job "
                "counts: %s\n", identical ? "yes" : "NO — BUG");
    std::printf("merged dir instrs: %llu; merged counters: %llu names\n",
                static_cast<unsigned long long>(
                    serial.counters.get("machine.dir_instrs")),
                static_cast<unsigned long long>(
                    serial.counters.values().size()));
    return identical ? 0 : 1;
}
