#include "bench_common.hh"

#include <cstdlib>
#include <cstring>

#include "support/json.hh"

namespace uhm::bench
{

MeasuredPoint
measurePoint(const DirProgram &prog, EncodingScheme scheme,
             const MachineConfig &base, const std::vector<int64_t> &input)
{
    auto image = encodeDir(prog, scheme);

    MachineConfig conv_cfg = base;
    conv_cfg.kind = MachineKind::Conventional;
    MachineConfig cache_cfg = base;
    cache_cfg.kind = MachineKind::Cached;
    MachineConfig dtb_cfg = base;
    dtb_cfg.kind = MachineKind::Dtb;

    Machine conv(*image, conv_cfg);
    Machine cached(*image, cache_cfg);
    Machine dtb(*image, dtb_cfg);
    RunResult r1 = conv.run(input);
    RunResult r3 = cached.run(input);
    RunResult r2 = dtb.run(input);

    MeasuredPoint pt;
    pt.t1 = r1.avgInterpTime();
    pt.t2 = r2.avgInterpTime();
    pt.t3 = r3.avgInterpTime();
    // Decode-heavy parameters come from the conventional run (it
    // decodes every instruction); the DTB-path parameters from the DTB
    // run.
    pt.d = r1.measuredD;
    pt.x = r1.measuredX;
    pt.g = r2.measuredG;
    pt.hD = r2.dtbHitRatio;
    pt.hc = r3.cacheHitRatio;
    pt.dirInstrs = r1.dirInstrs;
    if (r2.dirInstrs > 0) {
        pt.s1 = static_cast<double>(r2.stats.get("short_instrs")) /
                static_cast<double>(r2.dirInstrs);
    }
    if (r1.dirInstrs > 0) {
        pt.s2 = static_cast<double>(r1.stats.get("dir_fetch_refs")) /
                static_cast<double>(r1.dirInstrs);
    }
    return pt;
}

DirProgram
gridWorkload(uint32_t semwork_weight, uint64_t seed)
{
    workload::SyntheticConfig cfg;
    cfg.numLoops = 14;
    cfg.bodyInstrs = 50;
    cfg.iterations = 5;
    cfg.outerRepeats = 12;
    cfg.semworkDensity = semwork_weight > 0 ? 0.25 : 0.0;
    cfg.semworkWeight = semwork_weight;
    cfg.numGlobals = 24;
    cfg.seed = seed;
    return workload::generateSynthetic(cfg);
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            long n = std::strtol(argv[i] + 7, nullptr, 10);
            if (n > 0)
                return static_cast<unsigned>(n);
        }
    }
    return 0;
}

std::vector<SteeredPoint>
steeredGrid()
{
    std::vector<SteeredPoint> grid;
    for (double d : analytic::paperDGrid())
        for (double x : {5.0, 15.0, 30.0})
            grid.push_back({d, x});
    return grid;
}

MeasuredPoint
measureSteered(const SteeredPoint &pt, EncodingScheme scheme)
{
    // Steer x with SEMWORK weight; each spin iteration costs ~4
    // micro-cycles and density is 0.25, so weight ~= (x_target -
    // base_x) for the coarse baseline x ~ 14.
    uint32_t weight = pt.xTarget > 14 ?
        static_cast<uint32_t>(pt.xTarget - 14) : 0;
    DirProgram prog = gridWorkload(weight);

    MachineConfig base;
    base.costs.extraDecodeCycles = 0;
    // Calibrate d via a probe run, then pad.
    MeasuredPoint probe = measurePoint(prog, scheme, base);
    if (probe.d < pt.dTarget) {
        base.costs.extraDecodeCycles =
            static_cast<uint64_t>(pt.dTarget - probe.d + 0.5);
    }
    return measurePoint(prog, scheme, base);
}

std::vector<MeasuredPoint>
measureSteeredGrid(SweepRunner &runner,
                   const std::vector<SteeredPoint> &grid,
                   EncodingScheme scheme)
{
    return runner.mapItems(grid, [scheme](const SteeredPoint &pt) {
        return measureSteered(pt, scheme);
    });
}

std::vector<MeasuredPoint>
measureSamples(SweepRunner &runner, const std::vector<std::string> &names,
               EncodingScheme scheme)
{
    return runner.mapItems(names, [scheme](const std::string &name) {
        const auto &sample = workload::sampleByName(name);
        DirProgram prog = hlr::compileSource(sample.source);
        MachineConfig base;
        return measurePoint(prog, scheme, base, sample.input);
    });
}

std::vector<RunResult>
runConfigs(SweepRunner &runner, const DirProgram &prog,
           EncodingScheme scheme,
           const std::vector<MachineConfig> &configs,
           const std::vector<int64_t> &input)
{
    return runner.mapItems(configs,
                           [&](const MachineConfig &cfg) {
                               return runProgram(prog, scheme, cfg,
                                                 input);
                           });
}

namespace
{

/** Render one point's "sweep_point" JSONL line. */
std::string
sweepPointLine(const SweepPoint &point, const RunResult &r)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("type").value("sweep_point");
    jw.key("program").value(point.label);
    jw.key("machine").value(machineKindName(point.config.kind));
    jw.key("encoding").value(encodingName(point.scheme));
    jw.key("dir_instrs").value(r.dirInstrs);
    jw.key("cycles").value(r.cycles);
    jw.key("cycles_per_instr").value(r.avgInterpTime());
    if (point.config.kind == MachineKind::Dtb ||
        point.config.kind == MachineKind::Dtb2 ||
        point.config.kind == MachineKind::Tiered) {
        jw.key("dtb.hit_ratio").value(r.dtbHitRatio);
    }
    if (point.config.kind == MachineKind::Dtb2)
        jw.key("dtbl1.hit_ratio").value(r.dtbL1HitRatio);
    if (point.config.kind == MachineKind::Tiered) {
        jw.key("tier.coverage").value(r.traceCoverage);
        jw.key("tier.trace_hit_ratio").value(r.traceHitRatio);
    }
    if (point.config.kind == MachineKind::Cached)
        jw.key("icache.hit_ratio").value(r.cacheHitRatio);
    jw.endObject();
    return jw.str() + "\n";
}

/** Render one point's "sweep_hist" line (empty when no histograms). */
std::string
sweepHistLine(const SweepPoint &point, const RunResult &r)
{
    if (r.histograms.empty())
        return {};
    JsonWriter jw;
    jw.beginObject();
    jw.key("type").value("sweep_hist");
    jw.key("program").value(point.label);
    for (const auto &kv : r.histograms) {
        jw.key(kv.first);
        kv.second.writeJson(jw);
    }
    jw.endObject();
    return jw.str() + "\n";
}

/** Render one point's "sweep_sample" lines (empty when sampling off). */
std::string
sweepSampleLines(const SweepPoint &point, const RunResult &r)
{
    std::string out;
    for (const obs::OccupancySample &s : r.samples) {
        JsonWriter jw;
        jw.beginObject();
        jw.key("type").value("sweep_sample");
        jw.key("program").value(point.label);
        obs::writeSampleFields(jw, s);
        jw.endObject();
        out += jw.str() + "\n";
    }
    return out;
}

} // anonymous namespace

SweepReport
runSweep(SweepRunner &runner, const std::vector<SweepPoint> &points)
{
    SweepReport report;
    report.results = runner.mapItems(points, [](const SweepPoint &point) {
        return runProgram(point.program, point.scheme, point.config,
                          point.input);
    });

    // Aggregation happens here, in point order — never in the workers,
    // never in completion order — so the report is byte-identical for
    // any job count.
    for (size_t i = 0; i < points.size(); ++i) {
        report.jsonl += sweepPointLine(points[i], report.results[i]);
        report.jsonl += sweepHistLine(points[i], report.results[i]);
        report.jsonl += sweepSampleLines(points[i], report.results[i]);
        report.counters.accumulate(report.results[i].counters);
        report.histograms.accumulate(report.results[i].histograms);
    }

    JsonWriter jw;
    jw.beginObject();
    jw.key("type").value("sweep_summary");
    jw.key("points").value(static_cast<uint64_t>(points.size()));
    jw.key("counters");
    report.counters.writeJson(jw);
    jw.key("histograms");
    report.histograms.writeJson(jw);
    jw.endObject();
    report.jsonl += jw.str() + "\n";
    return report;
}

} // namespace uhm::bench
