#include "bench_common.hh"

namespace uhm::bench
{

MeasuredPoint
measurePoint(const DirProgram &prog, EncodingScheme scheme,
             const MachineConfig &base, const std::vector<int64_t> &input)
{
    auto image = encodeDir(prog, scheme);

    MachineConfig conv_cfg = base;
    conv_cfg.kind = MachineKind::Conventional;
    MachineConfig cache_cfg = base;
    cache_cfg.kind = MachineKind::Cached;
    MachineConfig dtb_cfg = base;
    dtb_cfg.kind = MachineKind::Dtb;

    Machine conv(*image, conv_cfg);
    Machine cached(*image, cache_cfg);
    Machine dtb(*image, dtb_cfg);
    RunResult r1 = conv.run(input);
    RunResult r3 = cached.run(input);
    RunResult r2 = dtb.run(input);

    MeasuredPoint pt;
    pt.t1 = r1.avgInterpTime();
    pt.t2 = r2.avgInterpTime();
    pt.t3 = r3.avgInterpTime();
    // Decode-heavy parameters come from the conventional run (it
    // decodes every instruction); the DTB-path parameters from the DTB
    // run.
    pt.d = r1.measuredD;
    pt.x = r1.measuredX;
    pt.g = r2.measuredG;
    pt.hD = r2.dtbHitRatio;
    pt.hc = r3.cacheHitRatio;
    pt.dirInstrs = r1.dirInstrs;
    if (r2.dirInstrs > 0) {
        pt.s1 = static_cast<double>(r2.stats.get("short_instrs")) /
                static_cast<double>(r2.dirInstrs);
    }
    if (r1.dirInstrs > 0) {
        pt.s2 = static_cast<double>(r1.stats.get("dir_fetch_refs")) /
                static_cast<double>(r1.dirInstrs);
    }
    return pt;
}

DirProgram
gridWorkload(uint32_t semwork_weight, uint64_t seed)
{
    workload::SyntheticConfig cfg;
    cfg.numLoops = 14;
    cfg.bodyInstrs = 50;
    cfg.iterations = 5;
    cfg.outerRepeats = 12;
    cfg.semworkDensity = semwork_weight > 0 ? 0.25 : 0.0;
    cfg.semworkWeight = semwork_weight;
    cfg.numGlobals = 24;
    cfg.seed = seed;
    return workload::generateSynthetic(cfg);
}

} // namespace uhm::bench
