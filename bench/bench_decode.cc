/**
 * @file
 * bench_decode — host-side wall-clock of the decode/translate fast
 * path (the PR-3 tentpole). Unlike the grid benches, which report
 * *simulated* cycles (identical whichever host path runs), this bench
 * times the host:
 *
 *  1. decode: tree-walk vs. table-driven Huffman decoding over the
 *     whole sample corpus, per encoding scheme;
 *  2. translate: the cold DynamicTranslator path vs. the memoized
 *     repeated-miss replay;
 *  3. events: a full DTB run with the typed-event tracer detached vs.
 *     attached (the zero-overhead observability claim).
 *
 * Emits a human-readable table on stdout and a JSON document (schema
 * in docs/BENCHMARKS.md) to --out=<file>, default BENCH_decode.json.
 * Wall-clock numbers are machine-dependent by nature; compare runs
 * with scripts/bench_compare.py.
 *
 * Usage: bench_decode [--out=FILE] [--iters=N]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/translator.hh"
#include "support/huffman.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

/** Keep results observable so the decode loops cannot be elided. */
volatile uint64_t g_sink = 0;

double
nowNs()
{
    using namespace std::chrono;
    return static_cast<double>(
        duration_cast<nanoseconds>(
            steady_clock::now().time_since_epoch()).count());
}

/**
 * Decode every instruction of @p image once through the bulk
 * decodeAll() path, reusing @p buf; returns a checksum.
 */
uint64_t
decodePass(const EncodedDir &image, std::vector<DecodeResult> &buf)
{
    image.decodeAll(buf);
    uint64_t sum = 0;
    for (const DecodeResult &res : buf)
        sum += static_cast<uint64_t>(res.instr.op) + res.nextBitAddr;
    return sum;
}

/** The compiled sample corpus, encoded under @p scheme. */
std::vector<std::unique_ptr<EncodedDir>>
corpusImages(const std::vector<DirProgram> &programs,
             EncodingScheme scheme)
{
    std::vector<std::unique_ptr<EncodedDir>> images;
    for (const DirProgram &prog : programs)
        images.push_back(encodeDir(prog, scheme));
    return images;
}

struct DecodeRow
{
    std::string scheme;
    uint64_t instrs = 0;         ///< instructions decoded per pass
    size_t tableEntries = 0;     ///< host decode-table footprint proxy
    double treeNsPerInstr = 0;
    double tableNsPerInstr = 0;
    double memoNsPerInstr = 0;
    /** Tree walk vs. raw table decode (every pass re-walks the stream). */
    double tableSpeedup() const
    {
        return treeNsPerInstr / tableNsPerInstr;
    }
    /**
     * Tree walk vs. the shipped fast path: table decode on first touch,
     * DecodeMemo replay on every revisit — what Machine/DynamicTranslator
     * actually pay per decode after warm-up.
     */
    double speedup() const { return treeNsPerInstr / memoNsPerInstr; }
};

DecodeRow
timeDecode(const std::vector<DirProgram> &programs,
           EncodingScheme scheme, unsigned iters)
{
    DecodeRow row;
    row.scheme = encodingName(scheme);
    auto images = corpusImages(programs, scheme);
    for (const auto &image : images) {
        row.instrs += image->numInstrs();
        row.tableEntries += image->metadataBits() / 32;
    }

    std::vector<DecodeResult> buf;
    auto measure = [&](HuffmanDecodeKind kind) -> double {
        ScopedHuffmanDecodeKind scoped(kind);
        for (const auto &image : images) // warm-up
            g_sink = g_sink + decodePass(*image, buf);
        double t0 = nowNs();
        for (unsigned it = 0; it < iters; ++it)
            for (const auto &image : images)
                g_sink = g_sink + decodePass(*image, buf);
        double t1 = nowNs();
        return (t1 - t0) /
               (static_cast<double>(row.instrs) * iters);
    };

    row.treeNsPerInstr = measure(HuffmanDecodeKind::Tree);
    row.tableNsPerInstr = measure(HuffmanDecodeKind::Table);

    // The shipped fast path: a DecodeMemo per image, filled by the
    // table decoder on the warm-up pass, replayed on every timed pass.
    {
        ScopedHuffmanDecodeKind scoped(HuffmanDecodeKind::Table);
        std::vector<DecodeMemo> memos;
        for (const auto &image : images)
            memos.emplace_back(*image);
        auto memoPass = [&]() {
            uint64_t sum = 0;
            for (size_t m = 0; m < memos.size(); ++m) {
                const EncodedDir &image = *images[m];
                for (size_t i = 0; i < image.numInstrs(); ++i) {
                    const DecodeResult &res =
                        memos[m].decodeAt(image.bitAddrOf(i));
                    sum += static_cast<uint64_t>(res.instr.op) +
                           res.nextBitAddr;
                }
            }
            return sum;
        };
        g_sink = g_sink + memoPass(); // warm-up fills the memos
        double t0 = nowNs();
        for (unsigned it = 0; it < iters; ++it)
            g_sink = g_sink + memoPass();
        double t1 = nowNs();
        row.memoNsPerInstr =
            (t1 - t0) / (static_cast<double>(row.instrs) * iters);
    }
    return row;
}

struct TranslateRow
{
    uint64_t instrs = 0; ///< translations per pass (whole corpus)
    double coldNsPerInstr = 0;
    double memoNsPerInstr = 0;
    double speedup() const { return coldNsPerInstr / memoNsPerInstr; }
};

/**
 * Time the repeated-miss translate path: every pass presents every pc
 * to the translator, as a DTB under miss pressure would. The cold
 * variant re-walks the bitstream each time; the memoized variant
 * replays the cached translation from the second pass on.
 */
TranslateRow
timeTranslate(const std::vector<DirProgram> &programs, unsigned iters)
{
    TranslateRow row;
    auto images = corpusImages(programs, EncodingScheme::Huffman);
    for (const auto &image : images)
        row.instrs += image->numInstrs();

    std::vector<DynamicTranslator> translators;
    for (const auto &image : images)
        translators.emplace_back(*image);

    auto pass = [&](bool memoized) {
        uint64_t sum = 0;
        for (size_t t = 0; t < translators.size(); ++t) {
            const EncodedDir &image = *images[t];
            for (size_t i = 0; i < image.numInstrs(); ++i) {
                uint64_t addr = image.bitAddrOf(i);
                sum += memoized ?
                    translators[t].translate(addr).code.size() :
                    translators[t].translateCold(addr).code.size();
            }
        }
        return sum;
    };

    g_sink = g_sink + pass(false); // warm-up
    double t0 = nowNs();
    for (unsigned it = 0; it < iters; ++it)
        g_sink = g_sink + pass(false);
    double t1 = nowNs();
    row.coldNsPerInstr =
        (t1 - t0) / (static_cast<double>(row.instrs) * iters);

    g_sink = g_sink + pass(true); // warm-up fills the memo
    t0 = nowNs();
    for (unsigned it = 0; it < iters; ++it)
        g_sink = g_sink + pass(true);
    t1 = nowNs();
    row.memoNsPerInstr =
        (t1 - t0) / (static_cast<double>(row.instrs) * iters);
    return row;
}

struct EventsRow
{
    double offMs = 0; ///< DTB run, tracer detached
    double onMs = 0;  ///< same run, typed-event ring attached
    double overheadPct() const { return (onMs - offMs) / offMs * 100; }
};

/** Time a full DTB simulation with the event tracer off vs. on. */
EventsRow
timeEvents(unsigned reps)
{
    const auto &sample = workload::sampleByName("qsort");
    DirProgram prog = hlr::compileSource(sample.source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    auto measure = [&](bool profile) -> double {
        MachineConfig cfg = makeConfig(MachineKind::Dtb);
        cfg.profileEvents = profile;
        Machine machine(*image, cfg);
        g_sink = g_sink + machine.run(sample.input).cycles; // warm-up
        double t0 = nowNs();
        for (unsigned r = 0; r < reps; ++r)
            g_sink = g_sink + machine.run(sample.input).cycles;
        double t1 = nowNs();
        return (t1 - t0) / reps / 1e6;
    };

    EventsRow row;
    row.offMs = measure(false);
    row.onMs = measure(true);
    return row;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string out_path = "BENCH_decode.json";
    unsigned iters = 200;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(std::strlen("--out="));
        else if (arg.rfind("--iters=", 0) == 0)
            iters = static_cast<unsigned>(
                std::stoul(arg.substr(std::strlen("--iters="))));
        else
            fatal("unknown option '%s'", arg.c_str());
    }

    std::vector<DirProgram> programs;
    for (const auto &sample : workload::samplePrograms())
        programs.push_back(hlr::compileSource(sample.source));

    const std::vector<EncodingScheme> schemes = {
        EncodingScheme::Huffman,   EncodingScheme::PairHuffman,
        EncodingScheme::Quantized, EncodingScheme::Contextual,
        EncodingScheme::Packed,
    };

    std::printf("bench_decode: host wall-clock, %u iters, "
                "%zu corpus programs\n\n", iters, programs.size());
    std::printf("%-14s %8s %12s %12s %12s %9s %9s\n", "scheme",
                "instrs", "tree ns/ins", "table ns/ins", "memo ns/ins",
                "tbl-spd", "fast-spd");

    std::vector<DecodeRow> rows;
    for (EncodingScheme scheme : schemes) {
        rows.push_back(timeDecode(programs, scheme, iters));
        const DecodeRow &r = rows.back();
        std::printf("%-14s %8llu %12.2f %12.2f %12.2f %8.2fx %8.2fx\n",
                    r.scheme.c_str(),
                    static_cast<unsigned long long>(r.instrs),
                    r.treeNsPerInstr, r.tableNsPerInstr,
                    r.memoNsPerInstr, r.tableSpeedup(), r.speedup());
    }

    TranslateRow tr = timeTranslate(programs, iters);
    std::printf("\ntranslate      %10llu %12.2f %12.2f %8.2fx  "
                "(cold vs memo)\n",
                static_cast<unsigned long long>(tr.instrs),
                tr.coldNsPerInstr, tr.memoNsPerInstr, tr.speedup());

    EventsRow ev = timeEvents(std::max(5u, iters / 20));
    std::printf("\nevents off %.3f ms / on %.3f ms per qsort run "
                "(%.1f%% tracer overhead)\n",
                ev.offMs, ev.onMs, ev.overheadPct());

    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("bench_decode");
    jw.key("iters").value(static_cast<uint64_t>(iters));
    jw.key("corpus_programs").value(
        static_cast<uint64_t>(programs.size()));
    jw.key("decode").beginArray();
    for (const DecodeRow &r : rows) {
        jw.beginObject();
        jw.key("scheme").value(r.scheme);
        jw.key("instrs").value(r.instrs);
        jw.key("tree_ns_per_instr").value(r.treeNsPerInstr);
        jw.key("table_ns_per_instr").value(r.tableNsPerInstr);
        jw.key("memo_ns_per_instr").value(r.memoNsPerInstr);
        jw.key("table_speedup").value(r.tableSpeedup());
        jw.key("speedup").value(r.speedup());
        jw.endObject();
    }
    jw.endArray();
    jw.key("translate").beginObject();
    jw.key("instrs").value(tr.instrs);
    jw.key("cold_ns_per_instr").value(tr.coldNsPerInstr);
    jw.key("memo_ns_per_instr").value(tr.memoNsPerInstr);
    jw.key("speedup").value(tr.speedup());
    jw.endObject();
    jw.key("events").beginObject();
    jw.key("off_ms").value(ev.offMs);
    jw.key("on_ms").value(ev.onMs);
    jw.key("overhead_pct").value(ev.overheadPct());
    jw.endObject();
    jw.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot open '%s'", out_path.c_str());
    out << jw.str() << "\n";
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
