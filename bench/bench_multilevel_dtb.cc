/**
 * @file
 * Explores section 4's extension: "When the dissimilarities between the
 * representations corresponding to minimum execution time and minimum
 * storage requirements are great, it is possible that a number of
 * levels of dynamic translation will be required."
 *
 * The Dtb2 machine adds a small tau1-speed first-level translation
 * buffer in front of the main DTB; hot translations are promoted into
 * it on reuse. This bench sweeps the first level's size across
 * workloads of different working-set sizes and compares against the
 * single-level machine.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
l1SizeSweep(SweepRunner &runner)
{
    TextTable table("First-level buffer size sweep (tight 30-instr loop "
                    "vs 14-phase synthetic),\ncycles per DIR instruction");
    table.setHeader({"L1 bytes", "loop h_L1", "loop cyc/instr",
                     "phased h_L1", "phased cyc/instr"});

    DirProgram loop = hlr::compileSource(
        "program t; var i, s; begin i := 5000; s := 0; "
        "while i > 0 do s := s + i * i; i := i - 1; od; write s; end.");
    DirProgram phased = gridWorkload(2);

    // Config 0 is the single-level baseline; the rest the L1 sizes.
    const std::vector<uint64_t> sizes = {128, 256, 512, 1024, 2048};
    std::vector<MachineConfig> configs = {makeConfig(MachineKind::Dtb)};
    for (uint64_t bytes : sizes) {
        MachineConfig cfg = makeConfig(MachineKind::Dtb2);
        cfg.dtbL1.capacityBytes = bytes;
        configs.push_back(cfg);
    }
    std::vector<RunResult> loop_r =
        runConfigs(runner, loop, EncodingScheme::Huffman, configs);
    std::vector<RunResult> phased_r =
        runConfigs(runner, phased, EncodingScheme::Huffman, configs);

    table.addRow({"(single-level DTB)", "-",
                  TextTable::num(loop_r[0].avgInterpTime(), 2), "-",
                  TextTable::num(phased_r[0].avgInterpTime(), 2)});
    for (size_t i = 0; i < sizes.size(); ++i) {
        const RunResult &rl = loop_r[i + 1];
        const RunResult &rp = phased_r[i + 1];
        table.addRow({TextTable::num(sizes[i]),
                      TextTable::num(rl.dtbL1HitRatio, 3),
                      TextTable::num(rl.avgInterpTime(), 2),
                      TextTable::num(rp.dtbL1HitRatio, 3),
                      TextTable::num(rp.avgInterpTime(), 2)});
    }
    table.print();
}

void
realPrograms(SweepRunner &runner)
{
    TextTable table("Compiled programs: one vs two levels of dynamic "
                    "translation (huffman DIR)");
    table.setHeader({"program", "dtb cyc/instr", "dtb2 cyc/instr",
                     "h_D", "h_L1", "speedup"});
    const std::vector<std::string> names = {"sieve", "fib", "qsort",
                                            "matmul", "queens"};
    // One worker per (program, organization) pair.
    auto results = runner.map(names.size() * 2, [&](size_t i) {
        const auto &sample = workload::sampleByName(names[i / 2]);
        DirProgram prog = hlr::compileSource(sample.source);
        auto image = encodeDir(prog, EncodingScheme::Huffman);
        Machine machine(*image, makeConfig(i % 2 == 0 ?
                                           MachineKind::Dtb :
                                           MachineKind::Dtb2));
        return machine.run(sample.input);
    });
    for (size_t i = 0; i < names.size(); ++i) {
        const RunResult &r1 = results[i * 2];
        const RunResult &r2 = results[i * 2 + 1];
        table.addRow({names[i], TextTable::num(r1.avgInterpTime(), 2),
                      TextTable::num(r2.avgInterpTime(), 2),
                      TextTable::num(r2.dtbHitRatio, 3),
                      TextTable::num(r2.dtbL1HitRatio, 3),
                      TextTable::num(r1.avgInterpTime() /
                                     r2.avgInterpTime(), 2) + "x"});
    }
    table.print();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SweepRunner runner(jobsFromArgs(argc, argv));
    std::printf("=== Multi-level dynamic translation (section 4's "
                "extension) ===\n\n");
    l1SizeSweep(runner);
    std::printf("\n");
    realPrograms(runner);
    std::printf(
        "\nShape checks: when the working set fits the first level, the "
        "tauD-vs-tau1\ndifference on every short-instruction fetch "
        "compounds into a solid win; when it\ndoes not, promotion "
        "traffic makes the second level pay its way instead.\n");
    return 0;
}
