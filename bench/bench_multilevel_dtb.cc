/**
 * @file
 * Explores section 4's extension: "When the dissimilarities between the
 * representations corresponding to minimum execution time and minimum
 * storage requirements are great, it is possible that a number of
 * levels of dynamic translation will be required."
 *
 * The Dtb2 machine adds a small tau1-speed first-level translation
 * buffer in front of the main DTB; hot translations are promoted into
 * it on reuse. This bench sweeps the first level's size across
 * workloads of different working-set sizes and compares against the
 * single-level machine.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
l1SizeSweep()
{
    TextTable table("First-level buffer size sweep (tight 30-instr loop "
                    "vs 14-phase synthetic),\ncycles per DIR instruction");
    table.setHeader({"L1 bytes", "loop h_L1", "loop cyc/instr",
                     "phased h_L1", "phased cyc/instr"});

    DirProgram loop = hlr::compileSource(
        "program t; var i, s; begin i := 5000; s := 0; "
        "while i > 0 do s := s + i * i; i := i - 1; od; write s; end.");
    DirProgram phased = gridWorkload(2);

    // Single-level baseline first.
    {
        MachineConfig cfg = makeConfig(MachineKind::Dtb);
        RunResult rl = runProgram(loop, EncodingScheme::Huffman, cfg);
        RunResult rp = runProgram(phased, EncodingScheme::Huffman, cfg);
        table.addRow({"(single-level DTB)", "-",
                      TextTable::num(rl.avgInterpTime(), 2), "-",
                      TextTable::num(rp.avgInterpTime(), 2)});
    }
    for (uint64_t bytes : {128u, 256u, 512u, 1024u, 2048u}) {
        MachineConfig cfg = makeConfig(MachineKind::Dtb2);
        cfg.dtbL1.capacityBytes = bytes;
        RunResult rl = runProgram(loop, EncodingScheme::Huffman, cfg);
        RunResult rp = runProgram(phased, EncodingScheme::Huffman, cfg);
        table.addRow({TextTable::num(bytes),
                      TextTable::num(rl.dtbL1HitRatio, 3),
                      TextTable::num(rl.avgInterpTime(), 2),
                      TextTable::num(rp.dtbL1HitRatio, 3),
                      TextTable::num(rp.avgInterpTime(), 2)});
    }
    table.print();
}

void
realPrograms()
{
    TextTable table("Compiled programs: one vs two levels of dynamic "
                    "translation (huffman DIR)");
    table.setHeader({"program", "dtb cyc/instr", "dtb2 cyc/instr",
                     "h_D", "h_L1", "speedup"});
    for (const char *name : {"sieve", "fib", "qsort", "matmul",
                             "queens"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram prog = hlr::compileSource(sample.source);
        auto image = encodeDir(prog, EncodingScheme::Huffman);

        Machine one(*image, makeConfig(MachineKind::Dtb));
        Machine two(*image, makeConfig(MachineKind::Dtb2));
        RunResult r1 = one.run(sample.input);
        RunResult r2 = two.run(sample.input);
        table.addRow({name, TextTable::num(r1.avgInterpTime(), 2),
                      TextTable::num(r2.avgInterpTime(), 2),
                      TextTable::num(r2.dtbHitRatio, 3),
                      TextTable::num(r2.dtbL1HitRatio, 3),
                      TextTable::num(r1.avgInterpTime() /
                                     r2.avgInterpTime(), 2) + "x"});
    }
    table.print();
}

} // anonymous namespace

int
main()
{
    std::printf("=== Multi-level dynamic translation (section 4's "
                "extension) ===\n\n");
    l1SizeSweep();
    std::printf("\n");
    realPrograms();
    std::printf(
        "\nShape checks: when the working set fits the first level, the "
        "tauD-vs-tau1\ndifference on every short-instruction fetch "
        "compounds into a solid win; when it\ndoes not, promotion "
        "traffic makes the second level pay its way instead.\n");
    return 0;
}
