/**
 * @file
 * Ablations of the DTB design choices called out in DESIGN.md:
 * replacement policy (the paper specifies LRU via the replacement
 * array), the overflow fraction of the buffer array, and the trap
 * overhead of the Figure 4 miss path.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

DirProgram
ablationWorkload()
{
    workload::SyntheticConfig cfg;
    cfg.numLoops = 12;
    cfg.bodyInstrs = 50;
    cfg.iterations = 6;
    cfg.outerRepeats = 10;
    cfg.semworkDensity = 0.1;
    cfg.semworkWeight = 3;
    cfg.seed = 4;
    return workload::generateSynthetic(cfg);
}

void
policyAblation(SweepRunner &runner, const DirProgram &prog)
{
    TextTable table("Replacement policy x capacity: LRU (the paper's "
                    "replacement array) vs FIFO\nand random");
    table.setHeader({"capacity", "lru h_D", "fifo h_D", "random h_D",
                     "lru cyc/instr", "fifo cyc/instr",
                     "random cyc/instr"});
    const std::vector<uint64_t> caps = {1024, 2048, 4096, 8192};
    const std::vector<ReplPolicy> policies = {
        ReplPolicy::LRU, ReplPolicy::FIFO, ReplPolicy::Random};

    std::vector<MachineConfig> configs;
    for (uint64_t cap : caps) {
        for (ReplPolicy policy : policies) {
            MachineConfig cfg = makeConfig(MachineKind::Dtb);
            cfg.dtb.capacityBytes = cap;
            cfg.dtb.policy = policy;
            configs.push_back(cfg);
        }
    }
    std::vector<RunResult> results =
        runConfigs(runner, prog, EncodingScheme::Huffman, configs);
    for (size_t c = 0; c < caps.size(); ++c) {
        std::vector<std::string> row = {TextTable::num(caps[c])};
        std::vector<std::string> cycles;
        for (size_t p = 0; p < policies.size(); ++p) {
            const RunResult &r = results[c * policies.size() + p];
            row.push_back(TextTable::num(r.dtbHitRatio, 4));
            cycles.push_back(TextTable::num(r.avgInterpTime(), 2));
        }
        row.insert(row.end(), cycles.begin(), cycles.end());
        table.addRow(row);
    }
    table.print();
}

void
overflowAblation(SweepRunner &runner, const DirProgram &prog)
{
    TextTable table("Overflow-area fraction (unit = 3 short instrs, so "
                    "many translations need an\nincrement)");
    table.setHeader({"overflow fraction", "entries", "h_D", "rejects",
                     "cycles/instr"});
    const std::vector<double> fracs = {0.0, 0.1, 0.25, 0.5};
    std::vector<MachineConfig> configs;
    for (double frac : fracs) {
        MachineConfig cfg = makeConfig(MachineKind::Dtb);
        cfg.dtb.unitShortInstrs = 3;
        cfg.dtb.overflowFraction = frac;
        cfg.dtb.allowOverflow = frac > 0.0;
        configs.push_back(cfg);
    }
    std::vector<RunResult> results =
        runConfigs(runner, prog, EncodingScheme::Huffman, configs);
    for (size_t i = 0; i < fracs.size(); ++i) {
        const RunResult &r = results[i];
        Dtb probe(configs[i].dtb);
        table.addRow({TextTable::num(fracs[i], 2),
                      TextTable::num(probe.numEntries()),
                      TextTable::num(r.dtbHitRatio, 4),
                      TextTable::num(r.stats.get("dtb_rejects")),
                      TextTable::num(r.avgInterpTime(), 2)});
    }
    table.print();
}

void
trapAblation(SweepRunner &runner, const DirProgram &prog)
{
    TextTable table("Trap overhead sensitivity (cycles added per miss by "
                    "the DTRPOINT trap)");
    table.setHeader({"trap cycles", "cycles/instr"});
    const std::vector<uint64_t> traps = {0, 2, 10, 50};
    std::vector<MachineConfig> configs;
    for (uint64_t trap : traps) {
        MachineConfig cfg = makeConfig(MachineKind::Dtb);
        cfg.trapCycles = trap;
        configs.push_back(cfg);
    }
    std::vector<RunResult> results =
        runConfigs(runner, prog, EncodingScheme::Huffman, configs);
    for (size_t i = 0; i < traps.size(); ++i) {
        table.addRow({TextTable::num(traps[i]),
                      TextTable::num(results[i].avgInterpTime(), 2)});
    }
    table.print();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SweepRunner runner(jobsFromArgs(argc, argv));
    std::printf("=== DTB design-choice ablations ===\n\n");
    DirProgram prog = ablationWorkload();
    std::printf("workload: synthetic, %zu DIR instructions\n\n",
                prog.size());
    policyAblation(runner, prog);
    std::printf("\n");
    overflowAblation(runner, prog);
    std::printf("\n");
    trapAblation(runner, prog);
    std::printf(
        "\nShape checks: on these loop-phased workloads LRU and FIFO "
        "coincide (references\ncycle, so recency equals insertion order) "
        "and random replacement can *beat*\nthem below the working-set "
        "knee — the classic cyclic-thrash pathology of LRU.\nA modest "
        "overflow area recovers the h_D lost to rejected long "
        "translations;\ntrap overhead matters little once h_D is high "
        "(it is paid only on misses).\n");
    return 0;
}
