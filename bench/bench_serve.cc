/**
 * @file
 * bench_serve — open-loop load generator for the uhm_serve daemon.
 *
 * Starts an in-process server on a private unix-domain socket and
 * drives it with synthetic traffic mixes:
 *
 *  - hot:   every request re-runs the same program — the session
 *           cache's best case (one miss, then all warm hits);
 *  - zipf:  requests draw programs from the sample corpus with
 *           zipfian popularity — a realistic skew where the cache
 *           holds the head and churns the tail;
 *  - churn: every request is a synthetic program with a fresh seed —
 *           the worst case (every request compiles cold and fights
 *           for cache slots).
 *
 * The generator is open-loop: request i has a *scheduled* arrival
 * time i/λ and its latency is measured from that schedule, not from
 * the send, so server-side queueing shows up as latency instead of
 * silently throttling the offered load. The offered rate λ is
 * calibrated from the warm service time of the mix's median request,
 * targeting ~50% utilization of the server's workers, which keeps the
 * measured latencies meaningful across fast and slow hosts.
 *
 * Emits a table on stdout and a JSON document to --out=
 * (default BENCH_serve.json; schema in docs/BENCHMARKS.md). Latency
 * metrics carry the gated _ms suffix; rates and hit ratios are
 * reported ungated.
 *
 * Usage: bench_serve [--out=FILE] [--requests=N] [--connections=N]
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/window.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workload/samples.hh"

using namespace uhm;

namespace
{

double
nowMs()
{
    using namespace std::chrono;
    return static_cast<double>(
               duration_cast<microseconds>(
                   steady_clock::now().time_since_epoch())
                   .count()) /
        1000.0;
}

std::string
benchSocketPath(const char *tag)
{
    return "/tmp/uhm_bench_serve_" + std::to_string(::getpid()) + "_" +
        tag + ".sock";
}

/** One traffic mix: request lines i = 0..n-1. */
struct Mix
{
    const char *name;
    /** Build request line i (ids must be unique per request). */
    std::string (*request)(size_t i);
};

std::string
runLine(uint64_t id, const std::string &program)
{
    return R"({"id":)" + std::to_string(id) +
        R"(,"verb":"run","program":")" + program + R"("})";
}

std::string
hotRequest(size_t i)
{
    return runLine(i, "fib");
}

/**
 * Zipfian popularity over the sample corpus: program rank r is drawn
 * with weight 1/(r+1). Deterministic in the request index.
 */
std::string
zipfRequest(size_t i)
{
    const auto &samples = workload::samplePrograms();
    static const std::vector<double> cumulative = [] {
        std::vector<double> c;
        double total = 0;
        for (size_t r = 0; r < workload::samplePrograms().size(); ++r) {
            total += 1.0 / static_cast<double>(r + 1);
            c.push_back(total);
        }
        return c;
    }();
    Rng rng(0x5e12f + i);
    double u = rng.uniform() * cumulative.back();
    size_t rank = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    return runLine(i, samples[std::min(rank, samples.size() - 1)].name);
}

std::string
churnRequest(size_t i)
{
    // A fresh seed per request: no two requests share a session, so
    // every one compiles cold and churns the cache.
    return R"({"id":)" + std::to_string(i) +
        R"(,"verb":"run","program":"synthetic","seed":)" +
        std::to_string(9000 + i) + "}";
}

struct MixResult
{
    std::string name;
    double offeredRps = 0;
    double achievedRps = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    double meanMs = 0;
    /** Server-side service time (daemon histogram), excludes queueing. */
    double serviceP50Ms = 0;
    double serviceP99Ms = 0;
    double cacheHitPct = 0;
    uint64_t overloaded = 0;
};

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** Drive @p mix with @p requests open-loop requests. */
MixResult
runMix(const Mix &mix, size_t requests, unsigned connections,
       unsigned workers)
{
    serve::ServerConfig cfg;
    cfg.socketPath = benchSocketPath(mix.name);
    cfg.workers = workers;
    cfg.maxSessions = 8; // small enough for churn to actually evict
    cfg.maxQueue = 4 * requests; // measure queueing, not rejection
    serve::Server server(cfg);
    server.start();

    // Calibrate with a short closed-loop burst of representative
    // requests (ids above the measured range) across the same number
    // of connections, then offer half the rate it achieved. Measuring
    // under real concurrency matters: an unloaded serial probe
    // overestimates capacity and turns the whole run into a queueing
    // backlog. The burst also warms the cache exactly the way the mix
    // itself would.
    double calibrated_rps;
    {
        const size_t probeCount = 48;
        std::vector<std::thread> probes;
        std::atomic<size_t> probeIndex{0};
        double t0 = nowMs();
        for (unsigned c = 0; c < connections; ++c) {
            probes.emplace_back([&] {
                serve::Client client(cfg.socketPath);
                for (;;) {
                    size_t i = probeIndex.fetch_add(1);
                    if (i >= probeCount)
                        break;
                    serve::Response r =
                        client.call(mix.request(requests + i));
                    if (!r.ok)
                        fatal("calibration request failed: %s",
                              r.message.c_str());
                }
            });
        }
        for (std::thread &t : probes)
            t.join();
        calibrated_rps =
            static_cast<double>(probeCount) * 1000.0 / (nowMs() - t0);
    }
    double offered_rps = 0.5 * calibrated_rps;
    // Count only the measured phase in the server's statistics.
    server.statsProfile(true);

    std::vector<double> latency(requests, 0);
    std::vector<std::thread> threads;
    std::atomic<size_t> nextIndex{0};
    double start = nowMs() + 5.0; // senders sync on a common epoch

    for (unsigned c = 0; c < connections; ++c) {
        threads.emplace_back([&] {
            serve::Client client(cfg.socketPath);
            for (;;) {
                size_t i = nextIndex.fetch_add(1);
                if (i >= requests)
                    break;
                double due =
                    start + static_cast<double>(i) * 1000.0 /
                        offered_rps;
                double now = nowMs();
                if (now < due)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(static_cast<long>(
                            (due - now) * 1000.0)));
                serve::Response r = client.call(mix.request(i));
                if (!r.ok)
                    fatal("request %zu failed: %s", i,
                          r.message.c_str());
                // Open-loop latency: from the *scheduled* arrival.
                latency[i] = nowMs() - due;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    double elapsed_ms = nowMs() - start;

    obs::ProfileData stats = server.statsProfile(false);
    server.stop();

    MixResult result;
    result.name = mix.name;
    result.offeredRps = offered_rps;
    result.achievedRps =
        static_cast<double>(requests) * 1000.0 / elapsed_ms;
    std::vector<double> sorted = latency;
    std::sort(sorted.begin(), sorted.end());
    result.p50Ms = percentile(sorted, 0.50);
    result.p99Ms = percentile(sorted, 0.99);
    double sum = 0;
    for (double v : latency)
        sum += v;
    result.meanMs = sum / static_cast<double>(requests);
    const obs::HistogramSnapshot &service =
        stats.histograms.at("serve.service_us");
    result.serviceP50Ms = obs::histogramPercentile(service, 0.50) / 1e3;
    result.serviceP99Ms = obs::histogramPercentile(service, 0.99) / 1e3;
    uint64_t hits = stats.counters.at("serve.cache.hits");
    uint64_t misses = stats.counters.at("serve.cache.misses");
    result.cacheHitPct = hits + misses == 0 ?
        0 :
        100.0 * static_cast<double>(hits) /
            static_cast<double>(hits + misses);
    result.overloaded = stats.counters.at("serve.overloaded");
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string out_path = "BENCH_serve.json";
    size_t requests = 200;
    unsigned connections = 4;
    const unsigned workers = 4; // fixed so the JSON reproduces

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--requests=", 0) == 0)
            requests = std::stoull(arg.substr(11));
        else if (arg.rfind("--connections=", 0) == 0)
            connections =
                static_cast<unsigned>(std::stoul(arg.substr(14)));
        else
            fatal("unknown option '%s'", arg.c_str());
    }

    // ---- cold vs warm single-request latency --------------------------
    double cold_ms, warm_p50_ms;
    {
        serve::ServerConfig cfg;
        cfg.socketPath = benchSocketPath("coldwarm");
        cfg.workers = workers;
        serve::Server server(cfg);
        server.start();
        serve::Client client(cfg.socketPath);
        const std::string line =
            R"({"id":0,"verb":"profile","program":"qsort"})";
        double t0 = nowMs();
        serve::Response first = client.call(line);
        cold_ms = nowMs() - t0;
        if (!first.ok)
            fatal("cold request failed: %s", first.message.c_str());
        std::vector<double> warm;
        for (int i = 0; i < 20; ++i) {
            double t1 = nowMs();
            serve::Response r = client.call(line);
            if (!r.ok)
                fatal("warm request failed: %s", r.message.c_str());
            warm.push_back(nowMs() - t1);
        }
        std::sort(warm.begin(), warm.end());
        warm_p50_ms = percentile(warm, 0.50);
        server.stop();
    }

    std::printf("bench_serve: %zu requests/mix, %u connections, "
                "%u workers\n\n",
                requests, connections, workers);
    std::printf("cold first request   %8.3f ms\n", cold_ms);
    std::printf("warm p50             %8.3f ms   (speedup %.2fx)\n\n",
                warm_p50_ms, cold_ms / warm_p50_ms);

    // ---- the traffic mixes --------------------------------------------
    const Mix mixes[] = {
        {"hot", hotRequest},
        {"zipf", zipfRequest},
        {"churn", churnRequest},
    };
    std::vector<MixResult> results;
    std::printf("%-6s %10s %10s %9s %9s %9s %9s %9s %7s %6s\n",
                "mix", "offered/s", "achieved/s", "p50 ms", "p99 ms",
                "mean ms", "svc p50", "svc p99", "hit %", "rej");
    for (const Mix &mix : mixes) {
        MixResult r = runMix(mix, requests, connections, workers);
        std::printf("%-6s %10.1f %10.1f %9.3f %9.3f %9.3f %9.3f "
                    "%9.3f %7.1f %6llu\n",
                    r.name.c_str(), r.offeredRps, r.achievedRps,
                    r.p50Ms, r.p99Ms, r.meanMs, r.serviceP50Ms,
                    r.serviceP99Ms, r.cacheHitPct,
                    static_cast<unsigned long long>(r.overloaded));
        results.push_back(std::move(r));
    }

    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("bench_serve");
    jw.key("requests").value(static_cast<uint64_t>(requests));
    jw.key("connections").value(static_cast<uint64_t>(connections));
    jw.key("workers").value(static_cast<uint64_t>(workers));
    jw.key("cold").beginObject();
    jw.key("cold_ms").value(cold_ms);
    jw.key("warm_p50_ms").value(warm_p50_ms);
    jw.key("warm_speedup").value(cold_ms / warm_p50_ms);
    jw.endObject();
    jw.key("mixes").beginArray();
    for (const MixResult &r : results) {
        jw.beginObject();
        jw.key("mix").value(r.name);
        jw.key("offered_rps").value(r.offeredRps);
        jw.key("achieved_rps").value(r.achievedRps);
        jw.key("p50_ms").value(r.p50Ms);
        jw.key("p99_ms").value(r.p99Ms);
        jw.key("mean_ms").value(r.meanMs);
        jw.key("service_p50_ms").value(r.serviceP50Ms);
        jw.key("service_p99_ms").value(r.serviceP99Ms);
        jw.key("cache_hit_pct").value(r.cacheHitPct);
        jw.key("overloaded").value(r.overloaded);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot open '%s'", out_path.c_str());
    out << jw.str() << "\n";
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
