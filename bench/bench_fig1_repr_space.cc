/**
 * @file
 * Regenerates Figure 1 of the paper: the two-dimensional space of
 * program representations.
 *
 * Vertical axis (level of representation): HLR interpreted directly ->
 * DIR interpreted on the host -> PSDER resident in an effectively
 * infinite DTB. Horizontal axis (degree of encoding): expanded ->
 * packed -> contextual -> huffman -> pair-huffman.
 *
 * For every point we report the program size, the resident
 * interpreter/decoder metadata, and the measured execution time —
 * Figure 1's annotations made quantitative: moving away from the origin
 * shrinks the program, grows the interpreter, and (along the encoding
 * axis) slows interpretation while (up the level axis) speeding it.
 */

#include <cstdio>

#include "bench_common.hh"
#include "dir/fusion.hh"
#include "hlr/interp.hh"
#include "hlr/parser.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
printEncodingAxis(const char *name)
{
    const auto &sample = workload::sampleByName(name);
    DirProgram prog = hlr::compileSource(sample.source);

    TextTable table(std::string("Encoding axis ('") + name +
                    "'): static size falls, decode metadata and decode "
                    "time rise");
    table.setHeader({"encoding", "program bits", "bits/instr",
                     "decoder metadata bits", "conv. T (cycles/instr)",
                     "measured d"});
    for (EncodingScheme scheme : allEncodingSchemes()) {
        auto image = encodeDir(prog, scheme);
        MachineConfig cfg = makeConfig(MachineKind::Conventional);
        Machine machine(*image, cfg);
        RunResult r = machine.run(sample.input);
        table.addRow({encodingName(scheme),
                      TextTable::num(image->bitSize()),
                      TextTable::num(image->meanInstrBits(), 1),
                      TextTable::num(image->metadataBits()),
                      TextTable::num(r.avgInterpTime(), 2),
                      TextTable::num(r.measuredD, 1)});
    }
    table.print();
}

void
printLevelAxis(const char *name)
{
    const auto &sample = workload::sampleByName(name);
    hlr::AstProgram ast = hlr::parse(sample.source);
    DirProgram prog = hlr::compile(ast);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    TextTable table(std::string("Level axis ('") + name +
                    "', huffman static form): binding work falls as the "
                    "representation\ntightens");
    table.setHeader({"level of representation", "per-stmt/instr cost",
                     "note"});

    // HLR: direct interpretation with associative name lookup.
    hlr::HlrRunResult hr = hlr::interpretHlr(ast, sample.input);
    double searches_per_stmt =
        static_cast<double>(hr.stats.get("hlr_name_search_steps")) /
        static_cast<double>(hr.stats.get("hlr_stmts"));
    table.addRow({"HLR (direct, associative lookups)",
                  TextTable::num(searches_per_stmt, 2) +
                      " table-search steps/stmt",
                  "binding redone every statement"});

    // DIR: conventional interpretation.
    MachineConfig conv = makeConfig(MachineKind::Conventional);
    Machine conv_machine(*image, conv);
    RunResult rc = conv_machine.run(sample.input);
    table.addRow({"DIR (conventional UHM)",
                  TextTable::num(rc.avgInterpTime(), 2) + " cycles/instr",
                  "binding redone every instruction"});

    // Raised-level DIR: fewer, larger instructions (dir/fusion.hh).
    DirProgram raised = raiseSemanticLevel(prog);
    auto raised_image = encodeDir(raised, EncodingScheme::Huffman);
    Machine raised_machine(*raised_image, conv);
    RunResult rr = raised_machine.run(sample.input);
    double per_base_instr = rc.dirInstrs == 0 ? 0.0 :
        static_cast<double>(rr.cycles) /
        static_cast<double>(rc.dirInstrs);
    table.addRow({"raised DIR (fused opcodes, conventional)",
                  TextTable::num(per_base_instr, 2) +
                      " cycles/base-instr",
                  "bigger opcode vocabulary, fewer dispatches"});

    // PSDER: a DTB big enough to hold the whole translation.
    MachineConfig dtb_cfg = makeConfig(MachineKind::Dtb);
    dtb_cfg.dtb.capacityBytes = 1 << 20;
    Machine dtb_machine(*image, dtb_cfg);
    RunResult rd = dtb_machine.run(sample.input);
    table.addRow({"PSDER (resident in DTB, hD ~ 1)",
                  TextTable::num(rd.avgInterpTime(), 2) + " cycles/instr",
                  "binding persists across executions"});
    table.print();
    std::printf("DTB hit ratio in the PSDER row: %.4f\n",
                rd.dtbHitRatio);
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 1: the space of program representations ===\n"
                "\n");
    for (const char *name : {"sieve", "qsort"}) {
        printEncodingAxis(name);
        std::printf("\n");
    }
    for (const char *name : {"sieve", "fib"}) {
        printLevelAxis(name);
        std::printf("\n");
    }
    std::printf(
        "Shape checks (the figure's annotations): along the encoding axis"
        " program size\ndecreases monotonically while decoder metadata "
        "and measured d increase; along\nthe level axis, execution cost "
        "per unit of work falls as binding persistence\ngrows.\n");
    return 0;
}
