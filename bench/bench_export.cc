/**
 * @file
 * Machine-readable export of the reproduction's key result series.
 *
 * Emits one JSON document on stdout containing the paper grids, the
 * measured F1/F2 points, the Figure 2 sweeps, the compaction ratios,
 * the amortization curve and per-program profile reports, so plots and
 * downstream analyses can be built without scraping the text tables.
 * Deterministic byte-for-byte.
 *
 * Usage: bench_export [--jobs=N] [sidecar.jsonl]
 * With a file argument, additionally writes the profile reports as a
 * JSONL sidecar (one meta/phases/counters/histograms/ratios/
 * trace_summary/sample block per program × machine kind; format in
 * docs/INTERNALS.md). The
 * simulation points of every section run on a SweepRunner (--jobs=N,
 * default all cores); the document is assembled in section order and
 * stays byte-identical for any job count.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "bench_common.hh"
#include "dir/fusion.hh"
#include "obs/report.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "uhm/profile.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
exportPaperGrids(JsonWriter &jw)
{
    jw.key("paper_tables").beginObject();
    for (int table : {2, 3}) {
        jw.key(table == 2 ? "table2_f1" : "table3_f2").beginArray();
        for (double d : analytic::paperDGrid()) {
            for (double x : analytic::paperXGrid()) {
                jw.beginObject();
                jw.key("d").value(d);
                jw.key("x").value(x);
                jw.key("value").value(
                    table == 2 ? analytic::paperTable2(d, x) :
                                 analytic::paperTable3(d, x));
                jw.endObject();
            }
        }
        jw.endArray();
    }
    jw.endObject();
}

void
exportMeasuredPoints(SweepRunner &runner, JsonWriter &jw)
{
    const std::vector<std::string> names = {"sieve", "fib", "qsort",
                                            "matmul", "queens",
                                            "collatz", "bsearch"};
    std::vector<MeasuredPoint> points = measureSamples(runner, names);
    jw.key("measured_compiled_programs").beginArray();
    for (size_t i = 0; i < names.size(); ++i) {
        const MeasuredPoint &pt = points[i];
        jw.beginObject();
        jw.key("program").value(names[i]);
        jw.key("dir_instrs").value(pt.dirInstrs);
        jw.key("d").value(pt.d);
        jw.key("x").value(pt.x);
        jw.key("g").value(pt.g);
        jw.key("h_dtb").value(pt.hD);
        jw.key("h_cache").value(pt.hc);
        jw.key("s1").value(pt.s1);
        jw.key("s2").value(pt.s2);
        jw.key("t1").value(pt.t1);
        jw.key("t2").value(pt.t2);
        jw.key("t3").value(pt.t3);
        jw.key("f1").value(pt.f1());
        jw.key("f2").value(pt.f2());
        jw.endObject();
    }
    jw.endArray();
}

void
exportCapacitySweep(SweepRunner &runner, JsonWriter &jw)
{
    workload::SyntheticConfig cfg;
    cfg.numLoops = 10;
    cfg.bodyInstrs = 45;
    cfg.iterations = 8;
    cfg.outerRepeats = 10;
    cfg.semworkDensity = 0.1;
    cfg.semworkWeight = 2;
    cfg.seed = 2;
    DirProgram prog = workload::generateSynthetic(cfg);

    const std::vector<uint64_t> caps = {256, 512, 1024, 2048, 4096,
                                        8192, 16384};
    std::vector<MachineConfig> configs;
    for (uint64_t cap : caps) {
        MachineConfig mc = makeConfig(MachineKind::Dtb);
        mc.dtb.capacityBytes = cap;
        configs.push_back(mc);
    }
    std::vector<RunResult> results =
        runConfigs(runner, prog, EncodingScheme::Huffman, configs);

    jw.key("dtb_capacity_sweep").beginArray();
    for (size_t i = 0; i < caps.size(); ++i) {
        jw.beginObject();
        jw.key("capacity_bytes").value(caps[i]);
        jw.key("hit_ratio").value(results[i].dtbHitRatio);
        jw.key("cycles_per_instr").value(results[i].avgInterpTime());
        jw.endObject();
    }
    jw.endArray();
}

void
exportCompaction(SweepRunner &runner, JsonWriter &jw)
{
    const auto &samples = workload::samplePrograms();
    auto sizes = runner.map(samples.size(), [&](size_t i) {
        DirProgram prog = hlr::compileSource(samples[i].source);
        std::vector<uint64_t> bits;
        for (EncodingScheme scheme : allEncodingSchemes())
            bits.push_back(encodeDir(prog, scheme)->bitSize());
        return bits;
    });

    jw.key("encoding_sizes_bits").beginArray();
    for (size_t i = 0; i < samples.size(); ++i) {
        jw.beginObject();
        jw.key("program").value(samples[i].name);
        size_t s = 0;
        for (EncodingScheme scheme : allEncodingSchemes())
            jw.key(encodingName(scheme)).value(sizes[i][s++]);
        jw.endObject();
    }
    jw.endArray();
}

void
exportAmortization(SweepRunner &runner, JsonWriter &jw)
{
    const std::vector<uint32_t> trip_counts = {1, 2, 5, 10, 50, 200,
                                               1000};
    auto results = runner.mapItems(trip_counts, [](uint32_t iters) {
        std::ostringstream src;
        src << "program t; var i, s; begin i := " << iters
            << "; s := 0; while i > 0 do s := s + i * i; i := i - 1; od;"
            << " write s; end.";
        DirProgram prog = hlr::compileSource(src.str());
        RunResult rd = runProgram(prog, EncodingScheme::Huffman,
                                  makeConfig(MachineKind::Dtb));
        RunResult rc = runProgram(prog, EncodingScheme::Huffman,
                                  makeConfig(MachineKind::Conventional));
        return std::pair<RunResult, RunResult>(std::move(rd),
                                               std::move(rc));
    });

    jw.key("binding_amortization").beginArray();
    for (size_t i = 0; i < trip_counts.size(); ++i) {
        const RunResult &rd = results[i].first;
        const RunResult &rc = results[i].second;
        jw.beginObject();
        jw.key("iterations").value(uint64_t{trip_counts[i]});
        jw.key("h_dtb").value(rd.dtbHitRatio);
        jw.key("dtb_cycles_per_instr").value(rd.avgInterpTime());
        jw.key("conv_cycles_per_instr").value(rc.avgInterpTime());
        jw.endObject();
    }
    jw.endArray();
}

void
exportSemanticLevel(SweepRunner &runner, JsonWriter &jw)
{
    const std::vector<std::string> names = {"sieve", "collatz",
                                            "matmul", "qsort"};
    auto results = runner.mapItems(names, [](const std::string &name) {
        const auto &sample = workload::sampleByName(name);
        DirProgram base = hlr::compileSource(sample.source);
        DirProgram raised = raiseSemanticLevel(base);
        MachineConfig mc = makeConfig(MachineKind::Conventional);
        RunResult r1 = runProgram(base, EncodingScheme::Huffman, mc,
                                  sample.input);
        RunResult r2 = runProgram(raised, EncodingScheme::Huffman, mc,
                                  sample.input);
        return std::pair<RunResult, RunResult>(std::move(r1),
                                               std::move(r2));
    });

    jw.key("semantic_level_raise").beginArray();
    for (size_t i = 0; i < names.size(); ++i) {
        const RunResult &r1 = results[i].first;
        const RunResult &r2 = results[i].second;
        jw.beginObject();
        jw.key("program").value(names[i]);
        jw.key("base_instrs").value(r1.dirInstrs);
        jw.key("raised_instrs").value(r2.dirInstrs);
        jw.key("base_cycles").value(r1.cycles);
        jw.key("raised_cycles").value(r2.cycles);
        jw.endObject();
    }
    jw.endArray();
}

/**
 * Per-program, per-organization profile reports: the observability
 * layer's view of the runs every other section measures. Embedded in
 * the main document and, when @p sidecar is non-null, appended to it
 * as JSONL blocks.
 */
void
exportProfiles(SweepRunner &runner, JsonWriter &jw, std::string *sidecar)
{
    const std::vector<std::string> names = {"sieve", "fib", "qsort"};
    const std::vector<MachineKind> kinds = {MachineKind::Conventional,
                                            MachineKind::Cached,
                                            MachineKind::Dtb,
                                            MachineKind::Tiered};
    // One worker per (program, organization) point; each builds its
    // own machine, registry and profile, merged here in point order.
    auto profiles = runner.map(names.size() * kinds.size(),
                               [&](size_t i) {
        const auto &sample = workload::sampleByName(names[i /
                                                          kinds.size()]);
        MachineKind kind = kinds[i % kinds.size()];
        DirProgram prog = hlr::compileSource(sample.source);
        auto image = encodeDir(prog, EncodingScheme::Huffman);
        MachineConfig cfg = makeConfig(kind);
        // The sidecars double as the sampler's reference series:
        // a coarse interval keeps them a handful of lines per run.
        cfg.sampleIntervalCycles = 16384;
        Machine machine(*image, cfg);
        RunResult r = machine.run(sample.input);
        ProfileMeta meta;
        meta.program = sample.name;
        meta.machine = machineKindName(kind);
        meta.encoding = encodingName(EncodingScheme::Huffman);
        meta.imageBits = image->bitSize();
        return buildProfile(meta, r);
    });

    jw.key("profiles").beginArray();
    for (const obs::ProfileData &profile : profiles) {
        obs::writeJson(jw, profile);
        if (sidecar)
            *sidecar += obs::toJsonl(profile);
    }
    jw.endArray();
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    SweepRunner runner(jobsFromArgs(argc, argv));
    std::string sidecar_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) != 0)
            sidecar_path = argv[i];
    }

    std::string sidecar;
    bool want_sidecar = !sidecar_path.empty();
    std::ofstream sidecar_out;
    if (want_sidecar) {
        // Open up front: fail before the benchmarks run, not after.
        sidecar_out.open(sidecar_path);
        if (!sidecar_out)
            fatal("cannot open '%s'", sidecar_path.c_str());
    }

    JsonWriter jw;
    jw.beginObject();
    jw.key("reproduction").value(
        "Rau 1978, Levels of Representation of Programs and the "
        "Architecture of Universal Host Machines");
    jw.key("timing").beginObject();
    jw.key("tau1").value(1);
    jw.key("tau2").value(10);
    jw.key("tauD").value(2);
    jw.endObject();

    exportPaperGrids(jw);
    exportMeasuredPoints(runner, jw);
    exportCapacitySweep(runner, jw);
    exportCompaction(runner, jw);
    exportAmortization(runner, jw);
    exportSemanticLevel(runner, jw);
    exportProfiles(runner, jw, want_sidecar ? &sidecar : nullptr);

    jw.endObject();
    std::printf("%s\n", jw.str().c_str());

    if (want_sidecar)
        sidecar_out << sidecar;
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
