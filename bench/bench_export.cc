/**
 * @file
 * Machine-readable export of the reproduction's key result series.
 *
 * Emits one JSON document on stdout containing the paper grids, the
 * measured F1/F2 points, the Figure 2 sweeps, the compaction ratios,
 * the amortization curve and per-program profile reports, so plots and
 * downstream analyses can be built without scraping the text tables.
 * Deterministic byte-for-byte.
 *
 * Usage: bench_export [sidecar.jsonl]
 * With an argument, additionally writes the profile reports as a JSONL
 * sidecar (one meta/phases/counters/ratios/trace_summary block per
 * program × machine kind; format in docs/INTERNALS.md).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "dir/fusion.hh"
#include "obs/report.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "uhm/profile.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
exportPaperGrids(JsonWriter &jw)
{
    jw.key("paper_tables").beginObject();
    for (int table : {2, 3}) {
        jw.key(table == 2 ? "table2_f1" : "table3_f2").beginArray();
        for (double d : analytic::paperDGrid()) {
            for (double x : analytic::paperXGrid()) {
                jw.beginObject();
                jw.key("d").value(d);
                jw.key("x").value(x);
                jw.key("value").value(
                    table == 2 ? analytic::paperTable2(d, x) :
                                 analytic::paperTable3(d, x));
                jw.endObject();
            }
        }
        jw.endArray();
    }
    jw.endObject();
}

void
exportMeasuredPoints(JsonWriter &jw)
{
    jw.key("measured_compiled_programs").beginArray();
    for (const char *name : {"sieve", "fib", "qsort", "matmul",
                             "queens", "collatz", "bsearch"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram prog = hlr::compileSource(sample.source);
        MachineConfig base;
        MeasuredPoint pt = measurePoint(prog, EncodingScheme::Huffman,
                                        base, sample.input);
        jw.beginObject();
        jw.key("program").value(name);
        jw.key("dir_instrs").value(pt.dirInstrs);
        jw.key("d").value(pt.d);
        jw.key("x").value(pt.x);
        jw.key("g").value(pt.g);
        jw.key("h_dtb").value(pt.hD);
        jw.key("h_cache").value(pt.hc);
        jw.key("s1").value(pt.s1);
        jw.key("s2").value(pt.s2);
        jw.key("t1").value(pt.t1);
        jw.key("t2").value(pt.t2);
        jw.key("t3").value(pt.t3);
        jw.key("f1").value(pt.f1());
        jw.key("f2").value(pt.f2());
        jw.endObject();
    }
    jw.endArray();
}

void
exportCapacitySweep(JsonWriter &jw)
{
    workload::SyntheticConfig cfg;
    cfg.numLoops = 10;
    cfg.bodyInstrs = 45;
    cfg.iterations = 8;
    cfg.outerRepeats = 10;
    cfg.semworkDensity = 0.1;
    cfg.semworkWeight = 2;
    cfg.seed = 2;
    DirProgram prog = workload::generateSynthetic(cfg);

    jw.key("dtb_capacity_sweep").beginArray();
    for (uint64_t cap : {256u, 512u, 1024u, 2048u, 4096u, 8192u,
                         16384u}) {
        MachineConfig mc = makeConfig(MachineKind::Dtb);
        mc.dtb.capacityBytes = cap;
        RunResult r = runProgram(prog, EncodingScheme::Huffman, mc);
        jw.beginObject();
        jw.key("capacity_bytes").value(cap);
        jw.key("hit_ratio").value(r.dtbHitRatio);
        jw.key("cycles_per_instr").value(r.avgInterpTime());
        jw.endObject();
    }
    jw.endArray();
}

void
exportCompaction(JsonWriter &jw)
{
    jw.key("encoding_sizes_bits").beginArray();
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        jw.beginObject();
        jw.key("program").value(sample.name);
        for (EncodingScheme scheme : allEncodingSchemes()) {
            auto image = encodeDir(prog, scheme);
            jw.key(encodingName(scheme)).value(image->bitSize());
        }
        jw.endObject();
    }
    jw.endArray();
}

void
exportAmortization(JsonWriter &jw)
{
    jw.key("binding_amortization").beginArray();
    for (uint32_t iters : {1u, 2u, 5u, 10u, 50u, 200u, 1000u}) {
        std::ostringstream src;
        src << "program t; var i, s; begin i := " << iters
            << "; s := 0; while i > 0 do s := s + i * i; i := i - 1; od;"
            << " write s; end.";
        DirProgram prog = hlr::compileSource(src.str());
        RunResult rd = runProgram(prog, EncodingScheme::Huffman,
                                  makeConfig(MachineKind::Dtb));
        RunResult rc = runProgram(prog, EncodingScheme::Huffman,
                                  makeConfig(MachineKind::Conventional));
        jw.beginObject();
        jw.key("iterations").value(uint64_t{iters});
        jw.key("h_dtb").value(rd.dtbHitRatio);
        jw.key("dtb_cycles_per_instr").value(rd.avgInterpTime());
        jw.key("conv_cycles_per_instr").value(rc.avgInterpTime());
        jw.endObject();
    }
    jw.endArray();
}

void
exportSemanticLevel(JsonWriter &jw)
{
    jw.key("semantic_level_raise").beginArray();
    for (const char *name : {"sieve", "collatz", "matmul", "qsort"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram base = hlr::compileSource(sample.source);
        DirProgram raised = raiseSemanticLevel(base);
        MachineConfig mc = makeConfig(MachineKind::Conventional);
        RunResult r1 = runProgram(base, EncodingScheme::Huffman, mc,
                                  sample.input);
        RunResult r2 = runProgram(raised, EncodingScheme::Huffman, mc,
                                  sample.input);
        jw.beginObject();
        jw.key("program").value(name);
        jw.key("base_instrs").value(r1.dirInstrs);
        jw.key("raised_instrs").value(r2.dirInstrs);
        jw.key("base_cycles").value(r1.cycles);
        jw.key("raised_cycles").value(r2.cycles);
        jw.endObject();
    }
    jw.endArray();
}

/**
 * Per-program, per-organization profile reports: the observability
 * layer's view of the runs every other section measures. Embedded in
 * the main document and, when @p sidecar is non-null, appended to it
 * as JSONL blocks.
 */
void
exportProfiles(JsonWriter &jw, std::string *sidecar)
{
    jw.key("profiles").beginArray();
    for (const char *name : {"sieve", "fib", "qsort"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram prog = hlr::compileSource(sample.source);
        auto image = encodeDir(prog, EncodingScheme::Huffman);
        for (MachineKind kind : {MachineKind::Conventional,
                                 MachineKind::Cached,
                                 MachineKind::Dtb}) {
            Machine machine(*image, makeConfig(kind));
            RunResult r = machine.run(sample.input);
            ProfileMeta meta;
            meta.program = name;
            meta.machine = machineKindName(kind);
            meta.encoding = encodingName(EncodingScheme::Huffman);
            meta.imageBits = image->bitSize();
            obs::ProfileData profile = buildProfile(meta, r);
            obs::writeJson(jw, profile);
            if (sidecar)
                *sidecar += obs::toJsonl(profile);
        }
    }
    jw.endArray();
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string sidecar;
    bool want_sidecar = argc > 1;
    std::ofstream sidecar_out;
    if (want_sidecar) {
        // Open up front: fail before the benchmarks run, not after.
        sidecar_out.open(argv[1]);
        if (!sidecar_out)
            fatal("cannot open '%s'", argv[1]);
    }

    JsonWriter jw;
    jw.beginObject();
    jw.key("reproduction").value(
        "Rau 1978, Levels of Representation of Programs and the "
        "Architecture of Universal Host Machines");
    jw.key("timing").beginObject();
    jw.key("tau1").value(1);
    jw.key("tau2").value(10);
    jw.key("tauD").value(2);
    jw.endObject();

    exportPaperGrids(jw);
    exportMeasuredPoints(jw);
    exportCapacitySweep(jw);
    exportCompaction(jw);
    exportAmortization(jw);
    exportSemanticLevel(jw);
    exportProfiles(jw, want_sidecar ? &sidecar : nullptr);

    jw.endObject();
    std::printf("%s\n", jw.str().c_str());

    if (want_sidecar)
        sidecar_out << sidecar;
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
