/**
 * @file
 * Shared infrastructure for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures.
 * Absolute numbers differ from 1978 hardware, but the shapes — who wins,
 * by what factor, where the crossovers fall — are the reproduction
 * targets (see EXPERIMENTS.md).
 */

#ifndef UHM_BENCH_BENCH_COMMON_HH
#define UHM_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <vector>

#include "analytic/model.hh"
#include "hlr/compiler.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm::bench
{

/** A machine config of the given kind with otherwise default knobs. */
inline MachineConfig
makeConfig(MachineKind kind)
{
    MachineConfig cfg;
    cfg.kind = kind;
    return cfg;
}

/** Measured T1/T2/T3 plus the parameters that produced them. */
struct MeasuredPoint
{
    double t1 = 0, t2 = 0, t3 = 0;
    double d = 0;  ///< measured decode cycles per decoded instruction
    double x = 0;  ///< measured semantic cycles per instruction
    double g = 0;  ///< measured translate cycles per translated instr
    double hD = 1; ///< measured DTB hit ratio
    double hc = 1; ///< measured icache hit ratio
    double s1 = 0; ///< measured short fetches per DIR instruction
    double s2 = 0; ///< measured level-2 refs per DIR fetch
    uint64_t dirInstrs = 0;

    /** Paper convention: degradation of the cache organization
     *  relative to the DTB organization. */
    double f1() const { return (t3 - t2) / t2 * 100.0; }
    /** Degradation of the conventional organization relative to the
     *  DTB organization. */
    double f2() const { return (t1 - t2) / t2 * 100.0; }
};

/**
 * Run @p prog on all three machine organizations with @p base config
 * parameters and collect the measured model coordinates.
 */
MeasuredPoint measurePoint(const DirProgram &prog, EncodingScheme scheme,
                           const MachineConfig &base,
                           const std::vector<int64_t> &input = {});

/**
 * The synthetic workload used by the Table 2/3 measured grids: a phased
 * loop sequence whose instruction working set exceeds the default DTB
 * so h_D lands near the paper's 0.8 operating point.
 */
DirProgram gridWorkload(uint32_t semwork_weight, uint64_t seed = 1978);

} // namespace uhm::bench

#endif // UHM_BENCH_BENCH_COMMON_HH
