/**
 * @file
 * Shared infrastructure for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures.
 * Absolute numbers differ from 1978 hardware, but the shapes — who wins,
 * by what factor, where the crossovers fall — are the reproduction
 * targets (see EXPERIMENTS.md and docs/BENCHMARKS.md).
 *
 * The grid-shaped benches fan their independent simulation points out
 * over a SweepRunner (a support::ThreadPool with index-addressed
 * results), so a full regeneration scales with the core count while
 * the printed tables and JSON stay byte-identical to a serial run: a
 * worker writes only to its own point's result slot, and all output is
 * rendered from the assembled vector in grid order.
 */

#ifndef UHM_BENCH_BENCH_COMMON_HH
#define UHM_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "analytic/model.hh"
#include "hlr/compiler.hh"
#include "obs/merge.hh"
#include "support/pool.hh"
#include "uhm/machine.hh"
#include "workload/samples.hh"
#include "workload/synthetic.hh"

namespace uhm::bench
{

/** A machine config of the given kind with otherwise default knobs. */
inline MachineConfig
makeConfig(MachineKind kind)
{
    MachineConfig cfg;
    cfg.kind = kind;
    return cfg;
}

/** Measured T1/T2/T3 plus the parameters that produced them. */
struct MeasuredPoint
{
    double t1 = 0, t2 = 0, t3 = 0;
    double d = 0;  ///< measured decode cycles per decoded instruction
    double x = 0;  ///< measured semantic cycles per instruction
    double g = 0;  ///< measured translate cycles per translated instr
    double hD = 1; ///< measured DTB hit ratio
    double hc = 1; ///< measured icache hit ratio
    double s1 = 0; ///< measured short fetches per DIR instruction
    double s2 = 0; ///< measured level-2 refs per DIR fetch
    uint64_t dirInstrs = 0;

    /** Paper convention: degradation of the cache organization
     *  relative to the DTB organization. */
    double f1() const { return (t3 - t2) / t2 * 100.0; }
    /** Degradation of the conventional organization relative to the
     *  DTB organization. */
    double f2() const { return (t1 - t2) / t2 * 100.0; }
};

/**
 * Run @p prog on all three machine organizations with @p base config
 * parameters and collect the measured model coordinates.
 */
MeasuredPoint measurePoint(const DirProgram &prog, EncodingScheme scheme,
                           const MachineConfig &base,
                           const std::vector<int64_t> &input = {});

/**
 * The synthetic workload used by the Table 2/3 measured grids: a phased
 * loop sequence whose instruction working set exceeds the default DTB
 * so h_D lands near the paper's 0.8 operating point.
 */
DirProgram gridWorkload(uint32_t semwork_weight, uint64_t seed = 1978);

// ---------------------------------------------------------------------
// The parallel sweep harness.
// ---------------------------------------------------------------------

/**
 * First "--jobs=N" among @p argv, or 0 (meaning defaultJobs(), which
 * itself honours the UHM_JOBS environment variable). Every grid bench
 * accepts the flag.
 */
unsigned jobsFromArgs(int argc, char **argv);

/**
 * Fans independent simulation points out across a thread pool.
 *
 * The determinism contract: fn(i) may depend only on i (each point
 * builds its own program/Machine/Registry), and results land in an
 * index-addressed vector — so the assembled output is identical for
 * any job count and any completion order. Aggregation over the result
 * vector (obs::MergedCounters, JSONL concatenation) then inherits
 * grid order, never scheduling order.
 */
class SweepRunner
{
  public:
    /** @param jobs worker count; 0 = defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0) : pool_(jobs) {}

    unsigned jobs() const { return pool_.jobs(); }

    /** Evaluate fn(i) for i in [0, n); results in index order. */
    template <typename Fn>
    auto
    map(size_t n, Fn fn) -> std::vector<std::invoke_result_t<Fn, size_t>>
    {
        std::vector<std::invoke_result_t<Fn, size_t>> results(n);
        parallelFor(pool_, n,
                    [&](size_t i) { results[i] = fn(i); });
        return results;
    }

    /** Evaluate fn(item) per item; results in item order. */
    template <typename T, typename Fn>
    auto
    mapItems(const std::vector<T> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn, const T &>>
    {
        std::vector<std::invoke_result_t<Fn, const T &>> results(
            items.size());
        parallelFor(pool_, items.size(),
                    [&](size_t i) { results[i] = fn(items[i]); });
        return results;
    }

  private:
    ThreadPool pool_;
};

// ---------------------------------------------------------------------
// Hoisted parameter-grid helpers (formerly copy-pasted per bench).
// ---------------------------------------------------------------------

/** One steered (d, x) target of the Table 2/3 measured grids. */
struct SteeredPoint
{
    double dTarget = 0;
    double xTarget = 0;
};

/**
 * The measured-grid targets shared by bench_table2_f1 and
 * bench_table3_f2: analytic::paperDGrid() x {5, 15, 30}, in row-major
 * (d outer) order — the order the tables print.
 */
std::vector<SteeredPoint> steeredGrid();

/**
 * Measure one steered grid point: generate the synthetic workload
 * whose SEMWORK weight steers x toward the target, probe the baseline
 * decode cost, pad extraDecodeCycles toward the d target, and measure
 * on all three organizations.
 */
MeasuredPoint measureSteered(
    const SteeredPoint &pt,
    EncodingScheme scheme = EncodingScheme::Huffman);

/** The full steered grid, one point per worker. */
std::vector<MeasuredPoint> measureSteeredGrid(
    SweepRunner &runner, const std::vector<SteeredPoint> &grid,
    EncodingScheme scheme = EncodingScheme::Huffman);

/**
 * Compile and measure the named sample programs (their own inputs),
 * one program per worker; results in name order.
 */
std::vector<MeasuredPoint> measureSamples(
    SweepRunner &runner, const std::vector<std::string> &names,
    EncodingScheme scheme = EncodingScheme::Huffman);

/**
 * Run @p prog once per config, one run per worker; results in config
 * order. The staple of the organization-sweep benches.
 */
std::vector<RunResult> runConfigs(
    SweepRunner &runner, const DirProgram &prog, EncodingScheme scheme,
    const std::vector<MachineConfig> &configs,
    const std::vector<int64_t> &input = {});

// ---------------------------------------------------------------------
// Multi-program batch sweeps (uhm_cli sweep, tests/sweep_test.cc).
// ---------------------------------------------------------------------

/** One point of a multi-program batch sweep. */
struct SweepPoint
{
    /** Name reported on the point's JSONL line. */
    std::string label;
    DirProgram program;
    EncodingScheme scheme = EncodingScheme::Huffman;
    MachineConfig config;
    std::vector<int64_t> input;
};

/** What one batch sweep produced. */
struct SweepReport
{
    /**
     * One "sweep_point" JSON line per point, in point order — followed
     * by a "sweep_hist" line when the point registered histograms and
     * one "sweep_sample" line per occupancy sample when sampling was
     * on — then one "sweep_summary" line carrying the merged counters
     * and histograms. Byte-identical for any job count (schema in
     * docs/BENCHMARKS.md).
     */
    std::string jsonl;
    /** Counters of all points, merged in point order. */
    obs::MergedCounters counters;
    /** Histograms of all points, merged in point order. */
    obs::MergedHistograms histograms;
    /** The raw per-point results, in point order. */
    std::vector<RunResult> results;
};

/** Run every point on the runner's workers and merge the evidence. */
SweepReport runSweep(SweepRunner &runner,
                     const std::vector<SweepPoint> &points);

} // namespace uhm::bench

#endif // UHM_BENCH_BENCH_COMMON_HH
