/**
 * @file
 * Regenerates Table 2 of the paper: "Percentage increase in the average
 * DIR instruction interpretation time due to using the DTB as a cache
 * on the level 2 memory" — F1, over the d x x grid.
 *
 * Three views are printed:
 *  1. the paper's printed closed form, digit-for-digit;
 *  2. the section-7 expressions F1 = (T2-T3)/T3 with the stated
 *     parameters (tau2=10, tauD=2, s1=3, s2=1, hD=0.8, hc=0.9,
 *     g=1.5 d);
 *  3. a measured grid from full simulation: synthetic workloads with
 *     the decode cost (d) and semantic cost (x) steered toward each
 *     grid point, executed on the conventional, cached and DTB
 *     machines; F1 computed from measured cycle counts.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
printClosedForm()
{
    TextTable table(
        "Table 2 (paper closed form): F1, percentage increase from using "
        "the DTB's\nresources as a plain instruction cache");
    std::vector<std::string> header = {"d \\ x"};
    for (double x : analytic::paperXGrid())
        header.push_back(TextTable::num(x, 0));
    table.setHeader(header);
    for (double d : analytic::paperDGrid()) {
        std::vector<std::string> row = {TextTable::num(d, 0)};
        for (double x : analytic::paperXGrid())
            row.push_back(TextTable::num(analytic::paperTable2(d, x), 2));
        table.addRow(row);
    }
    table.print();
}

void
printFormula()
{
    TextTable table(
        "Table 2 (section-7 expressions, stated parameters: g = 1.5 d, "
        "hD = 0.8,\nhc = 0.9): F1 = (T2 - T3)/T3 x 100");
    std::vector<std::string> header = {"d \\ x"};
    for (double x : analytic::paperXGrid())
        header.push_back(TextTable::num(x, 0));
    table.setHeader(header);
    for (double d : analytic::paperDGrid()) {
        std::vector<std::string> row = {TextTable::num(d, 0)};
        for (double x : analytic::paperXGrid()) {
            analytic::ModelParams p;
            p.d = d;
            p.g = 1.5 * d;
            p.x = x;
            row.push_back(TextTable::num(analytic::f1(p), 2));
        }
        table.addRow(row);
    }
    table.print();
}

void
printMeasured(SweepRunner &runner)
{
    TextTable table(
        "Table 2 (measured): simulated F1 at steered (d, x) points, with "
        "the\nsection-7 prediction at the *measured* coordinates");
    table.setHeader({"d target", "x target", "d meas", "x meas", "hD",
                     "hc", "T1", "T2", "T3", "F1 meas", "F1 model"});

    std::vector<SteeredPoint> grid = steeredGrid();
    std::vector<MeasuredPoint> points = measureSteeredGrid(runner, grid);
    for (size_t i = 0; i < grid.size(); ++i) {
        const MeasuredPoint &pt = points[i];
        analytic::ModelParams p;
        p.d = pt.d;
        p.x = pt.x;
        p.g = pt.g;
        p.hD = pt.hD;
        p.hc = pt.hc;
        p.s1 = pt.s1;
        p.s2 = pt.s2;

        table.addRow({TextTable::num(grid[i].dTarget, 0),
                      TextTable::num(grid[i].xTarget, 0),
                      TextTable::num(pt.d, 1),
                      TextTable::num(pt.x, 1),
                      TextTable::num(pt.hD, 3),
                      TextTable::num(pt.hc, 3),
                      TextTable::num(pt.t1, 1),
                      TextTable::num(pt.t2, 1),
                      TextTable::num(pt.t3, 1),
                      TextTable::num(pt.f1(), 2),
                      TextTable::num(analytic::f1(p), 2)});
    }
    table.print();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SweepRunner runner(jobsFromArgs(argc, argv));
    std::printf("=== Table 2: F1 — cost of using the DTB hardware as a "
                "plain instruction cache ===\n\n");
    printClosedForm();
    std::printf("\n");
    printFormula();
    std::printf("\n");
    printMeasured(runner);
    std::printf(
        "\nShape checks: F1 grows with d (decode work the DTB avoids) and "
        "falls as x\n(semantic work common to both) dilutes it.\n");
    return 0;
}
