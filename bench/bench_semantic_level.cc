/**
 * @file
 * The vertical axis of Figure 1: the semantic level of the DIR.
 *
 * Section 3.2: raising the level — "increase the complexity and variety
 * of the opcodes, addressing modes and branch instructions" — trades a
 * larger opcode vocabulary (more resident semantic routines) for fewer,
 * more powerful instructions and less per-instruction interpretation
 * overhead. The fusion pass (dir/fusion.hh) performs exactly that
 * raise; this bench measures both sides of the trade on the compiled
 * sample programs, at both ends of the encoding axis, on the
 * conventional and DTB organizations.
 */

#include <cstdio>

#include "bench_common.hh"
#include "dir/fusion.hh"
#include "psder/routines.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
perProgramTable(EncodingScheme scheme, MachineKind kind)
{
    TextTable table(
        std::string("Base vs raised DIR (") + encodingName(scheme) +
        ", " + machineKindName(kind) + "): dynamic instruction count, "
        "image size, cycles");
    table.setHeader({"program", "instrs base", "instrs raised",
                     "image bits base", "raised", "cycles base",
                     "raised", "speedup"});
    for (const char *name : {"sieve", "fib", "gcd", "collatz", "matmul",
                             "qsort", "queens", "bsearch"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram base = hlr::compileSource(sample.source);
        DirProgram raised = raiseSemanticLevel(base);

        auto base_image = encodeDir(base, scheme);
        auto raised_image = encodeDir(raised, scheme);
        MachineConfig cfg = makeConfig(kind);
        Machine m1(*base_image, cfg);
        Machine m2(*raised_image, cfg);
        RunResult r1 = m1.run(sample.input);
        RunResult r2 = m2.run(sample.input);

        table.addRow({name, TextTable::num(r1.dirInstrs),
                      TextTable::num(r2.dirInstrs),
                      TextTable::num(base_image->bitSize()),
                      TextTable::num(raised_image->bitSize()),
                      TextTable::num(r1.cycles),
                      TextTable::num(r2.cycles),
                      TextTable::num(static_cast<double>(r1.cycles) /
                                     static_cast<double>(r2.cycles),
                                     2) + "x"});
    }
    table.print();
}

void
vocabularyCost()
{
    // The price of the raised level: a bigger resident routine library.
    MachineLayout layout;
    RoutineLibrary lib(layout);
    size_t base_words = 0, fused_words = 0;
    for (size_t i = 0; i < numOps; ++i) {
        Op op = static_cast<Op>(i);
        size_t words = lib.routine(op).sizeWords();
        if (op == Op::SETL || op == Op::INCL || op == Op::WRITEL ||
            op == Op::PUSHL2 || op == Op::BRZL || op == Op::BRNZL) {
            fused_words += words;
        } else {
            base_words += words;
        }
    }
    std::printf("Resident semantic-routine footprint: base vocabulary "
                "%zu words, raised\nvocabulary adds %zu words (+%.0f%%) "
                "— Figure 1's 'size of the interpreter and\nsemantic "
                "routines increases, although by a smaller extent'.\n",
                base_words, fused_words,
                100.0 * static_cast<double>(fused_words) /
                    static_cast<double>(base_words));
}

void
fusionCensus()
{
    TextTable table("What fuses (static counts over the sample corpus)");
    table.setHeader({"fused opcode", "count"});
    std::map<Op, uint64_t> totals;
    uint64_t before = 0, after = 0;
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        FusionStats stats;
        raiseSemanticLevel(prog, &stats);
        for (const auto &kv : stats.fused)
            totals[kv.first] += kv.second;
        before += stats.instrsBefore;
        after += stats.instrsAfter;
    }
    for (const auto &kv : totals)
        table.addRow({opName(kv.first), TextTable::num(kv.second)});
    table.print();
    std::printf("corpus: %llu instructions -> %llu (%.1f%% smaller "
                "statically)\n",
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(after),
                100.0 * (1.0 - static_cast<double>(after) /
                                   static_cast<double>(before)));
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 1, vertical axis: raising the DIR's "
                "semantic level ===\n\n");
    fusionCensus();
    std::printf("\n");
    perProgramTable(EncodingScheme::Huffman, MachineKind::Conventional);
    std::printf("\n");
    perProgramTable(EncodingScheme::Huffman, MachineKind::Dtb);
    std::printf("\n");
    vocabularyCost();
    std::printf(
        "\nShape checks: the raised level executes fewer, larger "
        "instructions and wins\ncycles on both organizations; the gain "
        "is biggest where per-instruction overhead\ndominates "
        "(conventional, encoded DIR) — Figure 1's promise that "
        "interpretation\ntime falls as the level rises.\n");
    return 0;
}
