/**
 * @file
 * bench_multitenant — the multi-programmed UHM's operating space (the
 * PR-6 tentpole): N independent guest programs time-sliced over one
 * shared dynamic translation buffer by the tenant scheduler.
 *
 * Two grids:
 *
 *  - sharing: tenant count {1 .. 1024} x DTB switch discipline
 *    {flush-on-switch, tag-and-share, tag + 4-way partitioned} under
 *    round-robin. This is the paper's DTB question under
 *    multi-programming: how fast does the translation working set
 *    thrash as address spaces multiply, and how much of the damage do
 *    ASID tags (vs flushing) and partitioning (vs free-for-all) undo?
 *  - policy: round-robin vs priority vs miss-feedback at a fixed
 *    tenant count, tag-and-share. Architectural results are identical
 *    across policies (every tenant runs to HALT); what moves is the
 *    finish spread and the per-slice dispatch-latency tail.
 *
 * Per point: aggregate CPI, per-tenant DTB miss rate, and the pooled
 * p50/p99 of per-slice CPI (milli-cycles per DIR instruction — the
 * dispatch-latency distribution a tenant actually experiences,
 * including cold-start translation storms after a flush or eviction).
 *
 * Every number is simulated and integer-deterministic: one scheduler
 * run is single-threaded, points fan out over bench_common's
 * SweepRunner into index-addressed slots, so the table and JSON are
 * byte-identical for any --jobs value. CI regenerates the JSON and
 * cmp(1)s it against the committed BENCH_multitenant.json.
 *
 * Emits a table on stdout and JSON (schema in docs/BENCHMARKS.md) to
 * --out=<file>, default BENCH_multitenant.json.
 *
 * Usage: bench_multitenant [--out=FILE] [--jobs=N] [--seed=N]
 *                          [--max-tenants=N]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sched/scheduler.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

/**
 * Tenant i's guest program: a small synthetic loop nest whose shape
 * (and therefore translation working set) varies with the tenant
 * index, so tenants genuinely compete for DTB sets instead of sharing
 * one identical footprint.
 */
DirProgram
tenantProgram(size_t i, uint64_t seed)
{
    workload::SyntheticConfig cfg;
    cfg.numLoops = 3 + static_cast<uint32_t>(i % 3);
    cfg.bodyInstrs = 10 + static_cast<uint32_t>(i % 5) * 2;
    cfg.iterations = 4;
    cfg.semworkDensity = 0.15;
    cfg.semworkWeight = 2;
    cfg.numGlobals = 12;
    cfg.outerRepeats = 1;
    cfg.seed = seed + i;
    return workload::generateSynthetic(cfg);
}

/** One grid point's configuration. */
struct Point
{
    std::string section; ///< "sharing" or "policy"
    std::string label;   ///< mode / policy name for the table
    size_t tenants = 1;
    sched::Policy policy = sched::Policy::RoundRobin;
    sched::SwitchMode mode = sched::SwitchMode::TagAndShare;
    uint64_t partitions = 0;
};

/** One grid point's measured row (all simulated, deterministic). */
struct Row
{
    uint64_t cycles = 0;
    uint64_t dirInstrs = 0;
    uint64_t switches = 0;
    uint64_t flushes = 0;
    uint64_t flushedEntries = 0;
    uint64_t dtbHits = 0;
    uint64_t dtbMisses = 0;
    /** Pooled per-slice CPI percentiles (milli-cycles/instr). */
    uint64_t p50Milli = 0;
    uint64_t p99Milli = 0;
    /** Worst single tenant's p99 (tail-of-the-tail). */
    uint64_t worstP99Milli = 0;
    /** Last finish minus first finish (global cycles). */
    uint64_t finishSpread = 0;

    double cpi() const
    {
        return dirInstrs == 0 ? 0.0 :
               static_cast<double>(cycles) /
               static_cast<double>(dirInstrs);
    }
    double missRate() const
    {
        uint64_t total = dtbHits + dtbMisses;
        return total == 0 ? 0.0 :
               static_cast<double>(dtbMisses) /
               static_cast<double>(total);
    }
};

/** Nearest-rank percentile of an unsorted sample (0 when empty). */
uint64_t
percentile(std::vector<uint64_t> sample, unsigned pct)
{
    if (sample.empty())
        return 0;
    std::sort(sample.begin(), sample.end());
    return sample[(sample.size() - 1) * pct / 100];
}

Row
measure(const Point &pt, uint64_t seed)
{
    sched::SchedConfig sc;
    sc.policy = pt.policy;
    sc.switchMode = pt.mode;
    sc.quantumCycles = 1500;
    sc.machine.kind = MachineKind::Dtb;
    sc.machine.dtb.numPartitions = pt.partitions;

    std::vector<sched::TenantSpec> tenants;
    tenants.reserve(pt.tenants);
    for (size_t i = 0; i < pt.tenants; ++i) {
        sched::TenantSpec spec;
        spec.name = "t" + std::to_string(i);
        spec.program = tenantProgram(i, seed);
        spec.priority = 1 + static_cast<uint32_t>(i % 3);
        tenants.push_back(std::move(spec));
    }

    sched::SchedResult sr = sched::runScheduled(sc, std::move(tenants));

    Row row;
    row.cycles = sr.totalCycles;
    row.switches = sr.switches;
    row.flushes = sr.flushes;
    row.flushedEntries = sr.flushedEntries;
    std::vector<uint64_t> pooled;
    uint64_t first_finish = UINT64_MAX, last_finish = 0;
    for (const sched::TenantResult &t : sr.tenants) {
        row.dirInstrs += t.run.dirInstrs;
        row.dtbHits += t.dtbHits;
        row.dtbMisses += t.dtbMisses;
        pooled.insert(pooled.end(), t.sliceCpiMilli.begin(),
                      t.sliceCpiMilli.end());
        row.worstP99Milli = std::max(row.worstP99Milli, t.cpiP99());
        first_finish = std::min(first_finish, t.finishedAtCycle);
        last_finish = std::max(last_finish, t.finishedAtCycle);
    }
    row.p50Milli = percentile(pooled, 50);
    row.p99Milli = percentile(std::move(pooled), 99);
    row.finishSpread = last_finish - first_finish;
    return row;
}

void
emitRow(JsonWriter &jw, const Point &pt, const Row &r)
{
    jw.beginObject();
    jw.key("tenants").value(static_cast<uint64_t>(pt.tenants));
    if (pt.section == "sharing")
        jw.key("mode").value(pt.label);
    else
        jw.key("policy").value(pt.label);
    jw.key("cycles").value(r.cycles);
    jw.key("dir_instrs").value(r.dirInstrs);
    jw.key("cycles_per_instr").value(r.cpi());
    jw.key("dtb_miss_rate").value(r.missRate());
    jw.key("switches").value(r.switches);
    jw.key("flushes").value(r.flushes);
    jw.key("flushed_entries").value(r.flushedEntries);
    jw.key("p50_slice_cpi_milli").value(r.p50Milli);
    jw.key("p99_slice_cpi_milli").value(r.p99Milli);
    jw.key("worst_tenant_p99_milli").value(r.worstP99Milli);
    jw.key("finish_spread_cycles").value(r.finishSpread);
    jw.endObject();
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string out_path = "BENCH_multitenant.json";
    uint64_t seed = 1978;
    size_t max_tenants = 1024;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(std::strlen("--out="));
        else if (arg.rfind("--seed=", 0) == 0)
            seed = std::stoull(arg.substr(std::strlen("--seed=")));
        else if (arg.rfind("--max-tenants=", 0) == 0)
            max_tenants =
                std::stoull(arg.substr(std::strlen("--max-tenants=")));
        else if (arg.rfind("--jobs=", 0) == 0)
            continue; // consumed by jobsFromArgs below
        else
            fatal("unknown option '%s'", arg.c_str());
    }

    // The sharing grid: tenant-count curve per switch discipline.
    struct Mode
    {
        const char *name;
        sched::SwitchMode mode;
        uint64_t partitions;
    };
    const std::vector<Mode> modes = {
        {"flush", sched::SwitchMode::FlushOnSwitch, 0},
        {"tag", sched::SwitchMode::TagAndShare, 0},
        {"tag-part4", sched::SwitchMode::TagAndShare, 4},
    };
    const std::vector<size_t> tenantCounts = {1, 4, 16, 64, 256, 1024};
    const size_t policyTenants = 16;

    std::vector<Point> points;
    for (const Mode &m : modes) {
        for (size_t n : tenantCounts) {
            if (n > max_tenants)
                continue;
            Point pt;
            pt.section = "sharing";
            pt.label = m.name;
            pt.tenants = n;
            pt.mode = m.mode;
            pt.partitions = m.partitions;
            points.push_back(std::move(pt));
        }
    }
    for (sched::Policy policy :
         {sched::Policy::RoundRobin, sched::Policy::Priority,
          sched::Policy::MissFeedback}) {
        Point pt;
        pt.section = "policy";
        pt.label = sched::policyName(policy);
        pt.tenants = std::min(policyTenants, max_tenants);
        pt.policy = policy;
        points.push_back(std::move(pt));
    }

    SweepRunner runner(jobsFromArgs(argc, argv));
    std::vector<Row> rows = runner.mapItems(
        points, [&](const Point &pt) { return measure(pt, seed); });

    std::printf("bench_multitenant: %zu points on %u workers "
                "(simulated cycles, shared DTB, quantum 1500)\n\n",
                points.size(), runner.jobs());
    std::printf("%-8s %-10s %7s %12s %8s %9s %9s %10s\n", "section",
                "mode", "tenants", "cycles/instr", "miss", "p50m",
                "p99m", "switches");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        const Row &r = rows[i];
        std::printf("%-8s %-10s %7zu %12.3f %8.4f %9llu %9llu %10llu\n",
                    pt.section.c_str(), pt.label.c_str(), pt.tenants,
                    r.cpi(), r.missRate(),
                    static_cast<unsigned long long>(r.p50Milli),
                    static_cast<unsigned long long>(r.p99Milli),
                    static_cast<unsigned long long>(r.switches));
    }

    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("bench_multitenant");
    jw.key("seed").value(seed);
    jw.key("quantum_cycles").value(static_cast<uint64_t>(1500));
    jw.key("max_tenants").value(static_cast<uint64_t>(max_tenants));
    jw.key("sharing").beginArray();
    for (size_t i = 0; i < points.size(); ++i)
        if (points[i].section == "sharing")
            emitRow(jw, points[i], rows[i]);
    jw.endArray();
    jw.key("policy").beginArray();
    for (size_t i = 0; i < points.size(); ++i)
        if (points[i].section == "policy")
            emitRow(jw, points[i], rows[i]);
    jw.endArray();
    jw.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot open '%s'", out_path.c_str());
    out << jw.str() << "\n";
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
