/**
 * @file
 * Reproduces the section 3.2 compaction claims: "Wilner states that
 * memory requirements can be reduced by 25 to 75 percent and Hehner
 * claims program compaction by up to 75 percent."
 *
 * For every sample program we report each encoding's size as a
 * percentage of the word-aligned expanded form and of the simple packed
 * form, plus the decoder metadata the interpreter must keep resident —
 * the memory the encoding gives back with one hand and takes (a little
 * of) with the other.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

/** Per-program encoded sizes, computed by one worker. */
struct CompactionRow
{
    uint64_t expanded = 0;
    uint64_t packed = 0;
    uint64_t contextual = 0;
    uint64_t huffman = 0;
    uint64_t pair = 0;
};

int
main(int argc, char **argv)
{
    uhm::bench::SweepRunner runner(uhm::bench::jobsFromArgs(argc, argv));
    std::printf("=== Encoding compaction (section 3.2; Wilner 25-75%%, "
                "Hehner up to 75%%) ===\n\n");

    TextTable table("Program size by encoding, as %% of the packed form "
                    "(and of the expanded\nmachine-word form)");
    table.setHeader({"program", "packed bits", "contextual", "huffman",
                     "pair-huffman", "vs expanded"});

    const auto &samples = workload::samplePrograms();
    auto rows = runner.map(samples.size(), [&](size_t i) {
        DirProgram prog = hlr::compileSource(samples[i].source);
        CompactionRow row;
        row.expanded = encodeDir(prog, EncodingScheme::Expanded)
                           ->bitSize();
        row.packed = encodeDir(prog, EncodingScheme::Packed)->bitSize();
        row.contextual = encodeDir(prog, EncodingScheme::Contextual)
                             ->bitSize();
        row.huffman = encodeDir(prog, EncodingScheme::Huffman)
                          ->bitSize();
        row.pair = encodeDir(prog, EncodingScheme::PairHuffman)
                       ->bitSize();
        return row;
    });

    double worst_huffman = 0.0, best_huffman = 100.0;
    for (size_t i = 0; i < samples.size(); ++i) {
        const CompactionRow &row = rows[i];
        auto pct = [&](uint64_t bits, uint64_t base) {
            return TextTable::num(100.0 * static_cast<double>(bits) /
                                  static_cast<double>(base), 1) + "%";
        };
        double huff_pct = 100.0 * static_cast<double>(row.huffman) /
            static_cast<double>(row.packed);
        worst_huffman = std::max(worst_huffman, huff_pct);
        best_huffman = std::min(best_huffman, huff_pct);

        table.addRow({samples[i].name, TextTable::num(row.packed),
                      pct(row.contextual, row.packed),
                      pct(row.huffman, row.packed),
                      pct(row.pair, row.packed),
                      "huffman = " + pct(row.huffman, row.expanded) +
                          " of expanded"});
    }
    table.print();

    std::printf("\nHuffman coding leaves programs at %.1f%%..%.1f%% of "
                "their packed size — a\n%.0f%%..%.0f%% reduction, inside "
                "the paper's quoted 25-75%% band (and an order of\n"
                "magnitude below the expanded machine-language form).\n\n",
                best_huffman, worst_huffman, 100 - worst_huffman,
                100 - best_huffman);

    TextTable meta("The price: resident decoder metadata (bits)");
    meta.setHeader({"program", "packed", "contextual", "huffman",
                    "pair-huffman"});
    const std::vector<std::string> meta_names = {"sieve", "qsort",
                                                 "queens"};
    auto meta_rows = runner.mapItems(
        meta_names, [](const std::string &name) {
            DirProgram prog = hlr::compileSource(
                workload::sampleByName(name).source);
            std::vector<uint64_t> bits;
            for (EncodingScheme scheme :
                 {EncodingScheme::Packed, EncodingScheme::Contextual,
                  EncodingScheme::Huffman,
                  EncodingScheme::PairHuffman}) {
                bits.push_back(encodeDir(prog, scheme)->metadataBits());
            }
            return bits;
        });
    for (size_t i = 0; i < meta_names.size(); ++i) {
        std::vector<std::string> row = {meta_names[i]};
        for (uint64_t bits : meta_rows[i])
            row.push_back(TextTable::num(bits));
        meta.addRow(row);
    }
    meta.print();
    std::printf("\nShape check: deeper encodings buy program compaction "
                "at the cost of decoder\ntables — 'the size of the "
                "interpreter and semantic routines increases although\n"
                "by a smaller extent' (Figure 1).\n");
    return 0;
}
