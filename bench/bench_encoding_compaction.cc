/**
 * @file
 * Reproduces the section 3.2 compaction claims: "Wilner states that
 * memory requirements can be reduced by 25 to 75 percent and Hehner
 * claims program compaction by up to 75 percent."
 *
 * For every sample program we report each encoding's size as a
 * percentage of the word-aligned expanded form and of the simple packed
 * form, plus the decoder metadata the interpreter must keep resident —
 * the memory the encoding gives back with one hand and takes (a little
 * of) with the other.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

int
main()
{
    std::printf("=== Encoding compaction (section 3.2; Wilner 25-75%%, "
                "Hehner up to 75%%) ===\n\n");

    TextTable table("Program size by encoding, as %% of the packed form "
                    "(and of the expanded\nmachine-word form)");
    table.setHeader({"program", "packed bits", "contextual", "huffman",
                     "pair-huffman", "vs expanded"});

    double worst_huffman = 0.0, best_huffman = 100.0;
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        auto expanded = encodeDir(prog, EncodingScheme::Expanded);
        auto packed = encodeDir(prog, EncodingScheme::Packed);
        auto contextual = encodeDir(prog, EncodingScheme::Contextual);
        auto huffman = encodeDir(prog, EncodingScheme::Huffman);
        auto pair = encodeDir(prog, EncodingScheme::PairHuffman);

        auto pct = [&](uint64_t bits, uint64_t base) {
            return TextTable::num(100.0 * static_cast<double>(bits) /
                                  static_cast<double>(base), 1) + "%";
        };
        double huff_pct = 100.0 *
            static_cast<double>(huffman->bitSize()) /
            static_cast<double>(packed->bitSize());
        worst_huffman = std::max(worst_huffman, huff_pct);
        best_huffman = std::min(best_huffman, huff_pct);

        table.addRow({sample.name, TextTable::num(packed->bitSize()),
                      pct(contextual->bitSize(), packed->bitSize()),
                      pct(huffman->bitSize(), packed->bitSize()),
                      pct(pair->bitSize(), packed->bitSize()),
                      "huffman = " +
                          pct(huffman->bitSize(), expanded->bitSize()) +
                          " of expanded"});
    }
    table.print();

    std::printf("\nHuffman coding leaves programs at %.1f%%..%.1f%% of "
                "their packed size — a\n%.0f%%..%.0f%% reduction, inside "
                "the paper's quoted 25-75%% band (and an order of\n"
                "magnitude below the expanded machine-language form).\n\n",
                best_huffman, worst_huffman, 100 - worst_huffman,
                100 - best_huffman);

    TextTable meta("The price: resident decoder metadata (bits)");
    meta.setHeader({"program", "packed", "contextual", "huffman",
                    "pair-huffman"});
    for (const char *name : {"sieve", "qsort", "queens"}) {
        DirProgram prog = hlr::compileSource(
            workload::sampleByName(name).source);
        std::vector<std::string> row = {name};
        for (EncodingScheme scheme :
             {EncodingScheme::Packed, EncodingScheme::Contextual,
              EncodingScheme::Huffman, EncodingScheme::PairHuffman}) {
            row.push_back(TextTable::num(
                encodeDir(prog, scheme)->metadataBits()));
        }
        meta.addRow(row);
    }
    meta.print();
    std::printf("\nShape check: deeper encodings buy program compaction "
                "at the cost of decoder\ntables — 'the size of the "
                "interpreter and semantic routines increases although\n"
                "by a smaller extent' (Figure 1).\n");
    return 0;
}
