/**
 * @file
 * bench_dispatch — host wall-clock of the fast-run execution mode
 * (--dispatch=threaded) against the reference switch interpreter.
 *
 * Times whole simulations over the sample corpus plus the synthetic
 * grid workload, one row per fast-capable machine kind (conventional,
 * dtb, tiered). Before any timing, every corpus point is run once in
 * each mode and the two RunResults are compared field by field — the
 * bench aborts on the first divergence, so a published speedup is
 * always a speedup *at identical simulated output*.
 *
 * Emits a human-readable table on stdout and a JSON document (schema
 * in docs/BENCHMARKS.md) to --out=<file>, default BENCH_dispatch.json.
 * The "sim" section is deterministic (simulated cycles and instruction
 * counts); CI recomputes it and diffs against the committed file. The
 * wall-clock metrics are machine-dependent; compare runs with
 * scripts/bench_compare.py.
 *
 * Usage: bench_dispatch [--out=FILE] [--iters=N]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

/** Keep run results observable so the timed loops cannot be elided. */
volatile uint64_t g_sink = 0;

double
nowNs()
{
    using namespace std::chrono;
    return static_cast<double>(
        duration_cast<nanoseconds>(
            steady_clock::now().time_since_epoch()).count());
}

/** One corpus program, compiled and encoded once for all rows. The
 *  image references the program, so the point owns both at stable
 *  addresses. */
struct CorpusPoint
{
    std::string label;
    std::unique_ptr<DirProgram> program;
    std::unique_ptr<EncodedDir> image;
    std::vector<int64_t> input;
};

std::vector<CorpusPoint>
buildCorpus(uint64_t seed)
{
    std::vector<CorpusPoint> corpus;
    for (const auto &sample : workload::samplePrograms()) {
        CorpusPoint pt;
        pt.label = sample.name;
        pt.program = std::make_unique<DirProgram>(
            hlr::compileSource(sample.source));
        pt.image = encodeDir(*pt.program, EncodingScheme::Huffman);
        pt.input = sample.input;
        corpus.push_back(std::move(pt));
    }
    // Synthetic grid points spanning the low end of the paper's
    // semantic-work axis x (the same axis steeredGrid() sweeps) with
    // the standard grid working set, which deliberately overflows the
    // default DTB: interpretation-bound, translation-heavy behavior.
    for (uint32_t weight : {0u, 4u, 16u}) {
        CorpusPoint synth;
        synth.label = "synthetic-w" + std::to_string(weight);
        synth.program =
            std::make_unique<DirProgram>(gridWorkload(weight, seed));
        synth.image = encodeDir(*synth.program, EncodingScheme::Huffman);
        corpus.push_back(std::move(synth));
    }
    // Semantics-bound points at the high end of the axis: a compact,
    // DTB-resident loop nest whose time is dominated by SEMWORK spins.
    // These are the programs the paper's section 7 model calls
    // semantics-bound (large x), where interpretation overhead — the
    // thing the dispatch modes differ on — is amortized per spin.
    for (uint32_t weight : {64u, 256u}) {
        workload::SyntheticConfig cfg;
        cfg.numLoops = 4;
        cfg.bodyInstrs = 24;
        cfg.iterations = 50;
        cfg.outerRepeats = 60;
        cfg.semworkDensity = 0.3;
        cfg.semworkWeight = weight;
        cfg.numGlobals = 24;
        cfg.seed = seed;
        CorpusPoint spin;
        spin.label = "spin-w" + std::to_string(weight);
        spin.program = std::make_unique<DirProgram>(
            workload::generateSynthetic(cfg));
        spin.image = encodeDir(*spin.program, EncodingScheme::Huffman);
        corpus.push_back(std::move(spin));
    }
    return corpus;
}

/**
 * Abort unless the two runs are byte-identical in every simulated
 * observable. The dispatch mode is a host implementation detail; any
 * difference here is a bug, not noise.
 */
void
requireIdentical(const RunResult &a, const RunResult &b,
                 const char *kind, const std::string &label)
{
    bool same = a.output == b.output && a.cycles == b.cycles &&
        a.dirInstrs == b.dirInstrs &&
        a.breakdown.fetch == b.breakdown.fetch &&
        a.breakdown.decode == b.breakdown.decode &&
        a.breakdown.stage == b.breakdown.stage &&
        a.breakdown.dispatch == b.breakdown.dispatch &&
        a.breakdown.semantic == b.breakdown.semantic &&
        a.breakdown.translate == b.breakdown.translate &&
        a.breakdown.translate2 == b.breakdown.translate2 &&
        a.counters == b.counters && a.histograms == b.histograms &&
        a.opcodeCounts == b.opcodeCounts &&
        a.stats.toString() == b.stats.toString();
    if (!same)
        fatal("dispatch modes diverged on %s/%s — refusing to time a "
              "broken fast path", kind, label.c_str());
}

struct KindRow
{
    const char *kind = "";
    uint64_t dirInstrs = 0;   ///< per corpus pass (identical per mode)
    uint64_t simCycles = 0;   ///< per corpus pass (identical per mode)
    double switchNsPerInstr = 0;
    double threadedNsPerInstr = 0;
    double speedup() const
    {
        return switchNsPerInstr / threadedNsPerInstr;
    }
};

KindRow
timeKind(MachineKind kind, const std::vector<CorpusPoint> &corpus,
         unsigned iters)
{
    KindRow row;
    row.kind = machineKindName(kind);

    // One machine per (point, mode), reused across reps — beginRun
    // resets all simulated state, so every rep re-simulates the whole
    // run (cold DTB included) and reps are identical by construction.
    std::vector<std::unique_ptr<Machine>> machines[2];
    for (int mode = 0; mode < 2; ++mode) {
        MachineConfig cfg = makeConfig(kind);
        cfg.dispatch = mode == 0 ? DispatchMode::Switch :
            DispatchMode::Threaded;
        for (const CorpusPoint &pt : corpus)
            machines[mode].push_back(
                std::make_unique<Machine>(*pt.image, cfg));
    }

    // Identity gate (doubles as warm-up for both modes).
    for (size_t i = 0; i < corpus.size(); ++i) {
        RunResult sw = machines[0][i]->run(corpus[i].input);
        RunResult th = machines[1][i]->run(corpus[i].input);
        requireIdentical(sw, th, row.kind, corpus[i].label);
        row.dirInstrs += sw.dirInstrs;
        row.simCycles += sw.cycles;
    }

    auto measure = [&](int mode) -> double {
        double t0 = nowNs();
        for (unsigned it = 0; it < iters; ++it)
            for (size_t i = 0; i < corpus.size(); ++i)
                g_sink = g_sink +
                    machines[mode][i]->run(corpus[i].input).cycles;
        double t1 = nowNs();
        return (t1 - t0) /
            (static_cast<double>(row.dirInstrs) * iters);
    };

    row.switchNsPerInstr = measure(0);
    row.threadedNsPerInstr = measure(1);
    return row;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::string out_path = "BENCH_dispatch.json";
    unsigned iters = 30;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(std::strlen("--out="));
        else if (arg.rfind("--iters=", 0) == 0)
            iters = static_cast<unsigned>(
                std::stoul(arg.substr(std::strlen("--iters="))));
        else
            fatal("unknown option '%s'", arg.c_str());
    }

    std::vector<CorpusPoint> corpus = buildCorpus(1978);
    const std::vector<MachineKind> kinds = {
        MachineKind::Conventional, MachineKind::Dtb, MachineKind::Tiered,
    };

    std::printf("bench_dispatch: host wall-clock, %u iters, "
                "%zu corpus programs (switch vs threaded at identical "
                "simulated output)\n\n", iters, corpus.size());
    std::printf("%-14s %12s %14s %16s %9s\n", "kind", "dir instrs",
                "switch ns/ins", "threaded ns/ins", "speedup");

    std::vector<KindRow> rows;
    double total_switch_ns = 0;
    double total_threaded_ns = 0;
    uint64_t total_instrs = 0;
    for (MachineKind kind : kinds) {
        rows.push_back(timeKind(kind, corpus, iters));
        const KindRow &r = rows.back();
        std::printf("%-14s %12llu %14.2f %16.2f %8.2fx\n", r.kind,
                    static_cast<unsigned long long>(r.dirInstrs),
                    r.switchNsPerInstr, r.threadedNsPerInstr,
                    r.speedup());
        total_switch_ns +=
            r.switchNsPerInstr * static_cast<double>(r.dirInstrs);
        total_threaded_ns +=
            r.threadedNsPerInstr * static_cast<double>(r.dirInstrs);
        total_instrs += r.dirInstrs;
    }
    double corpus_speedup = total_switch_ns / total_threaded_ns;
    std::printf("\ncorpus-wide    %12llu %14.2f %16.2f %8.2fx\n",
                static_cast<unsigned long long>(total_instrs),
                total_switch_ns / static_cast<double>(total_instrs),
                total_threaded_ns / static_cast<double>(total_instrs),
                corpus_speedup);

    JsonWriter jw;
    jw.beginObject();
    jw.key("bench").value("bench_dispatch");
    jw.key("iters").value(static_cast<uint64_t>(iters));
    jw.key("corpus_programs").value(
        static_cast<uint64_t>(corpus.size()));
    // Deterministic simulated totals: identical across hosts, dispatch
    // modes and job counts — CI diffs this section against the
    // committed file to catch accounting drift.
    jw.key("sim").beginArray();
    for (const KindRow &r : rows) {
        jw.beginObject();
        jw.key("name").value(r.kind);
        jw.key("dir_instrs").value(r.dirInstrs);
        jw.key("sim_cycles").value(r.simCycles);
        jw.endObject();
    }
    jw.endArray();
    jw.key("kinds").beginArray();
    for (const KindRow &r : rows) {
        jw.beginObject();
        jw.key("name").value(r.kind);
        jw.key("switch_ns_per_instr").value(r.switchNsPerInstr);
        jw.key("threaded_ns_per_instr").value(r.threadedNsPerInstr);
        jw.key("speedup").value(r.speedup());
        jw.endObject();
    }
    jw.endArray();
    jw.key("speedup").value(corpus_speedup);
    jw.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot open '%s'", out_path.c_str());
    out << jw.str() << "\n";
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
