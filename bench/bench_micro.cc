/**
 * @file
 * Google-benchmark microbenchmarks of the host-library primitives: DTB
 * lookup, the five DIR decoders, the dynamic translator, and end-to-end
 * machine execution per DIR instruction. These measure the *simulator's*
 * own speed (host nanoseconds), complementing the cycle-accurate tables.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hh"
#include "core/trace_sim.hh"
#include "core/translator.hh"
#include "dir/fusion.hh"
#include "dir/serialize.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

const DirProgram &
sieveProgram()
{
    static const DirProgram prog = hlr::compileSource(
        workload::sampleByName("sieve").source);
    return prog;
}

void
BM_DtbLookupHit(benchmark::State &state)
{
    DtbConfig cfg;
    Dtb dtb(cfg);
    std::vector<ShortInstr> code = {
        {SOp::CALL, SMode::Imm, 9},
        {SOp::INTERP, SMode::Imm, 64},
    };
    for (uint64_t a = 0; a < 64; ++a)
        dtb.insert(a * 17, code);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dtb.lookup((addr % 64) * 17));
        ++addr;
    }
}
BENCHMARK(BM_DtbLookupHit);

void
BM_DtbLookupMiss(benchmark::State &state)
{
    DtbConfig cfg;
    Dtb dtb(cfg);
    uint64_t addr = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dtb.lookup(addr));
        addr += 977;
    }
}
BENCHMARK(BM_DtbLookupMiss);

void
BM_DecodeInstr(benchmark::State &state)
{
    EncodingScheme scheme =
        static_cast<EncodingScheme>(state.range(0));
    auto image = encodeDir(sieveProgram(), scheme);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            image->decodeAt(image->bitAddrOf(i)));
        i = (i + 1) % image->numInstrs();
    }
    state.SetLabel(encodingName(scheme));
}
BENCHMARK(BM_DecodeInstr)->DenseRange(0, 5);

void
BM_Translate(benchmark::State &state)
{
    auto image = encodeDir(sieveProgram(), EncodingScheme::Huffman);
    DynamicTranslator translator(*image);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            translator.translate(image->bitAddrOf(i)));
        i = (i + 1) % image->numInstrs();
    }
}
BENCHMARK(BM_Translate);

void
BM_MachineRun(benchmark::State &state)
{
    MachineKind kind = static_cast<MachineKind>(state.range(0));
    auto image = encodeDir(sieveProgram(), EncodingScheme::Huffman);
    MachineConfig cfg = makeConfig(kind);
    Machine machine(*image, cfg);
    uint64_t instrs = 0;
    for (auto _ : state) {
        RunResult r = machine.run();
        instrs += r.dirInstrs;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
    state.SetLabel(machineKindName(kind));
}
BENCHMARK(BM_MachineRun)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void
BM_CompileContour(benchmark::State &state)
{
    const auto &sample = workload::sampleByName("qsort");
    for (auto _ : state)
        benchmark::DoNotOptimize(hlr::compileSource(sample.source));
}
BENCHMARK(BM_CompileContour);

void
BM_EncodeProgram(benchmark::State &state)
{
    EncodingScheme scheme =
        static_cast<EncodingScheme>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeDir(sieveProgram(), scheme));
    state.SetLabel(encodingName(scheme));
}
BENCHMARK(BM_EncodeProgram)->DenseRange(0, 5);

void
BM_FusionPass(benchmark::State &state)
{
    const DirProgram &prog = sieveProgram();
    for (auto _ : state)
        benchmark::DoNotOptimize(raiseSemanticLevel(prog));
}
BENCHMARK(BM_FusionPass);

void
BM_SerializeRoundTrip(benchmark::State &state)
{
    const DirProgram &prog = sieveProgram();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            deserializeDirProgram(serializeDirProgram(prog)));
    }
}
BENCHMARK(BM_SerializeRoundTrip);

void
BM_TraceReplay(benchmark::State &state)
{
    auto image = encodeDir(sieveProgram(), EncodingScheme::Huffman);
    MachineConfig cfg;
    cfg.kind = MachineKind::Dtb;
    cfg.captureAddressTrace = true;
    Machine machine(*image, cfg);
    RunResult run = machine.run();
    DynamicTranslator translator(*image);
    // Pre-size translations so the replay measures only the DTB.
    std::map<uint64_t, unsigned> sizes;
    for (uint64_t addr : run.addressTrace) {
        if (!sizes.count(addr)) {
            sizes[addr] = static_cast<unsigned>(
                translator.translate(addr).code.size());
        }
    }
    DtbConfig dtb;
    uint64_t refs = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulateDtbTrace(
            run.addressTrace, dtb,
            [&](uint64_t a) { return sizes.at(a); }));
        refs += run.addressTrace.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(refs));
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
