/**
 * @file
 * Regenerates Figure 3 of the paper: the organization of the universal
 * host machine — rendered as measured cycle breakdowns that show what
 * each block of the figure contributes under the three organizations,
 * plus the section 6.2 placement question: should the DTB's buffer
 * array live in the level-1 or the level-2 memory?
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
breakdownTable(const char *name)
{
    const auto &sample = workload::sampleByName(name);
    DirProgram prog = hlr::compileSource(sample.source);
    auto image = encodeDir(prog, EncodingScheme::Huffman);

    TextTable table(std::string("Cycle breakdown ('") + name +
                    "', huffman DIR): where each organization spends "
                    "its time\n(cycles per DIR instruction)");
    table.setHeader({"organization", "fetch", "decode", "stage",
                     "dispatch", "semantic", "translate", "total"});
    for (MachineKind kind : {MachineKind::Conventional,
                             MachineKind::Cached, MachineKind::Dtb}) {
        MachineConfig cfg = makeConfig(kind);
        Machine machine(*image, cfg);
        RunResult r = machine.run(sample.input);
        double n = static_cast<double>(r.dirInstrs);
        table.addRow({machineKindName(kind),
                      TextTable::num(r.breakdown.fetch / n, 2),
                      TextTable::num(r.breakdown.decode / n, 2),
                      TextTable::num(r.breakdown.stage / n, 2),
                      TextTable::num(r.breakdown.dispatch / n, 2),
                      TextTable::num(r.breakdown.semantic / n, 2),
                      TextTable::num(r.breakdown.translate / n, 2),
                      TextTable::num(r.avgInterpTime(), 2)});
    }
    table.print();
}

void
placementTable()
{
    // Section 6.2: "the address array and the buffer array would form
    // part of either the level-1 or level-2 memories. The former
    // alternative is preferable since the access time to the PSDER
    // instructions would be low..." We model level-2 placement by
    // raising tauD to tau2 for the DTB machine.
    workload::SyntheticConfig cfg;
    cfg.numLoops = 6;
    cfg.bodyInstrs = 40;
    cfg.iterations = 30;
    cfg.seed = 3;
    DirProgram prog = workload::generateSynthetic(cfg);

    TextTable table("DTB placement (section 6.2): buffer array in level-1"
                    " vs level-2 memory");
    table.setHeader({"placement", "tauD", "h_D", "cycles/instr"});
    for (auto [label, taud] :
         std::vector<std::pair<const char *, uint64_t>>{
             {"level 1 (preferred)", 2}, {"level 2", 10}}) {
        MachineConfig mc = makeConfig(MachineKind::Dtb);
        mc.timing.tauD = taud;
        RunResult r = runProgram(prog, EncodingScheme::Huffman, mc);
        table.addRow({label, TextTable::num(uint64_t{taud}),
                      TextTable::num(r.dtbHitRatio, 3),
                      TextTable::num(r.avgInterpTime(), 2)});
    }
    table.print();
}

void
sharedRoutinesTable()
{
    // Figure 3 shares IU1's semantic routines across organizations; the
    // semantic bucket must be identical per instruction.
    DirProgram prog = hlr::compileSource(
        workload::sampleByName("matmul").source);
    auto image = encodeDir(prog, EncodingScheme::Packed);

    TextTable table("IU1 semantic routines are shared: per-instruction "
                    "semantic cycles (x) are\nidentical across "
                    "organizations");
    table.setHeader({"organization", "x (cycles/instr)",
                     "micro-ops retired"});
    for (MachineKind kind : {MachineKind::Conventional,
                             MachineKind::Cached, MachineKind::Dtb}) {
        Machine machine(*image, makeConfig(kind));
        RunResult r = machine.run();
        table.addRow({machineKindName(kind),
                      TextTable::num(r.measuredX, 3),
                      TextTable::num(r.stats.get("micro_ops"))});
    }
    table.print();
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 3: organization of the universal host "
                "machine ===\n\n");
    breakdownTable("sieve");
    std::printf("\n");
    breakdownTable("queens");
    std::printf("\n");
    placementTable();
    std::printf("\n");
    sharedRoutinesTable();
    std::printf(
        "\nShape checks: the conventional organization pays fetch+decode "
        "on every\ninstruction; the cache removes most fetch cost but no "
        "decode; the DTB removes\nboth on hits and adds a small translate"
        " term; level-1 placement of the buffer\narray beats level-2.\n");
    return 0;
}
