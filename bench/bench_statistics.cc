/**
 * @file
 * The paper's stated future work (section 8): "Future research will be
 * aimed at gathering statistics which permit a more quantitative
 * evaluation of the cost-performance of various combinations of
 * intermediate representations and universal host machine
 * architectures, with and without dynamic translation buffers."
 *
 * This bench gathers exactly those statistics from the simulator:
 *
 *  1. static vs dynamic opcode frequencies of the compiled sample
 *     programs (section 3.2 builds its codes from *static* frequencies;
 *     how much would profile-guided — dynamic — frequencies help?);
 *  2. the full cost-performance matrix: every encoding x every machine
 *     organization, space and time together.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hh"
#include "support/huffman.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

/** Dynamic opcode frequencies from a conventional-machine run. */
std::vector<uint64_t>
dynamicFrequencies(const DirProgram &prog,
                   const std::vector<int64_t> &input)
{
    auto image = encodeDir(prog, EncodingScheme::Packed);
    MachineConfig cfg = makeConfig(MachineKind::Conventional);
    Machine machine(*image, cfg);
    return machine.run(input).opcodeCounts;
}

/**
 * Section 3.2 measures frequencies "in the static representation of
 * the program"; a JIT-era designer would profile instead. Compare the
 * expected opcode-field length per *executed* instruction under codes
 * built from static vs dynamic frequencies.
 */
void
staticVsDynamicProfile()
{
    TextTable table("Static-frequency vs profile-guided (dynamic-"
                    "frequency) opcode codes: expected\nopcode bits per "
                    "executed instruction");
    table.setHeader({"program", "static-freq code", "dynamic-freq code",
                     "profile gain"});
    for (const char *name : {"sieve", "fib", "qsort", "matmul",
                             "queens", "collatz"}) {
        const auto &sample = workload::sampleByName(name);
        DirProgram prog = hlr::compileSource(sample.source);

        std::vector<uint64_t> static_freqs(numOps, 0);
        for (const DirInstruction &ins : prog.instrs)
            ++static_freqs[static_cast<size_t>(ins.op)];
        std::vector<uint64_t> dyn_freqs =
            dynamicFrequencies(prog, sample.input);

        HuffmanCode static_code = HuffmanCode::build(static_freqs);
        HuffmanCode dyn_code = HuffmanCode::build(dyn_freqs);
        double static_cost = static_code.expectedLength(dyn_freqs);
        double dyn_cost = dyn_code.expectedLength(dyn_freqs);
        table.addRow({name, TextTable::num(static_cost, 3),
                      TextTable::num(dyn_cost, 3),
                      TextTable::num(
                          100.0 * (static_cost - dyn_cost) / static_cost,
                          1) + "%"});
    }
    table.print();
    std::printf(
        "\nStatic frequencies are what a 1978 compiler could gather; "
        "profile-guided codes\nshave a few percent more off the *hot* "
        "path — but the DTB makes the point moot:\nonce translated, hot "
        "instructions are never decoded again.\n");
}

void
costPerformanceMatrix(const char *name)
{
    const auto &sample = workload::sampleByName(name);
    DirProgram prog = hlr::compileSource(sample.source);

    TextTable table(std::string("Cost-performance matrix ('") + name +
                    "'): static bits x cycles/instr for every encoding "
                    "and organization");
    table.setHeader({"encoding", "bits", "conventional", "cached", "dtb",
                     "dtb2"});
    for (EncodingScheme scheme : allEncodingSchemes()) {
        auto image = encodeDir(prog, scheme);
        std::vector<std::string> row = {
            encodingName(scheme), TextTable::num(image->bitSize())};
        for (MachineKind kind : {MachineKind::Conventional,
                                 MachineKind::Cached, MachineKind::Dtb,
                                 MachineKind::Dtb2}) {
            MachineConfig cfg = makeConfig(kind);
            Machine machine(*image, cfg);
            RunResult r = machine.run(sample.input);
            row.push_back(TextTable::num(r.avgInterpTime(), 2));
        }
        table.addRow(row);
    }
    table.print();
}

void
staticFrequencyTable()
{
    // Aggregate static opcode frequencies over all samples — the
    // statistics a 1978-style encoding designer would gather.
    std::vector<uint64_t> freqs(numOps, 0);
    uint64_t total = 0;
    for (const auto &sample : workload::samplePrograms()) {
        DirProgram prog = hlr::compileSource(sample.source);
        for (const DirInstruction &ins : prog.instrs) {
            ++freqs[static_cast<size_t>(ins.op)];
            ++total;
        }
    }

    // Sort descending.
    std::vector<size_t> order;
    for (size_t i = 0; i < numOps; ++i) {
        if (freqs[i] > 0)
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return freqs[a] > freqs[b]; });

    TextTable table("Static opcode frequencies over the sample corpus "
                    "(top 12) and the Huffman\ncode lengths they earn");
    table.setHeader({"opcode", "count", "share", "code bits"});
    HuffmanCode code = HuffmanCode::build(freqs);
    for (size_t i = 0; i < std::min<size_t>(order.size(), 12); ++i) {
        size_t op = order[i];
        table.addRow({opName(static_cast<Op>(op)),
                      TextTable::num(freqs[op]),
                      TextTable::num(100.0 * static_cast<double>(
                          freqs[op]) / static_cast<double>(total), 1) +
                          "%",
                      TextTable::num(uint64_t{code.lengthOf(op)})});
    }
    table.print();
    std::printf("\ncorpus entropy: %.2f bits/opcode; Huffman expected "
                "length: %.2f bits\n",
                entropyBits(freqs), code.expectedLength(freqs));
}

} // anonymous namespace

int
main()
{
    std::printf("=== Section 8's future work: gathered statistics ===\n"
                "\n");
    staticFrequencyTable();
    std::printf("\n");
    staticVsDynamicProfile();
    std::printf("\n");
    costPerformanceMatrix("sieve");
    std::printf("\n");
    costPerformanceMatrix("queens");
    std::printf(
        "\nShape check: across the whole matrix, the DTB columns are "
        "nearly flat in the\nencoding (the dynamic representation "
        "decouples run time from the static form),\nwhile the "
        "conventional column pays for every bit saved.\n");
    return 0;
}
