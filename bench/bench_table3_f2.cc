/**
 * @file
 * Regenerates Table 3 of the paper: "Percentage increase in the average
 * DIR instruction interpretation time due to not using the DTB" — F2,
 * over the d x x grid. Same three views as bench_table2_f1.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/table.hh"

using namespace uhm;
using namespace uhm::bench;

namespace
{

void
printClosedForm()
{
    TextTable table(
        "Table 3 (paper closed form): F2, percentage increase from not "
        "using a DTB");
    std::vector<std::string> header = {"d \\ x"};
    for (double x : analytic::paperXGrid())
        header.push_back(TextTable::num(x, 0));
    table.setHeader(header);
    for (double d : analytic::paperDGrid()) {
        std::vector<std::string> row = {TextTable::num(d, 0)};
        for (double x : analytic::paperXGrid())
            row.push_back(TextTable::num(analytic::paperTable3(d, x), 2));
        table.addRow(row);
    }
    table.print();
}

void
printFormula()
{
    TextTable table(
        "Table 3 (section-7 expressions, stated parameters): "
        "F2 = (T1 - T2)/T2 x 100");
    std::vector<std::string> header = {"d \\ x"};
    for (double x : analytic::paperXGrid())
        header.push_back(TextTable::num(x, 0));
    table.setHeader(header);
    for (double d : analytic::paperDGrid()) {
        std::vector<std::string> row = {TextTable::num(d, 0)};
        for (double x : analytic::paperXGrid()) {
            analytic::ModelParams p;
            p.d = d;
            p.g = 1.5 * d;
            p.x = x;
            row.push_back(TextTable::num(analytic::f2(p), 2));
        }
        table.addRow(row);
    }
    table.print();
}

void
printMeasured(SweepRunner &runner)
{
    TextTable table(
        "Table 3 (measured): simulated F2 at steered (d, x) points, with "
        "the\nsection-7 prediction at the *measured* coordinates");
    table.setHeader({"d target", "x target", "d meas", "x meas", "hD",
                     "T1", "T2", "F2 meas", "F2 model"});

    std::vector<SteeredPoint> grid = steeredGrid();
    std::vector<MeasuredPoint> points = measureSteeredGrid(runner, grid);
    for (size_t i = 0; i < grid.size(); ++i) {
        const MeasuredPoint &pt = points[i];
        analytic::ModelParams p;
        p.d = pt.d;
        p.x = pt.x;
        p.g = pt.g;
        p.hD = pt.hD;
        p.hc = pt.hc;
        p.s1 = pt.s1;
        p.s2 = pt.s2;

        table.addRow({TextTable::num(grid[i].dTarget, 0),
                      TextTable::num(grid[i].xTarget, 0),
                      TextTable::num(pt.d, 1),
                      TextTable::num(pt.x, 1),
                      TextTable::num(pt.hD, 3),
                      TextTable::num(pt.t1, 1),
                      TextTable::num(pt.t2, 1),
                      TextTable::num(pt.f2(), 2),
                      TextTable::num(analytic::f2(p), 2)});
    }
    table.print();
}

void
printRealPrograms(SweepRunner &runner)
{
    TextTable table(
        "Table 3 (compiled Contour programs, Huffman-encoded DIR): "
        "measured F2");
    table.setHeader({"program", "instrs", "d", "x", "hD", "T1", "T2",
                     "F2 meas"});
    std::vector<std::string> names = {"sieve", "fib", "qsort", "matmul",
                                      "queens", "collatz"};
    std::vector<MeasuredPoint> points = measureSamples(runner, names);
    for (size_t i = 0; i < names.size(); ++i) {
        const MeasuredPoint &pt = points[i];
        table.addRow({names[i], TextTable::num(pt.dirInstrs),
                      TextTable::num(pt.d, 1), TextTable::num(pt.x, 1),
                      TextTable::num(pt.hD, 3),
                      TextTable::num(pt.t1, 1),
                      TextTable::num(pt.t2, 1),
                      TextTable::num(pt.f2(), 2)});
    }
    table.print();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    SweepRunner runner(jobsFromArgs(argc, argv));
    std::printf("=== Table 3: F2 — cost of not using a DTB ===\n\n");
    printClosedForm();
    std::printf("\n");
    printFormula();
    std::printf("\n");
    printMeasured(runner);
    std::printf("\n");
    printRealPrograms(runner);
    std::printf(
        "\nShape checks: F2 > 0 everywhere (the DTB always wins over the "
        "conventional\nUHM), growing with d and shrinking with x.\n");
    return 0;
}
