/**
 * @file
 * uhm_cli — a command-line driver for the whole pipeline.
 *
 * Usage:
 *   uhm_cli [run] [options] <sample-name | path/to/program.ctr>
 *   uhm_cli sweep [options] [program ...]
 *
 * "run" is the (optional) explicit name of the single-program
 * subcommand; omitting it is equivalent.
 *
 * The sweep subcommand runs a batch of programs concurrently on the
 * parallel sweep harness (bench/bench_common.hh) and emits a JSONL
 * report — one "sweep_point" line per program in argument order plus
 * one "sweep_summary" line with the merged counters. The report is
 * byte-identical for any --jobs value. Programs default to the whole
 * sample corpus; the pseudo-program "synthetic" adds the phased-loop
 * grid workload, generated from --seed.
 *
 * Sweep options:
 *   --jobs=<n>             worker threads (default: all cores)
 *   --seed=<n>             seed for the "synthetic" workload (1978)
 *   --machine=/--encoding= as below, applied to every point
 *   --tier-threshold=/--trace-cap=/--trace-bytes= as below
 *   --out=<file>           write the JSONL report to <file> (stdout)
 *
 * Options:
 *   --machine=<conventional|cached|dtb|dtb2|tiered>  (default dtb)
 *   --encoding=<expanded|packed|contextual|huffman|pair-huffman|
 *               quantized>                      (default huffman)
 *   --decode=<tree|table>  host-side Huffman decode implementation
 *                          (default table). Simulated cycles and all
 *                          outputs are identical either way; the tree
 *                          walk is the reference path, kept as an
 *                          escape hatch for bisecting fast-path
 *                          regressions. Accepted by sweep too.
 *   --input=<comma-separated ints>              (read-statement input)
 *   --dtb-bytes=<n>        DTB buffer capacity  (default 4096)
 *   --assoc=<n>            DTB/cache ways, 0 = full (default 4)
 *   --tier-threshold=<n>   backedges before a trace records (tiered, 8)
 *   --trace-cap=<n>        max DIR instrs per trace (tiered, 64)
 *   --trace-bytes=<n>      trace-cache capacity (tiered, 8192)
 *   --raise                raise the DIR's semantic level (fuse opcodes)
 *   --disasm               print the DIR disassembly and exit
 *   --emit-asm=<file>      write round-trippable DIR assembly and exit
 *   --emit-bin=<file>      write the binary DIR form and exit
 *   --stats                print the full counter set after the run
 *   --trace                print the INTERP event trace (DTB kinds)
 *   --profile[=<file>]     emit a JSONL profile report (phases,
 *                          counters, histograms, ratios) to <file>, or
 *                          to stderr when no file is given; combined
 *                          with --trace the report also carries typed
 *                          event lines. Format: docs/INTERNALS.md
 *   --timeline=<file>      record the typed event trace and write a
 *                          Chrome-trace-event JSON timeline (loadable
 *                          in Perfetto / chrome://tracing; see
 *                          scripts/trace_report.py) to <file>
 *   --sample-interval=<n>  snapshot DTB / trace-cache occupancy and
 *                          hit-rate deltas every <n> cycles into the
 *                          profile report and timeline (0 = off)
 *
 * The program argument may be a sample name, a Contour source file, a
 * DIR assembly file (.dira) or a DIR binary (.dirb).
 *
 * Exit status: 0 on success, 1 on user error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeline.hh"

#include "bench_common.hh"
#include "dir/asm.hh"
#include "dir/fusion.hh"
#include "dir/serialize.hh"
#include "hlr/compiler.hh"
#include "support/huffman.hh"
#include "support/logging.hh"
#include "uhm/machine.hh"
#include "uhm/profile.hh"
#include "workload/samples.hh"

namespace
{

struct Options
{
    std::string program = "qsort";
    uhm::MachineKind kind = uhm::MachineKind::Dtb;
    uhm::EncodingScheme scheme = uhm::EncodingScheme::Huffman;
    std::vector<int64_t> input;
    uint64_t dtbBytes = 4096;
    unsigned assoc = 4;
    uint32_t tierThreshold = 8;
    size_t traceCap = 64;
    uint64_t traceBytes = 8192;
    bool raiseLevel = false;
    bool disasm = false;
    bool stats = false;
    bool trace = false;
    bool profile = false;
    /** Profile destination; "-" = stderr. */
    std::string profilePath = "-";
    /** Chrome-trace timeline destination; empty = no timeline. */
    std::string timelinePath;
    /** Occupancy-sampler interval in cycles; 0 = off. */
    uint64_t sampleInterval = 0;
    std::string emitAsm;
    std::string emitBin;
};

uhm::MachineKind
parseMachine(const std::string &name)
{
    if (name == "conventional")
        return uhm::MachineKind::Conventional;
    if (name == "cached")
        return uhm::MachineKind::Cached;
    if (name == "dtb")
        return uhm::MachineKind::Dtb;
    if (name == "dtb2")
        return uhm::MachineKind::Dtb2;
    if (name == "tiered")
        return uhm::MachineKind::Tiered;
    uhm::fatal("unknown machine kind '%s'", name.c_str());
}

/** Shared help text for the options both subcommands accept. */
constexpr const char *commonOptionsHelp =
    "  --machine=<conventional|cached|dtb|dtb2|tiered>\n"
    "                         machine organization (default dtb)\n"
    "  --encoding=<expanded|packed|contextual|huffman|pair-huffman|\n"
    "              quantized> DIR encoding (default huffman)\n"
    "  --decode=<tree|table>  host-side Huffman decode (default table)\n"
    "  --tier-threshold=<n>   backedges into a resident DTB entry before\n"
    "                         a trace records (tiered only, default 8)\n"
    "  --trace-cap=<n>        max DIR instrs per trace (tiered, 64)\n"
    "  --trace-bytes=<n>      trace-cache capacity in bytes (tiered,\n"
    "                         default 8192)\n";

void
printMainHelp()
{
    std::fputs(
        "usage: uhm_cli [run] [options] <sample-name | path/to/program>\n"
        "       uhm_cli sweep [options] [program ...]\n"
        "\n"
        "Run one program on the simulated universal host machine\n"
        "(the explicit \"run\" subcommand name is optional).\n"
        "\n",
        stdout);
    std::fputs(commonOptionsHelp, stdout);
    std::fputs(
        "  --input=<ints>         comma-separated read-statement input\n"
        "  --dtb-bytes=<n>        DTB buffer capacity (default 4096)\n"
        "  --assoc=<n>            DTB/cache ways, 0 = full (default 4)\n"
        "  --raise                fuse opcodes (raise semantic level)\n"
        "  --disasm               print the DIR disassembly and exit\n"
        "  --emit-asm=<file>      write DIR assembly and exit\n"
        "  --emit-bin=<file>      write binary DIR form and exit\n"
        "  --stats                print the full counter set\n"
        "  --trace                print the INTERP event trace\n"
        "  --profile[=<file>]     emit a JSONL profile report\n"
        "  --timeline=<file>      write a Chrome-trace timeline (load\n"
        "                         in Perfetto or chrome://tracing)\n"
        "  --sample-interval=<n>  sample DTB/trace-cache occupancy\n"
        "                         every <n> cycles (0 = off)\n"
        "\n"
        "example: uhm_cli run --machine=tiered --timeline=out.json "
        "loops\n",
        stdout);
}

void
printSweepHelp()
{
    std::fputs(
        "usage: uhm_cli sweep [options] [program ...]\n"
        "\n"
        "Run a batch of programs concurrently and emit a JSONL report\n"
        "(byte-identical for any --jobs value).\n"
        "\n",
        stdout);
    std::fputs(commonOptionsHelp, stdout);
    std::fputs(
        "  --jobs=<n>             worker threads (default: all cores)\n"
        "  --seed=<n>             seed for the \"synthetic\" workload\n"
        "  --sample-interval=<n>  sample DTB/trace-cache occupancy\n"
        "                         every <n> cycles per point (0 = off)\n"
        "  --out=<file>           write the report to <file> (stdout)\n"
        "\n"
        "example: uhm_cli sweep --machine=tiered --jobs=8 "
        "--out=tiered.jsonl\n",
        stdout);
}

uhm::EncodingScheme
parseEncoding(const std::string &name)
{
    for (uhm::EncodingScheme scheme : uhm::allEncodingSchemes()) {
        if (name == uhm::encodingName(scheme))
            return scheme;
    }
    uhm::fatal("unknown encoding '%s'", name.c_str());
}

/** Apply --decode=<tree|table> to the process-wide decode kind. */
void
applyDecodeKind(const std::string &name)
{
    if (name == "tree")
        uhm::setHuffmanDecodeKind(uhm::HuffmanDecodeKind::Tree);
    else if (name == "table")
        uhm::setHuffmanDecodeKind(uhm::HuffmanDecodeKind::Table);
    else
        uhm::fatal("unknown decode kind '%s' (tree|table)",
                   name.c_str());
}

std::vector<int64_t>
parseInts(const std::string &list)
{
    std::vector<int64_t> values;
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ','))
        values.push_back(std::stoll(item));
    return values;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--machine=", 0) == 0)
            opts.kind = parseMachine(value("--machine="));
        else if (arg.rfind("--encoding=", 0) == 0)
            opts.scheme = parseEncoding(value("--encoding="));
        else if (arg.rfind("--decode=", 0) == 0)
            applyDecodeKind(value("--decode="));
        else if (arg.rfind("--input=", 0) == 0)
            opts.input = parseInts(value("--input="));
        else if (arg.rfind("--dtb-bytes=", 0) == 0)
            opts.dtbBytes = std::stoull(value("--dtb-bytes="));
        else if (arg.rfind("--assoc=", 0) == 0)
            opts.assoc = static_cast<unsigned>(
                std::stoul(value("--assoc=")));
        else if (arg.rfind("--tier-threshold=", 0) == 0)
            opts.tierThreshold = static_cast<uint32_t>(
                std::stoul(value("--tier-threshold=")));
        else if (arg.rfind("--trace-cap=", 0) == 0)
            opts.traceCap = std::stoull(value("--trace-cap="));
        else if (arg.rfind("--trace-bytes=", 0) == 0)
            opts.traceBytes = std::stoull(value("--trace-bytes="));
        else if (arg == "--help" || arg == "-h") {
            printMainHelp();
            std::exit(0);
        }
        else if (arg == "--raise")
            opts.raiseLevel = true;
        else if (arg == "--disasm")
            opts.disasm = true;
        else if (arg.rfind("--emit-asm=", 0) == 0)
            opts.emitAsm = value("--emit-asm=");
        else if (arg.rfind("--emit-bin=", 0) == 0)
            opts.emitBin = value("--emit-bin=");
        else if (arg == "--stats")
            opts.stats = true;
        else if (arg == "--trace")
            opts.trace = true;
        else if (arg == "--profile")
            opts.profile = true;
        else if (arg.rfind("--profile=", 0) == 0) {
            opts.profile = true;
            opts.profilePath = value("--profile=");
        }
        else if (arg.rfind("--timeline=", 0) == 0)
            opts.timelinePath = value("--timeline=");
        else if (arg.rfind("--sample-interval=", 0) == 0)
            opts.sampleInterval =
                std::stoull(value("--sample-interval="));
        else if (!arg.empty() && arg[0] == '-')
            uhm::fatal("unknown option '%s' (try --help)", arg.c_str());
        else
            opts.program = arg;
    }
    return opts;
}

/** True if @p name ends with @p suffix. */
bool
endsWith(const std::string &name, const std::string &suffix)
{
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Resolve the program argument to a DirProgram, whatever its form. */
uhm::DirProgram
loadProgram(const std::string &arg, std::vector<int64_t> &default_input)
{
    if (endsWith(arg, ".dirb"))
        return uhm::loadDirProgram(arg);

    std::ifstream file(arg);
    if (file) {
        std::ostringstream os;
        os << file.rdbuf();
        if (endsWith(arg, ".dira"))
            return uhm::parseDirAssembly(os.str());
        return uhm::hlr::compileSource(os.str());
    }
    const auto &sample = uhm::workload::sampleByName(arg);
    default_input = sample.input;
    return uhm::hlr::compileSource(sample.source);
}

/**
 * The sweep subcommand: run a batch of programs concurrently and emit
 * the merged JSONL report. argv[1] is "sweep"; options follow.
 */
int
runSweepCommand(int argc, char **argv)
{
    unsigned jobs = 0;
    uint64_t seed = 1978;
    uint64_t sample_interval = 0;
    uhm::MachineKind kind = uhm::MachineKind::Dtb;
    uhm::EncodingScheme scheme = uhm::EncodingScheme::Huffman;
    uhm::tier::TierConfig tier_cfg;
    uhm::tier::TraceCacheConfig trace_cache_cfg;
    std::string out_path;
    std::vector<std::string> programs;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--jobs=", 0) == 0)
            jobs = static_cast<unsigned>(std::stoul(value("--jobs=")));
        else if (arg.rfind("--seed=", 0) == 0)
            seed = std::stoull(value("--seed="));
        else if (arg.rfind("--machine=", 0) == 0)
            kind = parseMachine(value("--machine="));
        else if (arg.rfind("--encoding=", 0) == 0)
            scheme = parseEncoding(value("--encoding="));
        else if (arg.rfind("--decode=", 0) == 0)
            applyDecodeKind(value("--decode="));
        else if (arg.rfind("--tier-threshold=", 0) == 0)
            tier_cfg.hotThreshold = static_cast<uint32_t>(
                std::stoul(value("--tier-threshold=")));
        else if (arg.rfind("--trace-cap=", 0) == 0)
            tier_cfg.traceCap = std::stoull(value("--trace-cap="));
        else if (arg.rfind("--trace-bytes=", 0) == 0)
            trace_cache_cfg.capacityBytes =
                std::stoull(value("--trace-bytes="));
        else if (arg == "--help" || arg == "-h") {
            printSweepHelp();
            return 0;
        }
        else if (arg.rfind("--sample-interval=", 0) == 0)
            sample_interval =
                std::stoull(value("--sample-interval="));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = value("--out=");
        else if (!arg.empty() && arg[0] == '-')
            uhm::fatal("unknown sweep option '%s' (try --help)",
                       arg.c_str());
        else
            programs.push_back(arg);
    }
    if (programs.empty()) {
        for (const auto &sample : uhm::workload::samplePrograms())
            programs.push_back(sample.name);
    }

    std::vector<uhm::bench::SweepPoint> points;
    for (const std::string &name : programs) {
        uhm::bench::SweepPoint point;
        point.label = name;
        if (name == "synthetic") {
            point.program = uhm::bench::gridWorkload(2, seed);
        } else {
            point.program = loadProgram(name, point.input);
        }
        point.scheme = scheme;
        point.config.kind = kind;
        point.config.tier = tier_cfg;
        point.config.traceCache = trace_cache_cfg;
        point.config.sampleIntervalCycles = sample_interval;
        points.push_back(std::move(point));
    }

    uhm::bench::SweepRunner runner(jobs);
    uhm::bench::SweepReport report =
        uhm::bench::runSweep(runner, points);

    if (out_path.empty()) {
        std::fputs(report.jsonl.c_str(), stdout);
    } else {
        std::ofstream out(out_path);
        if (!out)
            uhm::fatal("cannot open '%s'", out_path.c_str());
        out << report.jsonl;
    }
    std::fprintf(stderr, "# sweep: %zu points on %u workers, %llu DIR "
                 "instrs simulated\n",
                 points.size(), runner.jobs(),
                 static_cast<unsigned long long>(
                     report.counters.get("machine.dir_instrs")));
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return runSweepCommand(argc, argv);
    // "run" is the explicit name of the default subcommand: shift it
    // off and parse the rest as usual.
    if (argc > 1 && std::strcmp(argv[1], "run") == 0) {
        --argc;
        ++argv;
    }
    Options opts = parseArgs(argc, argv);
    std::vector<int64_t> default_input;
    uhm::DirProgram prog = loadProgram(opts.program, default_input);
    if (opts.input.empty())
        opts.input = default_input;
    if (opts.raiseLevel) {
        uhm::FusionStats stats;
        prog = uhm::raiseSemanticLevel(prog, &stats);
        std::fprintf(stderr, "# raised semantic level: %llu fusions, "
                     "%zu -> %zu instructions\n",
                     static_cast<unsigned long long>(stats.totalFused()),
                     stats.instrsBefore, stats.instrsAfter);
    }

    if (opts.disasm) {
        std::fputs(prog.disassemble().c_str(), stdout);
        return 0;
    }
    if (!opts.emitAsm.empty()) {
        std::ofstream out(opts.emitAsm);
        if (!out)
            uhm::fatal("cannot open '%s'", opts.emitAsm.c_str());
        out << uhm::toDirAssembly(prog);
        return 0;
    }
    if (!opts.emitBin.empty()) {
        uhm::saveDirProgram(prog, opts.emitBin);
        return 0;
    }

    auto image = uhm::encodeDir(prog, opts.scheme);
    uhm::MachineConfig cfg;
    cfg.kind = opts.kind;
    cfg.dtb.capacityBytes = opts.dtbBytes;
    cfg.dtb.assoc = opts.assoc;
    cfg.icache.capacityBytes = opts.dtbBytes;
    cfg.icache.assoc = opts.assoc;
    cfg.tier.hotThreshold = opts.tierThreshold;
    cfg.tier.traceCap = opts.traceCap;
    cfg.traceCache.capacityBytes = opts.traceBytes;
    cfg.traceEvents = opts.trace;
    // The bounded typed-event ring rides along only when the user also
    // asked for tracing; the counter/phase report alone stays small.
    // A timeline is built *from* the ring, so --timeline enables it
    // too — with a much deeper ring, since a truncated timeline is a
    // lot less useful than a truncated event list.
    cfg.profileEvents =
        (opts.profile && opts.trace) || !opts.timelinePath.empty();
    if (!opts.timelinePath.empty())
        cfg.profileEventCapacity =
            std::max<size_t>(cfg.profileEventCapacity, size_t{1} << 20);
    cfg.sampleIntervalCycles = opts.sampleInterval;

    uhm::Machine machine(*image, cfg);
    uhm::RunResult r = machine.run(opts.input);

    for (int64_t v : r.output)
        std::printf("%lld\n", static_cast<long long>(v));

    std::fprintf(stderr,
                 "# %s / %s: %llu DIR instrs, %llu cycles "
                 "(%.2f cycles/instr), image %llu bits\n",
                 uhm::machineKindName(opts.kind),
                 uhm::encodingName(opts.scheme),
                 static_cast<unsigned long long>(r.dirInstrs),
                 static_cast<unsigned long long>(r.cycles),
                 r.avgInterpTime(),
                 static_cast<unsigned long long>(image->bitSize()));
    if (opts.kind == uhm::MachineKind::Dtb ||
        opts.kind == uhm::MachineKind::Dtb2 ||
        opts.kind == uhm::MachineKind::Tiered) {
        std::fprintf(stderr, "# dtb hit ratio %.4f", r.dtbHitRatio);
        if (opts.kind == uhm::MachineKind::Dtb2)
            std::fprintf(stderr, ", L1 hit ratio %.4f", r.dtbL1HitRatio);
        if (opts.kind == uhm::MachineKind::Tiered)
            std::fprintf(stderr,
                         ", trace coverage %.4f, trace hit ratio %.4f",
                         r.traceCoverage, r.traceHitRatio);
        std::fprintf(stderr, "\n");
    }
    if (opts.stats) {
        std::fprintf(stderr, "# breakdown: fetch=%llu decode=%llu "
                     "stage=%llu dispatch=%llu semantic=%llu "
                     "translate=%llu translate2=%llu\n",
                     static_cast<unsigned long long>(r.breakdown.fetch),
                     static_cast<unsigned long long>(r.breakdown.decode),
                     static_cast<unsigned long long>(r.breakdown.stage),
                     static_cast<unsigned long long>(
                         r.breakdown.dispatch),
                     static_cast<unsigned long long>(
                         r.breakdown.semantic),
                     static_cast<unsigned long long>(
                         r.breakdown.translate),
                     static_cast<unsigned long long>(
                         r.breakdown.translate2));
        std::fputs(r.stats.toString().c_str(), stderr);
    }
    if (r.eventsDropped > 0) {
        std::fprintf(stderr,
                     "# warning: event ring overflowed — dropped %llu "
                     "of %llu events (raise the ring capacity); the "
                     "trace and timeline cover only the run's tail\n",
                     static_cast<unsigned long long>(r.eventsDropped),
                     static_cast<unsigned long long>(r.eventsSeen));
    }
    uhm::ProfileMeta meta;
    meta.program = opts.program;
    meta.machine = uhm::machineKindName(opts.kind);
    meta.encoding = uhm::encodingName(opts.scheme);
    meta.imageBits = image->bitSize();
    if (opts.profile) {
        std::string doc = uhm::profileJsonl(meta, r);
        if (opts.profilePath == "-") {
            std::fputs(doc.c_str(), stderr);
        } else {
            std::ofstream out(opts.profilePath);
            if (!out)
                uhm::fatal("cannot open '%s'",
                           opts.profilePath.c_str());
            out << doc;
        }
    }
    if (!opts.timelinePath.empty()) {
        std::string doc =
            uhm::obs::toChromeTrace(uhm::buildProfile(meta, r));
        std::ofstream out(opts.timelinePath);
        if (!out)
            uhm::fatal("cannot open '%s'", opts.timelinePath.c_str());
        out << doc;
        std::fprintf(stderr, "# timeline: %zu events -> %s\n",
                     r.events.size(), opts.timelinePath.c_str());
    }
    if (opts.trace) {
        size_t shown = 0;
        for (const std::string &event : r.trace) {
            std::fprintf(stderr, "# %s\n", event.c_str());
            if (++shown >= 200) {
                std::fprintf(stderr, "# ... (%zu more events)\n",
                             r.trace.size() - shown);
                break;
            }
        }
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
}
